file(REMOVE_RECURSE
  "CMakeFiles/fig2a_buffer_size.dir/fig2a_buffer_size.cpp.o"
  "CMakeFiles/fig2a_buffer_size.dir/fig2a_buffer_size.cpp.o.d"
  "fig2a_buffer_size"
  "fig2a_buffer_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_buffer_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
