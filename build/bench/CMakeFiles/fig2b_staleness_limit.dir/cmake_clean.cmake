file(REMOVE_RECURSE
  "CMakeFiles/fig2b_staleness_limit.dir/fig2b_staleness_limit.cpp.o"
  "CMakeFiles/fig2b_staleness_limit.dir/fig2b_staleness_limit.cpp.o.d"
  "fig2b_staleness_limit"
  "fig2b_staleness_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_staleness_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
