# Empty dependencies file for fig2b_staleness_limit.
# This may be replaced when dependencies are built.
