file(REMOVE_RECURSE
  "CMakeFiles/ext_selection.dir/ext_selection.cpp.o"
  "CMakeFiles/ext_selection.dir/ext_selection.cpp.o.d"
  "ext_selection"
  "ext_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
