# Empty dependencies file for ext_selection.
# This may be replaced when dependencies are built.
