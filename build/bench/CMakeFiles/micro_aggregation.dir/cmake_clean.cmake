file(REMOVE_RECURSE
  "CMakeFiles/micro_aggregation.dir/micro_aggregation.cpp.o"
  "CMakeFiles/micro_aggregation.dir/micro_aggregation.cpp.o.d"
  "micro_aggregation"
  "micro_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
