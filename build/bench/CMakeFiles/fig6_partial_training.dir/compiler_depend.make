# Empty compiler generated dependencies file for fig6_partial_training.
# This may be replaced when dependencies are built.
