file(REMOVE_RECURSE
  "CMakeFiles/fig6_partial_training.dir/fig6_partial_training.cpp.o"
  "CMakeFiles/fig6_partial_training.dir/fig6_partial_training.cpp.o.d"
  "fig6_partial_training"
  "fig6_partial_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_partial_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
