# Empty dependencies file for fig4_alpha_mu.
# This may be replaced when dependencies are built.
