file(REMOVE_RECURSE
  "CMakeFiles/fig4_alpha_mu.dir/fig4_alpha_mu.cpp.o"
  "CMakeFiles/fig4_alpha_mu.dir/fig4_alpha_mu.cpp.o.d"
  "fig4_alpha_mu"
  "fig4_alpha_mu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_alpha_mu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
