# Empty dependencies file for ext_overhead.
# This may be replaced when dependencies are built.
