file(REMOVE_RECURSE
  "CMakeFiles/ext_overhead.dir/ext_overhead.cpp.o"
  "CMakeFiles/ext_overhead.dir/ext_overhead.cpp.o.d"
  "ext_overhead"
  "ext_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
