# Empty dependencies file for fig2c_importance.
# This may be replaced when dependencies are built.
