file(REMOVE_RECURSE
  "CMakeFiles/fig2c_importance.dir/fig2c_importance.cpp.o"
  "CMakeFiles/fig2c_importance.dir/fig2c_importance.cpp.o.d"
  "fig2c_importance"
  "fig2c_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2c_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
