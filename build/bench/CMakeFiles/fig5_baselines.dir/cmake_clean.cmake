file(REMOVE_RECURSE
  "CMakeFiles/fig5_baselines.dir/fig5_baselines.cpp.o"
  "CMakeFiles/fig5_baselines.dir/fig5_baselines.cpp.o.d"
  "fig5_baselines"
  "fig5_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
