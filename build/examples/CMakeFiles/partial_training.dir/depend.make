# Empty dependencies file for partial_training.
# This may be replaced when dependencies are built.
