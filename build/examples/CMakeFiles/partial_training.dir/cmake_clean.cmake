file(REMOVE_RECURSE
  "CMakeFiles/partial_training.dir/partial_training.cpp.o"
  "CMakeFiles/partial_training.dir/partial_training.cpp.o.d"
  "partial_training"
  "partial_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
