file(REMOVE_RECURSE
  "libseafl_sim.a"
)
