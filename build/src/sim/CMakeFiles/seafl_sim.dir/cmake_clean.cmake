file(REMOVE_RECURSE
  "CMakeFiles/seafl_sim.dir/event_queue.cpp.o"
  "CMakeFiles/seafl_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/seafl_sim.dir/fleet.cpp.o"
  "CMakeFiles/seafl_sim.dir/fleet.cpp.o.d"
  "libseafl_sim.a"
  "libseafl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seafl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
