# Empty dependencies file for seafl_sim.
# This may be replaced when dependencies are built.
