# Empty dependencies file for seafl_tensor.
# This may be replaced when dependencies are built.
