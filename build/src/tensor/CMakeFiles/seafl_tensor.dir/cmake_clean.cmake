file(REMOVE_RECURSE
  "CMakeFiles/seafl_tensor.dir/gemm.cpp.o"
  "CMakeFiles/seafl_tensor.dir/gemm.cpp.o.d"
  "CMakeFiles/seafl_tensor.dir/im2col.cpp.o"
  "CMakeFiles/seafl_tensor.dir/im2col.cpp.o.d"
  "CMakeFiles/seafl_tensor.dir/ops.cpp.o"
  "CMakeFiles/seafl_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/seafl_tensor.dir/tensor.cpp.o"
  "CMakeFiles/seafl_tensor.dir/tensor.cpp.o.d"
  "libseafl_tensor.a"
  "libseafl_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seafl_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
