file(REMOVE_RECURSE
  "libseafl_tensor.a"
)
