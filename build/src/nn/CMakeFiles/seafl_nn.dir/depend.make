# Empty dependencies file for seafl_nn.
# This may be replaced when dependencies are built.
