
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/seafl_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/seafl_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/conv.cpp" "src/nn/CMakeFiles/seafl_nn.dir/conv.cpp.o" "gcc" "src/nn/CMakeFiles/seafl_nn.dir/conv.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/nn/CMakeFiles/seafl_nn.dir/dense.cpp.o" "gcc" "src/nn/CMakeFiles/seafl_nn.dir/dense.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/seafl_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/seafl_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/model_zoo.cpp" "src/nn/CMakeFiles/seafl_nn.dir/model_zoo.cpp.o" "gcc" "src/nn/CMakeFiles/seafl_nn.dir/model_zoo.cpp.o.d"
  "/root/repo/src/nn/residual.cpp" "src/nn/CMakeFiles/seafl_nn.dir/residual.cpp.o" "gcc" "src/nn/CMakeFiles/seafl_nn.dir/residual.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/nn/CMakeFiles/seafl_nn.dir/sequential.cpp.o" "gcc" "src/nn/CMakeFiles/seafl_nn.dir/sequential.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/seafl_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/seafl_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/sgd.cpp" "src/nn/CMakeFiles/seafl_nn.dir/sgd.cpp.o" "gcc" "src/nn/CMakeFiles/seafl_nn.dir/sgd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/seafl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/seafl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
