file(REMOVE_RECURSE
  "CMakeFiles/seafl_nn.dir/activations.cpp.o"
  "CMakeFiles/seafl_nn.dir/activations.cpp.o.d"
  "CMakeFiles/seafl_nn.dir/conv.cpp.o"
  "CMakeFiles/seafl_nn.dir/conv.cpp.o.d"
  "CMakeFiles/seafl_nn.dir/dense.cpp.o"
  "CMakeFiles/seafl_nn.dir/dense.cpp.o.d"
  "CMakeFiles/seafl_nn.dir/loss.cpp.o"
  "CMakeFiles/seafl_nn.dir/loss.cpp.o.d"
  "CMakeFiles/seafl_nn.dir/model_zoo.cpp.o"
  "CMakeFiles/seafl_nn.dir/model_zoo.cpp.o.d"
  "CMakeFiles/seafl_nn.dir/residual.cpp.o"
  "CMakeFiles/seafl_nn.dir/residual.cpp.o.d"
  "CMakeFiles/seafl_nn.dir/sequential.cpp.o"
  "CMakeFiles/seafl_nn.dir/sequential.cpp.o.d"
  "CMakeFiles/seafl_nn.dir/serialize.cpp.o"
  "CMakeFiles/seafl_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/seafl_nn.dir/sgd.cpp.o"
  "CMakeFiles/seafl_nn.dir/sgd.cpp.o.d"
  "libseafl_nn.a"
  "libseafl_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seafl_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
