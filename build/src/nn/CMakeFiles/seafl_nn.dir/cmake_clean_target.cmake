file(REMOVE_RECURSE
  "libseafl_nn.a"
)
