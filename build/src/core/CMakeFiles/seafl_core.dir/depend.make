# Empty dependencies file for seafl_core.
# This may be replaced when dependencies are built.
