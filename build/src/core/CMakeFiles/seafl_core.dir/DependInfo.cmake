
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_weights.cpp" "src/core/CMakeFiles/seafl_core.dir/adaptive_weights.cpp.o" "gcc" "src/core/CMakeFiles/seafl_core.dir/adaptive_weights.cpp.o.d"
  "/root/repo/src/core/presets.cpp" "src/core/CMakeFiles/seafl_core.dir/presets.cpp.o" "gcc" "src/core/CMakeFiles/seafl_core.dir/presets.cpp.o.d"
  "/root/repo/src/core/seafl_strategy.cpp" "src/core/CMakeFiles/seafl_core.dir/seafl_strategy.cpp.o" "gcc" "src/core/CMakeFiles/seafl_core.dir/seafl_strategy.cpp.o.d"
  "/root/repo/src/core/weight_bounds.cpp" "src/core/CMakeFiles/seafl_core.dir/weight_bounds.cpp.o" "gcc" "src/core/CMakeFiles/seafl_core.dir/weight_bounds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fl/CMakeFiles/seafl_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/seafl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/seafl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/seafl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/seafl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/seafl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
