file(REMOVE_RECURSE
  "libseafl_core.a"
)
