file(REMOVE_RECURSE
  "CMakeFiles/seafl_core.dir/adaptive_weights.cpp.o"
  "CMakeFiles/seafl_core.dir/adaptive_weights.cpp.o.d"
  "CMakeFiles/seafl_core.dir/presets.cpp.o"
  "CMakeFiles/seafl_core.dir/presets.cpp.o.d"
  "CMakeFiles/seafl_core.dir/seafl_strategy.cpp.o"
  "CMakeFiles/seafl_core.dir/seafl_strategy.cpp.o.d"
  "CMakeFiles/seafl_core.dir/weight_bounds.cpp.o"
  "CMakeFiles/seafl_core.dir/weight_bounds.cpp.o.d"
  "libseafl_core.a"
  "libseafl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seafl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
