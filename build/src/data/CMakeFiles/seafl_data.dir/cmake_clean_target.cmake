file(REMOVE_RECURSE
  "libseafl_data.a"
)
