file(REMOVE_RECURSE
  "CMakeFiles/seafl_data.dir/dataset.cpp.o"
  "CMakeFiles/seafl_data.dir/dataset.cpp.o.d"
  "CMakeFiles/seafl_data.dir/loader.cpp.o"
  "CMakeFiles/seafl_data.dir/loader.cpp.o.d"
  "CMakeFiles/seafl_data.dir/partition.cpp.o"
  "CMakeFiles/seafl_data.dir/partition.cpp.o.d"
  "CMakeFiles/seafl_data.dir/registry.cpp.o"
  "CMakeFiles/seafl_data.dir/registry.cpp.o.d"
  "CMakeFiles/seafl_data.dir/synthetic.cpp.o"
  "CMakeFiles/seafl_data.dir/synthetic.cpp.o.d"
  "libseafl_data.a"
  "libseafl_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seafl_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
