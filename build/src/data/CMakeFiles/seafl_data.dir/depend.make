# Empty dependencies file for seafl_data.
# This may be replaced when dependencies are built.
