file(REMOVE_RECURSE
  "libseafl_fl.a"
)
