# Empty dependencies file for seafl_fl.
# This may be replaced when dependencies are built.
