file(REMOVE_RECURSE
  "CMakeFiles/seafl_fl.dir/client.cpp.o"
  "CMakeFiles/seafl_fl.dir/client.cpp.o.d"
  "CMakeFiles/seafl_fl.dir/compression.cpp.o"
  "CMakeFiles/seafl_fl.dir/compression.cpp.o.d"
  "CMakeFiles/seafl_fl.dir/evaluator.cpp.o"
  "CMakeFiles/seafl_fl.dir/evaluator.cpp.o.d"
  "CMakeFiles/seafl_fl.dir/metrics.cpp.o"
  "CMakeFiles/seafl_fl.dir/metrics.cpp.o.d"
  "CMakeFiles/seafl_fl.dir/server_opt.cpp.o"
  "CMakeFiles/seafl_fl.dir/server_opt.cpp.o.d"
  "CMakeFiles/seafl_fl.dir/simulation.cpp.o"
  "CMakeFiles/seafl_fl.dir/simulation.cpp.o.d"
  "CMakeFiles/seafl_fl.dir/strategies.cpp.o"
  "CMakeFiles/seafl_fl.dir/strategies.cpp.o.d"
  "libseafl_fl.a"
  "libseafl_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seafl_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
