
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fl/client.cpp" "src/fl/CMakeFiles/seafl_fl.dir/client.cpp.o" "gcc" "src/fl/CMakeFiles/seafl_fl.dir/client.cpp.o.d"
  "/root/repo/src/fl/compression.cpp" "src/fl/CMakeFiles/seafl_fl.dir/compression.cpp.o" "gcc" "src/fl/CMakeFiles/seafl_fl.dir/compression.cpp.o.d"
  "/root/repo/src/fl/evaluator.cpp" "src/fl/CMakeFiles/seafl_fl.dir/evaluator.cpp.o" "gcc" "src/fl/CMakeFiles/seafl_fl.dir/evaluator.cpp.o.d"
  "/root/repo/src/fl/metrics.cpp" "src/fl/CMakeFiles/seafl_fl.dir/metrics.cpp.o" "gcc" "src/fl/CMakeFiles/seafl_fl.dir/metrics.cpp.o.d"
  "/root/repo/src/fl/server_opt.cpp" "src/fl/CMakeFiles/seafl_fl.dir/server_opt.cpp.o" "gcc" "src/fl/CMakeFiles/seafl_fl.dir/server_opt.cpp.o.d"
  "/root/repo/src/fl/simulation.cpp" "src/fl/CMakeFiles/seafl_fl.dir/simulation.cpp.o" "gcc" "src/fl/CMakeFiles/seafl_fl.dir/simulation.cpp.o.d"
  "/root/repo/src/fl/strategies.cpp" "src/fl/CMakeFiles/seafl_fl.dir/strategies.cpp.o" "gcc" "src/fl/CMakeFiles/seafl_fl.dir/strategies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/seafl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/seafl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/seafl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/seafl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/seafl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
