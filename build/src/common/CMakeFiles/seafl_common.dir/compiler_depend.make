# Empty compiler generated dependencies file for seafl_common.
# This may be replaced when dependencies are built.
