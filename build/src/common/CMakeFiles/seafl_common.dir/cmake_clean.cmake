file(REMOVE_RECURSE
  "CMakeFiles/seafl_common.dir/cli.cpp.o"
  "CMakeFiles/seafl_common.dir/cli.cpp.o.d"
  "CMakeFiles/seafl_common.dir/distributions.cpp.o"
  "CMakeFiles/seafl_common.dir/distributions.cpp.o.d"
  "CMakeFiles/seafl_common.dir/log.cpp.o"
  "CMakeFiles/seafl_common.dir/log.cpp.o.d"
  "CMakeFiles/seafl_common.dir/stats.cpp.o"
  "CMakeFiles/seafl_common.dir/stats.cpp.o.d"
  "CMakeFiles/seafl_common.dir/table.cpp.o"
  "CMakeFiles/seafl_common.dir/table.cpp.o.d"
  "CMakeFiles/seafl_common.dir/thread_pool.cpp.o"
  "CMakeFiles/seafl_common.dir/thread_pool.cpp.o.d"
  "libseafl_common.a"
  "libseafl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seafl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
