file(REMOVE_RECURSE
  "libseafl_common.a"
)
