file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_adaptive_weights.cpp.o"
  "CMakeFiles/test_core.dir/core/test_adaptive_weights.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_importance.cpp.o"
  "CMakeFiles/test_core.dir/core/test_importance.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_presets.cpp.o"
  "CMakeFiles/test_core.dir/core/test_presets.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_seafl_strategy.cpp.o"
  "CMakeFiles/test_core.dir/core/test_seafl_strategy.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_staleness.cpp.o"
  "CMakeFiles/test_core.dir/core/test_staleness.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_weight_bounds.cpp.o"
  "CMakeFiles/test_core.dir/core/test_weight_bounds.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
