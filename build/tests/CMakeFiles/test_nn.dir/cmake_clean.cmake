file(REMOVE_RECURSE
  "CMakeFiles/test_nn.dir/nn/test_layers.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_layers.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_loss.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_loss.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_model_gradients.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_model_gradients.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_model_zoo.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_model_zoo.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_sequential.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_sequential.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_serialize.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_serialize.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_sgd.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_sgd.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_training_convergence.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_training_convergence.cpp.o.d"
  "test_nn"
  "test_nn.pdb"
  "test_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
