file(REMOVE_RECURSE
  "CMakeFiles/test_data.dir/data/test_dataset.cpp.o"
  "CMakeFiles/test_data.dir/data/test_dataset.cpp.o.d"
  "CMakeFiles/test_data.dir/data/test_loader.cpp.o"
  "CMakeFiles/test_data.dir/data/test_loader.cpp.o.d"
  "CMakeFiles/test_data.dir/data/test_partition.cpp.o"
  "CMakeFiles/test_data.dir/data/test_partition.cpp.o.d"
  "CMakeFiles/test_data.dir/data/test_partition_fuzz.cpp.o"
  "CMakeFiles/test_data.dir/data/test_partition_fuzz.cpp.o.d"
  "CMakeFiles/test_data.dir/data/test_registry.cpp.o"
  "CMakeFiles/test_data.dir/data/test_registry.cpp.o.d"
  "CMakeFiles/test_data.dir/data/test_synthetic.cpp.o"
  "CMakeFiles/test_data.dir/data/test_synthetic.cpp.o.d"
  "test_data"
  "test_data.pdb"
  "test_data[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
