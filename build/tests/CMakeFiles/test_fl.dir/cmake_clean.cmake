file(REMOVE_RECURSE
  "CMakeFiles/test_fl.dir/fl/test_client.cpp.o"
  "CMakeFiles/test_fl.dir/fl/test_client.cpp.o.d"
  "CMakeFiles/test_fl.dir/fl/test_compression.cpp.o"
  "CMakeFiles/test_fl.dir/fl/test_compression.cpp.o.d"
  "CMakeFiles/test_fl.dir/fl/test_evaluator.cpp.o"
  "CMakeFiles/test_fl.dir/fl/test_evaluator.cpp.o.d"
  "CMakeFiles/test_fl.dir/fl/test_metrics.cpp.o"
  "CMakeFiles/test_fl.dir/fl/test_metrics.cpp.o.d"
  "CMakeFiles/test_fl.dir/fl/test_server_opt.cpp.o"
  "CMakeFiles/test_fl.dir/fl/test_server_opt.cpp.o.d"
  "CMakeFiles/test_fl.dir/fl/test_simulation.cpp.o"
  "CMakeFiles/test_fl.dir/fl/test_simulation.cpp.o.d"
  "CMakeFiles/test_fl.dir/fl/test_simulation_fuzz.cpp.o"
  "CMakeFiles/test_fl.dir/fl/test_simulation_fuzz.cpp.o.d"
  "CMakeFiles/test_fl.dir/fl/test_strategies.cpp.o"
  "CMakeFiles/test_fl.dir/fl/test_strategies.cpp.o.d"
  "test_fl"
  "test_fl.pdb"
  "test_fl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
