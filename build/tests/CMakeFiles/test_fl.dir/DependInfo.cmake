
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fl/test_client.cpp" "tests/CMakeFiles/test_fl.dir/fl/test_client.cpp.o" "gcc" "tests/CMakeFiles/test_fl.dir/fl/test_client.cpp.o.d"
  "/root/repo/tests/fl/test_compression.cpp" "tests/CMakeFiles/test_fl.dir/fl/test_compression.cpp.o" "gcc" "tests/CMakeFiles/test_fl.dir/fl/test_compression.cpp.o.d"
  "/root/repo/tests/fl/test_evaluator.cpp" "tests/CMakeFiles/test_fl.dir/fl/test_evaluator.cpp.o" "gcc" "tests/CMakeFiles/test_fl.dir/fl/test_evaluator.cpp.o.d"
  "/root/repo/tests/fl/test_metrics.cpp" "tests/CMakeFiles/test_fl.dir/fl/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/test_fl.dir/fl/test_metrics.cpp.o.d"
  "/root/repo/tests/fl/test_server_opt.cpp" "tests/CMakeFiles/test_fl.dir/fl/test_server_opt.cpp.o" "gcc" "tests/CMakeFiles/test_fl.dir/fl/test_server_opt.cpp.o.d"
  "/root/repo/tests/fl/test_simulation.cpp" "tests/CMakeFiles/test_fl.dir/fl/test_simulation.cpp.o" "gcc" "tests/CMakeFiles/test_fl.dir/fl/test_simulation.cpp.o.d"
  "/root/repo/tests/fl/test_simulation_fuzz.cpp" "tests/CMakeFiles/test_fl.dir/fl/test_simulation_fuzz.cpp.o" "gcc" "tests/CMakeFiles/test_fl.dir/fl/test_simulation_fuzz.cpp.o.d"
  "/root/repo/tests/fl/test_strategies.cpp" "tests/CMakeFiles/test_fl.dir/fl/test_strategies.cpp.o" "gcc" "tests/CMakeFiles/test_fl.dir/fl/test_strategies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/seafl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/seafl_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/seafl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/seafl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/seafl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/seafl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/seafl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
