// Fig. 2c — impact of weighting updates by their importance to the current
// global model (§III). The paper compares staleness-only weighting
// (gamma_t only) against staleness + importance (gamma_t + s_t); adding the
// importance term cut time-to-target from 278 s to 210 s. This harness runs
// SEAFL with mu = 0 (staleness only) vs mu > 0 (both terms), plus a
// uniform-weight FedBuff reference, averaged over --seeds runs.
//
// Default world: 20% of clients carry uniformly-noisy labels (override with
// --corrupt). When every client is clean and mildly stale, all updates look
// alike and Eq. 5 cannot discriminate (see EXPERIMENTS.md); harmful updates
// are where similarity weighting earns its reported gains.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace seafl;
  using namespace seafl::bench;
  CliArgs args(argc, argv);

  WorldDefaults defaults;
  defaults.pareto_shape = 1.1;
  defaults.corrupt_fraction = 0.2;
  const std::size_t seeds =
      static_cast<std::size_t>(args.get_int("seeds", 3));
  const auto base_seed =
      static_cast<std::uint64_t>(args.get_int("seed", 42));

  Table table(
      "Fig. 2c — wall-clock time to target accuracy with and without the "
      "importance factor s_t (" +
      std::to_string(seeds) + " seeds, 20% label-corrupted clients)");
  table.set_header(seed_header());

  auto run_case = [&](const std::string& algo, double mu) {
    return run_seeds(seeds, base_seed, [&](std::uint64_t seed) {
      WorldDefaults d = defaults;
      d.seed = seed;
      const World world = make_world(args, d, /*use_flag_seed=*/false);
      ExperimentParams params = make_params(args, world);
      params.seed = seed;
      params.mu = mu;
      return run_arm(algo, params, world.task, world.fleet);
    });
  };

  table.add_row(seed_row("gamma_t only (mu=0)", run_case("seafl", 0.0)));
  table.add_row(seed_row("gamma_t + s_t (mu=1)", run_case("seafl", 1.0)));
  table.add_row(seed_row("gamma_t + s_t (mu=3)", run_case("seafl", 3.0)));
  table.add_row(
      seed_row("uniform weights (FedBuff)", run_case("fedbuff", 1.0)));
  emit(table, args, "fig2c_importance.csv");
  return 0;
}
