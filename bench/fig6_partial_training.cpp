// Fig. 6 — SEAFL^2 (partial training) vs baselines (§VI.B).
//
//  (a) CIFAR-10, staleness limit 3: the tight limit makes the server notify
//      stragglers often; SEAFL^2 reached 50%/70% accuracy ~22% faster than
//      FedBuff (745 s vs 905 s, 1105 s vs 1341 s in the paper).
//  (b) CINIC-10, staleness limit 12 with a ~3x smaller per-device share:
//      fast turnover keeps staleness low, so SEAFL^2's advantage shrinks
//      to a slight edge near convergence.
//
// The harness reports time to two accuracy milestones per arm plus the
// SEAFL^2-vs-FedBuff speedup (the paper's headline ~22% claim).
#include "bench_common.h"

namespace {

/// First curve time at which `accuracy` is reached; -1 if never.
double time_to(const seafl::RunResult& r, double accuracy) {
  for (const auto& p : r.curve)
    if (p.accuracy >= accuracy) return p.time;
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace seafl;
  using namespace seafl::bench;
  CliArgs args(argc, argv);

  struct Scenario {
    std::string name;
    std::string task;
    std::size_t samples_per_client;
    std::uint64_t beta;
    double dirichlet;      // heavier skew makes stale updates more damaging
    double pareto_shape;   // heavier tail makes stragglers more extreme
    double milestone_lo, milestone_hi;  // the paper's 50% / 70% analogs
  };
  const std::vector<Scenario> scenarios{
      // 6a: tight limit + harsh heterogeneity — the regime where partial
      // training pays off most (the paper's ~22% headline).
      {"Fig. 6a — synth-cifar10, beta=3", "synth-cifar10", 40, 3, 0.1, 1.05,
       0.50, 0.70},
      // 6b: generous limit + fast turnover (small per-device share) — the
      // advantage shrinks to a slight edge, as the paper observes.
      {"Fig. 6b — synth-cinic10, beta=12 (3x smaller per-device share)",
       "synth-cinic10", 16, 12, 0.3, 1.1, 0.45, 0.60},
  };

  for (const auto& s : scenarios) {
    WorldDefaults defaults;
    defaults.task = s.task;
    defaults.samples_per_client = s.samples_per_client;
    defaults.dirichlet_alpha = s.dirichlet;
    defaults.pareto_shape = s.pareto_shape;
    const World world = make_world(args, defaults);
    ExperimentParams params = make_params(args, world, /*rounds=*/60);
    params.staleness_limit = s.beta;
    params.target_accuracy = args.get_double("target", s.milestone_hi);

    Table table(s.name);
    table.set_header({"arm", "time-to-" + fmt(s.milestone_lo * 100, 0) + "%",
                      "time-to-" + fmt(s.milestone_hi * 100, 0) + "%",
                      "rounds", "final-acc", "partial-updates"});

    double seafl2_hi = -1.0, fedbuff_hi = -1.0;
    for (const std::string arm :
         {"seafl2", "seafl", "fedbuff", "fedasync", "fedavg"}) {
      const RunResult r = run_arm(arm, params, world.task, world.fleet);
      const double lo = time_to(r, s.milestone_lo);
      const double hi = time_to(r, s.milestone_hi);
      if (arm == "seafl2") seafl2_hi = hi;
      if (arm == "fedbuff") fedbuff_hi = hi;
      table.add_row({make_arm(arm, params).label, fmt_time_or_na(lo),
                     fmt_time_or_na(hi), std::to_string(r.rounds),
                     fmt(r.final_accuracy, 4),
                     std::to_string(r.partial_updates)});
    }
    emit(table, args,
         std::string("fig6_") + (s.beta == 3 ? "a" : "b") + "_" + s.task +
             ".csv");
    if (seafl2_hi >= 0.0 && fedbuff_hi > 0.0) {
      std::printf(
          "SEAFL^2 vs FedBuff speedup to %.0f%%: %.1f%% (paper: up to "
          "~22%% on CIFAR-10)\n",
          s.milestone_hi * 100.0, (1.0 - seafl2_hi / fedbuff_hi) * 100.0);
    }
  }
  return 0;
}
