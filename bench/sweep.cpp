// Generic declarative sweep runner on seafl::exp — the CLI face of the
// experiment-orchestration subsystem. Each positional argument is one axis
// of the cartesian grid, "field=v1,v2,v3"; flags set the base world/params
// exactly like the figure harnesses.
//
//   sweep algorithm=seafl,fedbuff buffer=5,10 --seeds 4 --jobs 4
//
// runs 2 x 2 x 4 = 16 simulations (4 at a time), serves repeats from
// results/cache/, and reports per-arm statistics over the seed replicates
// (mean / 95% CI of time-to-target and tail accuracy). Artifacts: a CSV of
// the summary table (--csv) and a full JSON dump of every arm's config,
// hash, curve and provenance (--json).
//
// Extra flags: --seeds N (default 1), --json PATH, --list-fields.
#include "bench_common.h"

namespace {

/// "buffer=5,10,20" -> axis over field "buffer".
seafl::exp::Axis parse_axis(const std::string& arg) {
  const std::size_t eq = arg.find('=');
  SEAFL_CHECK(eq != std::string::npos && eq > 0,
              "axis '" << arg << "' is not of the form field=v1,v2,...");
  const std::string field = arg.substr(0, eq);
  std::vector<std::string> values;
  std::size_t pos = eq + 1;
  while (pos <= arg.size()) {
    std::size_t comma = arg.find(',', pos);
    if (comma == std::string::npos) comma = arg.size();
    SEAFL_CHECK(comma > pos, "axis '" << arg << "' has an empty value");
    values.push_back(arg.substr(pos, comma - pos));
    pos = comma + 1;
  }
  SEAFL_CHECK(!values.empty(), "axis '" << arg << "' has no values");
  return seafl::exp::make_axis(field, values);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace seafl;
  using namespace seafl::bench;
  CliArgs args(argc, argv);

  if (args.positional().empty()) {
    std::printf(
        "usage: sweep field=v1,v2 [field=v1,v2 ...] [--seeds N] [--jobs N]\n"
        "             [--clients N --samples N --task NAME ...]\n"
        "             [--csv PATH --json PATH --no-cache --refresh]\n"
        "example: sweep algorithm=seafl,fedbuff buffer=5,10 --seeds 4 "
        "--jobs 4\n");
    return 2;
  }

  exp::SweepSpec sweep;
  sweep.base.world = make_world_spec(args, WorldDefaults{});
  sweep.base.params = make_params_spec(args);
  for (const std::string& arg : args.positional()) {
    sweep.axes.push_back(parse_axis(arg));
  }
  const std::size_t seeds =
      static_cast<std::size_t>(args.get_int("seeds", 1));
  exp::add_seed_axis(sweep, seeds, sweep.base.params.seed);

  exp::Runner runner(make_runner_options(args));
  const std::vector<exp::ArmResult> results = runner.run(sweep);
  const std::vector<exp::ArmSummary> summaries = summarize_by_arm(results);

  Table table("Sweep — " + std::to_string(summaries.size()) + " arm(s) x " +
              std::to_string(seeds) + " seed(s)");
  table.set_header(exp::summary_header());
  for (const exp::ArmSummary& s : summaries) {
    table.add_row(exp::summary_row(s));
  }
  emit(table, args, "sweep.csv");

  const std::string json_path = args.get_string("json", "sweep.json");
  const exp::Json doc = exp::sweep_to_json(results, summaries);
  {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    SEAFL_CHECK(f != nullptr, "cannot write " << json_path);
    const std::string payload = doc.dump();
    std::fwrite(payload.data(), 1, payload.size(), f);
    std::fclose(f);
  }
  std::printf("wrote %s\n", json_path.c_str());
  report_cache_use(runner, results);
  return 0;
}
