// Ablation bench (ours) — isolates the design choices §IV.B discusses:
//   * similarity measure: cosine (the paper's choice) vs dot product
//   * similarity input: client weights (text reading) vs delta (Eq. 5's
//     literal Delta term)
//   * weight normalization on/off
//   * server mixing rate vartheta sweep (paper fixes 0.8)
//   * partial-update weight scaling on/off (SEAFL^2 refinement)
#include "bench_common.h"

#include "core/seafl_strategy.h"

namespace {

using namespace seafl;
using namespace seafl::bench;

RunResult run_custom(const World& world, const ExperimentParams& params,
                     const SeaflConfig& sc, bool partial_training) {
  Arm arm = make_arm(partial_training ? "seafl2" : "seafl", params);
  arm.strategy = std::make_unique<SeaflStrategy>(sc);
  const ModelFactory factory = make_model(world.task.default_model,
                                          world.task.input,
                                          world.task.num_classes);
  const double mlp_work = estimate_flops_per_sample(
      ModelKind::kMlp, InputSpec{1, 1, 32}, world.task.num_classes);
  const double work =
      estimate_flops_per_sample(world.task.default_model, world.task.input,
                                world.task.num_classes) /
      mlp_work;
  Simulation sim(world.task, factory, world.fleet, std::move(arm.strategy),
                 arm.config, work);
  return sim.run();
}

SeaflConfig base_seafl(const ExperimentParams& p) {
  SeaflConfig sc;
  sc.weights.alpha = p.alpha;
  sc.weights.mu = p.mu;
  sc.weights.staleness_limit = p.staleness_limit;
  sc.vartheta = p.vartheta;
  sc.full_epochs = p.local_epochs;
  return sc;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  WorldDefaults defaults;
  defaults.pareto_shape = 1.1;
  const World world = make_world(args, defaults);
  ExperimentParams params = make_params(args, world);

  Table table("Ablation — SEAFL design choices (synth-mnist)");
  table.set_header(result_header());

  {  // Reference configuration (cosine on Eq. 5's Delta, normalized).
    const RunResult r =
        run_custom(world, params, base_seafl(params), false);
    table.add_row(result_row("cosine / delta / normalized (default)", r));
  }
  {  // Dot-product similarity.
    SeaflConfig sc = base_seafl(params);
    sc.weights.similarity = SimilarityKind::kDotProduct;
    table.add_row(result_row("dot-product similarity",
                             run_custom(world, params, sc, false)));
  }
  {  // Raw-weights similarity input ("similarity to the current global
     // model" read literally): Theta ~ 1 for every client, a near no-op.
    SeaflConfig sc = base_seafl(params);
    sc.weights.importance_input = ImportanceInput::kWeights;
    table.add_row(result_row("weights-vs-global similarity",
                             run_custom(world, params, sc, false)));
  }
  {  // Without weight normalization. The raw weights sum to < 1, shrinking
     // every aggregate toward zero; Eq. 6's normalization matters.
    SeaflConfig sc = base_seafl(params);
    sc.weights.normalize = false;
    table.add_row(result_row("no weight normalization",
                             run_custom(world, params, sc, false)));
  }
  for (const double vartheta : {0.4, 0.6, 0.8, 1.0}) {  // mixing sweep
    SeaflConfig sc = base_seafl(params);
    sc.vartheta = vartheta;
    table.add_row(result_row("vartheta=" + fmt(vartheta, 1),
                             run_custom(world, params, sc, false)));
  }
  {  // SEAFL^2 with and without partial-weight scaling.
    ExperimentParams tight = params;
    tight.staleness_limit = 2;
    SeaflConfig sc = base_seafl(tight);
    table.add_row(result_row("SEAFL^2 beta=2, scaled partial updates",
                             run_custom(world, tight, sc, true)));
    sc.scale_partial_updates = false;
    table.add_row(result_row("SEAFL^2 beta=2, unscaled partial updates",
                             run_custom(world, tight, sc, true)));
  }

  emit(table, args, "ablation_design.csv");
  return 0;
}
