// Fig. 4 — elapsed wall-clock time to target accuracy for combinations of
// the staleness weight alpha and similarity weight mu (§VI.B). The paper
// explored 0..10 for both and found alpha = 3, mu = 1 modestly best. This
// harness sweeps a representative grid of (alpha, mu) pairs, averaging over
// several seeds (--seeds N) because single-run differences between nearby
// weightings are below trajectory noise.
//
// World: the §III preliminary probe with 20% label-corrupted clients, so
// the similarity term has harmful updates to discount and mu genuinely
// matters (see fig2c_importance.cpp).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace seafl;
  using namespace seafl::bench;
  CliArgs args(argc, argv);

  WorldDefaults defaults;
  defaults.pareto_shape = 1.1;
  defaults.corrupt_fraction = 0.2;
  const std::size_t seeds =
      static_cast<std::size_t>(args.get_int("seeds", 3));
  const auto base_seed =
      static_cast<std::uint64_t>(args.get_int("seed", 42));

  Table table("Fig. 4 — mean wall-clock time to target accuracy per "
              "(alpha, mu), " +
              std::to_string(seeds) + " seeds");
  table.set_header(seed_header());

  struct Pair {
    double alpha, mu;
  };
  const std::vector<Pair> grid{{1, 0}, {1, 1}, {1, 3},  {3, 0},  {3, 1},
                               {3, 3}, {5, 1}, {5, 5},  {10, 1}, {10, 10}};
  for (const auto& [alpha, mu] : grid) {
    const SeedAggregate agg =
        run_seeds(seeds, base_seed, [&](std::uint64_t seed) {
          WorldDefaults d = defaults;
          d.seed = seed;
          const World world = make_world(args, d, /*use_flag_seed=*/false);
          ExperimentParams params = make_params(args, world);
          params.seed = seed;
          params.alpha = alpha;
          params.mu = mu;
          return run_arm("seafl", params, world.task, world.fleet);
        });
    table.add_row(
        seed_row("alpha=" + fmt(alpha, 0) + ", mu=" + fmt(mu, 0), agg));
  }
  emit(table, args, "fig4_alpha_mu.csv");
  return 0;
}
