// Extension bench (ours) — algorithms beyond the paper's evaluation that the
// related-work section discusses, run on the same heterogeneous world:
//   fedprox      — synchronous with a proximal local objective (Li et al.)
//   fedsa-epochs — FedSA-inspired: slow devices run fewer local epochs
//   safa-drop    — SAFA's lag tolerance: drop updates older than beta
// against SEAFL / SEAFL^2 / FedBuff. Useful for positioning: shows which
// staleness remedies (discount, bound, drop, shorten) pay off where.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace seafl;
  using namespace seafl::bench;
  CliArgs args(argc, argv);

  WorldDefaults defaults;
  defaults.pareto_shape = 1.05;  // heavy-tailed: every remedy has work to do
  const std::size_t seeds =
      static_cast<std::size_t>(args.get_int("seeds", 3));
  const auto base_seed =
      static_cast<std::uint64_t>(args.get_int("seed", 42));

  Table table("Extensions — staleness remedies on a heavy-tailed fleet (" +
              std::to_string(seeds) + " seeds)");
  table.set_header(seed_header());

  for (const std::string algo :
       {"seafl", "seafl2", "seafl2-sub", "seafl-avgm", "fedbuff",
        "fedbuff-adam", "fedsa-epochs", "safa-drop", "fedprox", "fedavg"}) {
    const SeedAggregate agg =
        run_seeds(seeds, base_seed, [&](std::uint64_t seed) {
          WorldDefaults d = defaults;
          d.seed = seed;
          const World world = make_world(args, d, /*use_flag_seed=*/false);
          ExperimentParams params = make_params(args, world);
          params.seed = seed;
          return run_arm(algo, params, world.task, world.fleet);
        });
    table.add_row(seed_row(make_arm(algo, ExperimentParams{}).label, agg));
  }
  emit(table, args, "ext_baselines.csv");
  return 0;
}
