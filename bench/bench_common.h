// Shared plumbing for the figure harnesses: world construction from CLI
// flags with per-figure defaults, and result formatting.
//
// Every figure binary accepts:
//   --clients N --samples N   task scale (clients, train samples per client)
//   --dirichlet A             label-skew concentration
//   --seed S                  experiment seed
//   --task NAME               dataset (figure-specific default)
//   --epochs E --batch B --lr F
//   --rounds R                max rounds per arm
//   --target A                target accuracy override
//   --pareto P --idle-scale F heterogeneity knobs of the device fleet
//   --csv PATH                CSV output path override
//   --jobs N                  global thread-pool size; for harnesses on
//                             seafl::exp also the number of concurrent
//                             simulations (default 1)
//   --cache-dir D --no-cache --refresh   result-cache control (exp harnesses)
//   --trace-dir D             write per-arm trace journals (<hash>.trace.json
//                             Chrome/Perfetto format + <hash>.jsonl); forces
//                             execution of every unique arm
//   --metrics                 profile kernels/phases per arm; summary lands
//                             at <cache-dir>/<hash>.metrics.json
//   --eager [--sim-jobs N]    eager session execution inside each simulation
//                             (DESIGN.md §12); results are bitwise identical
//                             to the default lazy path
// Defaults are sized for a single-core CI-class machine; pass --full for a
// paper-scale run (600 samples/client as in §III).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <span>
#include <string>

#include "common/thread_pool.h"
#include "core/seafl.h"
#include "exp/exp.h"

// ---------------------------------------------------------------------------
// Global allocation counter for benchmarks that report *exact* heap
// allocations (allocs per training step, allocs per aggregation round).
// Invoke SEAFL_BENCH_DEFINE_ALLOC_HOOK() once at global scope in the
// binary's main TU: it defines seafl::bench::g_heap_allocs and replaces the
// global operator new/delete so every allocation in the process ticks the
// counter. A macro — not an inline definition — because replacement
// allocation functions must be defined exactly once per program.

namespace seafl::bench {
extern std::atomic<std::uint64_t> g_heap_allocs;
}

// GCC flags free() on pointers it thinks came from the *default* operator
// new; with every replacement operator malloc/free-based the pairing is
// correct, so silence the false positive at the definitions.
#if defined(__GNUC__) && !defined(__clang__)
#define SEAFL_BENCH_ALLOC_PRAGMA_PUSH \
  _Pragma("GCC diagnostic push")      \
  _Pragma("GCC diagnostic ignored \"-Wmismatched-new-delete\"")
#define SEAFL_BENCH_ALLOC_PRAGMA_POP _Pragma("GCC diagnostic pop")
#else
#define SEAFL_BENCH_ALLOC_PRAGMA_PUSH
#define SEAFL_BENCH_ALLOC_PRAGMA_POP
#endif

#define SEAFL_BENCH_DEFINE_ALLOC_HOOK()                                      \
  namespace seafl::bench {                                                   \
  std::atomic<std::uint64_t> g_heap_allocs{0};                               \
  }                                                                          \
  void* operator new(std::size_t n) {                                        \
    ::seafl::bench::g_heap_allocs.fetch_add(1, std::memory_order_relaxed);   \
    if (void* p = std::malloc(n ? n : 1)) return p;                          \
    throw std::bad_alloc();                                                  \
  }                                                                          \
  void* operator new[](std::size_t n) { return ::operator new(n); }          \
  void* operator new(std::size_t n, std::align_val_t al) {                   \
    ::seafl::bench::g_heap_allocs.fetch_add(1, std::memory_order_relaxed);   \
    const std::size_t a = static_cast<std::size_t>(al);                      \
    const std::size_t rounded = (n + a - 1) / a * a;                         \
    if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;    \
    throw std::bad_alloc();                                                  \
  }                                                                          \
  void* operator new[](std::size_t n, std::align_val_t al) {                 \
    return ::operator new(n, al);                                            \
  }                                                                          \
  SEAFL_BENCH_ALLOC_PRAGMA_PUSH                                              \
  void operator delete(void* p) noexcept { std::free(p); }                   \
  void operator delete[](void* p) noexcept { std::free(p); }                 \
  void operator delete(void* p, std::size_t) noexcept { std::free(p); }      \
  void operator delete[](void* p, std::size_t) noexcept { std::free(p); }    \
  void operator delete(void* p, std::align_val_t) noexcept { std::free(p); } \
  void operator delete[](void* p, std::align_val_t) noexcept {               \
    std::free(p);                                                            \
  }                                                                          \
  void operator delete(void* p, std::size_t, std::align_val_t) noexcept {    \
    std::free(p);                                                            \
  }                                                                          \
  void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {  \
    std::free(p);                                                            \
  }                                                                          \
  SEAFL_BENCH_ALLOC_PRAGMA_POP                                               \
  static_assert(true, "require a trailing semicolon")

namespace seafl::bench {

/// A constructed experiment world: data + device fleet.
struct World {
  FlTask task;
  Fleet fleet;
};

/// Figure-specific defaults the CLI can override.
struct WorldDefaults {
  std::string task = "synth-mnist";
  std::size_t clients = 100;
  std::size_t samples_per_client = 60;
  std::size_t test_samples = 600;
  double dirichlet_alpha = 0.3;  ///< §III preliminary setting
  double corrupt_fraction = 0.0;
  double pareto_shape = 1.3;
  double speed_cap = 20.0;
  double idle_scale = 1.0;
  std::uint64_t seed = 42;
  std::size_t concurrency = 20;  ///< M: clients training at once
};

/// Applies a --jobs flag (if present) to the global thread pool. Must run
/// before any parallel work; every harness entry point below calls it.
inline void configure_jobs(const CliArgs& args) {
  if (args.has("jobs")) {
    set_global_pool_threads(
        static_cast<std::size_t>(args.get_int("jobs", 0)));
  }
}

/// @param use_flag_seed when false, ignore a --seed flag and use d.seed
///        verbatim (multi-seed sweeps derive per-run seeds themselves).
inline World make_world(const CliArgs& args, const WorldDefaults& d,
                        bool use_flag_seed = true) {
  configure_jobs(args);
  TaskSpec spec;
  spec.name = args.get_string("task", d.task);
  spec.num_clients =
      static_cast<std::size_t>(args.get_int("clients", d.clients));
  spec.samples_per_client = static_cast<std::size_t>(args.get_int(
      "samples", args.get_bool("full", false) ? 600 : d.samples_per_client));
  spec.test_samples =
      static_cast<std::size_t>(args.get_int("test-samples", d.test_samples));
  spec.dirichlet_alpha = args.get_double("dirichlet", d.dirichlet_alpha);
  spec.corrupt_client_fraction =
      args.get_double("corrupt", d.corrupt_fraction);
  // --pool N: population-scale mode — a fixed N-sample train pool behind a
  // lazy partition instead of clients × samples materialized samples.
  spec.pool_samples = static_cast<std::size_t>(args.get_int("pool", 0));
  spec.seed = use_flag_seed
                  ? static_cast<std::uint64_t>(args.get_int("seed", d.seed))
                  : d.seed;

  FleetConfig fc;
  fc.num_devices = spec.num_clients;
  fc.pareto_shape = args.get_double("pareto", d.pareto_shape);
  fc.speed_cap = args.get_double("cap", d.speed_cap);
  fc.idle_scale = args.get_double("idle-scale", d.idle_scale);
  fc.seed = spec.seed;

  std::printf("world: task=%s clients=%zu samples/client=%zu dirichlet=%.2f "
              "pareto=%.2f seed=%llu\n",
              spec.name.c_str(), spec.num_clients, spec.samples_per_client,
              spec.dirichlet_alpha, fc.pareto_shape,
              static_cast<unsigned long long>(spec.seed));
  return World{make_task(spec), Fleet(fc)};
}

/// Experiment parameters with figure-level CLI overrides applied.
inline ExperimentParams make_params(const CliArgs& args, const World& world,
                                    std::uint64_t default_rounds = 120,
                                    std::size_t default_concurrency = 20) {
  ExperimentParams p;
  p.concurrency = static_cast<std::size_t>(
      args.get_int("concurrency", default_concurrency));
  p.buffer_size =
      static_cast<std::size_t>(args.get_int("buffer", p.buffer_size));
  p.local_epochs =
      static_cast<std::size_t>(args.get_int("epochs", p.local_epochs));
  p.batch_size =
      static_cast<std::size_t>(args.get_int("batch", p.batch_size));
  p.learning_rate =
      static_cast<float>(args.get_double("lr", p.learning_rate));
  p.max_rounds =
      static_cast<std::uint64_t>(args.get_int("rounds", default_rounds));
  p.target_accuracy =
      args.get_double("target", world.task.target_accuracy);
  p.seed = static_cast<std::uint64_t>(
      args.get_int("seed", WorldDefaults{}.seed));
  p.eval_subset =
      static_cast<std::size_t>(args.get_int("eval-subset", 300));
  return p;
}

/// One row of "time to target": formats the run outcome.
inline std::vector<std::string> result_row(const std::string& label,
                                           const RunResult& r) {
  return {label,
          fmt_time_or_na(r.time_to_target),
          std::to_string(r.rounds),
          fmt(r.final_accuracy, 4),
          std::to_string(r.total_updates),
          fmt(r.mean_staleness, 2)};
}

inline std::vector<std::string> result_header() {
  return {"arm", "time-to-target", "rounds", "final-acc", "updates",
          "mean-staleness"};
}

/// Multi-seed aggregate of one arm: mean time-to-target over the seeds that
/// reached it, plus how many did.
struct SeedAggregate {
  double mean_time = -1.0;      ///< mean over reached seeds; -1 if none
  std::size_t reached = 0;
  std::size_t seeds = 0;
  double mean_final_accuracy = 0.0;
  double mean_rounds = 0.0;
  double mean_staleness = 0.0;
  double mean_fairness = 0.0;   ///< Jain's index over participation
};

/// Runs `run` (seed -> RunResult) across `num_seeds` derived seeds.
template <typename RunFn>
SeedAggregate run_seeds(std::size_t num_seeds, std::uint64_t base_seed,
                        RunFn&& run) {
  SeedAggregate agg;
  agg.seeds = num_seeds;
  double time_sum = 0.0;
  for (std::size_t i = 0; i < num_seeds; ++i) {
    const RunResult r = run(base_seed + 1000 * i);
    if (r.time_to_target >= 0.0) {
      time_sum += r.time_to_target;
      ++agg.reached;
    }
    agg.mean_final_accuracy += r.final_accuracy;
    agg.mean_rounds += static_cast<double>(r.rounds);
    agg.mean_staleness += r.mean_staleness;
    agg.mean_fairness += participation_fairness(r, /*active_only=*/false);
  }
  if (agg.reached > 0) agg.mean_time = time_sum / agg.reached;
  agg.mean_final_accuracy /= num_seeds;
  agg.mean_rounds /= num_seeds;
  agg.mean_staleness /= num_seeds;
  agg.mean_fairness /= num_seeds;
  return agg;
}

inline std::vector<std::string> seed_header() {
  return {"arm",         "mean-time-to-target", "reached",
          "mean-final-acc", "mean-rounds",       "mean-staleness",
          "fairness"};
}

inline std::vector<std::string> seed_row(const std::string& label,
                                         const SeedAggregate& a) {
  return {label,
          fmt_time_or_na(a.mean_time),
          std::to_string(a.reached) + "/" + std::to_string(a.seeds),
          fmt(a.mean_final_accuracy, 4),
          fmt(a.mean_rounds, 1),
          fmt(a.mean_staleness, 2),
          fmt(a.mean_fairness, 3)};
}

/// Prints the table and writes it as CSV.
inline void emit(Table& table, const CliArgs& args,
                 const std::string& default_csv) {
  table.print();
  const std::string path = args.get_string("csv", default_csv);
  table.write_csv(path);
  std::printf("wrote %s\n", path.c_str());
}

// --- seafl::exp harness plumbing -------------------------------------------
// Ported figure binaries build an exp::SweepSpec instead of hand-rolling a
// loop: the same CLI flags land in a WorldSpec/ExperimentParams pair, worlds
// are built lazily by the Runner (and shared across arms), and results come
// back parallel + cached.

/// WorldSpec from CLI flags with per-figure defaults — the declarative twin
/// of make_world (the world itself is built by the exp::Runner).
inline exp::WorldSpec make_world_spec(const CliArgs& args,
                                      const WorldDefaults& d) {
  configure_jobs(args);
  exp::WorldSpec w;
  w.task.name = args.get_string("task", d.task);
  w.task.num_clients =
      static_cast<std::size_t>(args.get_int("clients", d.clients));
  w.task.samples_per_client = static_cast<std::size_t>(args.get_int(
      "samples", args.get_bool("full", false) ? 600 : d.samples_per_client));
  w.task.test_samples =
      static_cast<std::size_t>(args.get_int("test-samples", d.test_samples));
  w.task.dirichlet_alpha = args.get_double("dirichlet", d.dirichlet_alpha);
  w.task.corrupt_client_fraction =
      args.get_double("corrupt", d.corrupt_fraction);
  w.task.seed = static_cast<std::uint64_t>(args.get_int("seed", d.seed));

  w.fleet.num_devices = w.task.num_clients;
  w.fleet.pareto_shape = args.get_double("pareto", d.pareto_shape);
  w.fleet.speed_cap = args.get_double("cap", d.speed_cap);
  w.fleet.idle_scale = args.get_double("idle-scale", d.idle_scale);
  w.fleet.seed = w.task.seed;

  std::printf("world: task=%s clients=%zu samples/client=%zu dirichlet=%.2f "
              "pareto=%.2f seed=%llu\n",
              w.task.name.c_str(), w.task.num_clients,
              w.task.samples_per_client, w.task.dirichlet_alpha,
              w.fleet.pareto_shape,
              static_cast<unsigned long long>(w.task.seed));
  return w;
}

/// ExperimentParams from CLI flags. target_accuracy defaults to the exp
/// sentinel -1 ("use the task's default"), resolved by the Runner once the
/// dataset exists.
inline ExperimentParams make_params_spec(const CliArgs& args,
                                         std::uint64_t default_rounds = 120,
                                         std::size_t default_concurrency = 20) {
  ExperimentParams p;
  p.concurrency = static_cast<std::size_t>(
      args.get_int("concurrency", default_concurrency));
  p.buffer_size =
      static_cast<std::size_t>(args.get_int("buffer", p.buffer_size));
  p.local_epochs =
      static_cast<std::size_t>(args.get_int("epochs", p.local_epochs));
  p.batch_size =
      static_cast<std::size_t>(args.get_int("batch", p.batch_size));
  p.learning_rate =
      static_cast<float>(args.get_double("lr", p.learning_rate));
  p.max_rounds =
      static_cast<std::uint64_t>(args.get_int("rounds", default_rounds));
  p.target_accuracy = args.get_double("target", -1.0);
  p.seed = static_cast<std::uint64_t>(
      args.get_int("seed", WorldDefaults{}.seed));
  p.eval_subset =
      static_cast<std::size_t>(args.get_int("eval-subset", 300));
  return p;
}

/// Runner options from CLI flags (--jobs, --cache-dir, --no-cache,
/// --refresh, --trace-dir, --metrics, --eager, --sim-jobs).
inline exp::RunnerOptions make_runner_options(const CliArgs& args) {
  configure_jobs(args);
  exp::RunnerOptions opts;
  opts.jobs = static_cast<std::size_t>(args.get_int("jobs", 1));
  opts.cache_dir = args.get_string("cache-dir", "results/cache");
  opts.use_cache = !args.get_bool("no-cache", false);
  opts.refresh = args.get_bool("refresh", false);
  opts.trace_dir = args.get_string("trace-dir", "");
  opts.metrics = args.get_bool("metrics", false);
  opts.eager_training = args.get_bool("eager", false);
  opts.sim_jobs = static_cast<std::size_t>(args.get_int("sim-jobs", 0));
  return opts;
}

/// Post-run provenance line: how much the cache saved.
inline void report_cache_use(const exp::Runner& runner,
                             std::span<const exp::ArmResult> results) {
  std::size_t hits = 0;
  for (const auto& r : results) hits += r.from_cache ? 1 : 0;
  std::printf("executed %zu simulation(s), %zu arm(s) served from cache\n",
              runner.simulations_run(), hits);
}

}  // namespace seafl::bench
