// Communication-efficiency bench (ours) — sweeps the upload codecs of
// src/compress against link bandwidth and deployment hazards, measuring the
// SEAFL-relevant interaction: staleness is mostly *upload time*, so shrinking
// bytes-on-wire shrinks staleness, which feeds straight into the adaptive
// aggregation weights. Arms: float32 (no compression), int8 / int4
// stochastic quantization, and top-k sparsification with error feedback.
// Bandwidths: infinite (the latency-only pre-model behaviour) and a tight
// uplink sized from a probe run so a float32 upload costs a sizable fraction
// of one round. Hazards: clean and crash churn.
//
// Writes results/BENCH_comm.json with per-arm aggregates (time-to-target,
// mean staleness, total upload MB, raw/wire compression ratio) plus the
// headline check: under the tight uplink, int8 must show lower mean update
// staleness than float32.
//
// Flags (on top of the bench_common world flags):
//   --seeds N     seed replicates per arm (default 2)
//   --smoke       tiny run (CI): one seed, few rounds, small world
//   --json PATH   output path (default results/BENCH_comm.json)
#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"

namespace {

using namespace seafl;

struct CodecArm {
  std::string label;
  compress::CompressionConfig compression;
};

struct CommAggregate {
  double mean_time = -1.0;  ///< mean time-to-target over reached seeds
  std::size_t reached = 0;
  std::size_t seeds = 0;
  double mean_final_accuracy = 0.0;
  double mean_staleness = 0.0;
  double mean_upload_mb = 0.0;
  double mean_ratio = 1.0;  ///< raw bytes / wire bytes
};

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace seafl::bench;
  CliArgs args(argc, argv);

  const bool smoke = args.get_bool("smoke", false);
  const std::size_t seeds =
      static_cast<std::size_t>(args.get_int("seeds", smoke ? 1 : 2));
  const auto base_seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  WorldDefaults defaults;
  defaults.clients = smoke ? 12 : 40;
  defaults.samples_per_client = smoke ? 10 : 40;
  defaults.test_samples = smoke ? 30 : 120;
  defaults.concurrency = smoke ? 6 : 12;
  defaults.pareto_shape = 1.2;
  defaults.seed = base_seed;
  const std::uint64_t rounds = static_cast<std::uint64_t>(
      args.get_int("rounds", smoke ? 3 : 30));

  // World pieces are rebuilt per (bandwidth, seed): the uplink draw is part
  // of FleetConfig, so each bandwidth preset is its own fleet.
  const auto make_specs = [&](std::uint64_t seed) {
    TaskSpec ts;
    ts.name = args.get_string("task", defaults.task);
    ts.num_clients =
        static_cast<std::size_t>(args.get_int("clients", defaults.clients));
    ts.samples_per_client = static_cast<std::size_t>(
        args.get_int("samples", defaults.samples_per_client));
    ts.test_samples = static_cast<std::size_t>(
        args.get_int("test-samples", defaults.test_samples));
    ts.dirichlet_alpha =
        args.get_double("dirichlet", defaults.dirichlet_alpha);
    ts.seed = seed;
    FleetConfig fc;
    fc.num_devices = ts.num_clients;
    fc.pareto_shape = args.get_double("pareto", defaults.pareto_shape);
    fc.speed_cap = args.get_double("cap", defaults.speed_cap);
    fc.seed = seed;
    return std::make_pair(ts, fc);
  };

  const auto make_base_params = [&](const FlTask& task, std::uint64_t seed) {
    ExperimentParams p;
    p.concurrency = static_cast<std::size_t>(
        args.get_int("concurrency", defaults.concurrency));
    p.buffer_size =
        static_cast<std::size_t>(args.get_int("buffer", smoke ? 2 : 4));
    p.local_epochs =
        static_cast<std::size_t>(args.get_int("epochs", smoke ? 2 : 3));
    p.batch_size = static_cast<std::size_t>(args.get_int("batch", 10));
    p.max_rounds = rounds;
    p.target_accuracy = args.get_double("target", task.target_accuracy);
    p.stop_at_target = false;  // equal round budgets across codecs
    p.eval_subset = static_cast<std::size_t>(args.get_int("eval-subset", 60));
    p.eval_every = 2;
    p.seed = seed;
    return p;
  };

  configure_jobs(args);

  // --- probe: learn the clean world's time scale and the model size --------
  double round_interval = 0.0;
  std::size_t model_dim = 0;
  {
    auto [ts, fc] = make_specs(base_seed);
    const FlTask task = make_task(ts);
    const Fleet fleet(fc);
    const ModelFactory factory =
        make_model(task.default_model, task.input, task.num_classes);
    model_dim = factory()->num_parameters();
    ExperimentParams probe = make_base_params(task, base_seed);
    probe.max_rounds = std::min<std::uint64_t>(probe.max_rounds, 8);
    const RunResult r = run_arm("seafl", probe, task, fleet);
    round_interval = r.final_time / static_cast<double>(std::max<std::uint64_t>(
                                        r.rounds, 1));
  }
  const std::size_t float_bytes = compress::transfer_bytes(model_dim, 0);
  // Tight uplink: a mean-speed device spends ~3/4 of a round interval
  // shipping one float32 upload (tail devices far more), so compression has
  // real time to win back. "inf" (0) is the exact latency-only behaviour.
  const double tight_uplink =
      static_cast<double>(float_bytes) / (0.75 * round_interval);
  std::printf("probe: round interval %.2fs, model %zu params, float32 upload "
              "%zu B, tight uplink %.0f B/s\n",
              round_interval, model_dim, float_bytes, tight_uplink);

  const std::vector<CodecArm> codecs = [] {
    std::vector<CodecArm> arms;
    arms.push_back({"float32", {}});
    CodecArm int8{"int8", {}};
    compress::apply_codec_name(int8.compression, "int8");
    arms.push_back(int8);
    CodecArm int4{"int4", {}};
    compress::apply_codec_name(int4.compression, "int4");
    arms.push_back(int4);
    CodecArm topk{"topk-10%+ef", {}};
    compress::apply_codec_name(topk.compression, "topk");
    topk.compression.topk_fraction = 0.1;
    topk.compression.bits = 32;
    topk.compression.error_feedback = true;
    arms.push_back(topk);
    return arms;
  }();

  struct Bandwidth {
    std::string label;
    double uplink;  ///< mean bytes/sec; 0 = infinite (latency only)
  };
  const std::vector<Bandwidth> bandwidths{{"inf", 0.0},
                                          {"tight", tight_uplink}};
  struct Hazard {
    std::string label;
    double crash_rate;  ///< per-session crash probability
  };
  const std::vector<Hazard> hazards{{"clean", 0.0}, {"churn", 0.3}};
  // Session span estimate for churn sizing, as in ext_robustness.
  const double session_seconds = round_interval * 3.0;

  Table table("Communication efficiency — codec x bandwidth x hazard (" +
              std::to_string(seeds) + " seeds, " + std::to_string(rounds) +
              " rounds)");
  table.set_header({"arm", "mean-time-to-target", "reached", "mean-final-acc",
                    "mean-staleness", "upload-MB", "ratio"});

  std::string arms_json;
  double staleness_float32_tight = -1.0;
  double staleness_int8_tight = -1.0;
  for (const Bandwidth& bw : bandwidths) {
    for (const Hazard& hazard : hazards) {
      for (const CodecArm& codec : codecs) {
        CommAggregate agg;
        agg.seeds = seeds;
        double time_sum = 0.0;
        double ratio_sum = 0.0;
        for (std::size_t i = 0; i < seeds; ++i) {
          const std::uint64_t seed = base_seed + 1000 * i;
          auto [ts, fc] = make_specs(seed);
          fc.mean_uplink_bytes_per_sec = bw.uplink;
          const FlTask task = make_task(ts);
          const Fleet fleet(fc);
          ExperimentParams params = make_base_params(task, seed);
          // seafl-inf: adaptive SEAFL weighting with no staleness hold, so
          // mean staleness reflects upload time directly. (Plain seafl's
          // wait_for_stale would *stall aggregation* behind slow float32
          // uploads — capping staleness while blowing up time-to-target —
          // which hides exactly the effect this bench measures.)
          Arm arm = make_arm(args.get_string("algo", "seafl-inf"), params);
          arm.config.compression = codec.compression;
          if (hazard.crash_rate > 0.0) {
            arm.config.faults.mean_uptime =
                session_seconds / -std::log1p(-hazard.crash_rate);
            arm.config.faults.mean_downtime = 2.0 * round_interval;
            arm.config.faults.deadline_factor = 3.0;
          }
          // Tight links stretch rounds; cap by virtual time so a stalled
          // arm terminates instead of idling to max_rounds.
          arm.config.max_virtual_seconds =
              round_interval * 6.0 * static_cast<double>(params.max_rounds);
          const ModelFactory factory = make_model(
              task.default_model, task.input, task.num_classes);
          Simulation sim(task, factory, fleet, std::move(arm.strategy),
                         arm.config);
          const RunResult r = sim.run();
          if (r.time_to_target >= 0.0) {
            time_sum += r.time_to_target;
            ++agg.reached;
          }
          agg.mean_final_accuracy += r.final_accuracy;
          agg.mean_staleness += r.mean_staleness;
          agg.mean_upload_mb +=
              static_cast<double>(r.upload_wire_bytes) / 1e6;
          ratio_sum += r.upload_wire_bytes > 0
                           ? static_cast<double>(r.upload_raw_bytes) /
                                 static_cast<double>(r.upload_wire_bytes)
                           : 1.0;
        }
        if (agg.reached > 0) agg.mean_time = time_sum / agg.reached;
        agg.mean_final_accuracy /= seeds;
        agg.mean_staleness /= seeds;
        agg.mean_upload_mb /= seeds;
        agg.mean_ratio = ratio_sum / seeds;

        const std::string label =
            codec.label + " / " + bw.label + " / " + hazard.label;
        if (bw.label == "tight" && hazard.label == "clean") {
          if (codec.label == "float32")
            staleness_float32_tight = agg.mean_staleness;
          if (codec.label == "int8") staleness_int8_tight = agg.mean_staleness;
        }
        table.add_row({label, fmt_time_or_na(agg.mean_time),
                       std::to_string(agg.reached) + "/" +
                           std::to_string(agg.seeds),
                       fmt(agg.mean_final_accuracy, 4),
                       fmt(agg.mean_staleness, 2), fmt(agg.mean_upload_mb, 3),
                       fmt(agg.mean_ratio, 2)});
        if (!arms_json.empty()) arms_json += ",\n";
        arms_json +=
            "    \"" + label + "\": {\"time_to_target\": " +
            json_number(agg.mean_time) +
            ", \"reached\": " + std::to_string(agg.reached) +
            ", \"final_accuracy\": " + json_number(agg.mean_final_accuracy) +
            ", \"mean_staleness\": " + json_number(agg.mean_staleness) +
            ", \"upload_mb\": " + json_number(agg.mean_upload_mb) +
            ", \"compression_ratio\": " + json_number(agg.mean_ratio) + "}";
      }
    }
  }

  const bool int8_reduces_staleness =
      staleness_int8_tight >= 0.0 && staleness_float32_tight >= 0.0 &&
      staleness_int8_tight < staleness_float32_tight;
  std::printf("tight/clean staleness: float32 %.3f vs int8 %.3f -> %s\n",
              staleness_float32_tight, staleness_int8_tight,
              int8_reduces_staleness ? "int8 reduces staleness"
                                     : "NO reduction");

  emit(table, args, "ext_compression.csv");

  const std::string path = args.get_string("json", "results/BENCH_comm.json");
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path());
  std::ofstream out(path);
  out << "{\n  \"smoke\": " << (smoke ? "true" : "false")
      << ",\n  \"seeds\": " << seeds << ",\n  \"rounds\": " << rounds
      << ",\n  \"model_params\": " << model_dim
      << ",\n  \"float32_upload_bytes\": " << float_bytes
      << ",\n  \"round_interval_sec\": " << json_number(round_interval)
      << ",\n  \"tight_uplink_bytes_per_sec\": " << json_number(tight_uplink)
      << ",\n  \"arms\": {\n" << arms_json << "\n  }"
      << ",\n  \"staleness_float32_tight_clean\": "
      << json_number(staleness_float32_tight)
      << ",\n  \"staleness_int8_tight_clean\": "
      << json_number(staleness_int8_tight)
      << ",\n  \"int8_reduces_staleness_under_tight_uplink\": "
      << (int8_reduces_staleness ? "true" : "false") << "\n}\n";
  std::printf("wrote %s\n", path.c_str());
  // The headline claim needs a real-sized run; smoke worlds are too small
  // for staleness to differentiate, so smoke only checks that every arm ran.
  return (smoke || int8_reduces_staleness) ? 0 : 1;
}
