// Fig. 2a — impact of the buffer size K on semi-asynchronous FL (§III).
//
// Paper setup: 100 devices, MNIST + LeNet-5, Dirichlet(0.3), Zipf idle
// times (s = 1.7, <= 60 s); the server aggregates after K updates. K = 1 is
// fully asynchronous (fails to converge), K = M is synchronous (slow);
// K = 10 was optimal. This harness sweeps K with FedBuff-style uniform
// buffered aggregation and reports wall-clock time to the target accuracy.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace seafl;
  using namespace seafl::bench;
  CliArgs args(argc, argv);
  const World world = make_world(args, WorldDefaults{});
  ExperimentParams params = make_params(args, world);

  const std::size_t concurrency = static_cast<std::size_t>(
      args.get_int("concurrency", 20));  // 20% of 100 devices, as in §VI.A

  Table table(
      "Fig. 2a — wall-clock time to target accuracy vs buffer size K "
      "(K=1 ~ FedAsync, K=" +
      std::to_string(concurrency) + " ~ sync)");
  table.set_header(result_header());

  for (const std::size_t k : {1ul, 2ul, 5ul, 10ul, 15ul, concurrency}) {
    params.buffer_size = k;
    params.concurrency = concurrency;
    // K = concurrency degenerates to the synchronous cohort; keep the
    // semi-async machinery so the comparison isolates K alone.
    const RunResult r =
        run_arm(k == 1 ? "fedasync" : "fedbuff", params, world.task,
                world.fleet);
    table.add_row(result_row("K=" + std::to_string(k), r));
  }
  emit(table, args, "fig2a_buffer_size.csv");
  return 0;
}
