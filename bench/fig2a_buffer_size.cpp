// Fig. 2a — impact of the buffer size K on semi-asynchronous FL (§III).
//
// Paper setup: 100 devices, MNIST + LeNet-5, Dirichlet(0.3), Zipf idle
// times (s = 1.7, <= 60 s); the server aggregates after K updates. K = 1 is
// fully asynchronous (fails to converge), K = M is synchronous (slow);
// K = 10 was optimal. This harness sweeps K with FedBuff-style uniform
// buffered aggregation and reports wall-clock time to the target accuracy.
//
// Declared as a seafl::exp sweep: one axis over K, parallel with --jobs N,
// cached under results/cache/ so a re-run only executes changed arms.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace seafl;
  using namespace seafl::bench;
  CliArgs args(argc, argv);

  const std::size_t concurrency = static_cast<std::size_t>(
      args.get_int("concurrency", 20));  // 20% of 100 devices, as in §VI.A

  exp::SweepSpec sweep;
  sweep.base.algorithm = "fedbuff";
  sweep.base.world = make_world_spec(args, WorldDefaults{});
  sweep.base.params = make_params_spec(args);

  exp::Axis k_axis;
  k_axis.field = "buffer";
  for (const std::size_t k : {1ul, 2ul, 5ul, 10ul, 15ul, concurrency}) {
    exp::AxisValue v;
    v.value = std::to_string(k);
    v.label = "K=" + std::to_string(k);
    // K = 1 is the fully asynchronous degenerate case; K = concurrency
    // degenerates to the synchronous cohort — keep the semi-async machinery
    // so the comparison isolates K alone.
    if (k == 1) v.overrides.emplace_back("algorithm", "fedasync");
    k_axis.values.push_back(std::move(v));
  }
  sweep.axes.push_back(std::move(k_axis));

  exp::Runner runner(make_runner_options(args));
  const std::vector<exp::ArmResult> results = runner.run(sweep);

  Table table(
      "Fig. 2a — wall-clock time to target accuracy vs buffer size K "
      "(K=1 ~ FedAsync, K=" +
      std::to_string(concurrency) + " ~ sync)");
  table.set_header(result_header());
  for (const exp::ArmResult& arm : results) {
    table.add_row(result_row(arm.spec.label, arm.result));
  }
  emit(table, args, "fig2a_buffer_size.csv");
  report_cache_use(runner, results);
  return 0;
}
