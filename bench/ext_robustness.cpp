// Robustness bench (ours) — stresses the stack under the deployment hazards
// a production FL system faces: device churn (clients crash mid-session and
// come back later), lossy uplinks, quantized uploads, and clients with
// corrupted labels. Each hazard is run twice: with a *passive* server
// (plain SEAFL — a dead client stalls wait_for_stale aggregation forever)
// and with the *recovering* server of DESIGN.md §10 (assignment deadlines
// with re-dispatch, upload retries with backoff, degraded aggregation past
// a round deadline, and pre-aggregation screening). A second table reports
// the recovery counters so the mechanism, not just the outcome, is visible.
#include <algorithm>
#include <cmath>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace seafl;
  using namespace seafl::bench;
  CliArgs args(argc, argv);

  const std::size_t seeds =
      static_cast<std::size_t>(args.get_int("seeds", 3));
  const auto base_seed =
      static_cast<std::uint64_t>(args.get_int("seed", 42));

  // Probe the clean world once to learn its time scale: the churn intensity
  // and the round deadline are meaningless as absolute seconds, so both are
  // sized from the measured mean round interval. Deterministic — the probe
  // is itself a fixed-seed run.
  double round_interval = 0.0;
  double session_seconds = 0.0;
  {
    WorldDefaults d;
    d.pareto_shape = 1.1;
    d.seed = base_seed;
    const World world = make_world(args, d, /*use_flag_seed=*/false);
    ExperimentParams probe = make_params(args, world);
    probe.seed = base_seed;
    probe.max_rounds = std::min<std::uint64_t>(probe.max_rounds, 10);
    probe.stop_at_target = false;
    const RunResult r = run_arm("seafl", probe, world.task, world.fleet);
    round_interval = r.final_time / static_cast<double>(r.rounds);
    // With M clients in flight and K consumed per round, a session spans
    // about M/K rounds of virtual time.
    session_seconds = round_interval *
                      static_cast<double>(probe.concurrency) /
                      static_cast<double>(probe.buffer_size);
    std::printf("probe: round interval %.1fs, session %.1fs\n",
                round_interval, session_seconds);
  }
  // mean uptime such that P(crash before upload) = 1 - exp(-s/up) = rate.
  const auto uptime_for = [&](double crash_rate) {
    return session_seconds / -std::log1p(-crash_rate);
  };

  struct Hazard {
    std::string label;
    double crash_rate;  ///< per-session crash probability (0 = no churn)
    double loss;
    std::size_t bits;
    double corrupt;
    double diurnal = 0.0;  ///< diurnal period in round intervals (0 = off)
  };
  const std::vector<Hazard> hazards{
      {"clean", 0.0, 0.0, 0, 0.0},
      {"30% crash churn", 0.3, 0.0, 0, 0.0},
      {"60% crash churn", 0.6, 0.0, 0, 0.0},
      {"30% upload loss", 0.0, 0.3, 0, 0.0},
      {"churn+loss", 0.3, 0.3, 0, 0.0},
      {"4-bit uploads", 0.0, 0.0, 4, 0.0},
      {"20% corrupt clients", 0.0, 0.0, 0, 0.2},
      {"churn+loss+corrupt", 0.3, 0.3, 0, 0.2},
      // Diurnal availability (DESIGN.md §15): each device online for half of
      // an ~8-round day at a per-device phase, alone and on top of churn.
      {"diurnal", 0.0, 0.0, 0, 0.0, 8.0},
      {"diurnal+churn", 0.3, 0.0, 0, 0.0, 8.0},
  };

  Table table("Robustness — passive vs recovering SEAFL under deployment "
              "hazards (" + std::to_string(seeds) + " seeds)");
  table.set_header(seed_header());
  Table counters("Recovery counters (seed " + std::to_string(base_seed) +
                 " run)");
  counters.set_header({"arm", "crashes", "deadline-exp", "redispatch",
                       "abandoned", "retries", "degraded", "screened",
                       "clipped"});

  for (const auto& hazard : hazards) {
    for (const std::string algo : {"seafl", "seafl-ft"}) {
      RunResult first_run;
      const SeedAggregate agg =
          run_seeds(seeds, base_seed, [&](std::uint64_t seed) {
            WorldDefaults d;
            d.pareto_shape = 1.1;
            d.corrupt_fraction = hazard.corrupt;
            d.seed = seed;
            const World world = make_world(args, d, /*use_flag_seed=*/false);
            ExperimentParams params = make_params(args, world);
            params.seed = seed;
            Arm arm = make_arm(algo, params);
            arm.config.upload_loss_prob = hazard.loss;
            arm.config.quantize_bits = hazard.bits;
            if (hazard.crash_rate > 0.0) {
              arm.config.faults.mean_uptime = uptime_for(hazard.crash_rate);
              arm.config.faults.mean_downtime = 2.0 * round_interval;
            }
            if (hazard.diurnal > 0.0) {
              arm.config.faults.diurnal_period =
                  hazard.diurnal * round_interval;
              arm.config.faults.diurnal_online_fraction = 0.5;
            }
            if (algo == "seafl-ft")
              arm.config.faults.round_deadline = 4.0 * round_interval;
            // Hazards stretch rounds; cap by virtual time so a stalled
            // passive run terminates instead of idling to max_rounds.
            arm.config.max_virtual_seconds =
                round_interval * 3.0 * static_cast<double>(params.max_rounds);
            const ModelFactory factory = make_model(
                world.task.default_model, world.task.input,
                world.task.num_classes);
            Simulation sim(world.task, factory, world.fleet,
                           std::move(arm.strategy), arm.config);
            RunResult r = sim.run();
            if (seed == base_seed) first_run = r;
            return r;
          });
      const std::string label = hazard.label + " / " + algo;
      table.add_row(seed_row(label, agg));
      counters.add_row({label,
                        std::to_string(first_run.client_crashes),
                        std::to_string(first_run.deadline_expirations),
                        std::to_string(first_run.redispatches),
                        std::to_string(first_run.abandoned_slots),
                        std::to_string(first_run.upload_retries),
                        std::to_string(first_run.degraded_aggregations),
                        std::to_string(first_run.screened_updates),
                        std::to_string(first_run.clipped_updates)});
    }
  }
  emit(table, args, "ext_robustness.csv");
  counters.print();
  return 0;
}
