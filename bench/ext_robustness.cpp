// Robustness bench (ours) — stresses SEAFL and FedBuff under the deployment
// hazards a production FL system faces: lossy uplinks (devices go offline
// mid-round), quantized uploads (communication compression), and clients
// with corrupted labels. Shows which parts of the stack tolerate what.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace seafl;
  using namespace seafl::bench;
  CliArgs args(argc, argv);

  const std::size_t seeds =
      static_cast<std::size_t>(args.get_int("seeds", 3));
  const auto base_seed =
      static_cast<std::uint64_t>(args.get_int("seed", 42));

  struct Hazard {
    std::string label;
    double loss;
    std::size_t bits;
    double corrupt;
  };
  const std::vector<Hazard> hazards{
      {"clean", 0.0, 0, 0.0},
      {"20% upload loss", 0.2, 0, 0.0},
      {"40% upload loss", 0.4, 0, 0.0},
      {"8-bit uploads", 0.0, 8, 0.0},
      {"4-bit uploads", 0.0, 4, 0.0},
      {"20% corrupt clients", 0.0, 0, 0.2},
      {"loss+4bit+corrupt", 0.2, 4, 0.2},
  };

  Table table("Robustness — SEAFL vs FedBuff under deployment hazards (" +
              std::to_string(seeds) + " seeds)");
  table.set_header(seed_header());

  for (const auto& hazard : hazards) {
    for (const std::string algo : {"seafl", "fedbuff"}) {
      const SeedAggregate agg =
          run_seeds(seeds, base_seed, [&](std::uint64_t seed) {
            WorldDefaults d;
            d.pareto_shape = 1.1;
            d.corrupt_fraction = hazard.corrupt;
            d.seed = seed;
            const World world = make_world(args, d, /*use_flag_seed=*/false);
            ExperimentParams params = make_params(args, world);
            params.seed = seed;
            Arm arm = make_arm(algo, params);
            arm.config.upload_loss_prob = hazard.loss;
            arm.config.quantize_bits = hazard.bits;
            const ModelFactory factory = make_model(
                world.task.default_model, world.task.input,
                world.task.num_classes);
            Simulation sim(world.task, factory, world.fleet,
                           std::move(arm.strategy), arm.config);
            return sim.run();
          });
      table.add_row(seed_row(hazard.label + " / " + algo, agg));
    }
  }
  emit(table, args, "ext_robustness.csv");
  return 0;
}
