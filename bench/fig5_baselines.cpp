// Fig. 5 — SEAFL (no partial training) vs FedBuff, FedAsync and FedAvg on
// the three benchmark datasets (§VI.B). The paper reports accuracy vs
// elapsed wall-clock time per dataset: FedAsync fails to converge, FedAvg
// converges slowest, SEAFL (beta=10) leads, and SEAFL with beta=inf tracks
// FedBuff. This harness reproduces all five arms per dataset, prints the
// time-to-target table and writes the full accuracy-vs-time curves.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace seafl;
  using namespace seafl::bench;
  CliArgs args(argc, argv);

  struct DatasetCase {
    std::string task;
    std::size_t samples_per_client;
    std::uint64_t rounds;
    double dirichlet;
  };
  // Per-client share mirrors the paper: CINIC-10 devices hold a smaller
  // fraction of their dataset than CIFAR-10 devices (3% vs 10%). The
  // hardest dataset keeps a milder skew so tiny shards remain trainable.
  std::vector<DatasetCase> datasets{{"synth-emnist", 40, 60, 0.1},
                                    {"synth-cifar10", 40, 50, 0.1},
                                    {"synth-cinic10", 32, 50, 0.3}};
  if (args.has("task")) {  // allow running a single dataset
    const std::string only = args.get_string("task", "");
    std::erase_if(datasets,
                  [&](const DatasetCase& d) { return d.task != only; });
  }

  const std::vector<std::string> arms{"seafl", "seafl-inf", "fedbuff",
                                      "fedasync", "fedavg"};

  for (const auto& dataset : datasets) {
    // Heavy-tailed speeds + strong label skew: the regime where admitting
    // unbounded staleness genuinely degrades the global model, as the
    // paper's Fig. 5 describes (FedBuff/SEAFL-inf plateau when stale
    // devices arrive, SEAFL's staleness limit prevents it).
    WorldDefaults defaults;
    defaults.task = dataset.task;
    defaults.samples_per_client = dataset.samples_per_client;
    defaults.pareto_shape = 1.05;
    defaults.dirichlet_alpha = dataset.dirichlet;
    const World world = make_world(args, defaults);
    ExperimentParams params =
        make_params(args, world, dataset.rounds, /*default_concurrency=*/40);

    Table table("Fig. 5 — " + dataset.task + " (target " +
                fmt(params.target_accuracy * 100.0, 0) + "% accuracy)");
    table.set_header(result_header());

    Table curves("");
    curves.set_header({"arm", "round", "time", "accuracy", "loss"});

    for (const auto& arm : arms) {
      const RunResult r = run_arm(arm, params, world.task, world.fleet);
      const std::string label = make_arm(arm, params).label;
      table.add_row(result_row(label, r));
      for (const auto& p : r.curve) {
        curves.add_row({label, std::to_string(p.round), fmt(p.time, 1),
                        fmt(p.accuracy, 4), fmt(p.loss, 4)});
      }
    }
    emit(table, args, "fig5_" + dataset.task + ".csv");
    curves.write_csv("fig5_" + dataset.task + "_curves.csv");
    std::printf("wrote fig5_%s_curves.csv\n", dataset.task.c_str());
  }
  return 0;
}
