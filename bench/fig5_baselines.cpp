// Fig. 5 — SEAFL (no partial training) vs FedBuff, FedAsync and FedAvg on
// the three benchmark datasets (§VI.B). The paper reports accuracy vs
// elapsed wall-clock time per dataset: FedAsync fails to converge, FedAvg
// converges slowest, SEAFL (beta=10) leads, and SEAFL with beta=inf tracks
// FedBuff. This harness reproduces all five arms per dataset as one
// seafl::exp sweep each (strategy axis; parallel with --jobs, cached),
// prints the time-to-target table and writes the accuracy-vs-time curves.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace seafl;
  using namespace seafl::bench;
  CliArgs args(argc, argv);

  struct DatasetCase {
    std::string task;
    std::size_t samples_per_client;
    std::uint64_t rounds;
    double dirichlet;
  };
  // Per-client share mirrors the paper: CINIC-10 devices hold a smaller
  // fraction of their dataset than CIFAR-10 devices (3% vs 10%). The
  // hardest dataset keeps a milder skew so tiny shards remain trainable.
  std::vector<DatasetCase> datasets{{"synth-emnist", 40, 60, 0.1},
                                    {"synth-cifar10", 40, 50, 0.1},
                                    {"synth-cinic10", 32, 50, 0.3}};
  if (args.has("task")) {  // allow running a single dataset
    const std::string only = args.get_string("task", "");
    std::erase_if(datasets,
                  [&](const DatasetCase& d) { return d.task != only; });
  }

  const std::vector<std::string> arms{"seafl", "seafl-inf", "fedbuff",
                                      "fedasync", "fedavg"};

  for (const auto& dataset : datasets) {
    // Heavy-tailed speeds + strong label skew: the regime where admitting
    // unbounded staleness genuinely degrades the global model, as the
    // paper's Fig. 5 describes (FedBuff/SEAFL-inf plateau when stale
    // devices arrive, SEAFL's staleness limit prevents it).
    WorldDefaults defaults;
    defaults.task = dataset.task;
    defaults.samples_per_client = dataset.samples_per_client;
    defaults.pareto_shape = 1.05;
    defaults.dirichlet_alpha = dataset.dirichlet;

    exp::SweepSpec sweep;
    sweep.base.world = make_world_spec(args, defaults);
    sweep.base.params =
        make_params_spec(args, dataset.rounds, /*default_concurrency=*/40);

    exp::Axis algo_axis;
    algo_axis.field = "algorithm";
    for (const std::string& algo : arms) {
      // Preserve the paper-style display names ("SEAFL (beta=10)", ...).
      algo_axis.values.push_back(
          {algo, make_arm(algo, sweep.base.params).label, {}});
    }
    sweep.axes.push_back(std::move(algo_axis));

    exp::Runner runner(make_runner_options(args));
    const std::vector<exp::ArmResult> results = runner.run(sweep);

    // The target is resolved per-task by the Runner; recover it for the
    // table title the same way (CLI override first, task default otherwise).
    const double target = args.has("target")
                              ? args.get_double("target", 0.0)
                              : task_target_accuracy(dataset.task);
    Table table("Fig. 5 — " + dataset.task + " (target " +
                fmt(target * 100.0, 0) + "% accuracy)");
    table.set_header(result_header());

    Table curves("");
    curves.set_header({"arm", "round", "time", "accuracy", "loss"});

    for (const exp::ArmResult& arm : results) {
      table.add_row(result_row(arm.spec.label, arm.result));
      for (const auto& p : arm.result.curve) {
        curves.add_row({arm.spec.label, std::to_string(p.round),
                        fmt(p.time, 1), fmt(p.accuracy, 4), fmt(p.loss, 4)});
      }
    }
    emit(table, args, "fig5_" + dataset.task + ".csv");
    curves.write_csv("fig5_" + dataset.task + "_curves.csv");
    std::printf("wrote fig5_%s_curves.csv\n", dataset.task.c_str());
    report_cache_use(runner, results);
  }
  return 0;
}
