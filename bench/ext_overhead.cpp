// Overhead bench (ours) — quantifies the system costs §II argues about:
// fully-asynchronous FL aggregates on every upload (server compute) while
// synchronous FL pays straggler wall-clock; buffered designs amortize both.
// Reports message counts, aggregation invocations and server combine work
// per algorithm at equal round budgets.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace seafl;
  using namespace seafl::bench;
  CliArgs args(argc, argv);

  WorldDefaults defaults;
  defaults.pareto_shape = 1.1;
  const World world = make_world(args, defaults);
  ExperimentParams params = make_params(args, world, /*default_rounds=*/30);
  params.stop_at_target = false;  // equal budgets for a fair overhead read

  Table table("Overhead accounting per algorithm (30 rounds)");
  table.set_header({"arm", "virtual-time", "downloads", "uploads",
                    "aggregations", "notifications", "combine-work(M)",
                    "final-acc"});

  for (const std::string algo :
       {"fedasync", "fedbuff", "seafl", "seafl2", "fedavg"}) {
    const RunResult r = run_arm(algo, params, world.task, world.fleet);
    table.add_row({make_arm(algo, params).label,
                   fmt(r.final_time, 0) + "s",
                   std::to_string(r.model_downloads),
                   std::to_string(r.model_uploads),
                   std::to_string(r.aggregations),
                   std::to_string(r.notifications),
                   fmt(r.server_aggregation_work / 1e6, 2),
                   fmt(r.final_accuracy, 4)});
  }
  emit(table, args, "ext_overhead.csv");
  return 0;
}
