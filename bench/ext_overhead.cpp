// Overhead bench (ours) — quantifies the system costs §II argues about:
// fully-asynchronous FL aggregates on every upload (server compute) while
// synchronous FL pays straggler wall-clock; buffered designs amortize both.
// Reports message counts, aggregation invocations and server combine work
// per algorithm at equal round budgets.
//
// A second section measures the cost of the observability layer itself: the
// same SEAFL simulation with obs off, with kernel/phase profiling on, and
// with a full trace journal attached, reporting wall-clock slowdown against
// the off baseline (targets: profiling < 5%; a full journal adds only event
// appends on top). It also checks the guarantee the instrumentation is built
// around — identical results in every mode.
#include <chrono>

#include "bench_common.h"
#include "obs/obs.h"

namespace {

double run_timed(const char* algo, const seafl::ExperimentParams& params,
                 const seafl::bench::World& world, seafl::obs::TraceSink* sink,
                 seafl::RunResult* out) {
  const auto start = std::chrono::steady_clock::now();
  *out = seafl::run_arm(algo, params, world.task, world.fleet, sink);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool same_outcome(const seafl::RunResult& a, const seafl::RunResult& b) {
  return a.final_accuracy == b.final_accuracy && a.final_time == b.final_time &&
         a.rounds == b.rounds && a.total_updates == b.total_updates &&
         a.model_uploads == b.model_uploads &&
         a.mean_staleness == b.mean_staleness;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace seafl;
  using namespace seafl::bench;
  CliArgs args(argc, argv);

  WorldDefaults defaults;
  defaults.pareto_shape = 1.1;
  const World world = make_world(args, defaults);
  ExperimentParams params = make_params(args, world, /*default_rounds=*/30);
  params.stop_at_target = false;  // equal budgets for a fair overhead read

  Table table("Overhead accounting per algorithm (30 rounds)");
  table.set_header({"arm", "virtual-time", "downloads", "uploads",
                    "aggregations", "notifications", "combine-work(M)",
                    "final-acc"});

  for (const std::string algo :
       {"fedasync", "fedbuff", "seafl", "seafl2", "fedavg"}) {
    const RunResult r = run_arm(algo, params, world.task, world.fleet);
    table.add_row({make_arm(algo, params).label,
                   fmt(r.final_time, 0) + "s",
                   std::to_string(r.model_downloads),
                   std::to_string(r.model_uploads),
                   std::to_string(r.aggregations),
                   std::to_string(r.notifications),
                   fmt(r.server_aggregation_work / 1e6, 2),
                   fmt(r.final_accuracy, 4)});
  }
  emit(table, args, "ext_overhead.csv");

  // --- observability overhead ----------------------------------------------
  const int reps = static_cast<int>(args.get_int("obs-reps", 2));
  RunResult warmup;
  run_timed("seafl", params, world, nullptr, &warmup);  // page caches, JIT-ish

  auto best_of = [&](obs::TraceJournal* journal, bool profile,
                     RunResult* out) {
    double best = -1.0;
    for (int rep = 0; rep < reps; ++rep) {
      if (journal != nullptr) journal->clear();  // keep one run's events
      double s;
      if (profile) {
        obs::ProfilingScope scope;
        s = run_timed("seafl", params, world, journal, out);
      } else {
        s = run_timed("seafl", params, world, journal, out);
      }
      if (best < 0.0 || s < best) best = s;
    }
    return best;
  };

  RunResult off, metrics_on, full;
  obs::TraceJournal journal;
  const double t_off = best_of(nullptr, /*profile=*/false, &off);
  const double t_metrics = best_of(nullptr, /*profile=*/true, &metrics_on);
  const double t_full = best_of(&journal, /*profile=*/true, &full);

  Table obs_table("Observability overhead (SEAFL arm, best of " +
                  std::to_string(reps) + ")");
  obs_table.set_header(
      {"mode", "wall-seconds", "slowdown", "events", "identical-result"});
  auto slowdown = [&](double t) {
    return fmt(100.0 * (t - t_off) / t_off, 2) + "%";
  };
  obs_table.add_row({"obs off", fmt(t_off, 3), "baseline", "0", "ref"});
  obs_table.add_row({"metrics on", fmt(t_metrics, 3), slowdown(t_metrics), "0",
                     same_outcome(off, metrics_on) ? "yes" : "NO"});
  obs_table.add_row({"full trace", fmt(t_full, 3), slowdown(t_full),
                     std::to_string(journal.events().size()),
                     same_outcome(off, full) ? "yes" : "NO"});
  obs_table.print();

  if (!same_outcome(off, metrics_on) || !same_outcome(off, full)) {
    std::fprintf(stderr,
                 "ERROR: observability changed simulation results\n");
    return 1;
  }
  return 0;
}
