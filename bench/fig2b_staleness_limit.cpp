// Fig. 2b — impact of the staleness limit beta on semi-asynchronous FL
// (§III). With K = 10 fixed, the paper varies beta: a limit of 1 forces the
// server to wait constantly (slow), a limit of 10 was optimal, and very
// large limits admit overly stale updates. This harness runs SEAFL's
// waiting protocol across beta values on a heavy-tailed fleet, as a
// seafl::exp sweep (parallel with --jobs, cached under results/cache/).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace seafl;
  using namespace seafl::bench;
  CliArgs args(argc, argv);

  WorldDefaults defaults;
  defaults.pareto_shape = 1.1;  // heavier tail: staleness must actually occur

  exp::SweepSpec sweep;
  sweep.base.algorithm = "seafl";
  sweep.base.world = make_world_spec(args, defaults);
  sweep.base.params = make_params_spec(args);

  exp::Axis beta_axis;
  beta_axis.field = "staleness";
  for (const std::uint64_t beta : {1ull, 2ull, 5ull, 10ull, 20ull,
                                   static_cast<unsigned long long>(
                                       kNoStalenessLimit)}) {
    exp::AxisValue v;
    if (beta == kNoStalenessLimit) {
      v.value = "inf";
      v.label = "beta=inf";
      v.overrides.emplace_back("algorithm", "seafl-inf");
    } else {
      v.value = std::to_string(beta);
      v.label = "beta=" + std::to_string(beta);
    }
    beta_axis.values.push_back(std::move(v));
  }
  sweep.axes.push_back(std::move(beta_axis));

  exp::Runner runner(make_runner_options(args));
  const std::vector<exp::ArmResult> results = runner.run(sweep);

  Table table("Fig. 2b — wall-clock time to target accuracy vs staleness "
              "limit beta (K=" +
              std::to_string(sweep.base.params.buffer_size) + ")");
  std::vector<std::string> header = result_header();
  header.push_back("stale-waits");
  table.set_header(header);
  for (const exp::ArmResult& arm : results) {
    auto row = result_row(arm.spec.label, arm.result);
    row.push_back(std::to_string(arm.result.stale_waits));
    table.add_row(std::move(row));
  }
  emit(table, args, "fig2b_staleness_limit.csv");
  report_cache_use(runner, results);
  return 0;
}
