// Fig. 2b — impact of the staleness limit beta on semi-asynchronous FL
// (§III). With K = 10 fixed, the paper varies beta: a limit of 1 forces the
// server to wait constantly (slow), a limit of 10 was optimal, and very
// large limits admit overly stale updates. This harness runs SEAFL's
// waiting protocol across beta values on a heavy-tailed fleet.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace seafl;
  using namespace seafl::bench;
  CliArgs args(argc, argv);

  WorldDefaults defaults;
  defaults.pareto_shape = 1.1;  // heavier tail: staleness must actually occur
  const World world = make_world(args, defaults);
  ExperimentParams params = make_params(args, world);
  params.buffer_size =
      static_cast<std::size_t>(args.get_int("buffer", 10));

  Table table("Fig. 2b — wall-clock time to target accuracy vs staleness "
              "limit beta (K=" +
              std::to_string(params.buffer_size) + ")");
  std::vector<std::string> header = result_header();
  header.push_back("stale-waits");
  table.set_header(header);

  const std::vector<std::uint64_t> betas{1, 2, 5, 10, 20, kNoStalenessLimit};
  for (const std::uint64_t beta : betas) {
    params.staleness_limit = beta;
    const std::string arm = beta == kNoStalenessLimit ? "seafl-inf" : "seafl";
    const RunResult r = run_arm(arm, params, world.task, world.fleet);
    const std::string label =
        beta == kNoStalenessLimit ? "beta=inf" : "beta=" + std::to_string(beta);
    auto row = result_row(label, r);
    row.push_back(std::to_string(r.stale_waits));
    table.add_row(std::move(row));
  }
  emit(table, args, "fig2b_staleness_limit.csv");
  return 0;
}
