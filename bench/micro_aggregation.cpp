// Aggregation microbenchmarks: server-side cost per round as the buffer
// size K and model dimension grow. The paper motivates semi-async buffering
// partly by FedAsync's per-update aggregation overhead; this quantifies the
// cost of SEAFL's adaptive weighting against uniform FedBuff averaging —
// plus the screening filter and the codec decode that precede it.
//
// Two modes, like micro_tensor:
//  * google-benchmark (default): interactive microbenchmarks of the
//    strategies, screening and codec decode.
//  * JSON recorder: `--seafl_json=BENCH_agg.json` measures the server
//    aggregation data plane — single-thread GB/s of every ops kernel for
//    BOTH vector backends (scalar vs AVX2), end-to-end aggregation
//    rounds/sec (decode + screen + adaptive weights + mix) per backend, and
//    exact heap allocations per steady-state round with the workspace arena
//    off ("before") and on ("after"). The arena-on count must be exactly
//    zero: the recorder exits nonzero otherwise, which is the regression
//    gate CI runs. `--seafl_smoke` shrinks the measurement for CI.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "compress/codec.h"
#include "core/screening.h"
#include "core/seafl_strategy.h"
#include "fl/server_core.h"
#include "fl/strategies.h"
#include "tensor/ops.h"
#include "tensor/workspace.h"

SEAFL_BENCH_DEFINE_ALLOC_HOOK();

namespace {

using namespace seafl;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<LocalUpdate> make_buffer(std::size_t k, std::size_t dim,
                                     std::uint64_t round) {
  Rng rng(7);
  std::vector<LocalUpdate> buffer(k);
  for (std::size_t i = 0; i < k; ++i) {
    buffer[i].client = i;
    buffer[i].base_round = round - (i % 4);
    buffer[i].num_samples = 50 + i;
    buffer[i].epochs_completed = 5;
    buffer[i].weights.resize(dim);
    for (auto& w : buffer[i].weights) w = static_cast<float>(rng.normal());
  }
  return buffer;
}

AggregationContext make_ctx(std::uint64_t round, const ModelVector& global,
                            const std::vector<LocalUpdate>& buffer) {
  AggregationContext ctx;
  ctx.round = round;
  ctx.global = &global;
  for (const auto& u : buffer) ctx.total_samples += u.num_samples;
  return ctx;
}

compress::CompressionConfig int8_config() {
  compress::CompressionConfig cc;
  cc.codec = compress::CodecKind::kQuantize;
  cc.bits = 8;
  return cc;
}

// ------------------------------------------------------- google benchmarks

void BM_SeaflAggregate(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  const auto buffer = make_buffer(k, dim, 10);
  SeaflStrategy strategy{SeaflConfig{}};
  ModelVector global(dim, 0.1f);
  const auto ctx = make_ctx(10, global, buffer);
  for (auto _ : state) {
    ModelVector g = global;
    strategy.aggregate(ctx, buffer, g);
    benchmark::DoNotOptimize(g.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * k *
                          dim);
}
BENCHMARK(BM_SeaflAggregate)
    ->Args({5, 1 << 12})
    ->Args({10, 1 << 12})
    ->Args({20, 1 << 12})
    ->Args({10, 1 << 16})
    ->Args({10, 1 << 20});

void BM_FedBuffAggregate(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  const auto buffer = make_buffer(k, dim, 10);
  FedBuffStrategy strategy;
  ModelVector global(dim, 0.1f);
  const auto ctx = make_ctx(10, global, buffer);
  for (auto _ : state) {
    ModelVector g = global;
    strategy.aggregate(ctx, buffer, g);
    benchmark::DoNotOptimize(g.data());
  }
}
BENCHMARK(BM_FedBuffAggregate)
    ->Args({10, 1 << 12})
    ->Args({10, 1 << 16})
    ->Args({10, 1 << 20});

void BM_FedAsyncPerUpdate(benchmark::State& state) {
  // FedAsync aggregates on every single arrival; per-update cost times K
  // updates is the overhead the buffered designs amortize.
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto buffer = make_buffer(1, dim, 10);
  FedAsyncStrategy strategy;
  ModelVector global(dim, 0.1f);
  const auto ctx = make_ctx(10, global, buffer);
  for (auto _ : state) {
    ModelVector g = global;
    strategy.aggregate(ctx, buffer, g);
    benchmark::DoNotOptimize(g.data());
  }
}
BENCHMARK(BM_FedAsyncPerUpdate)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_AdaptiveWeightsOnly(benchmark::State& state) {
  // Just Eqs. 4-6 (no model averaging): the weighting overhead itself.
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  const auto buffer = make_buffer(k, dim, 10);
  ModelVector global(dim, 0.1f);
  const auto ctx = make_ctx(10, global, buffer);
  const AdaptiveWeightConfig cfg;
  std::vector<WeightBreakdown> out;
  for (auto _ : state) {
    compute_adaptive_weights_into(cfg, ctx, buffer, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_AdaptiveWeightsOnly)->Args({10, 1 << 12})->Args({10, 1 << 16});

void BM_ScreenUpdates(benchmark::State& state) {
  // The clip + cosine-reject filter ahead of aggregation (DESIGN.md §10).
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  auto buffer = make_buffer(k, dim, 10);
  ModelVector global(dim, 0.1f);
  ScreeningConfig cfg;
  cfg.clip_multiple = 3.0;
  cfg.min_cosine = -0.9;
  ScreeningReport report;
  for (auto _ : state) {
    screen_updates_into(cfg, global, buffer, report);
    benchmark::DoNotOptimize(report.entries.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * k *
                          dim);
}
BENCHMARK(BM_ScreenUpdates)->Args({10, 1 << 12})->Args({10, 1 << 16});

void BM_CodecDecodeInt8(benchmark::State& state) {
  // Server-side decode of one int8 upload into a recycled buffer — the
  // per-update cost add_encoded_update pays before screening.
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto codec = compress::make_codec(int8_config());
  Rng rng(11);
  std::vector<float> base(dim, 0.1f), weights(dim);
  for (auto& w : weights)
    w = 0.1f + 0.01f * static_cast<float>(rng.normal());
  const compress::CompressedUpdate encoded =
      codec->encode(weights, base, nullptr, /*client=*/0, /*round=*/1,
                    /*seed=*/42);
  std::vector<float> out;
  for (auto _ : state) {
    codec->decode_into(encoded, base, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * dim);
}
BENCHMARK(BM_CodecDecodeInt8)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

// ------------------------------------------------------------ JSON recorder

/// Streamed bytes per element per call, for the GB/s figure.
struct KernelSpec {
  const char* name;
  bool reduction;  ///< counts toward the >= 2x acceptance set
  double bytes_per_element;
};

constexpr KernelSpec kKernels[] = {
    {"axpy", false, 12.0},               // read y + x, write y
    {"axpby", false, 12.0},              // read y + x, write y
    {"add_inplace", false, 12.0},        // read y + x, write y
    {"dot", true, 8.0},                  // read a + b
    {"sum", true, 4.0},                  // read a
    {"l2_norm", true, 4.0},              // read a
    {"max_abs", true, 4.0},              // read a
    {"cosine_similarity", true, 8.0},    // read a + b
};

double run_kernel(const std::string& name, std::span<float> y,
                  std::span<const float> a, std::span<const float> b) {
  if (name == "axpy") {
    axpy(y, 0.5f, a);
    return 0.0;
  }
  if (name == "axpby") {
    axpby(y, 0.5f, a, 0.5f);
    return 0.0;
  }
  if (name == "add_inplace") {
    add_inplace(y, a);
    return 0.0;
  }
  if (name == "dot") return dot(a, b);
  if (name == "sum") return sum(a);
  if (name == "l2_norm") return l2_norm(a);
  if (name == "max_abs") return max_abs(a);
  return cosine_similarity(a, b);
}

/// Single-thread GB/s of one kernel at one dim under `backend`; best of
/// several trials (the minimum elapsed time is the least scheduler-disturbed
/// estimate).
double kernel_gbs(const KernelSpec& spec, std::size_t dim,
                  VectorBackend backend, bool smoke) {
  VectorBackendScope scope(backend);
  Rng rng(3);
  std::vector<float> y(dim), a(dim), b(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    y[i] = static_cast<float>(rng.normal());
    a[i] = static_cast<float>(rng.normal());
    b[i] = static_cast<float>(rng.normal());
  }
  const double bytes = spec.bytes_per_element * static_cast<double>(dim);
  volatile double sink = 0.0;
  for (int i = 0; i < 3; ++i) sink = sink + run_kernel(spec.name, y, a, b);
  // Calibrate repetitions off a short pilot to ~80 ms per trial.
  const auto p0 = Clock::now();
  for (int i = 0; i < 4; ++i) sink = sink + run_kernel(spec.name, y, a, b);
  const double per_call = seconds_since(p0) / 4.0;
  const std::size_t reps =
      smoke ? 4
            : std::max<std::size_t>(
                  8, static_cast<std::size_t>(0.08 / std::max(per_call, 1e-9)));
  const int trials = smoke ? 1 : 3;
  double best = 0.0;
  for (int t = 0; t < trials; ++t) {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < reps; ++i)
      sink = sink + run_kernel(spec.name, y, a, b);
    const double secs = seconds_since(t0);
    if (t == 0 || secs < best) best = secs;
  }
  benchmark::DoNotOptimize(sink);
  return bytes * static_cast<double>(reps) / best / 1e9;
}

/// One full server round — K encoded uploads decoded, screened, adaptively
/// weighted and mixed into the global model — against a live ServerCore, so
/// the measured path is exactly the production data plane of DESIGN.md §13.
struct RoundHarness {
  std::size_t k, dim;
  RunConfig config;
  ScreenedStrategy strategy;
  ServerCore core;
  std::unique_ptr<compress::Codec> encoder;
  std::vector<ModelVector> trained;
  std::vector<compress::CompressedUpdate> encoded;
  ModelVector base;

  static RunConfig make_config(std::size_t k) {
    RunConfig c;
    c.mode = FlMode::kSemiAsync;
    c.buffer_size = k;
    c.concurrency = k;
    c.local_epochs = 5;
    c.stop_at_target = false;
    c.compression = int8_config();
    return c;
  }

  static ScreeningConfig make_screening() {
    ScreeningConfig s;
    s.clip_multiple = 3.0;
    s.min_cosine = -0.9;  // clip is live, rejection is rare: K stays constant
    return s;
  }

  RoundHarness(std::size_t k_, std::size_t dim_)
      : k(k_),
        dim(dim_),
        config(make_config(k_)),
        strategy(std::make_unique<SeaflStrategy>(SeaflConfig{}),
                 make_screening()),
        core(&strategy, config),
        encoder(compress::make_codec(config.compression)),
        trained(k_),
        encoded(k_) {
    core.begin(ModelVector(dim, 0.1f), /*num_clients=*/k);
    // Pre-reserve the only per-round append so the steady state is exactly
    // allocation-free.
    core.result().round_log.reserve(256);
    Rng rng(5);
    for (auto& w : trained) {
      w.resize(dim);
      for (auto& v : w) v = 0.1f + 0.01f * static_cast<float>(rng.normal());
    }
  }

  /// Client side (not part of the measured server plane): re-encode every
  /// update against the current global model.
  void encode_round() {
    base.assign(core.global().begin(), core.global().end());
    for (std::size_t i = 0; i < k; ++i) {
      encoded[i] = encoder->encode(trained[i], base, nullptr, i, core.round(),
                                   config.seed);
    }
  }

  /// Server side: decode + buffer K uploads, then aggregate. Returns the
  /// exact heap allocations the server work performed.
  std::uint64_t server_round() {
    static const std::vector<std::uint64_t> kNoInFlight;
    const double now = static_cast<double>(core.round() + 1);
    const std::uint64_t before = seafl::bench::g_heap_allocs.load();
    for (std::size_t i = 0; i < k; ++i) {
      LocalUpdate u;
      u.client = i;
      u.base_round = core.round();
      u.num_samples = 50 + i;
      u.epochs_completed = 5;
      core.add_encoded_update(std::move(u), encoded[i], base, nullptr);
    }
    core.try_aggregate(now, kNoInFlight, nullptr);
    return seafl::bench::g_heap_allocs.load() - before;
  }
};

struct RoundNumbers {
  double rounds_per_sec = 0.0;
  std::uint64_t max_allocs_per_round = 0;
};

RoundNumbers measure_rounds(RoundHarness& h, VectorBackend backend,
                            int rounds) {
  VectorBackendScope scope(backend);
  for (int i = 0; i < 3; ++i) {  // warmup: grow every buffer/slot once
    h.encode_round();
    h.server_round();
  }
  RoundNumbers out;
  double secs = 0.0;
  for (int i = 0; i < rounds; ++i) {
    h.encode_round();
    const auto t0 = Clock::now();
    const std::uint64_t allocs = h.server_round();
    secs += seconds_since(t0);
    out.max_allocs_per_round = std::max(out.max_allocs_per_round, allocs);
  }
  out.rounds_per_sec = rounds / secs;
  return out;
}

bool under_sanitizers() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

/// Writes BENCH_agg.json. Returns false when the arena-on allocation gate
/// fails (nonzero heap allocations in a steady-state round).
bool write_agg_json(const std::string& path, bool smoke) {
  SerialKernelScope serial;  // single-thread: kernel numbers, not pool fan-out
  std::ofstream out(path);
  out << "{\n  \"host_simd\": \""
      << (simd_vector_available() ? "avx2" : "none") << "\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"kernel_gbs\": {\n";

  const std::vector<std::size_t> dims =
      smoke ? std::vector<std::size_t>{1 << 16}
            : std::vector<std::size_t>{1 << 16, 1 << 20};
  bool first = true;
  for (const KernelSpec& spec : kKernels) {
    if (!first) out << ",\n";
    first = false;
    out << "    \"" << spec.name << "\": {";
    bool first_dim = true;
    for (const std::size_t dim : dims) {
      const double scalar =
          kernel_gbs(spec, dim, VectorBackend::kScalar, smoke);
      const double simd = kernel_gbs(spec, dim, VectorBackend::kSimd, smoke);
      if (!first_dim) out << ", ";
      first_dim = false;
      out << "\"" << dim << "\": {\"scalar\": " << scalar
          << ", \"simd\": " << simd << ", \"speedup\": " << simd / scalar
          << ", \"reduction\": " << (spec.reduction ? "true" : "false")
          << "}";
    }
    out << "}";
  }

  const std::size_t k = 10;
  const std::size_t dim = smoke ? (1 << 14) : (1 << 16);
  const int rounds = smoke ? 4 : 10;
  RoundHarness harness(k, dim);
  const RoundNumbers scalar =
      measure_rounds(harness, VectorBackend::kScalar, rounds);
  const RoundNumbers simd =
      measure_rounds(harness, VectorBackend::kSimd, rounds);

  // The "before" number: same plane with the arena disabled, so every slot
  // and decode buffer goes back to per-call heap allocation.
  Workspace::set_enabled(false);
  const RoundNumbers arena_off =
      measure_rounds(harness, VectorBackend::kSimd, rounds);
  Workspace::set_enabled(true);

  const std::uint64_t arena_on_allocs =
      std::max(scalar.max_allocs_per_round, simd.max_allocs_per_round);
  out << "\n  },\n  \"aggregation_round\": {\n"
      << "    \"buffer_k\": " << k << ", \"dim\": " << dim
      << ", \"codec\": \"int8\", \"screening\": true,\n"
      << "    \"rounds_per_sec\": {\"scalar\": " << scalar.rounds_per_sec
      << ", \"simd\": " << simd.rounds_per_sec
      << ", \"speedup\": " << simd.rounds_per_sec / scalar.rounds_per_sec
      << "},\n"
      << "    \"allocs_per_round\": {\"arena_off\": "
      << arena_off.max_allocs_per_round
      << ", \"arena_on\": " << arena_on_allocs << "}\n  }\n}\n";

  if (arena_on_allocs != 0 && !under_sanitizers()) {
    std::fprintf(stderr,
                 "FAIL: %llu heap allocation(s) in a steady-state "
                 "aggregation round (expected 0)\n",
                 static_cast<unsigned long long>(arena_on_allocs));
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;

  // Strip --seafl_* flags before google-benchmark sees argv.
  int out_argc = 0;
  std::vector<char*> out_argv;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seafl_json=", 0) == 0) {
      json_path = arg.substr(std::strlen("--seafl_json="));
    } else if (arg == "--seafl_smoke") {
      smoke = true;
    } else {
      out_argv.push_back(argv[i]);
      ++out_argc;
    }
  }

  if (!json_path.empty()) {
    const bool ok = write_agg_json(json_path, smoke);
    std::printf("wrote %s\n", json_path.c_str());
    return ok ? 0 : 1;
  }

  benchmark::Initialize(&out_argc, out_argv.data());
  if (benchmark::ReportUnrecognizedArguments(out_argc, out_argv.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
