// Aggregation microbenchmarks: server-side cost per round as the buffer
// size K and model dimension grow. The paper motivates semi-async buffering
// partly by FedAsync's per-update aggregation overhead; this quantifies the
// cost of SEAFL's adaptive weighting against uniform FedBuff averaging.
#include <benchmark/benchmark.h>

#include "core/seafl_strategy.h"
#include "fl/strategies.h"

namespace {

using namespace seafl;

std::vector<LocalUpdate> make_buffer(std::size_t k, std::size_t dim,
                                     std::uint64_t round) {
  Rng rng(7);
  std::vector<LocalUpdate> buffer(k);
  for (std::size_t i = 0; i < k; ++i) {
    buffer[i].client = i;
    buffer[i].base_round = round - (i % 4);
    buffer[i].num_samples = 50 + i;
    buffer[i].epochs_completed = 5;
    buffer[i].weights.resize(dim);
    for (auto& w : buffer[i].weights) w = static_cast<float>(rng.normal());
  }
  return buffer;
}

AggregationContext make_ctx(std::uint64_t round, const ModelVector& global,
                            const std::vector<LocalUpdate>& buffer) {
  AggregationContext ctx;
  ctx.round = round;
  ctx.global = &global;
  for (const auto& u : buffer) ctx.total_samples += u.num_samples;
  return ctx;
}

void BM_SeaflAggregate(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  const auto buffer = make_buffer(k, dim, 10);
  SeaflStrategy strategy{SeaflConfig{}};
  ModelVector global(dim, 0.1f);
  const auto ctx = make_ctx(10, global, buffer);
  for (auto _ : state) {
    ModelVector g = global;
    strategy.aggregate(ctx, buffer, g);
    benchmark::DoNotOptimize(g.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * k *
                          dim);
}
BENCHMARK(BM_SeaflAggregate)
    ->Args({5, 1 << 12})
    ->Args({10, 1 << 12})
    ->Args({20, 1 << 12})
    ->Args({10, 1 << 16})
    ->Args({10, 1 << 20});

void BM_FedBuffAggregate(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  const auto buffer = make_buffer(k, dim, 10);
  FedBuffStrategy strategy;
  ModelVector global(dim, 0.1f);
  const auto ctx = make_ctx(10, global, buffer);
  for (auto _ : state) {
    ModelVector g = global;
    strategy.aggregate(ctx, buffer, g);
    benchmark::DoNotOptimize(g.data());
  }
}
BENCHMARK(BM_FedBuffAggregate)
    ->Args({10, 1 << 12})
    ->Args({10, 1 << 16})
    ->Args({10, 1 << 20});

void BM_FedAsyncPerUpdate(benchmark::State& state) {
  // FedAsync aggregates on every single arrival; per-update cost times K
  // updates is the overhead the buffered designs amortize.
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto buffer = make_buffer(1, dim, 10);
  FedAsyncStrategy strategy;
  ModelVector global(dim, 0.1f);
  const auto ctx = make_ctx(10, global, buffer);
  for (auto _ : state) {
    ModelVector g = global;
    strategy.aggregate(ctx, buffer, g);
    benchmark::DoNotOptimize(g.data());
  }
}
BENCHMARK(BM_FedAsyncPerUpdate)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_AdaptiveWeightsOnly(benchmark::State& state) {
  // Just Eqs. 4-6 (no model averaging): the weighting overhead itself.
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  const auto buffer = make_buffer(k, dim, 10);
  ModelVector global(dim, 0.1f);
  const auto ctx = make_ctx(10, global, buffer);
  const AdaptiveWeightConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_adaptive_weights(cfg, ctx, buffer));
  }
}
BENCHMARK(BM_AdaptiveWeightsOnly)->Args({10, 1 << 12})->Args({10, 1 << 16});

}  // namespace
