// Simulation-throughput bench, two modes.
//
// Classic mode (default, --clients < 1000): rounds/sec of one SEAFL arm with
// the default lazy (train-at-upload) session execution versus the eager
// executor (DESIGN.md §12) at several worker budgets.
//
// The global pool cannot be resized once started, so the sweep fixes the
// pool size once (--threads, default 8) and varies `sim_jobs` — the cap on
// concurrently speculated sessions — across 1/2/4/8. On a host with enough
// cores, sim_jobs IS the effective worker count; on a smaller host the
// measurement is honest about it: the JSON records the machine's hardware
// threads next to every number, and speedups saturate at the physical core
// count.
//
// Every eager run is also checked bitwise against the serial baseline
// (final_weights plus the headline counters) — a speedup that changes the
// result would be a bug, not a win.
//
// Scale mode (--clients >= 1000): the ROADMAP item-1 population sweep. For
// each population in {1k, 10k, 100k, 1M} up to --clients, one SEAFL arm
// runs over a pooled lazy partition (TaskSpec::pool_samples) and the
// O(1)-memory Fleet, recording rounds/sec and peak RSS (VmHWM from
// /proc/self/status) per point. Memory must track active sessions, not the
// population — the --rss-ceiling-mb gate turns that claim into the exit
// code (DESIGN.md §16).
//
// Flags (on top of the bench_common world flags):
//   --smoke            tiny run (CI): fewer rounds, one timing trial
//   --threads N        global pool size (default 8)
//   --json PATH        output path (default results/BENCH_sim.json)
//   --rss-ceiling-mb N scale mode: fail (exit 1) if any sweep point's peak
//                      RSS exceeds N MiB (default 2048; 0 disables)
//   --checkpoint-split classic mode: also run the horizon as two legs — run
//                      to R/2, write a checkpoint, halt, resume in a fresh
//                      simulation — and check the result is bitwise
//                      identical to the straight run (DESIGN.md §15)
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"

namespace {

using namespace seafl;
using Clock = std::chrono::steady_clock;

/// Peak resident set (VmHWM) of this process in bytes, from
/// /proc/self/status; 0 when unavailable (non-Linux).
std::size_t peak_rss_bytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return static_cast<std::size_t>(
                 std::strtoull(line.c_str() + 6, nullptr, 10)) *
             1024;
    }
  }
  return 0;
}

/// Resets the kernel's peak-RSS watermark so per-leg VmHWM readings are
/// independent. Returns false when the kernel refuses (readings then stay
/// monotone across legs — still valid for an ascending sweep).
bool reset_peak_rss() {
  std::ofstream clear("/proc/self/clear_refs");
  if (!clear.good()) return false;
  clear << "5";
  clear.flush();
  return clear.good();
}

struct Measurement {
  double best_seconds = 0.0;
  std::size_t peak_rss = 0;
  RunResult result;
};

Measurement measure(const ExperimentParams& params,
                    const bench::World& world, int trials) {
  Measurement m;
  for (int t = 0; t < trials; ++t) {
    const auto t0 = Clock::now();
    RunResult r = run_arm("seafl", params, world.task, world.fleet, nullptr);
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (t == 0 || secs < m.best_seconds) m.best_seconds = secs;
    m.result = std::move(r);
  }
  m.peak_rss = peak_rss_bytes();
  return m;
}

double rounds_per_sec(const Measurement& m) {
  return static_cast<double>(m.result.rounds) / m.best_seconds;
}

/// One leg of the checkpoint-split check: the seafl arm with the
/// checkpoint knobs applied (run_arm keeps them out of ExperimentParams on
/// purpose — they never change results, so they never reach the exp hash).
RunResult run_split_leg(const ExperimentParams& params,
                        const bench::World& world, std::uint64_t every,
                        std::uint64_t halt_after, const std::string& dir,
                        bool resume) {
  Arm arm = make_arm("seafl", params);
  arm.config.checkpoint_every_rounds = every;
  arm.config.checkpoint_dir = dir;
  arm.config.halt_after_rounds = halt_after;
  const ModelFactory factory =
      make_model(world.task.default_model, world.task.input,
                 world.task.num_classes);
  const double mlp_work = estimate_flops_per_sample(
      ModelKind::kMlp, InputSpec{1, 1, 32}, world.task.num_classes);
  const double work =
      estimate_flops_per_sample(world.task.default_model, world.task.input,
                                world.task.num_classes) /
      mlp_work;
  Simulation sim(world.task, factory, world.fleet, std::move(arm.strategy),
                 arm.config, work);
  return resume ? sim.resume_from_dir(dir) : sim.run();
}

bool bitwise_equal(const RunResult& a, const RunResult& b) {
  return a.final_weights.size() == b.final_weights.size() &&
         std::memcmp(a.final_weights.data(), b.final_weights.data(),
                     a.final_weights.size() * sizeof(float)) == 0 &&
         a.rounds == b.rounds && a.total_updates == b.total_updates &&
         a.final_accuracy == b.final_accuracy &&
         a.final_time == b.final_time &&
         a.speculation_cut == b.speculation_cut &&
         a.speculation_wasted == b.speculation_wasted;
}

/// One scale-sweep point: SEAFL over `clients` pooled lazy clients.
struct ScalePoint {
  std::size_t clients = 0;
  double wall_sec = 0.0;
  double rounds_per_sec = 0.0;
  std::uint64_t rounds = 0;
  std::size_t total_updates = 0;
  std::size_t peak_rss = 0;
};

ScalePoint run_scale_point(std::size_t clients, bool smoke,
                           std::uint64_t seed) {
  // The dataset is a fixed pool shared by every population size: per-client
  // index lists are lazy, so data memory is O(pool), not O(clients).
  TaskSpec spec;
  spec.name = "synth-mnist";
  spec.num_clients = clients;
  spec.samples_per_client = 50;
  spec.pool_samples = 4096;
  spec.test_samples = 200;
  spec.seed = seed;
  const FlTask task = make_task(spec);

  FleetConfig fc;
  fc.num_devices = clients;
  fc.seed = seed;
  const Fleet fleet(fc);

  ExperimentParams params;
  params.concurrency = 64;
  params.buffer_size = 16;
  params.local_epochs = 1;
  params.batch_size = 10;
  params.max_rounds = smoke ? 3 : 8;
  params.stop_at_target = false;
  params.eval_every = 1000;  // keep evaluation off the measured path
  params.eval_subset = 100;
  params.seed = seed;

  Arm arm = make_arm("seafl", params);
  const ModelFactory factory =
      make_model(task.default_model, task.input, task.num_classes);

  reset_peak_rss();
  const auto t0 = Clock::now();
  Simulation sim(task, factory, fleet, std::move(arm.strategy), arm.config,
                 /*work_per_sample=*/1.0);
  const RunResult r = sim.run();
  ScalePoint p;
  p.clients = clients;
  p.wall_sec = std::chrono::duration<double>(Clock::now() - t0).count();
  p.rounds = r.rounds;
  p.total_updates = r.total_updates;
  p.rounds_per_sec =
      p.wall_sec > 0.0 ? static_cast<double>(r.rounds) / p.wall_sec : 0.0;
  p.peak_rss = peak_rss_bytes();
  return p;
}

int scale_main(const CliArgs& args, std::size_t max_clients, bool smoke) {
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 42));
  const std::size_t ceiling_mb = static_cast<std::size_t>(
      args.get_int("rss-ceiling-mb", 2048));
  const bool rss_resettable = reset_peak_rss();
  if (!rss_resettable) {
    std::printf("note: /proc/self/clear_refs unavailable; peak-RSS readings "
                "are monotone across the (ascending) sweep\n");
  }

  std::vector<ScalePoint> curve;
  bool rss_ok = true;
  for (const std::size_t n : {std::size_t{1000}, std::size_t{10000},
                              std::size_t{100000}, std::size_t{1000000}}) {
    if (n > max_clients) break;
    const ScalePoint p = run_scale_point(n, smoke, seed);
    const double rss_mib =
        static_cast<double>(p.peak_rss) / (1024.0 * 1024.0);
    const bool over =
        ceiling_mb > 0 && p.peak_rss > ceiling_mb * 1024 * 1024;
    rss_ok = rss_ok && !over;
    std::printf("clients=%-8zu rounds=%llu  %.3f rounds/sec  wall %.2fs  "
                "peak RSS %.1f MiB%s\n",
                p.clients, static_cast<unsigned long long>(p.rounds),
                p.rounds_per_sec, p.wall_sec, rss_mib,
                over ? "  OVER CEILING" : "");
    curve.push_back(p);
  }

  const std::string path =
      args.get_string("json", "results/BENCH_sim.json");
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path());
  std::ofstream out(path);
  out << "{\n  \"mode\": \"scale\",\n  \"host_hardware_threads\": "
      << std::thread::hardware_concurrency()
      << ",\n  \"smoke\": " << (smoke ? "true" : "false")
      << ",\n  \"rss_reset_supported\": "
      << (rss_resettable ? "true" : "false")
      << ",\n  \"rss_ceiling_mb\": " << ceiling_mb
      << ",\n  \"config\": {\"algorithm\": \"seafl\", \"pool_samples\": "
      << 4096 << ", \"samples_per_client\": " << 50
      << ", \"concurrency\": " << 64 << ", \"buffer_size\": " << 16
      << "},\n  \"curve\": [\n";
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const ScalePoint& p = curve[i];
    out << "    {\"clients\": " << p.clients
        << ", \"rounds\": " << p.rounds
        << ", \"rounds_per_sec\": " << p.rounds_per_sec
        << ", \"wall_sec\": " << p.wall_sec
        << ", \"total_updates\": " << p.total_updates
        << ", \"peak_rss_bytes\": " << p.peak_rss << "}"
        << (i + 1 < curve.size() ? ",\n" : "\n");
  }
  out << "  ],\n  \"rss_within_ceiling\": " << (rss_ok ? "true" : "false")
      << "\n}\n";
  std::printf("wrote %s\n", path.c_str());
  return rss_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace seafl::bench;
  CliArgs args(argc, argv);

  const bool smoke = args.get_bool("smoke", false);
  const std::size_t threads =
      static_cast<std::size_t>(args.get_int("threads", 8));
  set_global_pool_threads(threads);

  // Population-scale sweep: any --clients at or beyond 1000 selects the
  // ROADMAP item-1 curve instead of the serial-vs-eager comparison.
  const std::size_t clients_flag =
      static_cast<std::size_t>(args.get_int("clients", 30));
  if (clients_flag >= 1000) return scale_main(args, clients_flag, smoke);

  // Buffered SEAFL with K >= 4 and enough concurrent sessions that the
  // executor has real overlap to exploit.
  WorldDefaults defaults;
  defaults.clients = 30;
  defaults.samples_per_client = smoke ? 10 : 100;
  defaults.test_samples = smoke ? 30 : 120;
  const World world = make_world(args, defaults);

  ExperimentParams params = make_params(
      args, world, /*default_rounds=*/smoke ? 2 : 40,
      /*default_concurrency=*/10);
  params.buffer_size =
      static_cast<std::size_t>(args.get_int("buffer", 5));  // K
  params.local_epochs =
      static_cast<std::size_t>(args.get_int("epochs", smoke ? 2 : 5));
  params.batch_size = static_cast<std::size_t>(args.get_int("batch", 10));
  params.stop_at_target = false;  // equal round budgets across modes
  params.eval_every = 4;          // keep evaluation off the critical path

  const int trials = smoke ? 1 : 2;

  // Warmup run: faults in the dataset pages, settles arena slots.
  { ExperimentParams w = params; measure(w, world, 1); }

  ExperimentParams serial_params = params;
  serial_params.eager_training = false;
  const Measurement serial = measure(serial_params, world, trials);
  const double serial_rps = rounds_per_sec(serial);
  std::printf("serial: %.3f rounds/sec (%zu rounds in %.2fs)\n", serial_rps,
              static_cast<std::size_t>(serial.result.rounds),
              serial.best_seconds);

  const std::size_t worker_counts[] = {1, 2, 4, 8};
  std::string eager_json;
  bool all_equal = true;
  double speedup_at_4 = 0.0;
  for (const std::size_t w : worker_counts) {
    ExperimentParams ep = params;
    ep.eager_training = true;
    ep.sim_jobs = w;
    const Measurement eager = measure(ep, world, trials);
    const double rps = rounds_per_sec(eager);
    const double speedup = rps / serial_rps;
    const bool equal = bitwise_equal(serial.result, eager.result);
    all_equal = all_equal && equal;
    if (w == 4) speedup_at_4 = speedup;
    std::printf(
        "eager sim_jobs=%zu: %.3f rounds/sec, speedup %.2fx, bitwise %s\n",
        w, rps, speedup, equal ? "equal" : "DIFFERENT");
    if (!eager_json.empty()) eager_json += ",\n";
    eager_json += "    \"" + std::to_string(w) +
                  "\": {\"rounds_per_sec\": " + std::to_string(rps) +
                  ", \"wall_sec\": " + std::to_string(eager.best_seconds) +
                  ", \"speedup\": " + std::to_string(speedup) +
                  ", \"peak_rss_bytes\": " + std::to_string(eager.peak_rss) +
                  ", \"bitwise_equal\": " + (equal ? "true" : "false") + "}";
  }

  // Optional long-horizon split: N rounds straight == N/2 rounds + durable
  // checkpoint + crash + resume-in-a-fresh-process + N/2 rounds, bitwise.
  std::string split_json;
  if (args.get_bool("checkpoint-split", false)) {
    const std::uint64_t total = params.max_rounds;
    const std::uint64_t half = std::max<std::uint64_t>(1, total / 2);
    const std::string dir = "results/sim_scale_ckpt";
    std::filesystem::remove_all(dir);

    auto t0 = Clock::now();
    const RunResult straight =
        run_split_leg(params, world, 0, 0, "", false);
    const double straight_secs =
        std::chrono::duration<double>(Clock::now() - t0).count();

    t0 = Clock::now();
    run_split_leg(params, world, half, half, dir, false);  // leg 1: crash
    const RunResult resumed =
        run_split_leg(params, world, half, 0, dir, true);  // leg 2: resume
    const double split_secs =
        std::chrono::duration<double>(Clock::now() - t0).count();

    const bool split_equal = bitwise_equal(straight, resumed);
    all_equal = all_equal && split_equal;
    std::printf(
        "checkpoint-split: %llu rounds straight (%.2fs) vs halt@%llu + "
        "resume (%.2fs), bitwise %s\n",
        static_cast<unsigned long long>(total), straight_secs,
        static_cast<unsigned long long>(half), split_secs,
        split_equal ? "equal" : "DIFFERENT");
    split_json =
        ",\n  \"checkpoint_split\": {\"rounds\": " + std::to_string(total) +
        ", \"halt_at\": " + std::to_string(half) +
        ", \"straight_wall_sec\": " + std::to_string(straight_secs) +
        ", \"split_wall_sec\": " + std::to_string(split_secs) +
        ", \"bitwise_equal\": " + (split_equal ? "true" : "false") + "}";
  }

  const std::string path =
      args.get_string("json", "results/BENCH_sim.json");
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path());
  std::ofstream out(path);
  out << "{\n  \"host_hardware_threads\": "
      << std::thread::hardware_concurrency()
      << ",\n  \"pool_threads\": " << global_pool().size()
      << ",\n  \"smoke\": " << (smoke ? "true" : "false")
      << ",\n  \"config\": {\"algorithm\": \"seafl\", \"clients\": "
      << defaults.clients << ", \"buffer_size\": " << params.buffer_size
      << ", \"concurrency\": " << params.concurrency
      << ", \"local_epochs\": " << params.local_epochs
      << ", \"rounds\": " << params.max_rounds << "}"
      << ",\n  \"serial\": {\"rounds_per_sec\": " << serial_rps
      << ", \"wall_sec\": " << serial.best_seconds
      << ", \"peak_rss_bytes\": " << serial.peak_rss << "}"
      << ",\n  \"eager\": {\n" << eager_json << "\n  }"
      << ",\n  \"speedup_at_4_workers\": " << speedup_at_4
      << ",\n  \"all_bitwise_equal\": " << (all_equal ? "true" : "false")
      << split_json << "\n}\n";
  std::printf("wrote %s\n", path.c_str());
  return all_equal ? 0 : 1;
}
