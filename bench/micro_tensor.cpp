// Substrate microbenchmarks: the tensor kernels every FL round leans on.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "nn/model_zoo.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/ops.h"

namespace {

using namespace seafl;

std::vector<float> random_vec(std::size_t n, std::uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

void BM_Axpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto y = random_vec(n, 1);
  const auto x = random_vec(n, 2);
  for (auto _ : state) {
    axpy(y, 0.5f, x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          2 * sizeof(float));
}
BENCHMARK(BM_Axpy)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_Dot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_vec(n, 3);
  const auto b = random_vec(n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dot(a, b));
  }
}
BENCHMARK(BM_Dot)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_CosineSimilarity(benchmark::State& state) {
  // The per-update cost of SEAFL's importance factor (Eq. 5).
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_vec(n, 5);
  const auto b = random_vec(n, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cosine_similarity(a, b));
  }
}
BENCHMARK(BM_CosineSimilarity)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_GemmNN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_vec(n * n, 7);
  const auto b = random_vec(n * n, 8);
  std::vector<float> c(n * n);
  for (auto _ : state) {
    gemm(Trans::kNo, Trans::kNo, n, n, n, 1.0f, a, b, 0.0f, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          n * n * 2);
}
BENCHMARK(BM_GemmNN)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmNT(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_vec(n * n, 9);
  const auto b = random_vec(n * n, 10);
  std::vector<float> c(n * n);
  for (auto _ : state) {
    gemm(Trans::kNo, Trans::kYes, n, n, n, 1.0f, a, b, 0.0f, c);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmNT)->Arg(64)->Arg(128);

void BM_Im2Col(benchmark::State& state) {
  ConvGeom g;
  g.channels = 3;
  g.height = g.width = static_cast<std::size_t>(state.range(0));
  g.kernel_h = g.kernel_w = 3;
  g.stride = 1;
  g.pad = 1;
  const auto image = random_vec(g.channels * g.height * g.width, 11);
  std::vector<float> cols(g.col_rows() * g.col_cols());
  for (auto _ : state) {
    im2col(g, image, cols);
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2Col)->Arg(12)->Arg(32)->Arg(64);

void BM_ModelForwardBackward(benchmark::State& state) {
  // One training step of each zoo architecture on a 16-sample batch — the
  // unit of work behind every simulated client epoch.
  const auto kind = static_cast<ModelKind>(state.range(0));
  const InputSpec input =
      kind == ModelKind::kMlp ? InputSpec{1, 1, 32} : InputSpec{3, 12, 12};
  auto model = make_model(kind, input, 10)();
  Rng rng(12);
  model->init(rng);
  Tensor x({16, input.numel()});
  x.fill_normal(rng, 0.0f, 1.0f);
  Tensor dout({16, 10});
  dout.fill(0.01f);
  for (auto _ : state) {
    model->forward(x, true);
    model->zero_grad();
    model->backward(dout);
    benchmark::DoNotOptimize(model.get());
  }
  state.SetLabel(model_kind_name(kind));
}
BENCHMARK(BM_ModelForwardBackward)
    ->Arg(static_cast<int>(ModelKind::kMlp))
    ->Arg(static_cast<int>(ModelKind::kLenetLite))
    ->Arg(static_cast<int>(ModelKind::kResnetLite))
    ->Arg(static_cast<int>(ModelKind::kVggLite));

}  // namespace
