// Substrate microbenchmarks: the tensor kernels every FL round leans on.
//
// Two modes:
//  * google-benchmark (default): interactive kernel microbenchmarks; GEMM
//    benches take (size, backend) so `--benchmark_filter=Gemm` compares the
//    reference and tiled kernels side by side.
//  * JSON recorder: `--seafl_json=BENCH_tensor.json` measures GFLOP/s per
//    conv/dense-shaped problem for BOTH backends (the reference numbers are
//    the recorded pre-optimization baseline) plus heap allocations per
//    training step with the workspace arena off ("before") and on ("after");
//    `--seafl_train_json=BENCH_train.json` records training steps/sec and a
//    small fig5-style simulation per backend. `--seafl_smoke` shrinks the
//    measurement so CI can exercise the path in seconds;
//    `--seafl_threads=N` sizes the kernel pool (recorded runs use 4).
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/presets.h"
#include "data/registry.h"
#include "fl/client.h"
#include "nn/model_zoo.h"
#include "sim/fleet.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/microkernel.h"
#include "tensor/ops.h"
#include "tensor/workspace.h"

// Global allocation counter (bench_common.h): every operator new in the
// process ticks seafl::bench::g_heap_allocs, so "allocations per training
// step" is exact, not sampled.
SEAFL_BENCH_DEFINE_ALLOC_HOOK();

namespace {

using seafl::bench::g_heap_allocs;

using namespace seafl;
using Clock = std::chrono::steady_clock;

std::vector<float> random_vec(std::size_t n, std::uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// ------------------------------------------------------- google benchmarks

void BM_Axpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto y = random_vec(n, 1);
  const auto x = random_vec(n, 2);
  for (auto _ : state) {
    axpy(y, 0.5f, x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          2 * sizeof(float));
}
BENCHMARK(BM_Axpy)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_Dot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_vec(n, 3);
  const auto b = random_vec(n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dot(a, b));
  }
}
BENCHMARK(BM_Dot)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_CosineSimilarity(benchmark::State& state) {
  // The per-update cost of SEAFL's importance factor (Eq. 5).
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_vec(n, 5);
  const auto b = random_vec(n, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cosine_similarity(a, b));
  }
}
BENCHMARK(BM_CosineSimilarity)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_GemmNN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  GemmBackendScope backend(static_cast<GemmBackend>(state.range(1)));
  const auto a = random_vec(n * n, 7);
  const auto b = random_vec(n * n, 8);
  std::vector<float> c(n * n);
  for (auto _ : state) {
    gemm(Trans::kNo, Trans::kNo, n, n, n, 1.0f, a, b, 0.0f, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          n * n * 2);
  state.SetLabel(state.range(1) == 0 ? "reference" : "tiled");
}
BENCHMARK(BM_GemmNN)
    ->ArgsProduct({{32, 64, 128, 256},
                   {static_cast<int>(GemmBackend::kReference),
                    static_cast<int>(GemmBackend::kTiled)}});

void BM_GemmNT(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  GemmBackendScope backend(static_cast<GemmBackend>(state.range(1)));
  const auto a = random_vec(n * n, 9);
  const auto b = random_vec(n * n, 10);
  std::vector<float> c(n * n);
  for (auto _ : state) {
    gemm(Trans::kNo, Trans::kYes, n, n, n, 1.0f, a, b, 0.0f, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          n * n * 2);
  state.SetLabel(state.range(1) == 0 ? "reference" : "tiled");
}
BENCHMARK(BM_GemmNT)
    ->ArgsProduct({{64, 128},
                   {static_cast<int>(GemmBackend::kReference),
                    static_cast<int>(GemmBackend::kTiled)}});

void BM_Im2Col(benchmark::State& state) {
  ConvGeom g;
  g.channels = 3;
  g.height = g.width = static_cast<std::size_t>(state.range(0));
  g.kernel_h = g.kernel_w = 3;
  g.stride = 1;
  g.pad = 1;
  const auto image = random_vec(g.channels * g.height * g.width, 11);
  std::vector<float> cols(g.col_rows() * g.col_cols());
  for (auto _ : state) {
    im2col(g, image, cols);
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2Col)->Arg(12)->Arg(32)->Arg(64);

void BM_ModelForwardBackward(benchmark::State& state) {
  // One training step of each zoo architecture on a 16-sample batch — the
  // unit of work behind every simulated client epoch.
  const auto kind = static_cast<ModelKind>(state.range(0));
  const InputSpec input =
      kind == ModelKind::kMlp ? InputSpec{1, 1, 32} : InputSpec{3, 12, 12};
  auto model = make_model(kind, input, 10)();
  Rng rng(12);
  model->init(rng);
  Tensor x({16, input.numel()});
  x.fill_normal(rng, 0.0f, 1.0f);
  Tensor dout({16, 10});
  dout.fill(0.01f);
  for (auto _ : state) {
    model->forward(x, true);
    model->zero_grad();
    model->backward(dout);
    benchmark::DoNotOptimize(model.get());
  }
  state.SetLabel(model_kind_name(kind));
}
BENCHMARK(BM_ModelForwardBackward)
    ->Arg(static_cast<int>(ModelKind::kMlp))
    ->Arg(static_cast<int>(ModelKind::kLenetLite))
    ->Arg(static_cast<int>(ModelKind::kResnetLite))
    ->Arg(static_cast<int>(ModelKind::kVggLite));

// ------------------------------------------------------------ JSON recorder

struct GemmShape {
  const char* name;   // shape class
  Trans ta, tb;
  std::size_t m, n, k;
};

// Conv-shaped problems are the lowered im2col GEMMs of the zoo models
// (m = filters, n = output pixels, k = C*KH*KW); dense-shaped is a batch
// hitting a fully-connected layer; squares bound the classic regime.
constexpr GemmShape kShapes[] = {
    {"conv_fwd_small", Trans::kNo, Trans::kNo, 16, 144, 27},
    {"conv_fwd", Trans::kNo, Trans::kNo, 32, 196, 288},
    {"conv_bwd_dW", Trans::kNo, Trans::kYes, 32, 288, 196},
    {"conv_bwd_dX", Trans::kYes, Trans::kNo, 288, 196, 32},
    {"dense_fwd", Trans::kNo, Trans::kYes, 16, 128, 512},
    {"square_128", Trans::kNo, Trans::kNo, 128, 128, 128},
    {"square_256", Trans::kNo, Trans::kNo, 256, 256, 256},
};

double gemm_gflops(const GemmShape& s, GemmBackend backend, bool smoke) {
  GemmBackendScope scope(backend);
  const auto a = random_vec(s.m * s.k, 21);
  const auto b = random_vec(s.k * s.n, 22);
  std::vector<float> c(s.m * s.n, 0.0f);
  const double flop = 2.0 * static_cast<double>(s.m) * s.n * s.k;
  // Calibrate repetitions to ~0.2 s (smoke: a handful of iterations).
  const std::size_t reps =
      smoke ? 3
            : std::max<std::size_t>(8, static_cast<std::size_t>(2e8 / flop));
  // Warmup: page in operands, settle arena slots.
  for (int i = 0; i < 2; ++i)
    gemm(s.ta, s.tb, s.m, s.n, s.k, 1.0f, a, b, 0.0f, c);
  // Best of several trials: the minimum elapsed time is the least
  // scheduler-disturbed estimate of the kernel's actual cost.
  const int trials = smoke ? 1 : 3;
  double best_secs = 0.0;
  for (int t = 0; t < trials; ++t) {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < reps; ++i)
      gemm(s.ta, s.tb, s.m, s.n, s.k, 1.0f, a, b, 0.0f, c);
    const double secs = seconds_since(t0);
    if (t == 0 || secs < best_secs) best_secs = secs;
  }
  benchmark::DoNotOptimize(c.data());
  return flop * static_cast<double>(reps) / best_secs / 1e9;
}

struct StepHarness {
  std::unique_ptr<Sequential> model;
  Tensor x, dout;

  StepHarness() {
    const InputSpec input{3, 12, 12};
    model = make_model(ModelKind::kLenetLite, input, 10)();
    Rng rng(12);
    model->init(rng);
    x.ensure_shape({16, 3, 12, 12});
    x.fill_normal(rng, 0.0f, 1.0f);
    dout.ensure_shape({16, 10});
    dout.fill(0.01f);
  }

  void step() {
    model->forward(x, true);
    model->zero_grad();
    model->backward(dout);
  }
};

/// Heap allocations per lenet_lite training step, after warmup. Measured in
/// the serial-kernel configuration exp::Runner uses per simulation (pool
/// task dispatch itself allocates; that cost is per fan-out, not per tensor,
/// and absent in the production training path).
double allocs_per_step(bool arena_enabled) {
  Workspace::set_enabled(arena_enabled);
  SerialKernelScope serial;
  StepHarness h;
  for (int i = 0; i < 3; ++i) h.step();  // warmup: grow all buffers once
  constexpr int kSteps = 10;
  const std::uint64_t before = g_heap_allocs.load();
  for (int i = 0; i < kSteps; ++i) h.step();
  const std::uint64_t after = g_heap_allocs.load();
  Workspace::set_enabled(true);
  return static_cast<double>(after - before) / kSteps;
}

/// Heap allocations per ClientTrainer::train session, after warmup. The
/// trainer owns every buffer a session needs (model activations via the
/// arena, loader indices, result weights, FedProx scratch), so the
/// steady-state count must be exactly zero — the eager executor leans on
/// this to train on pool workers without allocator contention.
double allocs_per_train_session() {
  SerialKernelScope serial;
  TaskSpec spec;
  spec.name = "synth-mnist";
  spec.num_clients = 4;
  spec.samples_per_client = 20;
  spec.test_samples = 20;
  FlTask task = make_task(spec);
  RunConfig config;
  config.batch_size = 8;
  config.local_epochs = 2;
  config.seed = 42;
  const ModelFactory factory =
      make_model(task.default_model, task.input, task.num_classes);
  ClientTrainer trainer(task, factory, config);
  ModelVector base(trainer.num_params(), 0.01f);
  // Warmup: one session per client, so every per-client buffer (batch
  // tensors sized by that client's partition) reaches steady state.
  for (std::size_t c = 0; c < spec.num_clients; ++c) {
    trainer.train(c, base, config.local_epochs, /*round=*/0);
  }
  constexpr int kSessions = 8;
  const std::uint64_t before = g_heap_allocs.load();
  for (int i = 0; i < kSessions; ++i) {
    trainer.train(i % spec.num_clients, base, config.local_epochs,
                  /*round=*/static_cast<std::uint64_t>(1 + i));
  }
  const std::uint64_t after = g_heap_allocs.load();
  return static_cast<double>(after - before) / kSessions;
}

double train_steps_per_sec(GemmBackend backend, bool smoke) {
  GemmBackendScope scope(backend);
  StepHarness h;
  for (int i = 0; i < 3; ++i) h.step();
  const int steps = smoke ? 5 : 60;
  const auto t0 = Clock::now();
  for (int i = 0; i < steps; ++i) h.step();
  return steps / seconds_since(t0);
}

/// Wall-clock seconds of a small fig5-style semi-async run (synth-mnist,
/// seafl2 preset) — the end-to-end number the kernel work feeds into.
double fig5_style_seconds(GemmBackend backend, bool smoke) {
  GemmBackendScope scope(backend);
  TaskSpec spec;
  spec.name = "synth-mnist";
  spec.num_clients = 10;
  spec.samples_per_client = smoke ? 8 : 20;
  spec.test_samples = smoke ? 30 : 80;
  FlTask task = make_task(spec);
  FleetConfig fc;
  fc.num_devices = 10;
  fc.seed = 7;
  Fleet fleet(fc);
  ExperimentParams p;
  p.buffer_size = 3;
  p.concurrency = 5;
  p.local_epochs = 1;
  p.batch_size = 8;
  p.max_rounds = smoke ? 3 : 10;
  p.stop_at_target = false;
  p.seed = 42;
  const auto t0 = Clock::now();
  run_arm("seafl2", p, task, fleet, nullptr);
  return seconds_since(t0);
}

const char* backend_name(GemmBackend b) {
  return b == GemmBackend::kReference ? "reference" : "tiled";
}

void write_tensor_json(const std::string& path, bool smoke) {
  std::ofstream out(path);
  out << "{\n  \"pool_threads\": " << global_pool().size() << ",\n"
      << "  \"microkernel\": \"" << seafl::detail::microkernel_name()
      << "\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"gemm_gflops\": {\n";
  bool first_shape = true;
  for (const GemmShape& s : kShapes) {
    const double ref = gemm_gflops(s, GemmBackend::kReference, smoke);
    const double tiled = gemm_gflops(s, GemmBackend::kTiled, smoke);
    if (!first_shape) out << ",\n";
    first_shape = false;
    out << "    \"" << s.name << "\": {\"m\": " << s.m << ", \"n\": " << s.n
        << ", \"k\": " << s.k << ", \"reference\": " << ref
        << ", \"tiled\": " << tiled << ", \"speedup\": " << tiled / ref
        << "}";
  }
  const double before = allocs_per_step(/*arena_enabled=*/false);
  const double after = allocs_per_step(/*arena_enabled=*/true);
  out << "\n  },\n  \"allocs_per_training_step\": {\"arena_off\": " << before
      << ", \"arena_on\": " << after << "}\n}\n";
}

void write_train_json(const std::string& path, bool smoke) {
  std::ofstream out(path);
  out << "{\n  \"pool_threads\": " << global_pool().size() << ",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"lenet_lite_batch16\": {\n";
  bool first = true;
  for (GemmBackend be : {GemmBackend::kReference, GemmBackend::kTiled}) {
    if (!first) out << ",\n";
    first = false;
    out << "    \"" << backend_name(be)
        << "\": {\"steps_per_sec\": " << train_steps_per_sec(be, smoke)
        << ", \"fig5_style_run_sec\": " << fig5_style_seconds(be, smoke)
        << "}";
  }
  out << "\n  },\n  \"allocs_per_train_session\": "
      << allocs_per_train_session() << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path, train_json_path;
  bool smoke = false;
  std::size_t threads = 0;

  // Strip --seafl_* flags before google-benchmark sees argv.
  int out_argc = 0;
  std::vector<char*> out_argv;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seafl_json=", 0) == 0) {
      json_path = arg.substr(std::strlen("--seafl_json="));
    } else if (arg.rfind("--seafl_train_json=", 0) == 0) {
      train_json_path = arg.substr(std::strlen("--seafl_train_json="));
    } else if (arg == "--seafl_smoke") {
      smoke = true;
    } else if (arg.rfind("--seafl_threads=", 0) == 0) {
      threads = std::stoul(arg.substr(std::strlen("--seafl_threads=")));
    } else {
      out_argv.push_back(argv[i]);
      ++out_argc;
    }
  }

  if (threads != 0) seafl::set_global_pool_threads(threads);

  if (!json_path.empty() || !train_json_path.empty()) {
    if (!json_path.empty()) write_tensor_json(json_path, smoke);
    if (!train_json_path.empty()) write_train_json(train_json_path, smoke);
    return 0;
  }

  benchmark::Initialize(&out_argc, out_argv.data());
  if (benchmark::ReportUnrecognizedArguments(out_argc, out_argv.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
