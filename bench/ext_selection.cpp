// Selection-policy bench (ours) — quantifies the cohort-selection trade-off
// the paper's related work discusses (Oort, PyramidFL): speed-aware
// selection shortens rounds but reduces slow devices' participation, which
// under non-IID data costs accuracy. Runs each policy in both synchronous
// and semi-asynchronous modes.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace seafl;
  using namespace seafl::bench;
  CliArgs args(argc, argv);

  WorldDefaults defaults;
  defaults.pareto_shape = 1.05;
  const std::size_t seeds =
      static_cast<std::size_t>(args.get_int("seeds", 3));
  const auto base_seed =
      static_cast<std::uint64_t>(args.get_int("seed", 42));

  struct PolicyCase {
    std::string label;
    SelectionPolicy policy;
  };
  const std::vector<PolicyCase> policies{
      {"random (paper)", SelectionPolicy::kRandom},
      {"fastest-first", SelectionPolicy::kFastestFirst},
      {"data-weighted", SelectionPolicy::kDataWeighted},
  };

  Table table("Selection policies x modes on a heavy-tailed fleet (" +
              std::to_string(seeds) + " seeds)");
  table.set_header(seed_header());

  for (const bool sync : {true, false}) {
    for (const auto& pc : policies) {
      const SeedAggregate agg =
          run_seeds(seeds, base_seed, [&](std::uint64_t seed) {
            WorldDefaults d = defaults;
            d.seed = seed;
            const World world = make_world(args, d, /*use_flag_seed=*/false);
            ExperimentParams params = make_params(args, world);
            params.seed = seed;
            Arm arm = make_arm(sync ? "fedavg" : "seafl", params);
            arm.config.selection = pc.policy;
            const ModelFactory factory = make_model(
                world.task.default_model, world.task.input,
                world.task.num_classes);
            Simulation sim(world.task, factory, world.fleet,
                           std::move(arm.strategy), arm.config);
            return sim.run();
          });
      table.add_row(seed_row(
          std::string(sync ? "sync  / " : "semi-async / ") + pc.label, agg));
    }
  }
  emit(table, args, "ext_selection.csv");
  return 0;
}
