// Strategy comparison example: run every built-in algorithm on one task and
// print a ranking — the quickest way to see the trade-offs the paper's
// related-work section describes (sync vs async vs semi-async).
#include <algorithm>
#include <cstdio>

#include "core/seafl.h"

int main(int argc, char** argv) {
  using namespace seafl;
  CliArgs args(argc, argv);

  TaskSpec spec;
  spec.name = args.get_string("task", "synth-mnist");
  spec.num_clients = static_cast<std::size_t>(args.get_int("clients", 100));
  spec.samples_per_client =
      static_cast<std::size_t>(args.get_int("samples", 60));
  spec.dirichlet_alpha = args.get_double("dirichlet", 0.3);
  const FlTask task = make_task(spec);

  FleetConfig fc;
  fc.num_devices = spec.num_clients;
  fc.pareto_shape = args.get_double("pareto", 1.1);
  fc.seed = spec.seed;
  const Fleet fleet(fc);

  ExperimentParams params;
  params.max_rounds = static_cast<std::uint64_t>(args.get_int("rounds", 80));
  params.target_accuracy = args.get_double("target", task.target_accuracy);

  struct Entry {
    std::string label;
    RunResult result;
  };
  std::vector<Entry> entries;
  for (const auto& algo : known_algorithms()) {
    std::printf("running %s...\n", algo.c_str());
    Entry e{make_arm(algo, params).label,
            run_arm(algo, params, task, fleet)};
    entries.push_back(std::move(e));
  }

  // Rank: reached target first; ties broken by final accuracy.
  std::sort(entries.begin(), entries.end(), [](const Entry& a,
                                               const Entry& b) {
    const bool ra = a.result.time_to_target >= 0.0;
    const bool rb = b.result.time_to_target >= 0.0;
    if (ra != rb) return ra;
    if (ra && rb) return a.result.time_to_target < b.result.time_to_target;
    return a.result.final_accuracy > b.result.final_accuracy;
  });

  Table table("Strategy ranking on " + task.name + " (target " +
              fmt(params.target_accuracy * 100, 0) + "%)");
  table.set_header({"rank", "algorithm", "time-to-target", "rounds",
                    "final-acc", "mean-staleness"});
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& r = entries[i].result;
    table.add_row({std::to_string(i + 1), entries[i].label,
                   fmt_time_or_na(r.time_to_target),
                   std::to_string(r.rounds), fmt(r.final_accuracy, 4),
                   fmt(r.mean_staleness, 2)});
  }
  table.print();
  return 0;
}
