// Custom strategy example: extend the framework with your own aggregation
// rule. Implements a trimmed-mean strategy (drop the updates least similar
// to the buffered consensus, then average) and runs it head-to-head against
// SEAFL and FedBuff — the intended extension path for downstream users.
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "core/seafl.h"
#include "tensor/ops.h"

namespace {

using namespace seafl;

/// Example user strategy: average the buffer after discarding the update(s)
/// whose cosine similarity to the buffer mean is lowest — a simple
/// robust-aggregation rule in the spirit of trimmed means.
class TrimmedMeanStrategy : public AggregationStrategy {
 public:
  /// @param trim how many lowest-similarity updates to drop (when the
  ///        buffer is large enough to spare them)
  /// @param vartheta server mixing rate, as in Eq. 8
  TrimmedMeanStrategy(std::size_t trim, double vartheta)
      : trim_(trim), vartheta_(vartheta) {}

  void aggregate(const AggregationContext& ctx,
                 std::span<const LocalUpdate> buffer,
                 ModelVector& global_out) override {
    (void)ctx;
    const std::size_t dim = global_out.size();

    // Buffer mean as the consensus reference.
    ModelVector mean(dim, 0.0f);
    for (const auto& u : buffer)
      axpy(mean, 1.0f / static_cast<float>(buffer.size()), u.weights);

    // Order updates by similarity to the consensus.
    std::vector<std::size_t> order(buffer.size());
    std::iota(order.begin(), order.end(), 0);
    std::vector<double> sim(buffer.size());
    for (std::size_t i = 0; i < buffer.size(); ++i)
      sim[i] = cosine_similarity(buffer[i].weights, mean);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return sim[a] > sim[b]; });

    const std::size_t keep =
        buffer.size() > trim_ ? buffer.size() - trim_ : buffer.size();
    ModelVector aggregate(dim, 0.0f);
    for (std::size_t i = 0; i < keep; ++i)
      axpy(aggregate, 1.0f / static_cast<float>(keep),
           buffer[order[i]].weights);
    mix_into_global(aggregate, vartheta_, global_out);
  }

  std::string name() const override { return "TrimmedMean"; }

 private:
  std::size_t trim_;
  double vartheta_;
};

RunResult run_with(StrategyPtr strategy, const FlTask& task,
                   const Fleet& fleet, const RunConfig& config) {
  const ModelFactory factory =
      make_model(task.default_model, task.input, task.num_classes);
  Simulation sim(task, factory, fleet, std::move(strategy), config);
  return sim.run();
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);

  TaskSpec spec;
  spec.name = "synth-mnist";
  spec.num_clients = 100;
  spec.samples_per_client = 60;
  // A fifth of the clients have garbage labels: the setting where robust
  // and importance-aware aggregation pay off.
  spec.corrupt_client_fraction = args.get_double("corrupt", 0.2);
  const FlTask task = make_task(spec);

  FleetConfig fc;
  fc.num_devices = spec.num_clients;
  fc.seed = spec.seed;
  const Fleet fleet(fc);

  ExperimentParams params;
  params.max_rounds = static_cast<std::uint64_t>(args.get_int("rounds", 60));
  params.target_accuracy = args.get_double("target", 0.88);

  Table table("Custom strategy vs built-ins (20% label-corrupted clients)");
  table.set_header({"strategy", "time-to-target", "rounds", "final-acc"});

  // The custom strategy plugs into the same RunConfig the presets use.
  {
    RunConfig config = make_arm("fedbuff", params).config;
    const RunResult r = run_with(
        std::make_unique<TrimmedMeanStrategy>(/*trim=*/2, /*vartheta=*/0.8),
        task, fleet, config);
    table.add_row({"TrimmedMean (custom)", fmt_time_or_na(r.time_to_target),
                   std::to_string(r.rounds), fmt(r.final_accuracy, 4)});
  }
  for (const std::string algo : {"seafl", "fedbuff"}) {
    const RunResult r = run_arm(algo, params, task, fleet);
    table.add_row({make_arm(algo, params).label,
                   fmt_time_or_na(r.time_to_target),
                   std::to_string(r.rounds), fmt(r.final_accuracy, 4)});
  }
  table.print();

  std::printf(
      "\nAny AggregationStrategy subclass slots into the Simulation loop —\n"
      "see src/fl/strategy.h for the interface contract.\n");
  return 0;
}
