// Heterogeneous fleet example: inspect the device timing model that drives
// every SEAFL experiment, then watch how fleet heterogeneity changes the
// wall-clock cost of one federated run.
//
// The paper's testbed (§III, §VI.A) models two heterogeneity sources:
// persistent per-device speeds (Pareto) and transient idle periods between
// local epochs (Zipf, s = 1.7, capped at 60 s). This example prints the
// distribution the Fleet realizes and contrasts a homogeneous fleet with a
// heavy-tailed one on the same task.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/seafl.h"

namespace {

using namespace seafl;

void describe_fleet(const Fleet& fleet) {
  std::vector<double> slowdowns;
  slowdowns.reserve(fleet.size());
  for (std::size_t k = 0; k < fleet.size(); ++k)
    slowdowns.push_back(fleet.slowdown(k));
  std::sort(slowdowns.begin(), slowdowns.end());
  const auto pct = [&](double p) {
    return slowdowns[static_cast<std::size_t>(p * (slowdowns.size() - 1))];
  };
  std::printf(
      "  slowdown: min=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f\n",
      slowdowns.front(), pct(0.5), pct(0.9), pct(0.99), slowdowns.back());

  std::size_t slowest_id = 0;
  for (std::size_t k = 0; k < fleet.size(); ++k)
    if (fleet.slowdown(k) > fleet.slowdown(slowest_id)) slowest_id = k;
  std::printf(
      "  5-epoch training on 60 samples: fastest device %.1fs, slowest "
      "device %.1fs\n",
      fleet.training_seconds(0, 0, 60, 1.0, 5),
      fleet.training_seconds(slowest_id, 0, 60, 1.0, 5));
}

RunResult run_on(const FlTask& task, const Fleet& fleet) {
  ExperimentParams params;
  params.max_rounds = 40;
  params.target_accuracy = task.target_accuracy;
  return run_arm("seafl", params, task, fleet);
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);

  TaskSpec spec;
  spec.name = "synth-mnist";
  spec.num_clients = static_cast<std::size_t>(args.get_int("clients", 100));
  spec.samples_per_client = 60;
  const FlTask task = make_task(spec);

  // A near-homogeneous fleet: high Pareto shape, no idling.
  FleetConfig uniform_cfg;
  uniform_cfg.num_devices = spec.num_clients;
  uniform_cfg.pareto_shape = 8.0;
  uniform_cfg.idle_scale = 0.0;
  uniform_cfg.seed = spec.seed;
  const Fleet uniform(uniform_cfg);

  // The paper's heavy-tailed fleet: Pareto speeds + Zipf idle periods.
  FleetConfig heavy_cfg;
  heavy_cfg.num_devices = spec.num_clients;
  heavy_cfg.pareto_shape = 1.1;
  heavy_cfg.seed = spec.seed;
  const Fleet heavy(heavy_cfg);

  std::printf("homogeneous fleet:\n");
  describe_fleet(uniform);
  std::printf("heavy-tailed fleet (paper's regime):\n");
  describe_fleet(heavy);

  std::printf("\nrunning SEAFL on both fleets (same data, same seed)...\n");
  const RunResult fast = run_on(task, uniform);
  const RunResult slow = run_on(task, heavy);

  Table table("SEAFL under fleet heterogeneity");
  table.set_header({"fleet", "time-to-target", "rounds", "final-acc",
                    "mean-staleness"});
  table.add_row({"homogeneous", fmt_time_or_na(fast.time_to_target),
                 std::to_string(fast.rounds), fmt(fast.final_accuracy, 4),
                 fmt(fast.mean_staleness, 2)});
  table.add_row({"heavy-tailed", fmt_time_or_na(slow.time_to_target),
                 std::to_string(slow.rounds), fmt(slow.final_accuracy, 4),
                 fmt(slow.mean_staleness, 2)});
  table.print();

  std::printf(
      "\nHeterogeneity stretches wall-clock time even at equal rounds —\n"
      "the straggler problem SEAFL's semi-asynchronous design targets.\n");
  return 0;
}
