// Shared flag plumbing of the seafl_server / seafl_client binaries. Both
// sides of a deployment MUST build the task and the run configuration from
// the same flags (the hello handshake checks seed and model size, but the
// partition, architecture and schedule have to match by construction).
#pragma once

#include <cstdio>

#include "core/seafl.h"

namespace seafl::deploy_cli {

/// Flags shared by both binaries, printed under --help.
inline void print_common_flags() {
  std::printf(
      "  --task NAME             federated task (default synth-mnist)\n"
      "  --clients N             number of clients in the task (default 3)\n"
      "  --samples N             train samples per client (default 64)\n"
      "  --dirichlet A           label-skew concentration (default 0.3)\n"
      "  --algo NAME             algorithm arm (default seafl, see presets)\n"
      "  --buffer K              aggregation buffer size (default 2)\n"
      "  --concurrency M         clients training at once (default 3)\n"
      "  --epochs E              local epochs per session (default 2)\n"
      "  --rounds R              stop after R aggregations (default 3)\n"
      "  --target A              target accuracy (default: task default)\n"
      "  --stop-at-target B      halt at the target (default false)\n"
      "  --deadline-factor F     per-session deadline multiple, 0=off "
      "(default 0)\n"
      "  --upload-retries N      client reconnect-and-resend attempts "
      "(default 2)\n"
      "  --retry-backoff S       first reconnect delay, doubling per attempt "
      "(default 1)\n"
      "  --retry-backoff-cap S   ceiling on the doubling delay (default 32)\n"
      "  --codec NAME            upload codec: identity|float32|quantize|"
      "int8|int4|topk (default identity)\n"
      "  --codec-bits N          value width for quantize/topk (default 8)\n"
      "  --topk F                coordinate fraction topk keeps "
      "(default 0.1)\n"
      "  --error-feedback B      carry dropped mass across rounds "
      "(default true)\n"
      "  --seed S                run seed; must match across processes "
      "(default 42)\n");
}

inline TaskSpec task_spec_from_flags(const CliArgs& args) {
  TaskSpec spec;
  spec.name = args.get_string("task", "synth-mnist");
  spec.num_clients = static_cast<std::size_t>(args.get_int("clients", 3));
  spec.samples_per_client =
      static_cast<std::size_t>(args.get_int("samples", 64));
  spec.dirichlet_alpha = args.get_double("dirichlet", 0.3);
  spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  return spec;
}

/// The (strategy, config) arm both processes agree on. Deployment-sized
/// defaults: a localhost handful of clients, a few short rounds.
inline Arm arm_from_flags(const CliArgs& args, const FlTask& task) {
  ExperimentParams params;
  params.buffer_size = static_cast<std::size_t>(args.get_int("buffer", 2));
  params.concurrency =
      static_cast<std::size_t>(args.get_int("concurrency", 3));
  params.local_epochs = static_cast<std::size_t>(args.get_int("epochs", 2));
  params.max_rounds = static_cast<std::uint64_t>(args.get_int("rounds", 3));
  params.target_accuracy = args.get_double("target", task.target_accuracy);
  params.stop_at_target = args.get_bool("stop-at-target", false);
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  // Both processes derive the codec from the same flags, so a compressed
  // upload always meets a server holding the matching decoder.
  params.codec = args.get_string("codec", "identity");
  params.codec_bits =
      static_cast<std::size_t>(args.get_int("codec-bits", 8));
  params.topk_fraction = args.get_double("topk", 0.1);
  params.error_feedback = args.get_bool("error-feedback", true);
  Arm arm = make_arm(args.get_string("algo", "seafl"), params);
  arm.config.faults.deadline_factor = args.get_double("deadline-factor", 0.0);
  arm.config.faults.max_upload_retries =
      static_cast<std::size_t>(args.get_int("upload-retries", 2));
  arm.config.faults.retry_backoff = args.get_double("retry-backoff", 1.0);
  arm.config.faults.retry_backoff_cap =
      args.get_double("retry-backoff-cap", 32.0);
  return arm;
}

inline ModelFactory model_from_task(const FlTask& task) {
  return make_model(task.default_model, task.input, task.num_classes);
}

}  // namespace seafl::deploy_cli
