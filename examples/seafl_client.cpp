// The SEAFL client binary (DESIGN.md §13): one federated device as a real
// process. Connects to a seafl_server, registers its client id, then trains
// every dispatched session and uploads the result — honoring SEAFL^2
// early-upload notifications and cancellations between epochs.
//
// The task/run flags MUST match the server's: both sides derive the
// dataset partition, the architecture and the schedule from them (the hello
// handshake cross-checks seed and model size).
//
//   ./seafl_client --connect 127.0.0.1:7070 --client 0
#include <cstdio>

#include "deploy_common.h"

namespace {

void print_help() {
  std::printf(
      "seafl_client: SEAFL federated-learning client\n\n"
      "usage: seafl_client --connect HOST:PORT --client ID [flags]\n\n"
      "transport flags:\n"
      "  --connect HOST:PORT     server endpoint (required; numeric IPv4 or\n"
      "                          'localhost'; a bare PORT means localhost)\n"
      "  --client ID             this device's client id in [0, --clients)\n"
      "  --connect-timeout S     connection timeout (default 10)\n"
      "  --wall-clock B          clients always run on the wall clock; only\n"
      "                          --wall-clock=true is accepted\n"
      "  --crash-after N         fault-injection: abruptly disconnect after\n"
      "                          receiving N dispatches (default 0 = never)\n\n"
      "run flags (must match the server's):\n");
  seafl::deploy_cli::print_common_flags();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace seafl;
  CliArgs args(argc, argv);
  if (args.has("help")) {
    print_help();
    return 0;
  }

  try {
    SEAFL_CHECK(args.has("connect"),
                "--connect HOST:PORT is required (see --help)");
    SEAFL_CHECK(args.has("client"), "--client ID is required (see --help)");
    SEAFL_CHECK(args.get_bool("wall-clock", true),
                "--wall-clock=false is invalid: a deployed client lives on "
                "the wall clock");
    const HostPort server =
        args.get_host_port("connect", HostPort{"127.0.0.1", 0});

    const FlTask task = make_task(deploy_cli::task_spec_from_flags(args));
    const Arm arm = deploy_cli::arm_from_flags(args, task);

    DeployClientOptions options;
    options.client_id = static_cast<std::size_t>(args.get_int("client", 0));
    options.host = server.host;
    options.port = server.port;
    options.connect_timeout = args.get_double("connect-timeout", 10.0);
    options.crash_after_dispatches =
        static_cast<std::size_t>(args.get_int("crash-after", 0));

    DeployClient client(task, deploy_cli::model_from_task(task), arm.config,
                        options);
    std::printf("seafl_client %zu: connecting to %s:%u\n", options.client_id,
                options.host.c_str(), static_cast<unsigned>(options.port));
    std::fflush(stdout);
    const DeployClientStats stats = client.run();
    std::printf(
        "client %zu: %zu dispatches, %zu uploads (%zu partial), "
        "%zu cancels, %zu retries, last eval %.4f @ round %llu%s%s\n",
        options.client_id, stats.dispatches, stats.uploads,
        stats.partial_uploads, stats.cancels, stats.upload_retries,
        stats.last_eval_accuracy,
        static_cast<unsigned long long>(stats.last_eval_round),
        stats.shutdown_received ? ", shutdown" : "",
        stats.crashed ? ", crashed" : "");
    return stats.shutdown_received || stats.crashed ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "seafl_client: %s\n", e.what());
    return 1;
  }
}
