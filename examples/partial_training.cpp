// Partial training (SEAFL^2) example — Algorithm 2 of the paper.
//
// On a fleet with extreme stragglers and a tight staleness limit, compare:
//   * SEAFL   (Algorithm 1): the server synchronously waits for devices at
//     the staleness limit, so every slow device stalls aggregation;
//   * SEAFL^2 (Algorithm 2): the server notifies those devices to upload
//     right after their ongoing epoch — they contribute a partial update
//     and the wait shrinks from "all remaining epochs" to "one epoch".
//
// The example reports wall-clock time, the number of partial updates and
// the accuracy trajectory of both protocols.
#include <cstdio>

#include "core/seafl.h"

int main(int argc, char** argv) {
  using namespace seafl;
  CliArgs args(argc, argv);

  TaskSpec spec;
  spec.name = args.get_string("task", "synth-mnist");
  spec.num_clients = 100;
  spec.samples_per_client = 60;
  spec.dirichlet_alpha = 0.3;
  const FlTask task = make_task(spec);

  FleetConfig fc;
  fc.num_devices = spec.num_clients;
  fc.pareto_shape = 1.05;  // extreme stragglers
  fc.seed = spec.seed;
  const Fleet fleet(fc);

  ExperimentParams params;
  params.staleness_limit =
      static_cast<std::uint64_t>(args.get_int("beta", 3));
  params.max_rounds = static_cast<std::uint64_t>(args.get_int("rounds", 30));
  params.target_accuracy = args.get_double("target", task.target_accuracy);
  params.stop_at_target = false;  // run both to the same round budget

  std::printf("staleness limit beta = %llu, %llu rounds\n\n",
              static_cast<unsigned long long>(params.staleness_limit),
              static_cast<unsigned long long>(params.max_rounds));

  const RunResult waiting = run_arm("seafl", params, task, fleet);
  const RunResult partial = run_arm("seafl2", params, task, fleet);

  Table table("SEAFL (waits for stragglers) vs SEAFL^2 (partial training)");
  table.set_header({"protocol", "virtual time", "rounds", "final-acc",
                    "partial-updates", "stale-waits"});
  table.add_row({"SEAFL (Algorithm 1)", fmt(waiting.final_time, 1) + "s",
                 std::to_string(waiting.rounds),
                 fmt(waiting.final_accuracy, 4),
                 std::to_string(waiting.partial_updates),
                 std::to_string(waiting.stale_waits)});
  table.add_row({"SEAFL^2 (Algorithm 2)", fmt(partial.final_time, 1) + "s",
                 std::to_string(partial.rounds),
                 fmt(partial.final_accuracy, 4),
                 std::to_string(partial.partial_updates),
                 std::to_string(partial.stale_waits)});
  table.print();

  std::printf("\naccuracy trajectory (virtual time):\n");
  std::printf("%-8s %-22s %-22s\n", "round", "SEAFL", "SEAFL^2");
  const std::size_t n =
      std::min(waiting.curve.size(), partial.curve.size());
  for (std::size_t i = 0; i < n; i += 3) {
    std::printf("%-8llu %7.1fs acc=%.3f      %7.1fs acc=%.3f\n",
                static_cast<unsigned long long>(waiting.curve[i].round),
                waiting.curve[i].time, waiting.curve[i].accuracy,
                partial.curve[i].time, partial.curve[i].accuracy);
  }
  std::printf(
      "\nSEAFL^2 finished the same %llu rounds %.1fx faster by letting "
      "stragglers\nupload partially trained models (%zu partial updates).\n",
      static_cast<unsigned long long>(partial.rounds),
      waiting.final_time / partial.final_time, partial.partial_updates);
  return 0;
}
