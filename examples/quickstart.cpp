// Quickstart: train one federated model with SEAFL on a synthetic non-IID
// task and print the accuracy-vs-virtual-time curve.
//
//   ./quickstart [--algo seafl] [--task synth-mnist] [--clients 100]
//                [--samples 100] [--rounds 60] [--target 0.9]
#include <cstdio>

#include "core/seafl.h"

int main(int argc, char** argv) {
  using namespace seafl;
  CliArgs args(argc, argv);

  // 1. Build a federated task: synthetic dataset, Dirichlet non-IID split.
  TaskSpec spec;
  spec.name = args.get_string("task", "synth-mnist");
  spec.num_clients = static_cast<std::size_t>(args.get_int("clients", 100));
  spec.samples_per_client =
      static_cast<std::size_t>(args.get_int("samples", 100));
  spec.dirichlet_alpha = args.get_double("dirichlet", 0.3);
  spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  FlTask task = make_task(spec);
  std::printf("task %s: %zu clients, %zu train / %zu test samples, skew %.3f\n",
              task.name.c_str(), task.num_clients(), task.train.size(),
              task.test.size(), partition_skew(task.train, *task.partition));

  // 2. Build the heterogeneous device fleet (Pareto speeds + Zipf idling).
  FleetConfig fleet_config;
  fleet_config.num_devices = spec.num_clients;
  fleet_config.seed = spec.seed;
  Fleet fleet(fleet_config);

  // 3. Run one algorithm arm with the paper's default hyperparameters.
  ExperimentParams params;
  params.target_accuracy = args.get_double("target", task.target_accuracy);
  params.max_rounds = static_cast<std::uint64_t>(args.get_int("rounds", 60));
  params.seed = spec.seed;
  const std::string algo = args.get_string("algo", "seafl");
  RunResult result = run_arm(algo, params, task, fleet);

  // 4. Report.
  std::printf("\n%-8s %-10s %-10s %-8s\n", "round", "time(s)", "accuracy",
              "loss");
  for (const auto& p : result.curve) {
    std::printf("%-8llu %-10.1f %-10.4f %-8.4f\n",
                static_cast<unsigned long long>(p.round), p.time, p.accuracy,
                p.loss);
  }
  std::printf(
      "\n%s: %llu rounds, final accuracy %.4f, time-to-target %s "
      "(%zu updates, mean staleness %.2f)\n",
      algo.c_str(), static_cast<unsigned long long>(result.rounds),
      result.final_accuracy, fmt_time_or_na(result.time_to_target).c_str(),
      result.total_updates, result.mean_staleness);

  // 5. Optionally persist the trained global model (--save model.bin).
  if (args.has("save")) {
    const std::string path = args.get_string("save", "model.bin");
    save_model_vector(result.final_weights, path);
    std::printf("saved global model (%zu params) to %s\n",
                result.final_weights.size(), path.c_str());
  }
  return 0;
}
