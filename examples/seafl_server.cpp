// The SEAFL server binary (DESIGN.md §13). Two modes, same server logic:
//
//   virtual (default)    the discrete-event Simulation — the whole "fleet"
//                        is simulated in-process on the virtual clock.
//   deployment (--listen) real TCP on the wall clock: bind a port, wait for
//                        --expect client processes (seafl_client) to
//                        register, then run the protocol over the wire.
//
// Deployment quickstart (1 server + 3 clients on localhost):
//
//   ./seafl_server --listen 7070 --expect 3 &
//   ./seafl_client --connect 127.0.0.1:7070 --client 0 &
//   ./seafl_client --connect 127.0.0.1:7070 --client 1 &
//   ./seafl_client --connect 127.0.0.1:7070 --client 2
#include <cstdio>
#include <filesystem>

#include "ckpt/store.h"
#include "deploy_common.h"

namespace {

void print_help() {
  std::printf(
      "seafl_server: SEAFL federated-learning server\n\n"
      "usage: seafl_server [flags]\n\n"
      "transport flags:\n"
      "  --listen PORT           deployment mode: serve real clients on this\n"
      "                          TCP port (0 = ephemeral). Without --listen\n"
      "                          the run is a virtual-time simulation.\n"
      "  --wall-clock B          deployment requires the wall clock; only\n"
      "                          --wall-clock=true is valid with --listen\n"
      "                          (default), and the flag is rejected in\n"
      "                          virtual mode, which is event-driven.\n"
      "  --expect N              registrations to wait for before round 1\n"
      "                          (default: --concurrency)\n"
      "  --max-wall-seconds S    hard wall-clock cap on the run, 0 = off\n"
      "                          (default 120)\n"
      "  --deadline-init S       seed for the session-deadline RTT estimate\n"
      "                          (default 0: measure first)\n"
      "  --trace-out PREFIX      write PREFIX.jsonl + PREFIX.trace.json\n\n"
      "checkpoint/resume flags (DESIGN.md §15; both modes):\n"
      "  --checkpoint-dir DIR    durable checkpoint directory (required by\n"
      "                          --checkpoint-every)\n"
      "  --checkpoint-every N    write a checkpoint every N rounds (0 = off)\n"
      "  --checkpoint-keep K     checkpoints retained in the dir (default 3)\n"
      "  --halt-after-rounds N   crash drill: stop abruptly (no shutdown\n"
      "                          handshake) once round N completes (0 = off)\n"
      "  --resume-from PATH      resume from this checkpoint file, or the\n"
      "                          newest checkpoint when PATH is a directory\n\n"
      "run flags (must match the clients'):\n");
  seafl::deploy_cli::print_common_flags();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace seafl;
  CliArgs args(argc, argv);
  if (args.has("help")) {
    print_help();
    return 0;
  }

  try {
    const bool deployment = args.has("listen");
    const bool wall_clock = args.get_bool("wall-clock", deployment);
    SEAFL_CHECK(!deployment || wall_clock,
                "--listen requires the wall clock; --wall-clock=false is "
                "only valid for the virtual (no --listen) mode");
    SEAFL_CHECK(deployment || !args.has("wall-clock") || !wall_clock,
                "--wall-clock without --listen is meaningless: the virtual "
                "mode advances event time, not wall time");

    const FlTask task = make_task(deploy_cli::task_spec_from_flags(args));
    Arm arm = deploy_cli::arm_from_flags(args, task);
    arm.config.checkpoint_dir = args.get_string("checkpoint-dir", "");
    arm.config.checkpoint_every_rounds = static_cast<std::uint64_t>(
        args.get_int("checkpoint-every", 0));
    arm.config.checkpoint_keep =
        static_cast<std::size_t>(args.get_int("checkpoint-keep", 3));
    arm.config.halt_after_rounds = static_cast<std::uint64_t>(
        args.get_int("halt-after-rounds", 0));
    const std::string resume_from = args.get_string("resume-from", "");

    if (!deployment) {
      // Virtual mode: the same ServerCore on the event-queue transport.
      FleetConfig fleet_config;
      fleet_config.num_devices = task.num_clients();
      fleet_config.seed = arm.config.seed;
      const Fleet fleet(fleet_config);
      Simulation sim(task, deploy_cli::model_from_task(task), fleet,
                     std::move(arm.strategy), arm.config);
      RunResult result;
      if (!resume_from.empty()) {
        std::error_code ec;
        if (std::filesystem::is_directory(resume_from, ec)) {
          result = sim.resume_from_dir(resume_from);
        } else {
          ckpt::RunCheckpoint c;
          const ckpt::DecodeStatus status =
              ckpt::load_checkpoint_file(resume_from, c);
          SEAFL_CHECK(status == ckpt::DecodeStatus::kOk,
                      "cannot load checkpoint "
                          << resume_from << ": "
                          << ckpt::status_name(status));
          result = sim.resume(c);
        }
        std::printf("virtual run: resumed from checkpoint\n");
      } else {
        result = sim.run();
      }
      std::printf("virtual run: %llu rounds, accuracy %.4f at t=%.1fs\n",
                  static_cast<unsigned long long>(result.rounds),
                  result.final_accuracy, result.final_time);
      return 0;
    }

    DeployServerOptions options;
    options.port = args.get_port("listen", 0);
    options.expected_clients = static_cast<std::size_t>(
        args.get_int("expect",
                     static_cast<std::int64_t>(arm.config.concurrency)));
    options.max_wall_seconds = args.get_double("max-wall-seconds", 120.0);
    options.deadline_init_seconds = args.get_double("deadline-init", 0.0);
    options.resume_from = resume_from;
    const std::string trace_prefix = args.get_string("trace-out", "");
    if (!trace_prefix.empty()) {
      options.trace_jsonl_path = trace_prefix + ".jsonl";
      options.trace_chrome_path = trace_prefix + ".trace.json";
    }

    DeployServer server(task, deploy_cli::model_from_task(task),
                        std::move(arm.strategy), arm.config, options);
    std::printf("seafl_server: listening on port %u, waiting for %zu "
                "clients (%s)\n",
                static_cast<unsigned>(server.port()),
                options.expected_clients, arm.label.c_str());
    std::fflush(stdout);
    const RunResult result = server.run();
    std::printf(
        "deployment run: %llu rounds, accuracy %.4f, %zu uploads, "
        "%zu crashes, %zu redispatches, wall %.1fs\n",
        static_cast<unsigned long long>(result.rounds),
        result.final_accuracy, result.model_uploads, result.client_crashes,
        result.redispatches, result.final_time);
    return result.rounds > 0 ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "seafl_server: %s\n", e.what());
    return 1;
  }
}
