// Flat model (de)serialization: a tiny binary format for saving trained
// global models and reloading them into any architecture of matching size.
//
// Layout: magic "SEAFLMDL", u32 version, u64 element count, raw float32
// little-endian payload. Deliberately minimal — the flat vector plus the
// model factory fully determine the network.
#pragma once

#include <string>
#include <vector>

namespace seafl {

/// Writes `weights` to `path`. Throws seafl::Error on I/O failure.
void save_model_vector(const std::vector<float>& weights,
                       const std::string& path);

/// Reads a model vector written by save_model_vector. Throws on missing
/// file, bad magic, version mismatch or truncated payload.
std::vector<float> load_model_vector(const std::string& path);

}  // namespace seafl
