// Flat model (de)serialization: a tiny binary format for saving trained
// global models and reloading them into any architecture of matching size.
//
// Layout: magic "SEAFLMDL", u32 version, u64 element count, raw float32
// little-endian payload. Deliberately minimal — the flat vector plus the
// model factory fully determine the network.
#pragma once

#include <string>
#include <vector>

namespace seafl {

/// Writes `weights` to `path`. Throws seafl::Error on I/O failure.
void save_model_vector(const std::vector<float>& weights,
                       const std::string& path);

/// Reads a model vector written by save_model_vector. Throws on missing
/// file, bad magic, version mismatch or truncated payload.
std::vector<float> load_model_vector(const std::string& path);

/// Appends the SEAFLMDL container (magic, version, count, float payload) to
/// `out` — byte-for-byte what save_model_vector writes to disk. The wire
/// protocol (net/wire) embeds model payloads in this form, so a captured
/// frame's weights can be dumped to a file and loaded back directly.
void append_model_vector(std::string& out, const std::vector<float>& weights);

/// Parses one SEAFLMDL container from the front of `data`. On success
/// `*consumed` (when non-null) receives the container's byte length. Throws
/// seafl::Error on bad magic, version mismatch or truncation; never reads
/// past `size`.
std::vector<float> decode_model_vector(const void* data, std::size_t size,
                                       std::size_t* consumed = nullptr);

}  // namespace seafl
