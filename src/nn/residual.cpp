#include "nn/residual.h"

#include "tensor/ops.h"

namespace seafl {

namespace {
ConvGeom block_geom(std::size_t channels, std::size_t height,
                    std::size_t width) {
  ConvGeom g;
  g.channels = channels;
  g.height = height;
  g.width = width;
  g.kernel_h = 3;
  g.kernel_w = 3;
  g.stride = 1;
  g.pad = 1;
  return g;
}
}  // namespace

ResidualBlock::ResidualBlock(std::size_t channels, std::size_t height,
                             std::size_t width)
    : channels_(channels),
      height_(height),
      width_(width),
      conv1_(block_geom(channels, height, width), channels),
      conv2_(block_geom(channels, height, width), channels) {}

void ResidualBlock::init(Rng& rng) {
  conv1_.init(rng);
  conv2_.init(rng);
}

std::vector<Tensor*> ResidualBlock::parameters() {
  auto p1 = conv1_.parameters();
  auto p2 = conv2_.parameters();
  p1.insert(p1.end(), p2.begin(), p2.end());
  return p1;
}

std::vector<Tensor*> ResidualBlock::gradients() {
  auto g1 = conv1_.gradients();
  auto g2 = conv2_.gradients();
  g1.insert(g1.end(), g2.begin(), g2.end());
  return g1;
}

void ResidualBlock::forward(const Tensor& input, Tensor& output, bool train) {
  const std::size_t sample = channels_ * height_ * width_;
  SEAFL_CHECK(input.numel() % sample == 0,
              name() << ": input numel " << input.numel()
                     << " not divisible by " << sample);
  conv1_.forward(input, h1_, train);
  relu1_.forward(h1_, h1_relu_, train);
  conv2_.forward(h1_relu_, h2_, train);
  // sum = h2 + input, then final ReLU.
  output = h2_;
  add_inplace(output.span(), input.span());
  if (train) cached_sum_ = output;
  relu_inplace(output.span());
}

void ResidualBlock::backward(const Tensor& output_grad, Tensor& input_grad) {
  SEAFL_CHECK(cached_sum_.numel() == output_grad.numel(),
              name() << " backward: gradient shape mismatch");
  // Through the final ReLU.
  d_sum_ = output_grad;
  relu_backward_inplace(d_sum_.span(), cached_sum_.span());
  // Branch path: conv2 -> relu1 -> conv1.
  conv2_.backward(d_sum_, d_h1relu_);
  relu1_.backward(d_h1relu_, d_h1_);
  conv1_.backward(d_h1_, input_grad);
  // Skip path adds d_sum directly to the input gradient.
  add_inplace(input_grad.span(), d_sum_.span());
}

std::string ResidualBlock::name() const {
  return "ResidualBlock(" + std::to_string(channels_) + "ch, " +
         std::to_string(height_) + "x" + std::to_string(width_) + ")";
}

}  // namespace seafl
