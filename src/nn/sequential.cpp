#include "nn/sequential.h"

#include <sstream>

namespace seafl {

Sequential& Sequential::add(LayerPtr layer) {
  SEAFL_CHECK(layer != nullptr, "cannot add null layer");
  layers_.push_back(std::move(layer));
  slots_built_ = false;
  return *this;
}

const std::vector<Sequential::ParamSlot>& Sequential::parameter_slots()
    const {
  if (!slots_built_) {
    slots_.clear();
    num_params_ = 0;
    for (std::size_t li = 0; li < layers_.size(); ++li) {
      Layer& l = *layers_[li];
      const auto params = l.parameters();
      const auto grads = l.gradients();
      SEAFL_CHECK(params.size() == grads.size(),
                  "layer " << l.name() << ": parameter/gradient mismatch");
      for (std::size_t pi = 0; pi < params.size(); ++pi) {
        slots_.push_back({params[pi], grads[pi], li});
        num_params_ += params[pi]->numel();
      }
    }
    slots_built_ = true;
  }
  return slots_;
}

void Sequential::init(Rng& rng) {
  for (auto& l : layers_) l->init(rng);
}

const Tensor& Sequential::forward(const Tensor& input, bool train) {
  SEAFL_CHECK(!layers_.empty(), "forward on empty model");
  activations_.resize(layers_.size());
  const Tensor* cur = &input;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->forward(*cur, activations_[i], train);
    cur = &activations_[i];
  }
  return activations_.back();
}

void Sequential::backward(const Tensor& output_grad) {
  SEAFL_CHECK(activations_.size() == layers_.size(),
              "backward before forward");
  const Tensor* dout = &output_grad;
  // Alternate between two buffers so each layer reads the previous gradient
  // while writing its own.
  for (std::size_t i = layers_.size(); i-- > 0;) {
    Tensor& din = (i % 2 == 0) ? grad_a_ : grad_b_;
    layers_[i]->backward(*dout, din);
    dout = &din;
  }
}

void Sequential::zero_grad() {
  for (auto& l : layers_) l->zero_grad();
}

std::size_t Sequential::num_parameters() const {
  parameter_slots();
  return num_params_;
}

void Sequential::copy_parameters_to(std::span<float> out) const {
  SEAFL_CHECK(out.size() == num_parameters(),
              "parameter buffer size mismatch: " << out.size() << " vs "
                                                 << num_parameters());
  std::size_t offset = 0;
  for (const ParamSlot& s : parameter_slots()) {
    std::copy(s.param->data(), s.param->data() + s.param->numel(),
              out.data() + offset);
    offset += s.param->numel();
  }
}

void Sequential::set_parameters(std::span<const float> in) {
  SEAFL_CHECK(in.size() == num_parameters(),
              "parameter buffer size mismatch: " << in.size() << " vs "
                                                 << num_parameters());
  std::size_t offset = 0;
  for (const ParamSlot& s : parameter_slots()) {
    std::copy(in.data() + offset, in.data() + offset + s.param->numel(),
              s.param->data());
    offset += s.param->numel();
  }
}

void Sequential::copy_gradients_to(std::span<float> out) const {
  SEAFL_CHECK(out.size() == num_parameters(),
              "gradient buffer size mismatch");
  std::size_t offset = 0;
  for (const ParamSlot& s : parameter_slots()) {
    std::copy(s.grad->data(), s.grad->data() + s.grad->numel(),
              out.data() + offset);
    offset += s.grad->numel();
  }
}

std::vector<float> Sequential::parameter_vector() const {
  std::vector<float> out(num_parameters());
  copy_parameters_to(out);
  return out;
}

std::string Sequential::summary() const {
  std::ostringstream os;
  os << "Sequential(" << layers_.size() << " layers, " << num_parameters()
     << " params)";
  for (const auto& l : layers_) os << "\n  " << l->name();
  return os.str();
}

}  // namespace seafl
