#include "nn/sequential.h"

#include <sstream>

namespace seafl {

Sequential& Sequential::add(LayerPtr layer) {
  SEAFL_CHECK(layer != nullptr, "cannot add null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

void Sequential::init(Rng& rng) {
  for (auto& l : layers_) l->init(rng);
}

const Tensor& Sequential::forward(const Tensor& input, bool train) {
  SEAFL_CHECK(!layers_.empty(), "forward on empty model");
  activations_.resize(layers_.size());
  const Tensor* cur = &input;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->forward(*cur, activations_[i], train);
    cur = &activations_[i];
  }
  return activations_.back();
}

void Sequential::backward(const Tensor& output_grad) {
  SEAFL_CHECK(activations_.size() == layers_.size(),
              "backward before forward");
  const Tensor* dout = &output_grad;
  // Alternate between two buffers so each layer reads the previous gradient
  // while writing its own.
  for (std::size_t i = layers_.size(); i-- > 0;) {
    Tensor& din = (i % 2 == 0) ? grad_a_ : grad_b_;
    layers_[i]->backward(*dout, din);
    dout = &din;
  }
}

void Sequential::zero_grad() {
  for (auto& l : layers_) l->zero_grad();
}

std::size_t Sequential::num_parameters() const {
  std::size_t n = 0;
  for (const auto& l : layers_)
    for (Tensor* p : const_cast<Layer&>(*l).parameters()) n += p->numel();
  return n;
}

void Sequential::copy_parameters_to(std::span<float> out) const {
  SEAFL_CHECK(out.size() == num_parameters(),
              "parameter buffer size mismatch: " << out.size() << " vs "
                                                 << num_parameters());
  std::size_t offset = 0;
  for (const auto& l : layers_) {
    for (Tensor* p : const_cast<Layer&>(*l).parameters()) {
      std::copy(p->data(), p->data() + p->numel(), out.data() + offset);
      offset += p->numel();
    }
  }
}

void Sequential::set_parameters(std::span<const float> in) {
  SEAFL_CHECK(in.size() == num_parameters(),
              "parameter buffer size mismatch: " << in.size() << " vs "
                                                 << num_parameters());
  std::size_t offset = 0;
  for (auto& l : layers_) {
    for (Tensor* p : l->parameters()) {
      std::copy(in.data() + offset, in.data() + offset + p->numel(),
                p->data());
      offset += p->numel();
    }
  }
}

void Sequential::copy_gradients_to(std::span<float> out) const {
  SEAFL_CHECK(out.size() == num_parameters(),
              "gradient buffer size mismatch");
  std::size_t offset = 0;
  for (const auto& l : layers_) {
    for (Tensor* g : const_cast<Layer&>(*l).gradients()) {
      std::copy(g->data(), g->data() + g->numel(), out.data() + offset);
      offset += g->numel();
    }
  }
}

std::vector<float> Sequential::parameter_vector() const {
  std::vector<float> out(num_parameters());
  copy_parameters_to(out);
  return out;
}

std::string Sequential::summary() const {
  std::ostringstream os;
  os << "Sequential(" << layers_.size() << " layers, " << num_parameters()
     << " params)";
  for (const auto& l : layers_) os << "\n  " << l->name();
  return os.str();
}

}  // namespace seafl
