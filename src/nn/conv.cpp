#include "nn/conv.h"

#include <cmath>
#include <limits>

#include "obs/profile.h"
#include "tensor/gemm.h"
#include "tensor/workspace.h"

namespace seafl {

// ---------------------------------------------------------------- Conv2d

Conv2d::Conv2d(ConvGeom in, std::size_t out_channels)
    : geom_(in),
      out_channels_(out_channels),
      weight_({out_channels, in.col_rows()}),
      bias_({out_channels}),
      weight_grad_({out_channels, in.col_rows()}),
      bias_grad_({out_channels}) {
  SEAFL_CHECK(out_channels > 0, "Conv2d needs at least one filter");
  SEAFL_CHECK(in.kernel_h <= in.height + 2 * in.pad &&
                  in.kernel_w <= in.width + 2 * in.pad,
              "Conv2d kernel larger than padded input");
}

void Conv2d::init(Rng& rng) {
  const float stddev =
      std::sqrt(2.0f / static_cast<float>(geom_.col_rows()));
  weight_.fill_normal(rng, 0.0f, stddev);
  bias_.fill(0.0f);
}

void Conv2d::forward(const Tensor& input, Tensor& output, bool train) {
  SEAFL_PROF_SCOPE("nn.conv_fwd");
  const std::size_t sample = geom_.channels * geom_.height * geom_.width;
  SEAFL_CHECK(input.numel() % sample == 0,
              name() << ": input numel " << input.numel()
                     << " not divisible by sample size " << sample);
  const std::size_t batch = input.numel() / sample;
  const std::size_t oh = geom_.out_h();
  const std::size_t ow = geom_.out_w();
  const std::size_t out_sample = out_channels_ * oh * ow;
  output.ensure_shape({batch, out_channels_, oh, ow});

  std::span<float> cols = Workspace::tls().floats(
      WsSlot::kIm2colCols, geom_.col_rows() * geom_.col_cols());
  // Bias is fused into the GEMM store loop: out[oc, i] = acc + bias[oc],
  // the same addition order as the former post-GEMM plane sweep.
  GemmEpilogue epi;
  epi.row_bias = bias_.data();

  for (std::size_t b = 0; b < batch; ++b) {
    im2col(geom_, {input.data() + b * sample, sample}, cols);
    // out[b] = W [OC, CR] * cols [CR, CC] + bias
    gemm_ex(Trans::kNo, Trans::kNo, out_channels_, geom_.col_cols(),
            geom_.col_rows(), 1.0f, weight_.span(), cols, 0.0f,
            {output.data() + b * out_sample, out_sample}, epi);
  }
  if (train) cached_input_ = input;
}

void Conv2d::backward(const Tensor& output_grad, Tensor& input_grad) {
  SEAFL_PROF_SCOPE("nn.conv_bwd");
  const std::size_t sample = geom_.channels * geom_.height * geom_.width;
  const std::size_t batch = cached_input_.numel() / sample;
  const std::size_t oh = geom_.out_h();
  const std::size_t ow = geom_.out_w();
  const std::size_t out_sample = out_channels_ * oh * ow;
  SEAFL_CHECK(output_grad.numel() == batch * out_sample,
              name() << " backward: gradient shape mismatch");
  input_grad.ensure_shape(cached_input_.shape());
  input_grad.fill(0.0f);  // col2im accumulates

  Workspace& ws = Workspace::tls();
  const std::size_t col_numel = geom_.col_rows() * geom_.col_cols();
  std::span<float> cols = ws.floats(WsSlot::kIm2colCols, col_numel);
  std::span<float> dcols = ws.floats(WsSlot::kConvDcols, col_numel);

  for (std::size_t b = 0; b < batch; ++b) {
    const std::span<const float> dy{output_grad.data() + b * out_sample,
                                    out_sample};
    // Recompute cols for this sample (memory-lean: O(1) col buffers total).
    im2col(geom_, {cached_input_.data() + b * sample, sample}, cols);
    // dW += dY [OC, CC] * cols^T [CC, CR]
    gemm(Trans::kNo, Trans::kYes, out_channels_, geom_.col_rows(),
         geom_.col_cols(), 1.0f, dy, cols, 1.0f, weight_grad_.span());
    // db += per-channel sums of dY
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      const float* plane = dy.data() + oc * oh * ow;
      float acc = 0.0f;
      for (std::size_t i = 0; i < oh * ow; ++i) acc += plane[i];
      bias_grad_[oc] += acc;
    }
    // dcols = W^T [CR, OC] * dY [OC, CC]
    gemm(Trans::kYes, Trans::kNo, geom_.col_rows(), geom_.col_cols(),
         out_channels_, 1.0f, weight_.span(), dy, 0.0f, dcols);
    col2im(geom_, dcols, {input_grad.data() + b * sample, sample});
  }
}

std::string Conv2d::name() const {
  return "Conv2d(" + std::to_string(geom_.channels) + "->" +
         std::to_string(out_channels_) + ", k=" +
         std::to_string(geom_.kernel_h) + ")";
}

// ------------------------------------------------------------- MaxPool2d

MaxPool2d::MaxPool2d(ConvGeom in) : geom_(in) {
  SEAFL_CHECK(in.pad == 0, "MaxPool2d does not support padding");
}

void MaxPool2d::forward(const Tensor& input, Tensor& output, bool train) {
  const std::size_t sample = geom_.channels * geom_.height * geom_.width;
  SEAFL_CHECK(input.numel() % sample == 0,
              name() << ": bad input size " << input.numel());
  const std::size_t batch = input.numel() / sample;
  const std::size_t oh = geom_.out_h();
  const std::size_t ow = geom_.out_w();
  const std::size_t out_sample = geom_.channels * oh * ow;
  output.ensure_shape({batch, geom_.channels, oh, ow});
  if (train) {
    cached_input_shape_ = input.shape();
    // argmax_ stays layer-owned (a second pool's forward must not clobber
    // it), but its storage recycles through the arena free list.
    Workspace::tls().ensure_u32(argmax_, batch * out_sample);
  }

  for (std::size_t b = 0; b < batch; ++b) {
    const float* in = input.data() + b * sample;
    float* out = output.data() + b * out_sample;
    std::size_t oi = 0;
    for (std::size_t c = 0; c < geom_.channels; ++c) {
      const float* chan = in + c * geom_.height * geom_.width;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t ky = 0; ky < geom_.kernel_h; ++ky) {
            const std::size_t iy = oy * geom_.stride + ky;
            if (iy >= geom_.height) break;
            for (std::size_t kx = 0; kx < geom_.kernel_w; ++kx) {
              const std::size_t ix = ox * geom_.stride + kx;
              if (ix >= geom_.width) break;
              const std::size_t idx = iy * geom_.width + ix;
              if (chan[idx] > best) {
                best = chan[idx];
                best_idx = c * geom_.height * geom_.width + idx;
              }
            }
          }
          out[oi] = best;
          if (train)
            argmax_[b * out_sample + oi] = static_cast<std::uint32_t>(best_idx);
        }
      }
    }
  }
}

void MaxPool2d::backward(const Tensor& output_grad, Tensor& input_grad) {
  SEAFL_CHECK(!cached_input_shape_.empty(),
              "MaxPool2d backward without train-mode forward");
  const std::size_t sample = geom_.channels * geom_.height * geom_.width;
  const std::size_t out_sample =
      geom_.channels * geom_.out_h() * geom_.out_w();
  const std::size_t batch = argmax_.size() / out_sample;
  SEAFL_CHECK(output_grad.numel() == batch * out_sample,
              "MaxPool2d backward: gradient shape mismatch");
  input_grad.ensure_shape(cached_input_shape_);
  input_grad.fill(0.0f);  // scatter-add target
  for (std::size_t b = 0; b < batch; ++b) {
    float* din = input_grad.data() + b * sample;
    const float* dout = output_grad.data() + b * out_sample;
    for (std::size_t i = 0; i < out_sample; ++i)
      din[argmax_[b * out_sample + i]] += dout[i];
  }
}

std::string MaxPool2d::name() const {
  return "MaxPool2d(k=" + std::to_string(geom_.kernel_h) + ", s=" +
         std::to_string(geom_.stride) + ")";
}

// ---------------------------------------------------------- GlobalAvgPool

GlobalAvgPool::GlobalAvgPool(std::size_t channels, std::size_t height,
                             std::size_t width)
    : channels_(channels), height_(height), width_(width) {}

void GlobalAvgPool::forward(const Tensor& input, Tensor& output,
                            bool /*train*/) {
  const std::size_t sample = channels_ * height_ * width_;
  SEAFL_CHECK(input.numel() % sample == 0,
              "GlobalAvgPool: bad input size " << input.numel());
  batch_ = input.numel() / sample;
  output.ensure_shape({batch_, channels_});
  const float inv = 1.0f / static_cast<float>(height_ * width_);
  for (std::size_t b = 0; b < batch_; ++b) {
    const float* in = input.data() + b * sample;
    float* out = output.data() + b * channels_;
    for (std::size_t c = 0; c < channels_; ++c) {
      const float* plane = in + c * height_ * width_;
      float acc = 0.0f;
      for (std::size_t i = 0; i < height_ * width_; ++i) acc += plane[i];
      out[c] = acc * inv;
    }
  }
}

void GlobalAvgPool::backward(const Tensor& output_grad, Tensor& input_grad) {
  const std::size_t sample = channels_ * height_ * width_;
  SEAFL_CHECK(output_grad.numel() == batch_ * channels_,
              "GlobalAvgPool backward: gradient shape mismatch");
  input_grad.ensure_shape({batch_, channels_, height_, width_});
  const float inv = 1.0f / static_cast<float>(height_ * width_);
  for (std::size_t b = 0; b < batch_; ++b) {
    float* din = input_grad.data() + b * sample;
    const float* dout = output_grad.data() + b * channels_;
    for (std::size_t c = 0; c < channels_; ++c) {
      const float g = dout[c] * inv;
      float* plane = din + c * height_ * width_;
      for (std::size_t i = 0; i < height_ * width_; ++i) plane[i] = g;
    }
  }
}

std::string GlobalAvgPool::name() const {
  return "GlobalAvgPool(" + std::to_string(channels_) + ")";
}

}  // namespace seafl
