#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/error.h"

namespace seafl {

namespace {
constexpr char kMagic[8] = {'S', 'E', 'A', 'F', 'L', 'M', 'D', 'L'};
constexpr std::uint32_t kVersion = 1;
}  // namespace

void save_model_vector(const std::vector<float>& weights,
                       const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  SEAFL_CHECK(out.good(), "cannot open '" << path << "' for writing");
  out.write(kMagic, sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  const std::uint64_t count = weights.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(weights.data()),
            static_cast<std::streamsize>(count * sizeof(float)));
  SEAFL_CHECK(out.good(), "write to '" << path << "' failed");
}

std::vector<float> load_model_vector(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SEAFL_CHECK(in.good(), "cannot open '" << path << "' for reading");
  char magic[8];
  in.read(magic, sizeof(magic));
  SEAFL_CHECK(in.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
              "'" << path << "' is not a SEAFL model file");
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  SEAFL_CHECK(in.good() && version == kVersion,
              "unsupported model file version " << version);
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  SEAFL_CHECK(in.good(), "truncated model file '" << path << "'");
  std::vector<float> weights(count);
  in.read(reinterpret_cast<char*>(weights.data()),
          static_cast<std::streamsize>(count * sizeof(float)));
  SEAFL_CHECK(in.good() || in.gcount() ==
                  static_cast<std::streamsize>(count * sizeof(float)),
              "truncated payload in '" << path << "'");
  return weights;
}

}  // namespace seafl
