#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/error.h"

namespace seafl {

namespace {
constexpr char kMagic[8] = {'S', 'E', 'A', 'F', 'L', 'M', 'D', 'L'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes =
    sizeof(kMagic) + sizeof(std::uint32_t) + sizeof(std::uint64_t);
}  // namespace

void append_model_vector(std::string& out, const std::vector<float>& weights) {
  out.append(kMagic, sizeof(kMagic));
  out.append(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  const std::uint64_t count = weights.size();
  out.append(reinterpret_cast<const char*>(&count), sizeof(count));
  out.append(reinterpret_cast<const char*>(weights.data()),
             count * sizeof(float));
}

std::vector<float> decode_model_vector(const void* data, std::size_t size,
                                       std::size_t* consumed) {
  const char* p = static_cast<const char*>(data);
  SEAFL_CHECK(size >= kHeaderBytes, "truncated model container ("
                                        << size << " bytes, header needs "
                                        << kHeaderBytes << ")");
  SEAFL_CHECK(std::memcmp(p, kMagic, sizeof(kMagic)) == 0,
              "bad model container magic");
  std::uint32_t version = 0;
  std::memcpy(&version, p + sizeof(kMagic), sizeof(version));
  SEAFL_CHECK(version == kVersion,
              "unsupported model container version " << version);
  std::uint64_t count = 0;
  std::memcpy(&count, p + sizeof(kMagic) + sizeof(version), sizeof(count));
  const std::size_t payload = static_cast<std::size_t>(count) * sizeof(float);
  SEAFL_CHECK(count <= (size - kHeaderBytes) / sizeof(float),
              "truncated model payload: header claims "
                  << count << " floats, " << (size - kHeaderBytes)
                  << " bytes follow");
  std::vector<float> weights(static_cast<std::size_t>(count));
  std::memcpy(weights.data(), p + kHeaderBytes, payload);
  if (consumed != nullptr) *consumed = kHeaderBytes + payload;
  return weights;
}

void save_model_vector(const std::vector<float>& weights,
                       const std::string& path) {
  std::string blob;
  blob.reserve(kHeaderBytes + weights.size() * sizeof(float));
  append_model_vector(blob, weights);
  std::ofstream out(path, std::ios::binary);
  SEAFL_CHECK(out.good(), "cannot open '" << path << "' for writing");
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  SEAFL_CHECK(out.good(), "write to '" << path << "' failed");
}

std::vector<float> load_model_vector(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SEAFL_CHECK(in.good(), "cannot open '" << path << "' for reading");
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  SEAFL_CHECK(!in.bad(), "read from '" << path << "' failed");
  try {
    return decode_model_vector(blob.data(), blob.size());
  } catch (const Error& e) {
    throw Error("'" + path + "': " + e.what());
  }
}

}  // namespace seafl
