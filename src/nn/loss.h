// Softmax cross-entropy loss over integer class labels.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace seafl {

/// Combined softmax + cross-entropy. Fusing the two yields the familiar
/// stable gradient (probs - onehot) / batch.
class SoftmaxCrossEntropy {
 public:
  /// Computes mean loss over the batch. `logits` is [B, classes]; `labels`
  /// holds B class indices in [0, classes).
  double forward(const Tensor& logits, std::span<const std::int32_t> labels);

  /// Writes d(loss)/d(logits) of the last forward() into `logit_grad`.
  void backward(Tensor& logit_grad) const;

  /// Number of correct argmax predictions in the last forward batch.
  std::size_t correct() const { return correct_; }

  /// Softmax probabilities of the last forward ([B, classes]).
  const Tensor& probabilities() const { return probs_; }

 private:
  Tensor probs_;
  std::vector<std::int32_t> labels_;
  std::size_t classes_ = 0;
  std::size_t correct_ = 0;
};

}  // namespace seafl
