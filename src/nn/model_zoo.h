// Model zoo: the architectures used across the SEAFL benches.
//
// The paper trains LeNet-5 (EMNIST), ResNet-18 (CIFAR-10) and VGG-16
// (CINIC-10). This repository substitutes same-family, CPU-scale models:
//   lenet_lite  — classic conv/tanh/pool stack (LeNet-5 family)
//   resnet_lite — conv stem + identity residual blocks (ResNet family)
//   vgg_lite    — deeper 3x3 conv pairs with pooling (VGG family)
//   mlp         — dense baseline for fast preliminary experiments (§III)
// The relative compute-cost ordering (mlp < lenet < resnet < vgg) is
// preserved, which is what the device time model consumes.
#pragma once

#include <cstdint>
#include <string>

#include "nn/sequential.h"

namespace seafl {

/// Input geometry of a classification task.
struct InputSpec {
  std::size_t channels = 1;
  std::size_t height = 1;
  std::size_t width = 1;

  std::size_t numel() const { return channels * height * width; }
};

/// Architecture selector for make_model / parse_model_kind.
enum class ModelKind { kMlp, kLenetLite, kResnetLite, kVggLite };

/// Returns the architecture name ("mlp", "lenet_lite", ...).
std::string model_kind_name(ModelKind kind);

/// Parses a name produced by model_kind_name; throws on unknown names.
ModelKind parse_model_kind(const std::string& name);

/// Two-hidden-layer MLP: in -> hidden -> hidden/2 -> classes (ReLU).
ModelFactory make_mlp(std::size_t in_features, std::size_t hidden,
                      std::size_t classes);

/// LeNet-5-style conv net scaled to the given input.
ModelFactory make_lenet_lite(InputSpec input, std::size_t classes);

/// Small residual network: stem conv + 2 residual blocks + pooling head.
ModelFactory make_resnet_lite(InputSpec input, std::size_t classes);

/// VGG-style net: two conv-conv-pool stages + dense head.
ModelFactory make_vgg_lite(InputSpec input, std::size_t classes);

/// Dispatches to the architecture named by `kind`. For kMlp, `input` is
/// flattened and `hidden` controls layer width (default 32 when 0).
ModelFactory make_model(ModelKind kind, InputSpec input, std::size_t classes,
                        std::size_t hidden = 0);

/// Rough forward+backward multiply-add count per training sample; the device
/// cost model uses this to derive per-epoch compute times so "bigger model =
/// slower device round" holds, as in the paper's testbed.
double estimate_flops_per_sample(ModelKind kind, InputSpec input,
                                 std::size_t classes);

}  // namespace seafl
