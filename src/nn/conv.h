// Convolution and pooling layers (CHW layout, batch-major tensors
// [B, C, H, W]). Conv2d is lowered to im2col + GEMM per sample.
#pragma once

#include <string>
#include <vector>

#include "nn/layer.h"
#include "tensor/im2col.h"

namespace seafl {

/// 2-d convolution with square stride and symmetric zero padding.
class Conv2d : public Layer {
 public:
  /// @param in geometry of the input feature map (channels/height/width and
  ///        kernel/stride/pad); @param out_channels number of filters.
  Conv2d(ConvGeom in, std::size_t out_channels);

  void forward(const Tensor& input, Tensor& output, bool train) override;
  void backward(const Tensor& output_grad, Tensor& input_grad) override;

  std::vector<Tensor*> parameters() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> gradients() override {
    return {&weight_grad_, &bias_grad_};
  }
  void init(Rng& rng) override;
  void zero_grad() override {
    weight_grad_.fill(0.0f);
    bias_grad_.fill(0.0f);
  }
  std::string name() const override;

  const ConvGeom& geom() const { return geom_; }
  std::size_t out_channels() const { return out_channels_; }
  /// Output elements per sample (OC * OH * OW).
  std::size_t out_numel() const {
    return out_channels_ * geom_.out_h() * geom_.out_w();
  }

 private:
  ConvGeom geom_;
  std::size_t out_channels_;
  Tensor weight_;        // [OC, C*KH*KW]
  Tensor bias_;          // [OC]
  Tensor weight_grad_;
  Tensor bias_grad_;
  Tensor cached_input_;  // [B, C, H, W]
  // im2col / dcols scratch lives in the thread-local Workspace arena
  // (WsSlot::kIm2colCols / kConvDcols), not in the layer: the buffers are
  // call-scoped and shared by every conv in the model.
};

/// 2-d max pooling (records argmax indices for the backward pass).
class MaxPool2d : public Layer {
 public:
  /// @param in input geometry; kernel_h/kernel_w/stride describe the window.
  explicit MaxPool2d(ConvGeom in);

  void forward(const Tensor& input, Tensor& output, bool train) override;
  void backward(const Tensor& output_grad, Tensor& input_grad) override;
  std::string name() const override;

  const ConvGeom& geom() const { return geom_; }
  std::size_t out_numel() const {
    return geom_.channels * geom_.out_h() * geom_.out_w();
  }

 private:
  ConvGeom geom_;
  Shape cached_input_shape_;
  std::vector<std::uint32_t> argmax_;  // flat input index per output element
};

/// Global average pooling over H×W: [B, C, H, W] -> [B, C].
class GlobalAvgPool : public Layer {
 public:
  GlobalAvgPool(std::size_t channels, std::size_t height, std::size_t width);

  void forward(const Tensor& input, Tensor& output, bool train) override;
  void backward(const Tensor& output_grad, Tensor& input_grad) override;
  std::string name() const override;

 private:
  std::size_t channels_, height_, width_;
  std::size_t batch_ = 0;
};

}  // namespace seafl
