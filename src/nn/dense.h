// Fully connected layer: Y = X * W^T + b, with X [B, in], W [out, in].
#pragma once

#include <string>

#include "nn/layer.h"

namespace seafl {

/// Dense (affine) layer with He-style fan-in initialization by default.
class Dense : public Layer {
 public:
  /// @param in_features input width, @param out_features output width.
  Dense(std::size_t in_features, std::size_t out_features);

  void forward(const Tensor& input, Tensor& output, bool train) override;
  void backward(const Tensor& output_grad, Tensor& input_grad) override;

  std::vector<Tensor*> parameters() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> gradients() override {
    return {&weight_grad_, &bias_grad_};
  }
  void init(Rng& rng) override;
  void zero_grad() override {
    weight_grad_.fill(0.0f);
    bias_grad_.fill(0.0f);
  }
  std::string name() const override;

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Tensor weight_;       // [out, in]
  Tensor bias_;         // [out]
  Tensor weight_grad_;  // [out, in]
  Tensor bias_grad_;    // [out]
  Tensor cached_input_; // [B, in] — saved during training forward
};

}  // namespace seafl
