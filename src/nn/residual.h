// Residual block: out = ReLU(conv2(ReLU(conv1(x))) + x).
// Channel-preserving, 3x3 kernels, stride 1, pad 1 — the basic building
// block of the `resnet_lite` model (the repository's stand-in for the
// paper's ResNet-18).
#pragma once

#include <string>

#include "nn/activations.h"
#include "nn/conv.h"

namespace seafl {

/// A channel-preserving two-conv residual block with identity skip.
class ResidualBlock : public Layer {
 public:
  /// @param channels feature-map channel count (preserved by the block).
  /// @param height/@param width spatial size of the input map.
  ResidualBlock(std::size_t channels, std::size_t height, std::size_t width);

  void forward(const Tensor& input, Tensor& output, bool train) override;
  void backward(const Tensor& output_grad, Tensor& input_grad) override;

  std::vector<Tensor*> parameters() override;
  std::vector<Tensor*> gradients() override;
  void init(Rng& rng) override;
  void zero_grad() override {
    conv1_.zero_grad();
    conv2_.zero_grad();
  }
  std::string name() const override;

 private:
  std::size_t channels_, height_, width_;
  Conv2d conv1_;
  Conv2d conv2_;
  ReLU relu1_;
  Tensor h1_, h1_relu_, h2_;        // intermediate activations
  Tensor cached_sum_;               // conv2 output + skip, pre final ReLU
  Tensor d_sum_, d_h1relu_, d_h1_;  // backward scratch
};

}  // namespace seafl
