// Layer abstraction for the from-scratch neural network library.
//
// Every layer processes batched inputs (leading dimension = batch) and
// supports reverse-mode differentiation via an explicit backward pass. Layers
// cache whatever forward state their backward needs, so the training loop is
// simply: forward through all layers, compute loss gradient, backward through
// all layers, then apply an optimizer step to (params, grads).
//
// There is no autograd graph: the Sequential container calls layers in order.
// That is all FL local training requires, and it keeps each layer's memory
// behaviour explicit — an hpc-friendly property (no hidden allocations once
// buffers are warm; forward/backward reuse cached tensors across batches of
// equal size).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace seafl {

/// Interface implemented by all network layers.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for a batch. `train` enables training-only
  /// behaviour (currently: caching activations for backward).
  /// Output tensor is resized by the layer as needed.
  virtual void forward(const Tensor& input, Tensor& output, bool train) = 0;

  /// Given d(loss)/d(output), accumulates parameter gradients (+=) and writes
  /// d(loss)/d(input) into `input_grad`. Must be called after a forward with
  /// train=true on the same batch.
  virtual void backward(const Tensor& output_grad, Tensor& input_grad) = 0;

  /// Trainable parameter tensors (empty for stateless layers).
  virtual std::vector<Tensor*> parameters() { return {}; }

  /// Gradient tensors, index-aligned with parameters().
  virtual std::vector<Tensor*> gradients() { return {}; }

  /// Initializes parameters from `rng` (no-op for stateless layers).
  virtual void init(Rng& /*rng*/) {}

  /// Short human-readable description, e.g. "Dense(64->32)".
  virtual std::string name() const = 0;

  /// Sets all gradient tensors to zero. Layers with parameters override
  /// this to fill their members directly — the default materializes the
  /// gradients() vector, which would be the only per-step heap allocation
  /// left on the training hot path.
  virtual void zero_grad() {
    for (Tensor* g : gradients()) g->fill(0.0f);
  }
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace seafl
