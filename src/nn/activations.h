// Stateless layers: ReLU, Tanh, Flatten.
#pragma once

#include <string>

#include "nn/layer.h"

namespace seafl {

/// Elementwise rectified linear unit.
class ReLU : public Layer {
 public:
  void forward(const Tensor& input, Tensor& output, bool train) override;
  void backward(const Tensor& output_grad, Tensor& input_grad) override;
  std::string name() const override { return "ReLU"; }

 private:
  Tensor cached_input_;
};

/// Elementwise hyperbolic tangent (used by the LeNet-style models).
class Tanh : public Layer {
 public:
  void forward(const Tensor& input, Tensor& output, bool train) override;
  void backward(const Tensor& output_grad, Tensor& input_grad) override;
  std::string name() const override { return "Tanh"; }

 private:
  Tensor cached_output_;
};

/// Inverted dropout: during training, zeroes each activation with
/// probability p and scales survivors by 1/(1-p); identity at inference.
/// The mask stream is deterministic per (seed, invocation index) so FL runs
/// stay reproducible.
class Dropout : public Layer {
 public:
  /// @param p drop probability in [0, 1); @param seed mask stream seed.
  explicit Dropout(float p, std::uint64_t seed = 0x5eed);

  void forward(const Tensor& input, Tensor& output, bool train) override;
  void backward(const Tensor& output_grad, Tensor& input_grad) override;
  std::string name() const override;

  float probability() const { return p_; }

 private:
  float p_;
  Rng rng_;
  std::vector<bool> mask_;
};

/// Reshapes [B, C, H, W] (or any rank >= 2) to [B, rest]. Data is copied so
/// downstream layers own independent buffers.
class Flatten : public Layer {
 public:
  void forward(const Tensor& input, Tensor& output, bool train) override;
  void backward(const Tensor& output_grad, Tensor& input_grad) override;
  std::string name() const override { return "Flatten"; }

 private:
  Shape cached_input_shape_;
};

}  // namespace seafl
