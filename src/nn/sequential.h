// Sequential container: an ordered list of layers trained by explicit
// forward/backward passes, plus flat parameter-vector access — the interface
// federated learning needs (models travel between server and clients as flat
// float vectors).
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace seafl {

/// An ordered stack of layers with flat-parameter import/export.
class Sequential {
 public:
  Sequential() = default;

  /// Appends a layer (takes ownership). Returns *this for chaining.
  Sequential& add(LayerPtr layer);

  /// Convenience: construct the layer in place.
  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  /// Initializes every layer's parameters from `rng`.
  void init(Rng& rng);

  /// Runs the forward pass; the returned reference is valid until the next
  /// forward call. With train=true, layers cache state for backward.
  const Tensor& forward(const Tensor& input, bool train = false);

  /// Runs the backward pass from d(loss)/d(output), accumulating parameter
  /// gradients in every layer.
  void backward(const Tensor& output_grad);

  /// Zeroes all parameter gradients.
  void zero_grad();

  /// Total number of trainable scalars.
  std::size_t num_parameters() const;

  /// Copies all parameters, in layer order, into `out` (size must match).
  void copy_parameters_to(std::span<float> out) const;

  /// Overwrites all parameters from `in` (size must match).
  void set_parameters(std::span<const float> in);

  /// Copies all gradients, in layer order, into `out` (size must match).
  void copy_gradients_to(std::span<float> out) const;

  /// Flat parameter vector convenience (allocates).
  std::vector<float> parameter_vector() const;

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

  /// Multi-line structural summary, e.g. for logging.
  std::string summary() const;

 private:
  std::vector<LayerPtr> layers_;
  std::vector<Tensor> activations_;  // output of each layer (train mode)
  Tensor grad_a_, grad_b_;           // ping-pong gradient buffers
};

/// Factory producing fresh, *uninitialized* model instances. Clients use it
/// to materialize the architecture, then load global weights into it.
using ModelFactory = std::function<std::unique_ptr<Sequential>()>;

}  // namespace seafl
