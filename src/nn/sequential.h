// Sequential container: an ordered list of layers trained by explicit
// forward/backward passes, plus flat parameter-vector access — the interface
// federated learning needs (models travel between server and clients as flat
// float vectors).
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace seafl {

/// An ordered stack of layers with flat-parameter import/export.
class Sequential {
 public:
  Sequential() = default;

  /// Appends a layer (takes ownership). Returns *this for chaining.
  Sequential& add(LayerPtr layer);

  /// Convenience: construct the layer in place.
  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  /// Initializes every layer's parameters from `rng`.
  void init(Rng& rng);

  /// Runs the forward pass; the returned reference is valid until the next
  /// forward call. With train=true, layers cache state for backward.
  const Tensor& forward(const Tensor& input, bool train = false);

  /// Runs the backward pass from d(loss)/d(output), accumulating parameter
  /// gradients in every layer.
  void backward(const Tensor& output_grad);

  /// Zeroes all parameter gradients.
  void zero_grad();

  /// One trainable tensor paired with its gradient and owning layer index.
  /// Pointers are stable for the model's lifetime: layers are held by
  /// unique_ptr and never removed, and the tensors are layer members.
  struct ParamSlot {
    Tensor* param;
    Tensor* grad;
    std::size_t layer;
  };

  /// Flat view over every (parameter, gradient) pair in layer order, built
  /// once and cached (add() invalidates it). Hot paths — the optimizer step
  /// and flat import/export — iterate this instead of materializing the
  /// per-layer parameters()/gradients() vectors on every call.
  const std::vector<ParamSlot>& parameter_slots() const;

  /// Total number of trainable scalars.
  std::size_t num_parameters() const;

  /// Copies all parameters, in layer order, into `out` (size must match).
  void copy_parameters_to(std::span<float> out) const;

  /// Overwrites all parameters from `in` (size must match).
  void set_parameters(std::span<const float> in);

  /// Copies all gradients, in layer order, into `out` (size must match).
  void copy_gradients_to(std::span<float> out) const;

  /// Flat parameter vector convenience (allocates).
  std::vector<float> parameter_vector() const;

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

  /// Multi-line structural summary, e.g. for logging.
  std::string summary() const;

 private:
  std::vector<LayerPtr> layers_;
  std::vector<Tensor> activations_;  // output of each layer (train mode)
  Tensor grad_a_, grad_b_;           // ping-pong gradient buffers
  mutable std::vector<ParamSlot> slots_;  // lazy cache, see parameter_slots()
  mutable std::size_t num_params_ = 0;
  mutable bool slots_built_ = false;
};

/// Factory producing fresh, *uninitialized* model instances. Clients use it
/// to materialize the architecture, then load global weights into it.
using ModelFactory = std::function<std::unique_ptr<Sequential>()>;

}  // namespace seafl
