#include "nn/sgd.h"

#include <cmath>

namespace seafl {

void Sgd::step(Sequential& model, std::size_t frozen_layers) {
  SEAFL_CHECK(frozen_layers < model.num_layers() || model.num_layers() == 0,
              "cannot freeze every layer (" << frozen_layers << " of "
                                            << model.num_layers() << ")");
  const float lr = config_.learning_rate;
  const float mu = config_.momentum;
  const float wd = config_.weight_decay;

  // The model's cached flat slot table keeps this loop allocation-free —
  // materializing the per-layer parameters()/gradients() vectors here was
  // the last heap traffic on the per-batch training path.
  const auto& slots = model.parameter_slots();

  // Global-norm gradient clipping: scale every gradient by
  // clip / max(clip, ||g||) before the update, as in standard FL stacks.
  if (config_.clip_norm > 0.0f) {
    double sq = 0.0;
    for (const Sequential::ParamSlot& s : slots) {
      const Tensor& g = *s.grad;
      for (std::size_t i = 0; i < g.numel(); ++i) {
        const double v = g[i];
        sq += v * v;
      }
    }
    const double norm = std::sqrt(sq);
    if (norm > config_.clip_norm) {
      const float scale = static_cast<float>(config_.clip_norm / norm);
      for (const Sequential::ParamSlot& s : slots)
        for (std::size_t i = 0; i < s.grad->numel(); ++i)
          (*s.grad)[i] *= scale;
    }
  }

  for (std::size_t slot = 0; slot < slots.size(); ++slot) {
    const Sequential::ParamSlot& s = slots[slot];
    if (s.layer < frozen_layers) continue;  // momentum slots stay aligned
    Tensor& p = *s.param;
    const Tensor& g = *s.grad;
    SEAFL_CHECK(p.numel() == g.numel(),
                "parameter/gradient size mismatch in "
                    << model.layer(s.layer).name());
    if (mu > 0.0f) {
      if (velocity_.size() <= slot) velocity_.resize(slot + 1);
      auto& v = velocity_[slot];
      if (v.size() != p.numel()) v.assign(p.numel(), 0.0f);
      for (std::size_t i = 0; i < p.numel(); ++i) {
        const float grad = g[i] + wd * p[i];
        v[i] = mu * v[i] + grad;
        p[i] -= lr * v[i];
      }
    } else {
      for (std::size_t i = 0; i < p.numel(); ++i) {
        p[i] -= lr * (g[i] + wd * p[i]);
      }
    }
  }
}

}  // namespace seafl
