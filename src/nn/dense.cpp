#include "nn/dense.h"

#include <cmath>

#include "tensor/gemm.h"

namespace seafl {

Dense::Dense(std::size_t in_features, std::size_t out_features)
    : in_(in_features),
      out_(out_features),
      weight_({out_features, in_features}),
      bias_({out_features}),
      weight_grad_({out_features, in_features}),
      bias_grad_({out_features}) {
  SEAFL_CHECK(in_features > 0 && out_features > 0,
              "Dense dimensions must be positive");
}

void Dense::init(Rng& rng) {
  // He initialization: suitable for the ReLU networks in the model zoo.
  const float stddev = std::sqrt(2.0f / static_cast<float>(in_));
  weight_.fill_normal(rng, 0.0f, stddev);
  bias_.fill(0.0f);
}

void Dense::forward(const Tensor& input, Tensor& output, bool train) {
  SEAFL_CHECK(input.numel() % in_ == 0,
              "Dense(" << in_ << "->" << out_ << "): input numel "
                       << input.numel() << " not divisible by " << in_);
  const std::size_t batch = input.numel() / in_;
  output.ensure_shape({batch, out_});
  // Y = X * W^T + bias  (X is [B, in], W is [out, in] so W^T is [in, out]);
  // the per-column bias add is fused into the GEMM store loop.
  GemmEpilogue epi;
  epi.col_bias = bias_.data();
  gemm_ex(Trans::kNo, Trans::kYes, batch, out_, in_, 1.0f, input.span(),
          weight_.span(), 0.0f, output.span(), epi);
  if (train) cached_input_ = input;
}

void Dense::backward(const Tensor& output_grad, Tensor& input_grad) {
  const std::size_t batch = cached_input_.numel() / in_;
  SEAFL_CHECK(output_grad.numel() == batch * out_,
              "Dense backward: gradient shape mismatch");
  // dW += dY^T * X   ([out, B] * [B, in])
  gemm(Trans::kYes, Trans::kNo, out_, in_, batch, 1.0f, output_grad.span(),
       cached_input_.span(), 1.0f, weight_grad_.span());
  // db += column sums of dY
  for (std::size_t b = 0; b < batch; ++b) {
    const float* row = output_grad.data() + b * out_;
    for (std::size_t j = 0; j < out_; ++j) bias_grad_[j] += row[j];
  }
  // dX = dY * W   ([B, out] * [out, in])
  input_grad.ensure_shape(cached_input_.shape());
  gemm(Trans::kNo, Trans::kNo, batch, in_, out_, 1.0f, output_grad.span(),
       weight_.span(), 0.0f, input_grad.span());
}

std::string Dense::name() const {
  return "Dense(" + std::to_string(in_) + "->" + std::to_string(out_) + ")";
}

}  // namespace seafl
