#include "nn/model_zoo.h"

#include "nn/activations.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/residual.h"

namespace seafl {

std::string model_kind_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kMlp: return "mlp";
    case ModelKind::kLenetLite: return "lenet_lite";
    case ModelKind::kResnetLite: return "resnet_lite";
    case ModelKind::kVggLite: return "vgg_lite";
  }
  SEAFL_CHECK(false, "unreachable model kind");
  return {};
}

ModelKind parse_model_kind(const std::string& name) {
  if (name == "mlp") return ModelKind::kMlp;
  if (name == "lenet_lite") return ModelKind::kLenetLite;
  if (name == "resnet_lite") return ModelKind::kResnetLite;
  if (name == "vgg_lite") return ModelKind::kVggLite;
  SEAFL_CHECK(false, "unknown model kind '" << name << "'");
  return ModelKind::kMlp;
}

namespace {
ConvGeom geom(std::size_t c, std::size_t h, std::size_t w, std::size_t k,
              std::size_t stride, std::size_t pad) {
  ConvGeom g;
  g.channels = c;
  g.height = h;
  g.width = w;
  g.kernel_h = k;
  g.kernel_w = k;
  g.stride = stride;
  g.pad = pad;
  return g;
}
}  // namespace

ModelFactory make_mlp(std::size_t in_features, std::size_t hidden,
                      std::size_t classes) {
  SEAFL_CHECK(in_features > 0 && hidden > 1 && classes > 1,
              "invalid MLP dimensions");
  return [=] {
    auto m = std::make_unique<Sequential>();
    m->emplace<Dense>(in_features, hidden);
    m->emplace<ReLU>();
    m->emplace<Dense>(hidden, hidden / 2);
    m->emplace<ReLU>();
    m->emplace<Dense>(hidden / 2, classes);
    return m;
  };
}

ModelFactory make_lenet_lite(InputSpec input, std::size_t classes) {
  SEAFL_CHECK(input.height >= 8 && input.width >= 8,
              "lenet_lite needs inputs of at least 8x8");
  return [=] {
    auto m = std::make_unique<Sequential>();
    // Stage 1: 5x5 conv (pad 2 keeps spatial size), tanh, 2x2 max pool.
    const auto g1 = geom(input.channels, input.height, input.width, 5, 1, 2);
    m->emplace<Conv2d>(g1, 6);
    m->emplace<Tanh>();
    const auto p1 = geom(6, g1.out_h(), g1.out_w(), 2, 2, 0);
    m->emplace<MaxPool2d>(p1);
    // Stage 2: 5x5 conv, tanh, 2x2 max pool.
    const auto g2 = geom(6, p1.out_h(), p1.out_w(), 5, 1, 2);
    m->emplace<Conv2d>(g2, 16);
    m->emplace<Tanh>();
    const auto p2 = geom(16, g2.out_h(), g2.out_w(), 2, 2, 0);
    m->emplace<MaxPool2d>(p2);
    // Dense head.
    const std::size_t flat = 16 * p2.out_h() * p2.out_w();
    m->emplace<Flatten>();
    m->emplace<Dense>(flat, 48);
    m->emplace<Tanh>();
    m->emplace<Dense>(48, classes);
    return m;
  };
}

ModelFactory make_resnet_lite(InputSpec input, std::size_t classes) {
  SEAFL_CHECK(input.height >= 8 && input.width >= 8,
              "resnet_lite needs inputs of at least 8x8");
  return [=] {
    auto m = std::make_unique<Sequential>();
    constexpr std::size_t kStemChannels = 8;
    // Stem: 3x3 conv to kStemChannels, ReLU.
    const auto g1 = geom(input.channels, input.height, input.width, 3, 1, 1);
    m->emplace<Conv2d>(g1, kStemChannels);
    m->emplace<ReLU>();
    // Two identity residual blocks at full resolution.
    m->emplace<ResidualBlock>(kStemChannels, g1.out_h(), g1.out_w());
    m->emplace<ResidualBlock>(kStemChannels, g1.out_h(), g1.out_w());
    // Downsample, one more block, then a dense head over the flattened map
    // (a GAP head at 8 channels starves 10-way classification).
    const auto p1 = geom(kStemChannels, g1.out_h(), g1.out_w(), 2, 2, 0);
    m->emplace<MaxPool2d>(p1);
    m->emplace<ResidualBlock>(kStemChannels, p1.out_h(), p1.out_w());
    const std::size_t flat = kStemChannels * p1.out_h() * p1.out_w();
    m->emplace<Flatten>();
    m->emplace<Dense>(flat, classes);
    return m;
  };
}

ModelFactory make_vgg_lite(InputSpec input, std::size_t classes) {
  SEAFL_CHECK(input.height >= 8 && input.width >= 8,
              "vgg_lite needs inputs of at least 8x8");
  return [=] {
    auto m = std::make_unique<Sequential>();
    // Stage 1: conv-conv-pool at 8 channels.
    const auto g1 = geom(input.channels, input.height, input.width, 3, 1, 1);
    m->emplace<Conv2d>(g1, 8);
    m->emplace<ReLU>();
    const auto g2 = geom(8, g1.out_h(), g1.out_w(), 3, 1, 1);
    m->emplace<Conv2d>(g2, 8);
    m->emplace<ReLU>();
    const auto p1 = geom(8, g2.out_h(), g2.out_w(), 2, 2, 0);
    m->emplace<MaxPool2d>(p1);
    // Stage 2: conv-conv-pool at 16 channels.
    const auto g3 = geom(8, p1.out_h(), p1.out_w(), 3, 1, 1);
    m->emplace<Conv2d>(g3, 16);
    m->emplace<ReLU>();
    const auto g4 = geom(16, g3.out_h(), g3.out_w(), 3, 1, 1);
    m->emplace<Conv2d>(g4, 16);
    m->emplace<ReLU>();
    const auto p2 = geom(16, g4.out_h(), g4.out_w(), 2, 2, 0);
    m->emplace<MaxPool2d>(p2);
    // Dense head.
    const std::size_t flat = 16 * p2.out_h() * p2.out_w();
    m->emplace<Flatten>();
    m->emplace<Dense>(flat, 64);
    m->emplace<ReLU>();
    m->emplace<Dense>(64, classes);
    return m;
  };
}

ModelFactory make_model(ModelKind kind, InputSpec input, std::size_t classes,
                        std::size_t hidden) {
  switch (kind) {
    case ModelKind::kMlp:
      return make_mlp(input.numel(), hidden == 0 ? 32 : hidden, classes);
    case ModelKind::kLenetLite:
      return make_lenet_lite(input, classes);
    case ModelKind::kResnetLite:
      return make_resnet_lite(input, classes);
    case ModelKind::kVggLite:
      return make_vgg_lite(input, classes);
  }
  SEAFL_CHECK(false, "unreachable model kind");
  return {};
}

double estimate_flops_per_sample(ModelKind kind, InputSpec input,
                                 std::size_t classes) {
  // Forward multiply-adds; backward is ~2x forward, so scale by 3.
  const double hw = static_cast<double>(input.height * input.width);
  const double c = static_cast<double>(input.channels);
  const double cls = static_cast<double>(classes);
  double fwd = 0.0;
  switch (kind) {
    case ModelKind::kMlp: {
      const double in = c * hw;
      fwd = in * 32 + 32 * 16 + 16 * cls;
      break;
    }
    case ModelKind::kLenetLite:
      fwd = hw * (c * 25 * 6)            // conv1 (padded, same size)
            + (hw / 4) * (6 * 25 * 16)   // conv2 after 2x2 pool
            + 16 * (hw / 16) * 48        // dense head
            + 48 * cls;
      break;
    case ModelKind::kResnetLite:
      fwd = hw * (c * 9 * 8)             // stem
            + 2 * 2 * hw * (8 * 9 * 8)   // two full-res residual blocks
            + 2 * (hw / 4) * (8 * 9 * 8) // one half-res residual block
            + 8 * cls;
      break;
    case ModelKind::kVggLite:
      fwd = hw * (c * 9 * 8) + hw * (8 * 9 * 8)  // stage 1
            + (hw / 4) * (8 * 9 * 16) +
            (hw / 4) * (16 * 9 * 16)             // stage 2
            + 16 * (hw / 16) * 64 + 64 * cls;    // head
      break;
  }
  return 3.0 * fwd;
}

}  // namespace seafl
