// Mini-batch SGD with optional momentum and weight decay, operating on a
// Sequential model's layer tensors in place.
#pragma once

#include <vector>

#include "nn/sequential.h"

namespace seafl {

/// SGD hyperparameters. Defaults follow common FL practice (plain SGD).
struct SgdConfig {
  float learning_rate = 0.01f;
  float momentum = 0.0f;      ///< classical momentum; 0 disables the buffer
  float weight_decay = 0.0f;  ///< L2 coefficient applied to weights
  float clip_norm = 0.0f;     ///< global-norm gradient clip; 0 disables
};

/// Stochastic gradient descent over a model's parameters.
/// Momentum buffers are lazily sized on the first step and persist across
/// steps for the optimizer's lifetime (one optimizer per local training run).
class Sgd {
 public:
  explicit Sgd(SgdConfig config) : config_(config) {
    SEAFL_CHECK(config.learning_rate > 0.0f, "learning rate must be positive");
    SEAFL_CHECK(config.momentum >= 0.0f && config.momentum < 1.0f,
                "momentum must be in [0, 1)");
    SEAFL_CHECK(config.weight_decay >= 0.0f, "weight decay must be >= 0");
    SEAFL_CHECK(config.clip_norm >= 0.0f, "clip norm must be >= 0");
  }

  /// Applies one update: p -= lr * (g + wd * p)  (with momentum if enabled).
  /// Layers with index < `frozen_layers` are skipped entirely — the
  /// sub-model training mode where slow devices only fine-tune the upper
  /// part of the network (clipping still measures the full gradient norm so
  /// the trainable suffix sees the same effective step scale).
  void step(Sequential& model, std::size_t frozen_layers = 0);

  /// Overrides the learning rate (for schedules).
  void set_learning_rate(float lr) {
    SEAFL_CHECK(lr > 0.0f, "learning rate must be positive");
    config_.learning_rate = lr;
  }
  const SgdConfig& config() const { return config_; }

 private:
  SgdConfig config_;
  std::vector<std::vector<float>> velocity_;  // per parameter tensor
};

}  // namespace seafl
