#include "nn/activations.h"

#include <cmath>

#include "tensor/ops.h"

namespace seafl {

void ReLU::forward(const Tensor& input, Tensor& output, bool train) {
  output = input;
  relu_inplace(output.span());
  if (train) cached_input_ = input;
}

void ReLU::backward(const Tensor& output_grad, Tensor& input_grad) {
  SEAFL_CHECK(output_grad.numel() == cached_input_.numel(),
              "ReLU backward: gradient shape mismatch");
  input_grad = output_grad;
  relu_backward_inplace(input_grad.span(), cached_input_.span());
}

void Tanh::forward(const Tensor& input, Tensor& output, bool train) {
  output = input;
  for (auto& v : output.span()) v = std::tanh(v);
  if (train) cached_output_ = output;
}

void Tanh::backward(const Tensor& output_grad, Tensor& input_grad) {
  SEAFL_CHECK(output_grad.numel() == cached_output_.numel(),
              "Tanh backward: gradient shape mismatch");
  input_grad = output_grad;
  const auto y = cached_output_.span();
  auto g = input_grad.span();
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= 1.0f - y[i] * y[i];
}

Dropout::Dropout(float p, std::uint64_t seed) : p_(p), rng_(seed) {
  SEAFL_CHECK(p >= 0.0f && p < 1.0f, "dropout probability must be in [0, 1)");
}

void Dropout::forward(const Tensor& input, Tensor& output, bool train) {
  output = input;
  if (!train || p_ == 0.0f) {
    mask_.clear();
    return;
  }
  const float scale = 1.0f / (1.0f - p_);
  mask_.resize(input.numel());
  for (std::size_t i = 0; i < input.numel(); ++i) {
    const bool keep = !rng_.bernoulli(p_);
    mask_[i] = keep;
    output[i] = keep ? output[i] * scale : 0.0f;
  }
}

void Dropout::backward(const Tensor& output_grad, Tensor& input_grad) {
  SEAFL_CHECK(mask_.size() == output_grad.numel(),
              "Dropout backward without train-mode forward");
  input_grad = output_grad;
  const float scale = 1.0f / (1.0f - p_);
  for (std::size_t i = 0; i < input_grad.numel(); ++i)
    input_grad[i] = mask_[i] ? input_grad[i] * scale : 0.0f;
}

std::string Dropout::name() const {
  return "Dropout(p=" + std::to_string(p_) + ")";
}

void Flatten::forward(const Tensor& input, Tensor& output, bool train) {
  SEAFL_CHECK(input.rank() >= 1, "Flatten needs rank >= 1 input");
  if (train) cached_input_shape_ = input.shape();
  const std::size_t batch = input.rank() >= 2 ? input.dim(0) : 1;
  output = input;
  output.reshape({batch, input.numel() / batch});
}

void Flatten::backward(const Tensor& output_grad, Tensor& input_grad) {
  input_grad = output_grad;
  input_grad.reshape(cached_input_shape_);
}

}  // namespace seafl
