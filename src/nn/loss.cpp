#include "nn/loss.h"

#include <cmath>

#include "common/error.h"
#include "tensor/ops.h"

namespace seafl {

double SoftmaxCrossEntropy::forward(const Tensor& logits,
                                    std::span<const std::int32_t> labels) {
  SEAFL_CHECK(logits.rank() == 2, "loss expects [batch, classes] logits");
  const std::size_t batch = logits.dim(0);
  classes_ = logits.dim(1);
  SEAFL_CHECK(labels.size() == batch,
              "label count " << labels.size() << " != batch " << batch);
  probs_.ensure_shape(logits.shape());
  softmax_rows(logits.span(), probs_.span(), batch, classes_);
  labels_.assign(labels.begin(), labels.end());

  double loss = 0.0;
  correct_ = 0;
  constexpr double kEps = 1e-12;
  for (std::size_t b = 0; b < batch; ++b) {
    const std::int32_t y = labels[b];
    SEAFL_CHECK(y >= 0 && static_cast<std::size_t>(y) < classes_,
                "label " << y << " out of range [0, " << classes_ << ")");
    const float* row = probs_.data() + b * classes_;
    loss -= std::log(static_cast<double>(row[y]) + kEps);
    if (argmax({row, classes_}) == static_cast<std::size_t>(y)) ++correct_;
  }
  return loss / static_cast<double>(batch);
}

void SoftmaxCrossEntropy::backward(Tensor& logit_grad) const {
  SEAFL_CHECK(!labels_.empty(), "loss backward before forward");
  const std::size_t batch = labels_.size();
  logit_grad = probs_;
  const float inv = 1.0f / static_cast<float>(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    float* row = logit_grad.data() + b * classes_;
    row[labels_[b]] -= 1.0f;
    for (std::size_t c = 0; c < classes_; ++c) row[c] *= inv;
  }
}

}  // namespace seafl
