// Typed checkpoint model on top of the SEAFLCKPT container (DESIGN.md §15).
//
// RunCheckpoint is the complete durable state of a run: everything that is
// NOT a pure function of the (task, fleet, config, seed) tuple. The
// determinism contract (per-client counter-keyed RNG, DESIGN.md §12) keeps
// this small — client training state, churn timelines, fleet speeds,
// evaluator subsets and diurnal schedules are all re-derivable, so only the
// server-side accumulated state travels: global weights, strategy state,
// RunResult counters, the aggregation buffer, in-flight sessions with their
// pending event descriptors, dispatched base-weight snapshots, compression
// residuals and (for deployments) the wall-clock session bookkeeping.
//
// Both drivers share this one struct: fl::Simulation fills every field,
// DeployServer leaves the virtual-event fields empty (sessions die with the
// process on a real transport; the deadline machinery re-dispatches).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ckpt/container.h"
#include "fl/types.h"

namespace seafl::ckpt {

/// Pending transmission-event kinds of an in-flight session (which
/// Simulation handler the event queue would have invoked).
enum class TxKind : std::uint8_t {
  kArrival = 0,  ///< healthy upload completes
  kLost = 1,     ///< upload lost in transit (retry machinery fires)
  kCrash = 2,    ///< device churn kills the session first
};

/// One in-flight training session, plus descriptors of its scheduled
/// events. Event closures cannot be serialized; (seq, time, kind) is enough
/// to rebuild them, and re-scheduling in ascending original-seq order
/// replays (time, seq) tie-breaks identically.
struct SessionRecord {
  std::size_t client = 0;
  std::uint64_t base_round = 0;
  std::vector<double> epoch_ends;
  std::size_t planned_epochs = 0;
  std::size_t frozen_layers = 0;
  std::size_t attempts = 0;
  double crash_time = 0.0;
  bool notified = false;
  bool lost = false;
  bool crashed = false;

  /// Pending transmission event; absent once the session crashed (the
  /// transmission event already fired as the crash).
  bool has_tx = false;
  std::uint64_t tx_seq = 0;
  double tx_time = 0.0;
  TxKind tx_kind = TxKind::kArrival;
  std::size_t tx_epochs = 0;

  /// Pending per-assignment deadline timer (deadline_factor > 0).
  bool has_deadline = false;
  std::uint64_t deadline_seq = 0;
  double deadline_time = 0.0;
};

/// A scheduled SEAFL² partial-training notification.
struct PendingNotify {
  std::uint64_t seq = 0;
  std::size_t client = 0;
  double time = 0.0;
};

/// A scheduled round-deadline check. Stale entries (armed_round behind the
/// current round) are serialized too: their no-op firing still advances the
/// virtual clock, which can determine the run's final_time.
struct PendingRoundDeadline {
  std::uint64_t seq = 0;
  std::uint64_t armed_round = 0;
  double time = 0.0;
};

/// The complete durable state of a run at a round boundary.
struct RunCheckpoint {
  // --- identity (validated against the live run before restore) ----------
  std::uint64_t seed = 0;
  std::uint64_t model_dim = 0;
  std::uint64_t num_clients = 0;
  /// 0 = virtual simulation, 1 = deployment server.
  std::uint8_t origin = 0;

  // --- clock + server core ------------------------------------------------
  double now = 0.0;
  std::uint64_t round = 0;
  double staleness_sum = 0.0;
  bool round_deadline_passed = false;
  std::uint64_t dropout_draws = 0;

  ModelVector global;
  RunResult result;
  std::vector<LocalUpdate> buffer;

  /// Opaque strategy state (Strategy::save_state), e.g. server-side
  /// optimizer moments or SEAFL's last weight breakdown.
  std::string strategy_state;

  // --- virtual-simulation session state -----------------------------------
  std::vector<SessionRecord> sessions;
  std::vector<PendingNotify> pending_notifies;
  std::vector<PendingRoundDeadline> pending_round_deadlines;
  /// Dispatched base-weight snapshots for sessions whose base_round is
  /// behind the current round (the current round's base is the global
  /// model itself and is not duplicated here).
  std::map<std::uint64_t, ModelVector> bases;

  // --- compression --------------------------------------------------------
  std::map<std::uint64_t, std::vector<float>> residuals;

  // --- deployment extras --------------------------------------------------
  double rtt_estimate = 0.0;
  std::uint64_t next_session = 0;
};

/// Serializes a checkpoint into one SEAFLCKPT container byte string.
/// Deterministic: the same state always produces the same bytes.
std::string encode_checkpoint(const RunCheckpoint& c);

/// Decodes a container produced by encode_checkpoint. Never throws; on any
/// non-kOk status `out` is default-initialized.
DecodeStatus decode_checkpoint(const void* data, std::size_t size,
                               RunCheckpoint& out);

}  // namespace seafl::ckpt
