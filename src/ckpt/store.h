// Durable checkpoint files: atomic writes, retention, discovery.
//
// Each checkpoint is one file `<dir>/ckpt_<round>.seaflckpt`. Writes follow
// the exp cache pattern hardened for durability: write to `*.tmp.<pid>`,
// fsync the file, rename into place, fsync the directory — so a reader (or
// a restarted server) only ever sees either the previous complete
// checkpoint or the new complete one, never a torn file, even across a
// power cut. A keep-last-N retention policy prunes the oldest rounds after
// every successful write.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"

namespace seafl::ckpt {

/// File path of the checkpoint of `round` under `dir`.
std::string checkpoint_path(const std::string& dir, std::uint64_t round);

/// Atomically writes `bytes` as the checkpoint of `round`, creating `dir`
/// if needed, then prunes all but the newest `keep` rounds (keep >= 1).
/// Throws seafl::Error on I/O failure (after removing the temp file).
void write_checkpoint_file(const std::string& dir, std::uint64_t round,
                           const std::string& bytes, std::size_t keep);

/// Convenience: encode + write + prune in one call.
void write_retained(const std::string& dir, const RunCheckpoint& c,
                    std::size_t keep);

/// Rounds with a checkpoint file under `dir`, ascending. Empty if the
/// directory is missing.
std::vector<std::uint64_t> list_checkpoint_rounds(const std::string& dir);

/// Path of the newest checkpoint under `dir`, if any.
std::optional<std::string> latest_checkpoint(const std::string& dir);

/// Reads and decodes one checkpoint file. An unreadable / short file
/// reports kTruncated; decode failures classify as in container.h.
DecodeStatus load_checkpoint_file(const std::string& path, RunCheckpoint& out);

}  // namespace seafl::ckpt
