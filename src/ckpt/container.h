// SEAFLCKPT: the versioned binary checkpoint container (DESIGN.md §15).
//
// Layout:   magic "SEAFLCKP" (8 bytes)
//           u32 version
//           u32 section count
//           sections: [u32 id][u64 byte length][payload] ...
//           u32 CRC32 over every byte before it
//
// Sections are opaque byte blobs keyed by a numeric id; unknown ids are
// skipped on decode (forward compatibility), and the typed layer on top
// (checkpoint.h) decides which sections are required. Decoding follows the
// net/wire discipline: it never throws, and every failure is classified —
// a short file is kTruncated (retryable: the previous container in a
// retention set may still be whole), everything else is fatal.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace seafl::ckpt {

inline constexpr char kContainerMagic[8] = {'S', 'E', 'A', 'F',
                                            'L', 'C', 'K', 'P'};
inline constexpr std::uint32_t kContainerVersion = 1;

/// Why a container (or the typed checkpoint inside it) failed to decode.
enum class DecodeStatus {
  kOk,
  kTruncated,   ///< ran out of bytes before the structure completed
  kBadMagic,    ///< not a SEAFLCKPT container at all
  kBadVersion,  ///< container from a different format generation
  kBadCrc,      ///< structure complete but the checksum disagrees
  kMalformed,   ///< checksum fine, internal structure inconsistent
};

/// Truncation is the only retryable failure: a reader that races a writer
/// (or inspects a file cut short by a crash) should fall back to an older
/// checkpoint. Every other failure means this container can never load.
inline bool is_fatal(DecodeStatus s) {
  return s != DecodeStatus::kOk && s != DecodeStatus::kTruncated;
}

const char* status_name(DecodeStatus s);

/// One decoded section: id + payload bytes.
struct Section {
  std::uint32_t id = 0;
  std::string payload;
};

/// Accumulates sections and seals them into one container byte string.
class ContainerWriter {
 public:
  void add(std::uint32_t id, std::string payload);
  /// Magic + version + sections + trailing CRC32.
  std::string finish() const;

 private:
  std::vector<Section> sections_;
};

/// Parses a container into its sections. Never throws; on any non-kOk
/// status `out` is left empty.
DecodeStatus parse_container(const void* data, std::size_t size,
                             std::vector<Section>& out);

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of a byte span.
std::uint32_t crc32(const void* data, std::size_t size);

}  // namespace seafl::ckpt
