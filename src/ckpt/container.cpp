#include "ckpt/container.h"

#include <array>
#include <cstring>

#include "common/bytes.h"

namespace seafl::ckpt {

namespace {

/// Sanity bound on the section count: a real checkpoint has around ten
/// sections, so anything in the millions is garbage input, not a container.
constexpr std::uint32_t kMaxSections = 1u << 20;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

const char* status_name(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kTruncated: return "truncated";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadVersion: return "bad-version";
    case DecodeStatus::kBadCrc: return "bad-crc";
    case DecodeStatus::kMalformed: return "malformed";
  }
  return "unknown";
}

void ContainerWriter::add(std::uint32_t id, std::string payload) {
  sections_.push_back(Section{id, std::move(payload)});
}

std::string ContainerWriter::finish() const {
  std::string out;
  out.append(kContainerMagic, sizeof(kContainerMagic));
  bytes::put_u32(out, kContainerVersion);
  bytes::put_u32(out, static_cast<std::uint32_t>(sections_.size()));
  for (const Section& s : sections_) {
    bytes::put_u32(out, s.id);
    bytes::put_u64(out, s.payload.size());
    out.append(s.payload);
  }
  bytes::put_u32(out, crc32(out.data(), out.size()));
  return out;
}

DecodeStatus parse_container(const void* data, std::size_t size,
                             std::vector<Section>& out) {
  out.clear();
  constexpr std::size_t kHeader = sizeof(kContainerMagic) + 4 + 4;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  if (size < sizeof(kContainerMagic)) return DecodeStatus::kTruncated;
  if (std::memcmp(p, kContainerMagic, sizeof(kContainerMagic)) != 0) {
    return DecodeStatus::kBadMagic;
  }
  if (size < kHeader) return DecodeStatus::kTruncated;

  bytes::Reader header(p + sizeof(kContainerMagic),
                       size - sizeof(kContainerMagic));
  const std::uint32_t version = header.u32();
  if (version != kContainerVersion) return DecodeStatus::kBadVersion;
  const std::uint32_t count = header.u32();
  if (count > kMaxSections) return DecodeStatus::kMalformed;

  // Walk the declared structure first so a short file reads as truncation
  // (the CRC range is only known once the structure is complete).
  std::vector<Section> sections;
  sections.reserve(count);
  bytes::Reader body(p + kHeader, size - kHeader);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t id = body.u32();
    const std::uint64_t len = body.u64();
    if (!body.ok()) return DecodeStatus::kTruncated;
    if (len > body.remaining()) return DecodeStatus::kTruncated;
    const unsigned char* payload = body.bytes(static_cast<std::size_t>(len));
    Section s;
    s.id = id;
    s.payload.assign(reinterpret_cast<const char*>(payload),
                     static_cast<std::size_t>(len));
    sections.push_back(std::move(s));
  }
  if (body.remaining() < 4) return DecodeStatus::kTruncated;
  if (body.remaining() > 4) return DecodeStatus::kMalformed;  // trailing slack

  const std::size_t crc_pos = size - 4;
  bytes::Reader tail(p + crc_pos, 4);
  if (tail.u32() != crc32(p, crc_pos)) return DecodeStatus::kBadCrc;

  out = std::move(sections);
  return DecodeStatus::kOk;
}

}  // namespace seafl::ckpt
