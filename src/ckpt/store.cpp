#include "ckpt/store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace seafl::ckpt {

namespace {

namespace fs = std::filesystem;

constexpr const char* kPrefix = "ckpt_";
constexpr const char* kSuffix = ".seaflckpt";

/// Parses `ckpt_<round>.seaflckpt`; nullopt for anything else (temp files,
/// foreign files in the directory).
std::optional<std::uint64_t> round_of(const std::string& name) {
  const std::size_t prefix = std::string(kPrefix).size();
  const std::size_t suffix = std::string(kSuffix).size();
  if (name.size() <= prefix + suffix) return std::nullopt;
  if (name.compare(0, prefix, kPrefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix, suffix, kSuffix) != 0) {
    return std::nullopt;
  }
  const std::string digits = name.substr(prefix, name.size() - prefix - suffix);
  if (digits.empty()) return std::nullopt;
  std::uint64_t round = 0;
  for (const char ch : digits) {
    if (ch < '0' || ch > '9') return std::nullopt;
    round = round * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  return round;
}

/// fsync a path (file or directory); best-effort for directories, which
/// some filesystems refuse to open.
void sync_path(const std::string& path, bool required) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    SEAFL_CHECK(!required, "ckpt: cannot open for fsync: " << path);
    return;
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  SEAFL_CHECK(rc == 0 || !required, "ckpt: fsync failed: " << path);
}

}  // namespace

std::string checkpoint_path(const std::string& dir, std::uint64_t round) {
  return dir + "/" + kPrefix + std::to_string(round) + kSuffix;
}

std::vector<std::uint64_t> list_checkpoint_rounds(const std::string& dir) {
  std::vector<std::uint64_t> rounds;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const auto round = round_of(entry.path().filename().string());
    if (round) rounds.push_back(*round);
  }
  std::sort(rounds.begin(), rounds.end());
  return rounds;
}

std::optional<std::string> latest_checkpoint(const std::string& dir) {
  const std::vector<std::uint64_t> rounds = list_checkpoint_rounds(dir);
  if (rounds.empty()) return std::nullopt;
  return checkpoint_path(dir, rounds.back());
}

void write_checkpoint_file(const std::string& dir, std::uint64_t round,
                           const std::string& bytes, std::size_t keep) {
  SEAFL_CHECK(keep >= 1, "ckpt: retention must keep at least one checkpoint");
  fs::create_directories(dir);
  const std::string final_path = checkpoint_path(dir, round);
  const std::string tmp = final_path + ".tmp." + std::to_string(::getpid());

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  SEAFL_CHECK(fd >= 0, "ckpt: cannot create " << tmp);
  std::size_t written = 0;
  bool io_ok = true;
  while (written < bytes.size()) {
    const ::ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n <= 0) {
      io_ok = false;
      break;
    }
    written += static_cast<std::size_t>(n);
  }
  // The rename is only atomic-durable if the payload hit the platter first.
  if (io_ok) io_ok = ::fsync(fd) == 0;
  ::close(fd);
  if (!io_ok) {
    std::error_code ec;
    fs::remove(tmp, ec);
    SEAFL_CHECK(false, "ckpt: short write or fsync failure on " << tmp);
  }
  std::error_code ec;
  fs::rename(tmp, final_path, ec);
  if (ec) {
    std::error_code rm;
    fs::remove(tmp, rm);
    SEAFL_CHECK(false, "ckpt: rename failed: " << tmp << " -> " << final_path);
  }
  sync_path(dir, /*required=*/false);  // persist the directory entry

  // Retention: drop the oldest rounds beyond the newest `keep`.
  const std::vector<std::uint64_t> rounds = list_checkpoint_rounds(dir);
  if (rounds.size() > keep) {
    for (std::size_t i = 0; i + keep < rounds.size(); ++i) {
      std::error_code rm;
      fs::remove(checkpoint_path(dir, rounds[i]), rm);
    }
  }
}

void write_retained(const std::string& dir, const RunCheckpoint& c,
                    std::size_t keep) {
  write_checkpoint_file(dir, c.round, encode_checkpoint(c), keep);
}

DecodeStatus load_checkpoint_file(const std::string& path,
                                  RunCheckpoint& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return DecodeStatus::kTruncated;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();
  return decode_checkpoint(bytes.data(), bytes.size(), out);
}

}  // namespace seafl::ckpt
