#include "ckpt/checkpoint.h"

#include <set>

#include "common/bytes.h"
#include "common/error.h"
#include "nn/serialize.h"

namespace seafl::ckpt {

namespace {

// Section ids. New sections get fresh ids; decoders skip unknown ids, so
// adding a section is forward compatible and removing one is a version bump.
constexpr std::uint32_t kSecMeta = 1;
constexpr std::uint32_t kSecGlobal = 2;
constexpr std::uint32_t kSecResult = 3;
constexpr std::uint32_t kSecBuffer = 4;
constexpr std::uint32_t kSecStrategy = 5;
constexpr std::uint32_t kSecSessions = 6;
constexpr std::uint32_t kSecPending = 7;
constexpr std::uint32_t kSecBases = 8;
constexpr std::uint32_t kSecResiduals = 9;
constexpr std::uint32_t kSecDeploy = 10;
// Sparse participation (population-scale runs, DESIGN.md §16). Only emitted
// when the run uses the sparse form, so container bytes for dense-population
// runs are unchanged; old decoders skip it like any unknown section.
constexpr std::uint32_t kSecSparsePart = 11;

/// Parses one embedded SEAFLMDL container at the reader's position and
/// advances past it. Returns false on any malformation.
bool read_model(bytes::Reader& r, const unsigned char* base,
                ModelVector& out) {
  if (!r.ok()) return false;
  std::size_t consumed = 0;
  try {
    out = decode_model_vector(base + r.pos(), r.remaining(), &consumed);
  } catch (const Error&) {
    return false;
  }
  return r.bytes(consumed) != nullptr;
}

/// Guards a decoded element count against absurd values before reserving:
/// every list element below occupies at least 8 payload bytes, so a count
/// beyond remaining/8 cannot be genuine.
bool plausible_count(const bytes::Reader& r, std::uint64_t count) {
  return count <= r.remaining() / 8;
}

// --- RunResult binary codec (field order mirrors exp/cache.cpp's JSON) ----

std::string encode_result(const RunResult& r) {
  std::string out;
  bytes::put_u64(out, r.curve.size());
  for (const AccuracyPoint& p : r.curve) {
    bytes::put_f64(out, p.time);
    bytes::put_u64(out, p.round);
    bytes::put_f64(out, p.accuracy);
    bytes::put_f64(out, p.loss);
  }
  bytes::put_u64(out, r.round_log.size());
  for (const RoundStat& s : r.round_log) {
    bytes::put_u64(out, s.round);
    bytes::put_f64(out, s.time);
    bytes::put_u64(out, s.updates);
    bytes::put_f64(out, s.mean_staleness);
    bytes::put_u64(out, s.partial);
  }
  bytes::put_u64(out, r.participation.size());
  for (const std::size_t count : r.participation) bytes::put_u64(out, count);
  append_model_vector(out, r.final_weights);
  bytes::put_f64(out, r.time_to_target);
  bytes::put_f64(out, r.final_accuracy);
  bytes::put_f64(out, r.final_time);
  bytes::put_u64(out, r.rounds);
  bytes::put_u64(out, r.total_updates);
  bytes::put_u64(out, r.partial_updates);
  bytes::put_u64(out, r.model_downloads);
  bytes::put_u64(out, r.model_uploads);
  bytes::put_u64(out, r.notifications);
  bytes::put_u64(out, r.lost_uploads);
  bytes::put_u64(out, r.aggregations);
  bytes::put_f64(out, r.server_aggregation_work);
  bytes::put_u64(out, r.dropped_updates);
  bytes::put_u64(out, r.stale_waits);
  bytes::put_f64(out, r.mean_staleness);
  bytes::put_u64(out, r.client_crashes);
  bytes::put_u64(out, r.deadline_expirations);
  bytes::put_u64(out, r.redispatches);
  bytes::put_u64(out, r.abandoned_slots);
  bytes::put_u64(out, r.upload_retries);
  bytes::put_u64(out, r.degraded_aggregations);
  bytes::put_u64(out, r.screened_updates);
  bytes::put_u64(out, r.clipped_updates);
  bytes::put_u64(out, r.speculation_cut);
  bytes::put_u64(out, r.speculation_wasted);
  bytes::put_u64(out, r.upload_wire_bytes);
  bytes::put_u64(out, r.upload_raw_bytes);
  return out;
}

bool decode_result(const std::string& payload, RunResult& r) {
  const unsigned char* base =
      reinterpret_cast<const unsigned char*>(payload.data());
  bytes::Reader in(payload.data(), payload.size());
  const std::uint64_t curve_count = in.u64();
  if (!plausible_count(in, curve_count)) return false;
  r.curve.resize(static_cast<std::size_t>(curve_count));
  for (AccuracyPoint& p : r.curve) {
    p.time = in.f64();
    p.round = in.u64();
    p.accuracy = in.f64();
    p.loss = in.f64();
  }
  const std::uint64_t log_count = in.u64();
  if (!plausible_count(in, log_count)) return false;
  r.round_log.resize(static_cast<std::size_t>(log_count));
  for (RoundStat& s : r.round_log) {
    s.round = in.u64();
    s.time = in.f64();
    s.updates = static_cast<std::size_t>(in.u64());
    s.mean_staleness = in.f64();
    s.partial = static_cast<std::size_t>(in.u64());
  }
  const std::uint64_t part_count = in.u64();
  if (!plausible_count(in, part_count)) return false;
  r.participation.resize(static_cast<std::size_t>(part_count));
  for (std::size_t& count : r.participation) {
    count = static_cast<std::size_t>(in.u64());
  }
  if (!read_model(in, base, r.final_weights)) return false;
  r.time_to_target = in.f64();
  r.final_accuracy = in.f64();
  r.final_time = in.f64();
  r.rounds = in.u64();
  r.total_updates = static_cast<std::size_t>(in.u64());
  r.partial_updates = static_cast<std::size_t>(in.u64());
  r.model_downloads = static_cast<std::size_t>(in.u64());
  r.model_uploads = static_cast<std::size_t>(in.u64());
  r.notifications = static_cast<std::size_t>(in.u64());
  r.lost_uploads = static_cast<std::size_t>(in.u64());
  r.aggregations = static_cast<std::size_t>(in.u64());
  r.server_aggregation_work = in.f64();
  r.dropped_updates = static_cast<std::size_t>(in.u64());
  r.stale_waits = static_cast<std::size_t>(in.u64());
  r.mean_staleness = in.f64();
  r.client_crashes = static_cast<std::size_t>(in.u64());
  r.deadline_expirations = static_cast<std::size_t>(in.u64());
  r.redispatches = static_cast<std::size_t>(in.u64());
  r.abandoned_slots = static_cast<std::size_t>(in.u64());
  r.upload_retries = static_cast<std::size_t>(in.u64());
  r.degraded_aggregations = static_cast<std::size_t>(in.u64());
  r.screened_updates = static_cast<std::size_t>(in.u64());
  r.clipped_updates = static_cast<std::size_t>(in.u64());
  r.speculation_cut = static_cast<std::size_t>(in.u64());
  r.speculation_wasted = static_cast<std::size_t>(in.u64());
  r.upload_wire_bytes = static_cast<std::size_t>(in.u64());
  r.upload_raw_bytes = static_cast<std::size_t>(in.u64());
  // Dense layout: the vector's length is the population. Sparse runs carry
  // population and counts in kSecSparsePart, which overrides this.
  r.population = r.participation.size();
  return in.ok() && in.remaining() == 0;
}

}  // namespace

std::string encode_checkpoint(const RunCheckpoint& c) {
  ContainerWriter w;
  {
    std::string meta;
    bytes::put_u64(meta, c.seed);
    bytes::put_u64(meta, c.model_dim);
    bytes::put_u64(meta, c.num_clients);
    bytes::put_u8(meta, c.origin);
    bytes::put_f64(meta, c.now);
    bytes::put_u64(meta, c.round);
    bytes::put_f64(meta, c.staleness_sum);
    bytes::put_u8(meta, c.round_deadline_passed ? 1 : 0);
    bytes::put_u64(meta, c.dropout_draws);
    w.add(kSecMeta, std::move(meta));
  }
  {
    std::string global;
    append_model_vector(global, c.global);
    w.add(kSecGlobal, std::move(global));
  }
  w.add(kSecResult, encode_result(c.result));
  if (c.result.participation.empty() && c.result.population > 0) {
    std::string sparse;
    bytes::put_u64(sparse, c.result.population);
    bytes::put_u64(sparse, c.result.sparse_participation.size());
    for (const auto& [client, count] : c.result.sparse_participation) {
      bytes::put_u64(sparse, client);
      bytes::put_u64(sparse, count);
    }
    w.add(kSecSparsePart, std::move(sparse));
  }
  {
    std::string buffer;
    bytes::put_u64(buffer, c.buffer.size());
    for (const LocalUpdate& u : c.buffer) {
      bytes::put_u64(buffer, u.client);
      bytes::put_u64(buffer, u.base_round);
      bytes::put_u64(buffer, u.num_samples);
      bytes::put_u64(buffer, u.epochs_completed);
      bytes::put_f64(buffer, u.arrival_time);
      bytes::put_f64(buffer, u.train_loss);
      append_model_vector(buffer, u.weights);
    }
    w.add(kSecBuffer, std::move(buffer));
  }
  w.add(kSecStrategy, c.strategy_state);
  {
    std::string sessions;
    bytes::put_u64(sessions, c.sessions.size());
    for (const SessionRecord& s : c.sessions) {
      bytes::put_u64(sessions, s.client);
      bytes::put_u64(sessions, s.base_round);
      bytes::put_u64(sessions, s.epoch_ends.size());
      for (const double t : s.epoch_ends) bytes::put_f64(sessions, t);
      bytes::put_u64(sessions, s.planned_epochs);
      bytes::put_u64(sessions, s.frozen_layers);
      bytes::put_u64(sessions, s.attempts);
      bytes::put_f64(sessions, s.crash_time);
      bytes::put_u8(sessions, s.notified ? 1 : 0);
      bytes::put_u8(sessions, s.lost ? 1 : 0);
      bytes::put_u8(sessions, s.crashed ? 1 : 0);
      bytes::put_u8(sessions, s.has_tx ? 1 : 0);
      bytes::put_u64(sessions, s.tx_seq);
      bytes::put_f64(sessions, s.tx_time);
      bytes::put_u8(sessions, static_cast<std::uint8_t>(s.tx_kind));
      bytes::put_u64(sessions, s.tx_epochs);
      bytes::put_u8(sessions, s.has_deadline ? 1 : 0);
      bytes::put_u64(sessions, s.deadline_seq);
      bytes::put_f64(sessions, s.deadline_time);
    }
    w.add(kSecSessions, std::move(sessions));
  }
  {
    std::string pending;
    bytes::put_u64(pending, c.pending_notifies.size());
    for (const PendingNotify& n : c.pending_notifies) {
      bytes::put_u64(pending, n.seq);
      bytes::put_u64(pending, n.client);
      bytes::put_f64(pending, n.time);
    }
    bytes::put_u64(pending, c.pending_round_deadlines.size());
    for (const PendingRoundDeadline& d : c.pending_round_deadlines) {
      bytes::put_u64(pending, d.seq);
      bytes::put_u64(pending, d.armed_round);
      bytes::put_f64(pending, d.time);
    }
    w.add(kSecPending, std::move(pending));
  }
  {
    std::string bases;
    bytes::put_u64(bases, c.bases.size());
    for (const auto& [round, weights] : c.bases) {  // std::map: sorted
      bytes::put_u64(bases, round);
      append_model_vector(bases, weights);
    }
    w.add(kSecBases, std::move(bases));
  }
  {
    std::string residuals;
    bytes::put_u64(residuals, c.residuals.size());
    for (const auto& [client, residual] : c.residuals) {  // sorted
      bytes::put_u64(residuals, client);
      append_model_vector(residuals, residual);
    }
    w.add(kSecResiduals, std::move(residuals));
  }
  {
    std::string deploy;
    bytes::put_f64(deploy, c.rtt_estimate);
    bytes::put_u64(deploy, c.next_session);
    w.add(kSecDeploy, std::move(deploy));
  }
  return w.finish();
}

DecodeStatus decode_checkpoint(const void* data, std::size_t size,
                               RunCheckpoint& out) {
  out = RunCheckpoint{};
  std::vector<Section> sections;
  const DecodeStatus container = parse_container(data, size, sections);
  if (container != DecodeStatus::kOk) return container;

  RunCheckpoint c;
  std::set<std::uint32_t> seen;
  for (const Section& sec : sections) {
    if (!seen.insert(sec.id).second) return DecodeStatus::kMalformed;
    const unsigned char* base =
        reinterpret_cast<const unsigned char*>(sec.payload.data());
    bytes::Reader in(sec.payload.data(), sec.payload.size());
    switch (sec.id) {
      case kSecMeta: {
        c.seed = in.u64();
        c.model_dim = in.u64();
        c.num_clients = in.u64();
        c.origin = in.u8();
        c.now = in.f64();
        c.round = in.u64();
        c.staleness_sum = in.f64();
        c.round_deadline_passed = in.u8() != 0;
        c.dropout_draws = in.u64();
        if (!in.ok() || in.remaining() != 0) return DecodeStatus::kMalformed;
        break;
      }
      case kSecGlobal: {
        if (!read_model(in, base, c.global) || in.remaining() != 0) {
          return DecodeStatus::kMalformed;
        }
        break;
      }
      case kSecResult: {
        if (!decode_result(sec.payload, c.result)) {
          return DecodeStatus::kMalformed;
        }
        break;
      }
      case kSecBuffer: {
        const std::uint64_t count = in.u64();
        if (!plausible_count(in, count)) return DecodeStatus::kMalformed;
        c.buffer.resize(static_cast<std::size_t>(count));
        for (LocalUpdate& u : c.buffer) {
          u.client = static_cast<std::size_t>(in.u64());
          u.base_round = in.u64();
          u.num_samples = static_cast<std::size_t>(in.u64());
          u.epochs_completed = static_cast<std::size_t>(in.u64());
          u.arrival_time = in.f64();
          u.train_loss = in.f64();
          if (!read_model(in, base, u.weights)) {
            return DecodeStatus::kMalformed;
          }
        }
        if (!in.ok() || in.remaining() != 0) return DecodeStatus::kMalformed;
        break;
      }
      case kSecStrategy: {
        c.strategy_state = sec.payload;
        break;
      }
      case kSecSessions: {
        const std::uint64_t count = in.u64();
        if (!plausible_count(in, count)) return DecodeStatus::kMalformed;
        c.sessions.resize(static_cast<std::size_t>(count));
        for (SessionRecord& s : c.sessions) {
          s.client = static_cast<std::size_t>(in.u64());
          s.base_round = in.u64();
          const std::uint64_t epochs = in.u64();
          if (!plausible_count(in, epochs)) return DecodeStatus::kMalformed;
          s.epoch_ends.resize(static_cast<std::size_t>(epochs));
          for (double& t : s.epoch_ends) t = in.f64();
          s.planned_epochs = static_cast<std::size_t>(in.u64());
          s.frozen_layers = static_cast<std::size_t>(in.u64());
          s.attempts = static_cast<std::size_t>(in.u64());
          s.crash_time = in.f64();
          s.notified = in.u8() != 0;
          s.lost = in.u8() != 0;
          s.crashed = in.u8() != 0;
          s.has_tx = in.u8() != 0;
          s.tx_seq = in.u64();
          s.tx_time = in.f64();
          const std::uint8_t kind = in.u8();
          if (kind > static_cast<std::uint8_t>(TxKind::kCrash)) {
            return DecodeStatus::kMalformed;
          }
          s.tx_kind = static_cast<TxKind>(kind);
          s.tx_epochs = static_cast<std::size_t>(in.u64());
          s.has_deadline = in.u8() != 0;
          s.deadline_seq = in.u64();
          s.deadline_time = in.f64();
        }
        if (!in.ok() || in.remaining() != 0) return DecodeStatus::kMalformed;
        break;
      }
      case kSecPending: {
        const std::uint64_t notifies = in.u64();
        if (!plausible_count(in, notifies)) return DecodeStatus::kMalformed;
        c.pending_notifies.resize(static_cast<std::size_t>(notifies));
        for (PendingNotify& n : c.pending_notifies) {
          n.seq = in.u64();
          n.client = static_cast<std::size_t>(in.u64());
          n.time = in.f64();
        }
        const std::uint64_t deadlines = in.u64();
        if (!plausible_count(in, deadlines)) return DecodeStatus::kMalformed;
        c.pending_round_deadlines.resize(static_cast<std::size_t>(deadlines));
        for (PendingRoundDeadline& d : c.pending_round_deadlines) {
          d.seq = in.u64();
          d.armed_round = in.u64();
          d.time = in.f64();
        }
        if (!in.ok() || in.remaining() != 0) return DecodeStatus::kMalformed;
        break;
      }
      case kSecBases: {
        const std::uint64_t count = in.u64();
        if (!plausible_count(in, count)) return DecodeStatus::kMalformed;
        for (std::uint64_t i = 0; i < count; ++i) {
          const std::uint64_t round = in.u64();
          ModelVector weights;
          if (!read_model(in, base, weights)) return DecodeStatus::kMalformed;
          if (!c.bases.emplace(round, std::move(weights)).second) {
            return DecodeStatus::kMalformed;  // duplicate base round
          }
        }
        if (!in.ok() || in.remaining() != 0) return DecodeStatus::kMalformed;
        break;
      }
      case kSecResiduals: {
        const std::uint64_t count = in.u64();
        if (!plausible_count(in, count)) return DecodeStatus::kMalformed;
        for (std::uint64_t i = 0; i < count; ++i) {
          const std::uint64_t client = in.u64();
          std::vector<float> residual;
          if (!read_model(in, base, residual)) {
            return DecodeStatus::kMalformed;
          }
          if (!c.residuals.emplace(client, std::move(residual)).second) {
            return DecodeStatus::kMalformed;  // duplicate client
          }
        }
        if (!in.ok() || in.remaining() != 0) return DecodeStatus::kMalformed;
        break;
      }
      case kSecDeploy: {
        c.rtt_estimate = in.f64();
        c.next_session = in.u64();
        if (!in.ok() || in.remaining() != 0) return DecodeStatus::kMalformed;
        break;
      }
      case kSecSparsePart: {
        c.result.population = static_cast<std::size_t>(in.u64());
        const std::uint64_t count = in.u64();
        if (!plausible_count(in, count)) return DecodeStatus::kMalformed;
        c.result.sparse_participation.clear();
        for (std::uint64_t i = 0; i < count; ++i) {
          const auto client = static_cast<std::size_t>(in.u64());
          const auto updates = static_cast<std::size_t>(in.u64());
          if (!c.result.sparse_participation.emplace(client, updates)
                   .second) {
            return DecodeStatus::kMalformed;  // duplicate client
          }
        }
        if (!in.ok() || in.remaining() != 0) return DecodeStatus::kMalformed;
        break;
      }
      default:
        break;  // unknown section: skip (forward compatibility)
    }
  }
  if (!seen.count(kSecMeta) || !seen.count(kSecGlobal) ||
      !seen.count(kSecResult)) {
    return DecodeStatus::kMalformed;
  }
  out = std::move(c);
  return DecodeStatus::kOk;
}

}  // namespace seafl::ckpt
