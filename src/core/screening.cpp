#include "core/screening.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "tensor/ops.h"
#include "tensor/workspace.h"

namespace seafl {

namespace {

/// Median of a small span (clobbers it; buffers are K-sized).
double median_inplace(std::span<double> values) {
  SEAFL_CHECK(!values.empty(), "median of empty vector");
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double m = values[mid];
  if (values.size() % 2 == 0) {
    // Lower neighbor: max of the left partition.
    const double lo = *std::max_element(values.begin(), values.begin() + mid);
    m = 0.5 * (m + lo);
  }
  return m;
}

}  // namespace

ScreeningReport screen_updates(const ScreeningConfig& config,
                               const ModelVector& global,
                               std::vector<LocalUpdate>& buffer) {
  ScreeningReport report;
  screen_updates_into(config, global, buffer, report);
  return report;
}

void screen_updates_into(const ScreeningConfig& config,
                         const ModelVector& global,
                         std::span<LocalUpdate> buffer,
                         ScreeningReport& report) {
  report.entries.clear();
  report.entries.resize(buffer.size());
  for (std::size_t i = 0; i < buffer.size(); ++i)
    report.entries[i].client = buffer[i].client;
  if (!config.enabled() || buffer.size() < config.min_buffer) return;

  const std::size_t dim = global.size();
  Workspace& ws = Workspace::tls();
  // Deltas w_k - w_g (flat K x dim) and their norms, staged in the arena.
  std::span<float> deltas = ws.floats(WsSlot::kScreenDeltas,
                                      buffer.size() * dim);
  std::span<double> norms = ws.doubles(WsDSlot::kScreenNorms, buffer.size());
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    SEAFL_CHECK(buffer[i].weights.size() == dim,
                "screening: update dimension mismatch");
    const std::span<float> d = deltas.subspan(i * dim, dim);
    sub_to(d, buffer[i].weights, global);
    norms[i] = l2_norm(d);
    report.entries[i].delta_norm = norms[i];
  }

  // Step 1 — norm clipping against the scale-free median bound.
  if (config.clip_multiple > 0.0) {
    // nth_element clobbers its input, so the median runs on a scratch copy
    // (kScreenScratch, not kOpsPartials — l2_norm below may hold that slot).
    std::span<double> scratch =
        ws.doubles(WsDSlot::kScreenScratch, buffer.size());
    std::copy(norms.begin(), norms.end(), scratch.begin());
    const double bound = config.clip_multiple * median_inplace(scratch);
    for (std::size_t i = 0; i < buffer.size(); ++i) {
      if (norms[i] <= bound || norms[i] == 0.0) continue;
      const auto scale = static_cast<float>(bound / norms[i]);
      const std::span<float> d = deltas.subspan(i * dim, dim);
      scale_inplace(d, scale);
      add_to(buffer[i].weights, global, d);
      report.entries[i].clipped = true;
    }
  }

  // Step 2 — cosine rejection against the buffer's mean clipped delta.
  if (config.min_cosine > -1.0) {
    std::span<float> mean = ws.floats(WsSlot::kScreenMean, dim);
    std::fill(mean.begin(), mean.end(), 0.0f);
    for (std::size_t i = 0; i < buffer.size(); ++i)
      add_inplace(mean, deltas.subspan(i * dim, dim));
    scale_inplace(mean, static_cast<float>(1.0 / buffer.size()));
    for (std::size_t i = 0; i < buffer.size(); ++i) {
      const double cos =
          cosine_similarity(deltas.subspan(i * dim, dim), mean);
      report.entries[i].cosine = cos;
      if (cos < config.min_cosine) report.entries[i].rejected = true;
    }
  }
}

ScreenedStrategy::ScreenedStrategy(StrategyPtr inner, ScreeningConfig config)
    : inner_(std::move(inner)), config_(config) {
  SEAFL_CHECK(inner_ != nullptr, "null inner strategy");
  SEAFL_CHECK(config_.min_cosine >= -1.0 && config_.min_cosine <= 1.0,
              "min_cosine must lie in [-1, 1]");
  SEAFL_CHECK(config_.clip_multiple >= 0.0,
              "clip_multiple must be non-negative");
}

void ScreenedStrategy::aggregate(const AggregationContext& ctx,
                                 std::span<const LocalUpdate> buffer,
                                 ModelVector& global_out) {
  SEAFL_CHECK(ctx.global != nullptr, "null global model in context");
  // screen_updates rewrites clipped weights, so work on an owned copy.
  // Element-wise copy assignment into the member reuses each update's weight
  // storage at constant K/dim.
  screened_.assign(buffer.begin(), buffer.end());
  screen_updates_into(config_, *ctx.global, screened_, last_report_);
  if (ctx.screening != nullptr) *ctx.screening = last_report_;

  // Compact the survivors to the front (swap keeps storage inside the
  // member) and delegate that prefix.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < screened_.size(); ++i) {
    if (last_report_.entries[i].rejected) continue;
    if (i != kept) std::swap(screened_[kept], screened_[i]);
    ++kept;
  }
  if (kept == 0) return;  // whole buffer quarantined: no-op round

  AggregationContext inner_ctx = ctx;
  inner_ctx.total_samples = 0;
  for (std::size_t i = 0; i < kept; ++i)
    inner_ctx.total_samples += screened_[i].num_samples;
  inner_->aggregate(inner_ctx,
                    std::span<const LocalUpdate>(screened_.data(), kept),
                    global_out);
}

}  // namespace seafl
