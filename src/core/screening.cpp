#include "core/screening.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "tensor/ops.h"

namespace seafl {

namespace {

/// Median of a small vector (copy by value; buffers are K-sized).
double median(std::vector<double> values) {
  SEAFL_CHECK(!values.empty(), "median of empty vector");
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double m = values[mid];
  if (values.size() % 2 == 0) {
    // Lower neighbor: max of the left partition.
    const double lo = *std::max_element(values.begin(), values.begin() + mid);
    m = 0.5 * (m + lo);
  }
  return m;
}

}  // namespace

ScreeningReport screen_updates(const ScreeningConfig& config,
                               const ModelVector& global,
                               std::vector<LocalUpdate>& buffer) {
  ScreeningReport report;
  report.entries.resize(buffer.size());
  for (std::size_t i = 0; i < buffer.size(); ++i)
    report.entries[i].client = buffer[i].client;
  if (!config.enabled() || buffer.size() < config.min_buffer) return report;

  const std::size_t dim = global.size();
  // Deltas w_k - w_g and their norms.
  std::vector<std::vector<float>> deltas(buffer.size());
  std::vector<double> norms(buffer.size());
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    SEAFL_CHECK(buffer[i].weights.size() == dim,
                "screening: update dimension mismatch");
    auto& d = deltas[i];
    d.resize(dim);
    for (std::size_t j = 0; j < dim; ++j)
      d[j] = buffer[i].weights[j] - global[j];
    norms[i] = l2_norm(d);
    report.entries[i].delta_norm = norms[i];
  }

  // Step 1 — norm clipping against the scale-free median bound.
  if (config.clip_multiple > 0.0) {
    const double bound = config.clip_multiple * median(norms);
    for (std::size_t i = 0; i < buffer.size(); ++i) {
      if (norms[i] <= bound || norms[i] == 0.0) continue;
      const auto scale = static_cast<float>(bound / norms[i]);
      for (std::size_t j = 0; j < dim; ++j) {
        deltas[i][j] *= scale;
        buffer[i].weights[j] = global[j] + deltas[i][j];
      }
      report.entries[i].clipped = true;
    }
  }

  // Step 2 — cosine rejection against the buffer's mean clipped delta.
  if (config.min_cosine > -1.0) {
    std::vector<float> mean(dim, 0.0f);
    for (const auto& d : deltas)
      for (std::size_t j = 0; j < dim; ++j) mean[j] += d[j];
    const auto inv = static_cast<float>(1.0 / buffer.size());
    for (std::size_t j = 0; j < dim; ++j) mean[j] *= inv;
    for (std::size_t i = 0; i < buffer.size(); ++i) {
      const double cos = cosine_similarity(deltas[i], mean);
      report.entries[i].cosine = cos;
      if (cos < config.min_cosine) report.entries[i].rejected = true;
    }
  }
  return report;
}

ScreenedStrategy::ScreenedStrategy(StrategyPtr inner, ScreeningConfig config)
    : inner_(std::move(inner)), config_(config) {
  SEAFL_CHECK(inner_ != nullptr, "null inner strategy");
  SEAFL_CHECK(config_.min_cosine >= -1.0 && config_.min_cosine <= 1.0,
              "min_cosine must lie in [-1, 1]");
  SEAFL_CHECK(config_.clip_multiple >= 0.0,
              "clip_multiple must be non-negative");
}

void ScreenedStrategy::aggregate(const AggregationContext& ctx,
                                 std::span<const LocalUpdate> buffer,
                                 ModelVector& global_out) {
  SEAFL_CHECK(ctx.global != nullptr, "null global model in context");
  // screen_updates rewrites clipped weights, so work on an owned copy.
  std::vector<LocalUpdate> screened(buffer.begin(), buffer.end());
  last_report_ = screen_updates(config_, *ctx.global, screened);
  if (ctx.screening != nullptr) *ctx.screening = last_report_;

  std::vector<LocalUpdate> kept;
  kept.reserve(screened.size());
  for (std::size_t i = 0; i < screened.size(); ++i)
    if (!last_report_.entries[i].rejected)
      kept.push_back(std::move(screened[i]));
  if (kept.empty()) return;  // whole buffer quarantined: no-op round

  AggregationContext inner_ctx = ctx;
  inner_ctx.total_samples = 0;
  for (const LocalUpdate& u : kept) inner_ctx.total_samples += u.num_samples;
  inner_->aggregate(inner_ctx, kept, global_out);
}

}  // namespace seafl
