#include "core/weight_bounds.h"

namespace seafl {

WeightInterval lemma1_interval(double alpha, double mu,
                               double data_fraction) {
  SEAFL_CHECK(alpha >= 0.0 && mu >= 0.0, "alpha/mu must be non-negative");
  SEAFL_CHECK(data_fraction >= 0.0 && data_fraction <= 1.0,
              "data fraction out of [0, 1]");
  return {alpha / 2.0 * data_fraction, (alpha + mu) * data_fraction};
}

bool satisfies_lemma1(double alpha, double mu,
                      std::span<const WeightBreakdown> breakdowns) {
  constexpr double kTol = 1e-9;
  for (const auto& b : breakdowns) {
    const auto iv = lemma1_interval(alpha, mu, b.data_fraction);
    if (b.raw < iv.lower - kTol || b.raw > iv.upper + kTol) return false;
  }
  return true;
}

double lambda_d(std::span<const double> data_fractions) {
  double acc = 0.0;
  for (const double d : data_fractions) {
    SEAFL_CHECK(d >= 0.0 && d <= 1.0, "data fraction out of [0, 1]");
    acc += d * d;
  }
  return acc;
}

double max_stable_learning_rate(double alpha, double mu, double lambda,
                                std::size_t buffer_size,
                                double smoothness_l) {
  SEAFL_CHECK(alpha > 0.0, "Eq. 10 requires alpha > 0");
  SEAFL_CHECK(mu >= 0.0, "mu must be non-negative");
  SEAFL_CHECK(lambda > 0.0, "lambda(d) must be positive");
  SEAFL_CHECK(buffer_size >= 1, "buffer size must be >= 1");
  SEAFL_CHECK(smoothness_l > 0.0, "smoothness constant must be positive");
  // Rearranged Eq. 10: eta <= alpha^2 lambda / (4 (alpha+mu) K L).
  return alpha * alpha * lambda /
         (4.0 * (alpha + mu) * static_cast<double>(buffer_size) *
          smoothness_l);
}

bool satisfies_lr_condition(double eta, double alpha, double mu,
                            double lambda, std::size_t buffer_size,
                            double smoothness_l) {
  SEAFL_CHECK(eta > 0.0, "learning rate must be positive");
  return eta <= max_stable_learning_rate(alpha, mu, lambda, buffer_size,
                                         smoothness_l) + 1e-12;
}

}  // namespace seafl
