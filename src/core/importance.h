// Importance factor — Eq. 5 of the paper:
//
//     s_t^k = mu * (Theta(update, w_t^g) + 1) / 2
//
// Theta is a similarity between the client's contribution and the current
// global model, normalized from [-1, 1] to [0, 1] and scaled by mu. The
// paper discusses two similarity choices (dot product vs cosine) and adopts
// cosine; it is also ambiguous whether the client's *weights* or its *delta*
// are compared against the global model (the text says "similarity to the
// current global model", Eq. 5 writes Delta_t^k). Both are provided; the
// default follows the text (weights), and the ablation bench compares all
// variants.
#pragma once

#include <span>

#include "common/error.h"
#include "tensor/ops.h"

namespace seafl {

/// What vector is compared against the global model.
enum class ImportanceInput {
  kWeights,  ///< Theta(w_k, w_g) — "similarity to the current global model"
  kDelta,    ///< Theta(w_k - w_g, w_g) — Eq. 5's literal Delta reading
};

/// How similarity is measured.
enum class SimilarityKind {
  kCosine,      ///< angle only (the paper's choice)
  kDotProduct,  ///< magnitude-sensitive alternative discussed in §IV.B
};

/// Computes Theta in [-1, 1] for the chosen variant. The dot-product variant
/// is squashed through tanh of the *normalized* dot (dot / dimension) so it
/// stays in [-1, 1] and Eq. 5's normalization applies unchanged.
double importance_similarity(std::span<const float> client_weights,
                             std::span<const float> global_weights,
                             ImportanceInput input, SimilarityKind kind);

/// Evaluates Eq. 5: mu * (Theta + 1) / 2. Result lies in [0, mu].
inline double importance_factor(double mu, double theta) {
  SEAFL_CHECK(mu >= 0.0, "mu must be non-negative");
  SEAFL_CHECK(theta >= -1.0 && theta <= 1.0,
              "similarity must lie in [-1, 1], got " << theta);
  return mu * (theta + 1.0) / 2.0;
}

}  // namespace seafl
