// The SEAFL aggregation strategy — the paper's primary contribution.
//
// Per aggregation round (Algorithm 1):
//   1. gamma_t^k  from staleness          (Eq. 4)
//   2. s_t^k      from model similarity   (Eq. 5)
//   3. p_t^k = d_k (gamma + s), normalized (Eq. 6)
//   4. w_new = sum_k p_t^k w_t^k           (Eq. 7)
//   5. w_{t+1} = (1 - vartheta) w_t + vartheta w_new  (Eq. 8)
//
// SEAFL^2 uses the same aggregation; its partial-training protocol lives in
// the simulation loop (RunConfig::partial_training). Partially trained
// updates are handled here by scaling their contribution with the fraction
// of completed epochs, so an update from 2 of 5 epochs moves the global
// model proportionally less.
#pragma once

#include "core/adaptive_weights.h"

namespace seafl {

/// Full SEAFL strategy configuration.
struct SeaflConfig {
  AdaptiveWeightConfig weights;  ///< Eqs. 4-6
  double vartheta = 0.8;         ///< Eq. 8 server mixing (paper: 0.8)

  /// Scale the weight of partially trained updates by epochs_done / E
  /// (SEAFL^2). Has no effect when all updates complete their epochs.
  bool scale_partial_updates = true;
  std::size_t full_epochs = 5;   ///< E, for the partial scaling above
};

/// Staleness- and importance-aware buffered aggregation (Eqs. 4-8).
class SeaflStrategy : public AggregationStrategy {
 public:
  explicit SeaflStrategy(SeaflConfig config);

  void aggregate(const AggregationContext& ctx,
                 std::span<const LocalUpdate> buffer,
                 ModelVector& global_out) override;
  std::string name() const override { return "SEAFL"; }

  /// The staleness/importance breakdown of the last aggregation.
  void save_state(std::string& out) const override;
  bool restore_state(const unsigned char* data, std::size_t size) override;

  /// Weight breakdowns of the most recent aggregation (for inspection).
  const std::vector<WeightBreakdown>& last_breakdown() const {
    return last_breakdown_;
  }
  const SeaflConfig& config() const { return config_; }

 private:
  SeaflConfig config_;
  std::vector<WeightBreakdown> last_breakdown_;
};

}  // namespace seafl
