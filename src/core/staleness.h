// Staleness factor — Eq. 4 of the paper:
//
//     gamma_t^k = alpha * beta / ((t - t_k) + beta)
//
// where S_k = t - t_k is the update's staleness, beta the staleness limit and
// alpha the staleness-weight hyperparameter. Fresh updates (S = 0) receive
// gamma = alpha; updates at the limit (S = beta) receive alpha/2, which is
// where Lemma 1's lower bound comes from.
#pragma once

#include <cstdint>

#include "common/error.h"
#include "fl/types.h"

namespace seafl {

/// Evaluates Eq. 4. With beta = kNoStalenessLimit the factor degenerates to
/// the staleness-blind constant alpha (the FedBuff-like regime the paper
/// calls the "infinite staleness limit").
inline double staleness_factor(double alpha, std::uint64_t staleness,
                               std::uint64_t beta) {
  SEAFL_CHECK(alpha >= 0.0, "alpha must be non-negative");
  if (beta == kNoStalenessLimit) return alpha;
  SEAFL_CHECK(beta >= 1, "staleness limit must be >= 1");
  return alpha * static_cast<double>(beta) /
         (static_cast<double>(staleness) + static_cast<double>(beta));
}

}  // namespace seafl
