#include "core/seafl_strategy.h"

#include <algorithm>

#include "common/bytes.h"
#include "tensor/ops.h"
#include "tensor/workspace.h"

namespace seafl {

SeaflStrategy::SeaflStrategy(SeaflConfig config) : config_(config) {
  SEAFL_CHECK(config.vartheta > 0.0 && config.vartheta <= 1.0,
              "vartheta must be in (0, 1], got " << config.vartheta);
  SEAFL_CHECK(config.full_epochs >= 1, "full_epochs must be >= 1");
}

void SeaflStrategy::aggregate(const AggregationContext& ctx,
                              std::span<const LocalUpdate> buffer,
                              ModelVector& global_out) {
  compute_adaptive_weights_into(config_.weights, ctx, buffer,
                                last_breakdown_);

  // SEAFL^2 refinement: a partially trained model is closer to the global
  // model it started from; scaling its aggregation weight by the completed
  // epoch fraction keeps fast/slow contributions commensurate.
  if (config_.scale_partial_updates) {
    // Re-acquiring kWeightScratch here is safe: compute_adaptive_weights_into
    // is done with it, and the values below are rebuilt from the breakdown.
    const std::span<double> weights =
        Workspace::tls().doubles(WsDSlot::kWeightScratch, buffer.size());
    bool any_partial = false;
    for (std::size_t i = 0; i < buffer.size(); ++i) {
      double scale = 1.0;
      if (buffer[i].epochs_completed > 0 &&
          buffer[i].epochs_completed < config_.full_epochs) {
        scale = static_cast<double>(buffer[i].epochs_completed) /
                static_cast<double>(config_.full_epochs);
        any_partial = true;
      }
      weights[i] = last_breakdown_[i].weight * scale;
    }
    if (any_partial) {
      normalize_weights(weights);
      for (std::size_t i = 0; i < buffer.size(); ++i)
        last_breakdown_[i].weight = weights[i];
    }
  }

  // Eq. 7: weighted average of the buffered models, accumulated in arena
  // scratch (same additions in the same order as a fresh zeroed vector).
  const std::size_t dim = global_out.size();
  const std::span<float> aggregate =
      Workspace::tls().floats(WsSlot::kAggSum, dim);
  std::fill(aggregate.begin(), aggregate.end(), 0.0f);
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    SEAFL_CHECK(buffer[i].weights.size() == dim,
                "update " << i << " dimension mismatch");
    axpy(aggregate, static_cast<float>(last_breakdown_[i].weight),
         buffer[i].weights);
  }

  // Eq. 8: server mixing into the global model.
  mix_into_global(aggregate, config_.vartheta, global_out);
}

void SeaflStrategy::save_state(std::string& out) const {
  bytes::put_u64(out, last_breakdown_.size());
  for (const WeightBreakdown& b : last_breakdown_) {
    bytes::put_u64(out, b.staleness);
    bytes::put_f64(out, b.gamma);
    bytes::put_f64(out, b.theta);
    bytes::put_f64(out, b.importance);
    bytes::put_f64(out, b.data_fraction);
    bytes::put_f64(out, b.raw);
    bytes::put_f64(out, b.weight);
  }
}

bool SeaflStrategy::restore_state(const unsigned char* data,
                                  std::size_t size) {
  bytes::Reader in(data, size);
  const std::uint64_t count = in.u64();
  if (!in.ok() || count > in.remaining() / 8) return false;
  std::vector<WeightBreakdown> breakdown(static_cast<std::size_t>(count));
  for (WeightBreakdown& b : breakdown) {
    b.staleness = in.u64();
    b.gamma = in.f64();
    b.theta = in.f64();
    b.importance = in.f64();
    b.data_fraction = in.f64();
    b.raw = in.f64();
    b.weight = in.f64();
  }
  if (!in.ok() || in.remaining() != 0) return false;
  last_breakdown_ = std::move(breakdown);
  return true;
}

}  // namespace seafl
