#include "core/presets.h"

#include <algorithm>

#include "core/screening.h"
#include "core/seafl_strategy.h"
#include "fl/server_opt.h"
#include "fl/strategies.h"

namespace seafl {

namespace {

RunConfig base_config(const ExperimentParams& p) {
  RunConfig c;
  c.buffer_size = p.buffer_size;
  c.concurrency = p.concurrency;
  c.local_epochs = p.local_epochs;
  c.batch_size = p.batch_size;
  c.sgd.learning_rate = p.learning_rate;
  c.sgd.clip_norm = p.clip_norm;
  c.max_rounds = p.max_rounds;
  c.max_virtual_seconds = p.max_virtual_seconds;
  c.target_accuracy = p.target_accuracy;
  c.stop_at_target = p.stop_at_target;
  c.eval_every = p.eval_every;
  c.eval_subset = p.eval_subset;
  c.seed = p.seed;
  c.eager_training = p.eager_training;
  c.sim_jobs = p.sim_jobs;
  // Width knobs first, then the selector: the "int8"/"int4" aliases force
  // their own bit width and must win over codec_bits.
  c.compression.bits = p.codec_bits;
  c.compression.topk_fraction = p.topk_fraction;
  c.compression.error_feedback = p.error_feedback;
  compress::apply_codec_name(c.compression, p.codec);
  c.faults.diurnal_period = p.diurnal_period;
  c.faults.diurnal_online_fraction = p.diurnal_online_fraction;
  return c;
}

SeaflConfig seafl_config(const ExperimentParams& p,
                         std::uint64_t staleness_limit) {
  SeaflConfig s;
  s.weights.alpha = p.alpha;
  s.weights.mu = p.mu;
  s.weights.staleness_limit = staleness_limit;
  s.vartheta = p.vartheta;
  s.full_epochs = p.local_epochs;
  return s;
}

}  // namespace

Arm make_arm(const std::string& algorithm, const ExperimentParams& params) {
  Arm arm;
  RunConfig c = base_config(params);

  if (algorithm == "seafl") {
    c.staleness_limit = params.staleness_limit;
    c.wait_for_stale = true;
    arm.strategy = std::make_unique<SeaflStrategy>(
        seafl_config(params, params.staleness_limit));
    arm.label = "SEAFL (beta=" + std::to_string(params.staleness_limit) + ")";
  } else if (algorithm == "seafl2") {
    c.staleness_limit = params.staleness_limit;
    // Algorithm 2 does NOT hold aggregation for stale devices (that is
    // Algorithm 1's behaviour); it notifies them to upload right after the
    // ongoing epoch, which keeps staleness near beta without blocking.
    c.wait_for_stale = false;
    c.partial_training = true;
    arm.strategy = std::make_unique<SeaflStrategy>(
        seafl_config(params, params.staleness_limit));
    arm.label =
        "SEAFL^2 (beta=" + std::to_string(params.staleness_limit) + ")";
  } else if (algorithm == "seafl-inf") {
    c.staleness_limit = kNoStalenessLimit;
    arm.strategy = std::make_unique<SeaflStrategy>(
        seafl_config(params, kNoStalenessLimit));
    arm.label = "SEAFL (beta=inf)";
  } else if (algorithm == "fedbuff") {
    c.staleness_limit = kNoStalenessLimit;
    FedBuffConfig fb;
    fb.vartheta = params.vartheta;
    arm.strategy = std::make_unique<FedBuffStrategy>(fb);
    arm.label = "FedBuff";
  } else if (algorithm == "fedasync") {
    c.buffer_size = 1;  // fully asynchronous
    c.staleness_limit = kNoStalenessLimit;
    arm.strategy = std::make_unique<FedAsyncStrategy>();
    arm.label = "FedAsync";
  } else if (algorithm == "fedavg") {
    c.mode = FlMode::kSync;
    c.staleness_limit = kNoStalenessLimit;
    arm.strategy = std::make_unique<FedAvgStrategy>();
    arm.label = "FedAvg";
  } else if (algorithm == "seafl2-sub") {
    // The paper's stated future work: SEAFL^2 plus adaptive sub-model
    // training — slow devices freeze the lower half of the network.
    c.staleness_limit = params.staleness_limit;
    c.partial_training = true;
    c.submodel_training = true;
    arm.strategy = std::make_unique<SeaflStrategy>(
        seafl_config(params, params.staleness_limit));
    arm.label = "SEAFL^2+submodel (beta=" +
                std::to_string(params.staleness_limit) + ")";
  } else if (algorithm == "fedprox") {
    // Synchronous FedAvg plus FedProx's proximal term on local training.
    c.mode = FlMode::kSync;
    c.staleness_limit = kNoStalenessLimit;
    c.proximal_mu = 0.1;
    arm.strategy = std::make_unique<FedAvgStrategy>();
    arm.label = "FedProx (mu=0.1)";
  } else if (algorithm == "fedsa-epochs") {
    // Extension inspired by FedSA: buffered aggregation with per-device
    // epoch counts scaled inversely to device slowdown.
    c.staleness_limit = kNoStalenessLimit;
    c.adaptive_epochs = true;
    FedBuffConfig fb;
    fb.vartheta = params.vartheta;
    arm.strategy = std::make_unique<FedBuffStrategy>(fb);
    arm.label = "FedSA-epochs";
  } else if (algorithm == "fedbuff-adam") {
    // Adaptive federated optimization on the server (Reddi et al.) over
    // FedBuff's buffered averaging.
    c.staleness_limit = kNoStalenessLimit;
    FedBuffConfig fb;
    fb.vartheta = params.vartheta;
    ServerOptConfig so;
    so.kind = ServerOpt::kAdam;
    so.lr = 0.5;
    arm.strategy = std::make_unique<ServerOptStrategy>(
        std::make_unique<FedBuffStrategy>(fb), so);
    arm.label = "FedBuff+Adam";
  } else if (algorithm == "seafl-avgm") {
    // Server momentum on top of SEAFL's adaptive aggregation.
    c.staleness_limit = params.staleness_limit;
    c.wait_for_stale = true;
    ServerOptConfig so;
    so.kind = ServerOpt::kMomentum;
    so.lr = 1.0;
    so.beta1 = 0.6;
    arm.strategy = std::make_unique<ServerOptStrategy>(
        std::make_unique<SeaflStrategy>(
            seafl_config(params, params.staleness_limit)),
        so);
    arm.label = "SEAFL+AvgM (beta=" +
                std::to_string(params.staleness_limit) + ")";
  } else if (algorithm == "seafl-ft") {
    // Fault-tolerant SEAFL: Algorithm 1 plus the server recovery policies
    // of DESIGN.md §10 — assignment deadlines with re-dispatch, upload
    // retransmission with backoff, degraded (min_updates) aggregation once
    // a round overruns, and pre-aggregation screening. The hazard itself
    // (churn / loss rates, round_deadline time scale) is configured by the
    // caller on arm.config.faults, since it depends on the fleet's speed.
    c.staleness_limit = params.staleness_limit;
    c.wait_for_stale = true;
    c.faults.deadline_factor = 2.0;
    c.faults.max_upload_retries = 2;
    c.faults.min_updates = std::max<std::size_t>(1, params.buffer_size / 2);
    ScreeningConfig sc;
    sc.clip_multiple = 3.0;
    sc.min_cosine = -0.5;  // only rejects updates pointing away from consensus
    arm.strategy = std::make_unique<ScreenedStrategy>(
        std::make_unique<SeaflStrategy>(
            seafl_config(params, params.staleness_limit)),
        sc);
    arm.label = "SEAFL-FT (beta=" + std::to_string(params.staleness_limit) +
                ", deadline x2)";
  } else if (algorithm == "safa-drop") {
    c.staleness_limit = params.staleness_limit;
    c.drop_stale = true;
    FedBuffConfig fb;
    fb.vartheta = params.vartheta;
    arm.strategy = std::make_unique<FedBuffStrategy>(fb);
    arm.label =
        "SAFA-drop (beta=" + std::to_string(params.staleness_limit) + ")";
  } else {
    SEAFL_CHECK(false, "unknown algorithm '" << algorithm << "'");
  }

  arm.config = std::move(c);
  return arm;
}

std::vector<std::string> known_algorithms() {
  return {"seafl",        "seafl2",       "seafl2-sub",   "seafl-inf",
          "seafl-avgm",   "seafl-ft",     "fedbuff",      "fedbuff-adam",
          "fedasync",     "fedavg",       "fedprox",      "fedsa-epochs",
          "safa-drop"};
}

RunResult run_arm(const std::string& algorithm,
                  const ExperimentParams& params, const FlTask& task,
                  const Fleet& fleet, obs::TraceSink* trace) {
  Arm arm = make_arm(algorithm, params);
  const ModelFactory factory =
      make_model(task.default_model, task.input, task.num_classes);
  // Normalize per-sample work against the MLP baseline so virtual timing
  // reflects relative model cost across tasks (DESIGN.md §1).
  const double mlp_work = estimate_flops_per_sample(
      ModelKind::kMlp, InputSpec{1, 1, 32}, task.num_classes);
  const double work = estimate_flops_per_sample(task.default_model,
                                                task.input, task.num_classes) /
                      mlp_work;
  Simulation sim(task, factory, fleet, std::move(arm.strategy), arm.config,
                 work);
  sim.set_trace_sink(trace);
  return sim.run();
}

}  // namespace seafl
