// Experiment presets: one call builds a named algorithm "arm" — the
// (strategy, run-config) pair a bench or example needs. Keeps every binary's
// arm definitions consistent with the paper's §VI setup.
#pragma once

#include <string>

#include "fl/simulation.h"

namespace seafl {

/// Knobs shared by every arm of an experiment. Defaults follow §VI.A:
/// 100 devices, 20% concurrency, E = 5, vartheta = 0.8, K = 10, beta = 10,
/// alpha = 3, mu = 1.
struct ExperimentParams {
  std::size_t buffer_size = 10;       ///< K
  std::size_t concurrency = 20;       ///< M
  std::uint64_t staleness_limit = 10; ///< beta (SEAFL arms)
  std::size_t local_epochs = 5;       ///< E
  std::size_t batch_size = 20;
  float learning_rate = 0.05f;
  float clip_norm = 5.0f;  ///< global-norm gradient clip (0 disables)
  double alpha = 3.0;
  double mu = 1.0;
  double vartheta = 0.8;
  double target_accuracy = 0.9;
  bool stop_at_target = true;
  std::uint64_t max_rounds = 400;
  double max_virtual_seconds = 1e9;
  std::uint64_t eval_every = 1;
  std::size_t eval_subset = 0;
  std::uint64_t seed = 42;

  /// Upload compression (DESIGN.md §14). `codec` takes the selector names of
  /// compress::apply_codec_name ("identity", "float32", "quantize", "int8",
  /// "int4", "topk"); the width aliases override `codec_bits`. Identity
  /// keeps every byte-level behaviour of a pre-compression config.
  std::string codec = "identity";
  std::size_t codec_bits = 8;        ///< value width for quantize/topk
  double topk_fraction = 0.1;        ///< coordinate fraction topk keeps
  bool error_feedback = true;        ///< carry dropped mass across rounds

  /// Diurnal availability (FaultConfig::diurnal_*): each client is online
  /// for a contiguous `diurnal_online_fraction` of every `diurnal_period`
  /// virtual seconds, at a per-client phase. 0 disables the overlay.
  double diurnal_period = 0.0;
  double diurnal_online_fraction = 0.5;

  /// Execution knobs (RunConfig::eager_training / sim_jobs): where client
  /// training runs, never what it computes — results are bitwise invariant,
  /// so these are deliberately NOT in the exp FieldBinding table and never
  /// reach the config hash (a cached result serves eager and lazy alike).
  bool eager_training = false;
  std::size_t sim_jobs = 0;
};

/// A runnable algorithm arm.
struct Arm {
  std::string label;      ///< display name for tables ("SEAFL (beta=10)")
  StrategyPtr strategy;
  RunConfig config;
};

/// Builds a named arm. Known algorithms:
///   "seafl"      — adaptive weights, staleness limit, synchronous waiting
///   "seafl2"     — seafl + partial training (Algorithm 2)
///   "seafl2-sub" — seafl2 + sub-model training on slow devices (the
///                  paper's stated future work)
///   "seafl-inf"  — seafl with an infinite staleness limit (Fig. 5 ablation)
///   "fedbuff"    — buffered uniform averaging, no staleness limit
///   "fedasync"   — fully asynchronous (K forced to 1)
///   "seafl-avgm" — SEAFL with server momentum (adaptive federated
///                  optimization on top of adaptive aggregation)
///   "fedbuff-adam" — FedBuff with a FedAdam server optimizer
///   "fedavg"     — synchronous baseline
///   "fedprox"    — synchronous baseline with a proximal local objective
///   "fedsa-epochs" — extension: buffered aggregation where slow devices
///                  run proportionally fewer local epochs (FedSA-inspired)
///   "safa-drop"  — extension: FedBuff-style averaging that *drops* updates
///                  older than the staleness limit (SAFA's lag tolerance)
///   "seafl-ft"   — seafl + fault recovery: assignment deadlines with
///                  re-dispatch, upload retries with backoff, degraded
///                  aggregation and update screening (DESIGN.md §10)
Arm make_arm(const std::string& algorithm, const ExperimentParams& params);

/// The algorithm names make_arm accepts.
std::vector<std::string> known_algorithms();

/// Convenience: build the arm and run it against a task/fleet, using the
/// task's default model and relative per-sample work. A non-null `trace`
/// receives the run's lifecycle events (see Simulation::set_trace_sink);
/// results are identical either way.
RunResult run_arm(const std::string& algorithm, const ExperimentParams& params,
                  const FlTask& task, const Fleet& fleet,
                  obs::TraceSink* trace = nullptr);

}  // namespace seafl
