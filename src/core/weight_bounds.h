// Theory hooks from §V of the paper.
//
//  * Lemma 1:   p_t^k in [ (alpha/2) d_k, (alpha + mu) d_k ]   (raw weights,
//    before normalization). Verified against compute_adaptive_weights by
//    property tests.
//  * Eq. 10:    the learning-rate / buffer-size condition
//        4 (alpha + mu) / (alpha^2 lambda(d)) * K * eta <= 1 / L
//    with lambda(d) = sum_j d_j^2. Exposed as a feasibility check and a
//    maximum-stable-learning-rate helper, so experiments can validate their
//    hyperparameters against the convergence analysis.
#pragma once

#include <span>

#include "core/adaptive_weights.h"

namespace seafl {

/// Closed-form Lemma-1 interval for one update's *raw* (pre-normalization)
/// weight, given its data fraction d_k.
struct WeightInterval {
  double lower = 0.0;  ///< (alpha / 2) * d_k
  double upper = 0.0;  ///< (alpha + mu) * d_k
};

/// Computes Lemma 1's interval.
WeightInterval lemma1_interval(double alpha, double mu, double data_fraction);

/// True when every breakdown's raw weight respects Lemma 1.
bool satisfies_lemma1(double alpha, double mu,
                      std::span<const WeightBreakdown> breakdowns);

/// lambda(d) = sum_j d_j^2 over client data fractions.
double lambda_d(std::span<const double> data_fractions);

/// Largest learning rate eta satisfying Eq. 10 for the given smoothness L.
double max_stable_learning_rate(double alpha, double mu, double lambda,
                                std::size_t buffer_size, double smoothness_l);

/// True when `eta` satisfies Eq. 10.
bool satisfies_lr_condition(double eta, double alpha, double mu, double lambda,
                            std::size_t buffer_size, double smoothness_l);

}  // namespace seafl
