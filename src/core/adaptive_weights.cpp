#include "core/adaptive_weights.h"

#include <cmath>

#include "tensor/workspace.h"

namespace seafl {

double importance_similarity(std::span<const float> client_weights,
                             std::span<const float> global_weights,
                             ImportanceInput input, SimilarityKind kind) {
  SEAFL_CHECK(client_weights.size() == global_weights.size(),
              "client/global dimension mismatch");
  SEAFL_CHECK(!client_weights.empty(), "empty weight vectors");

  std::span<const float> lhs = client_weights;
  if (input == ImportanceInput::kDelta) {
    // Arena scratch: valid until the next kImportanceDelta acquisition, and
    // consumed immediately by the similarity below.
    const std::span<float> delta = Workspace::tls().floats(
        WsSlot::kImportanceDelta, client_weights.size());
    sub_to(delta, client_weights, global_weights);
    lhs = delta;
  }

  switch (kind) {
    case SimilarityKind::kCosine:
      return cosine_similarity(lhs, global_weights);
    case SimilarityKind::kDotProduct: {
      // Normalize by dimension then squash into [-1, 1] so Eq. 5's
      // (theta + 1)/2 mapping remains valid.
      const double d = dot(lhs, global_weights) /
                       static_cast<double>(global_weights.size());
      if (!std::isfinite(d)) return 0.0;  // diverged models
      return std::tanh(d);
    }
  }
  SEAFL_CHECK(false, "unreachable similarity kind");
  return 0.0;
}

std::vector<WeightBreakdown> compute_adaptive_weights(
    const AdaptiveWeightConfig& config, const AggregationContext& ctx,
    std::span<const LocalUpdate> buffer) {
  std::vector<WeightBreakdown> out;
  compute_adaptive_weights_into(config, ctx, buffer, out);
  return out;
}

void compute_adaptive_weights_into(const AdaptiveWeightConfig& config,
                                   const AggregationContext& ctx,
                                   std::span<const LocalUpdate> buffer,
                                   std::vector<WeightBreakdown>& out) {
  SEAFL_CHECK(!buffer.empty(), "empty update buffer");
  SEAFL_CHECK(ctx.global != nullptr, "null global model in context");
  SEAFL_CHECK(ctx.total_samples > 0, "zero total samples");
  SEAFL_CHECK(config.alpha >= 0.0 && config.mu >= 0.0,
              "alpha/mu must be non-negative");
  SEAFL_CHECK(config.alpha + config.mu > 0.0,
              "alpha and mu cannot both be zero");

  out.clear();
  out.resize(buffer.size());
  const std::span<double> weights =
      Workspace::tls().doubles(WsDSlot::kWeightScratch, buffer.size());
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    const LocalUpdate& u = buffer[i];
    WeightBreakdown& b = out[i];
    SEAFL_CHECK(u.base_round <= ctx.round, "update from the future");
    b.staleness = ctx.round - u.base_round;
    b.gamma = staleness_factor(config.alpha, b.staleness,
                               config.staleness_limit);
    b.theta = importance_similarity(u.weights, *ctx.global,
                                    config.importance_input,
                                    config.similarity);
    b.importance = importance_factor(config.mu, b.theta);
    b.data_fraction = static_cast<double>(u.num_samples) /
                      static_cast<double>(ctx.total_samples);
    b.raw = b.data_fraction * (b.gamma + b.importance);
    weights[i] = b.raw;
  }
  if (config.normalize) normalize_weights(weights);
  for (std::size_t i = 0; i < buffer.size(); ++i) out[i].weight = weights[i];
}

}  // namespace seafl
