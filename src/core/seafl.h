// Umbrella header: the full public API of the SEAFL library.
//
// Quickstart:
//
//   #include "core/seafl.h"
//   using namespace seafl;
//
//   TaskSpec spec;                       // dataset + non-IID partition
//   spec.name = "synth-emnist";
//   FlTask task = make_task(spec);
//
//   FleetConfig fc;                      // heterogeneous device timing
//   fc.num_devices = spec.num_clients;
//   Fleet fleet(fc);
//
//   ExperimentParams params;             // paper defaults (K=10, beta=10...)
//   RunResult r = run_arm("seafl2", params, task, fleet);
//   // r.time_to_target, r.curve, ...
#pragma once

#include "common/cli.h"
#include "common/distributions.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/adaptive_weights.h"
#include "core/importance.h"
#include "core/presets.h"
#include "core/screening.h"
#include "core/seafl_strategy.h"
#include "core/staleness.h"
#include "core/weight_bounds.h"
#include "data/registry.h"
#include "common/stats.h"
#include "fl/compression.h"
#include "fl/deploy.h"
#include "fl/metrics.h"
#include "fl/server_opt.h"
#include "fl/simulation.h"
#include "fl/strategies.h"
#include "nn/model_zoo.h"
#include "nn/serialize.h"
#include "sim/fleet.h"
