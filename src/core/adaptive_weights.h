// Adaptive aggregation weights — Eqs. 4-6 of the paper, combined:
//
//     p_t^k = (|D_k| / |D|) * (gamma_t^k + s_t^k),   then normalized to 1.
//
// This module computes the full weight vector for a buffer of updates and
// exposes the per-update diagnostics (gamma, s, raw and normalized p) so
// tests and benches can inspect the mechanism.
#pragma once

#include <span>
#include <vector>

#include "core/importance.h"
#include "core/staleness.h"
#include "fl/strategy.h"

namespace seafl {

/// Hyperparameters of the adaptive weighting mechanism.
struct AdaptiveWeightConfig {
  double alpha = 3.0;  ///< staleness weight (paper's best: 3)
  double mu = 1.0;     ///< similarity weight (paper's best: 1)
  std::uint64_t staleness_limit = 10;  ///< beta
  /// Default follows Eq. 5's literal Delta term: raw client *weights* are
  /// always within ~1e-3 cosine of the global model (the shared component
  /// dominates), so Theta(w_k, w_g) cannot discriminate updates; the delta
  /// variant spreads Theta meaningfully and correlates with staleness.
  ImportanceInput importance_input = ImportanceInput::kDelta;
  SimilarityKind similarity = SimilarityKind::kCosine;
  bool normalize = true;  ///< Eq. 6's "normalize so the sum equals 1"
};

/// Per-update decomposition of the adaptive weight.
struct WeightBreakdown {
  std::uint64_t staleness = 0;  ///< S_k = t - t_k
  double gamma = 0.0;           ///< Eq. 4
  double theta = 0.0;           ///< similarity in [-1, 1]
  double importance = 0.0;      ///< Eq. 5
  double data_fraction = 0.0;   ///< d_k = |D_k| / |D|
  double raw = 0.0;             ///< d_k * (gamma + s), before normalization
  double weight = 0.0;          ///< final p_t^k
};

/// Computes adaptive weights for a buffer of updates against the current
/// global model. Returns one breakdown per update, ordered like `buffer`.
std::vector<WeightBreakdown> compute_adaptive_weights(
    const AdaptiveWeightConfig& config, const AggregationContext& ctx,
    std::span<const LocalUpdate> buffer);

/// Allocation-free core of compute_adaptive_weights: refills `out` (capacity
/// reused) and stages the normalization weight vector in the workspace arena
/// (WsDSlot::kWeightScratch) instead of a per-call vector.
void compute_adaptive_weights_into(const AdaptiveWeightConfig& config,
                                   const AggregationContext& ctx,
                                   std::span<const LocalUpdate> buffer,
                                   std::vector<WeightBreakdown>& out);

}  // namespace seafl
