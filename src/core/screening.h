// Pre-aggregation update screening: L2-norm clipping plus a cosine-similarity
// reject threshold, applied to client deltas before they reach the adaptive
// weights (Eqs. 4-8).
//
// The paper's importance factor (Eq. 5) already *shrinks* dissimilar updates,
// but a corrupt or Byzantine client still enters the weighted sum with
// positive mass — and an update with a huge norm moves the global model no
// matter how small its weight. Screening closes both holes with the standard
// two-step defense (cf. AsyncFedED's anomaly discounting, norm-clipping in
// robust aggregation):
//
//   1. Clip: every delta w_k - w_g whose L2 norm exceeds `clip_multiple` x
//      the buffer's *median* delta norm is rescaled down to that bound. The
//      median makes the bound scale-free: it tracks the honest majority as
//      training converges and needs no per-task tuning.
//   2. Reject: updates whose clipped delta points away from the buffer's
//      mean clipped delta — cosine below `min_cosine`, reusing the same
//      cosine kernel as the importance machinery (core/importance.h) — are
//      quarantined: they do not enter the aggregation at all.
//
// Both steps are pure functions of the buffer, so screening preserves the
// simulation's bitwise determinism. With fewer than `min_buffer` updates the
// filter is a no-op (medians and mean directions are meaningless for 1-2
// samples, and rejecting from a tiny buffer can stall a degraded round).
//
// ScreenedStrategy wraps any AggregationStrategy with this filter; it lives
// in core (which links fl) so the simulation loop stays screening-agnostic
// and observes outcomes through AggregationContext::screening.
#pragma once

#include "fl/strategy.h"

namespace seafl {

/// Screening thresholds. Default-constructed = fully disabled (no-op).
struct ScreeningConfig {
  /// Clip deltas to clip_multiple x the buffer's median delta norm.
  /// 0 disables clipping. Values < 1 would clip the honest majority.
  double clip_multiple = 0.0;
  /// Quarantine updates with cos(delta_k, mean delta) below this.
  /// -1 disables rejection. 0 rejects updates pointing > 90 deg away.
  double min_cosine = -1.0;
  /// Below this many buffered updates screening is a no-op.
  std::size_t min_buffer = 3;

  bool enabled() const { return clip_multiple > 0.0 || min_cosine > -1.0; }
};

/// Applies the filter to `buffer` against the global model `global`:
/// clipped updates are rewritten in place (w_k := w_g + clipped delta) and
/// rejected ones flagged in the returned report (one entry per update, in
/// buffer order). The caller decides what "rejected" means — the
/// ScreenedStrategy below excludes them from aggregation.
ScreeningReport screen_updates(const ScreeningConfig& config,
                               const ModelVector& global,
                               std::vector<LocalUpdate>& buffer);

/// Allocation-free core of screen_updates: writes one entry per update into
/// `report` (entries cleared and refilled, capacity reused) and stages the
/// K x dim delta matrix, norms, and mean in the thread-local workspace arena
/// (WsSlot::kScreenDeltas/kScreenMean, WsDSlot::kScreenNorms/kScreenScratch)
/// instead of per-call vectors. Zero heap allocations at steady state.
void screen_updates_into(const ScreeningConfig& config,
                         const ModelVector& global,
                         std::span<LocalUpdate> buffer,
                         ScreeningReport& report);

/// Decorator: screens the buffer, then delegates the surviving updates to
/// the wrapped strategy with a consistently adjusted context. If screening
/// rejects the whole buffer the global model is left unchanged (a no-op
/// aggregation). Publishes per-update outcomes via ctx.screening when set.
class ScreenedStrategy : public AggregationStrategy {
 public:
  ScreenedStrategy(StrategyPtr inner, ScreeningConfig config);

  void aggregate(const AggregationContext& ctx,
                 std::span<const LocalUpdate> buffer,
                 ModelVector& global_out) override;
  std::string name() const override { return inner_->name() + "+screen"; }

  const ScreeningConfig& config() const { return config_; }
  /// Outcomes of the most recent aggregation (for inspection/tests).
  const ScreeningReport& last_report() const { return last_report_; }

  /// Screening itself is a pure function of each buffer; only the wrapped
  /// strategy carries cross-round state.
  void save_state(std::string& out) const override {
    inner_->save_state(out);
  }
  bool restore_state(const unsigned char* data, std::size_t size) override {
    return inner_->restore_state(data, size);
  }

 private:
  StrategyPtr inner_;
  ScreeningConfig config_;
  ScreeningReport last_report_;
  /// Owned working copy of the round's buffer (clipping rewrites weights).
  /// A member so element storage survives across rounds: at constant K and
  /// dim, refilling it allocates nothing.
  std::vector<LocalUpdate> screened_;
};

}  // namespace seafl
