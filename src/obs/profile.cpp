#include "obs/profile.h"

#include <map>
#include <string>

namespace seafl::obs {

namespace detail {
std::atomic<bool> g_profiling_enabled{false};
}  // namespace detail

void set_profiling_enabled(bool on) {
  detail::g_profiling_enabled.store(on, std::memory_order_relaxed);
}

ProfSite& ProfSite::get(const char* name) {
  // Leaked like the global registry: call sites hold references forever.
  static std::mutex* mutex = new std::mutex();
  static std::map<std::string, ProfSite*>* sites =
      new std::map<std::string, ProfSite*>();
  std::lock_guard<std::mutex> lock(*mutex);
  auto it = sites->find(name);
  if (it == sites->end()) {
    Registry& registry = Registry::global();
    auto* site = new ProfSite(registry.counter(std::string(name) + ".calls"),
                              registry.histogram(std::string(name) +
                                                 ".seconds"));
    it = sites->emplace(name, site).first;
  }
  return *it->second;
}

}  // namespace seafl::obs
