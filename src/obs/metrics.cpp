#include "obs/metrics.h"

#include <algorithm>

#include "common/error.h"

namespace seafl::obs {

namespace {

// Per-kind id allocators. Ids are process-global (never reused), so metrics
// from distinct Registry instances can share the thread-local tables below.
std::atomic<std::size_t> g_next_counter_id{0};
std::atomic<std::size_t> g_next_histogram_id{0};

// The calling thread's cell-pointer table for one cell kind, indexed by
// metric id. Entries are filled lazily on a metric's first touch from the
// thread.
template <typename Cell>
std::vector<Cell*>& tls_table() {
  thread_local std::vector<Cell*> table;
  return table;
}

template <typename Cell>
Cell* tls_lookup(std::size_t id) {
  auto& table = tls_table<Cell>();
  return id < table.size() ? table[id] : nullptr;
}

template <typename Cell>
void tls_store(std::size_t id, Cell* cell) {
  auto& table = tls_table<Cell>();
  if (table.size() <= id) table.resize(id + 1, nullptr);
  table[id] = cell;
}

}  // namespace

// ----------------------------------------------------------- HistogramData

std::uint64_t HistogramData::total_count() const {
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  return total;
}

double HistogramData::mean() const {
  const std::uint64_t n = total_count();
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

// ----------------------------------------------------------------- Counter

Counter::Counter(std::string name)
    : name_(std::move(name)), id_(g_next_counter_id.fetch_add(1)) {}

detail::CounterCell& Counter::cell() {
  if (auto* cached = tls_lookup<detail::CounterCell>(id_)) return *cached;
  std::lock_guard<std::mutex> lock(mutex_);
  detail::CounterCell& fresh = cells_.emplace_back();
  tls_store(id_, &fresh);
  return fresh;
}

std::uint64_t Counter::total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& c : cells_) total += c.value.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Counter::thread_total() const {
  const auto* cached = tls_lookup<detail::CounterCell>(id_);
  return cached ? cached->value.load(std::memory_order_relaxed) : 0;
}

void Counter::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& c : cells_) c.value.store(0, std::memory_order_relaxed);
}

// --------------------------------------------------------------- Histogram

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)),
      id_(g_next_histogram_id.fetch_add(1)),
      bounds_(std::move(bounds)) {
  SEAFL_CHECK(!bounds_.empty(), "histogram '" << name_ << "' needs buckets");
  SEAFL_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                  std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                      bounds_.end(),
              "histogram '" << name_
                            << "' bounds must be strictly increasing");
}

detail::HistogramCell& Histogram::cell() {
  if (auto* cached = tls_lookup<detail::HistogramCell>(id_)) return *cached;
  std::lock_guard<std::mutex> lock(mutex_);
  detail::HistogramCell& fresh = cells_.emplace_back(bounds_.size() + 1);
  tls_store(id_, &fresh);
  return fresh;
}

void Histogram::observe(double v) {
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  detail::HistogramCell& c = cell();
  c.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  c.sum.fetch_add(v, std::memory_order_relaxed);
}

HistogramData Histogram::snapshot() const {
  HistogramData data;
  data.bounds = bounds_;
  data.counts.assign(bounds_.size() + 1, 0);
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& c : cells_) {
    for (std::size_t i = 0; i < data.counts.size(); ++i)
      data.counts[i] += c.counts[i].load(std::memory_order_relaxed);
    data.sum += c.sum.load(std::memory_order_relaxed);
  }
  return data;
}

HistogramData Histogram::thread_snapshot() const {
  HistogramData data;
  data.bounds = bounds_;
  data.counts.assign(bounds_.size() + 1, 0);
  if (const auto* c = tls_lookup<detail::HistogramCell>(id_)) {
    for (std::size_t i = 0; i < data.counts.size(); ++i)
      data.counts[i] = c->counts[i].load(std::memory_order_relaxed);
    data.sum = c->sum.load(std::memory_order_relaxed);
  }
  return data;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& c : cells_) {
    for (auto& count : c.counts) count.store(0, std::memory_order_relaxed);
    c.sum.store(0.0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------- Snapshot

Snapshot Snapshot::delta(const Snapshot& before, const Snapshot& after) {
  Snapshot d;
  for (const auto& [name, value] : after.counters) {
    const auto it = before.counters.find(name);
    d.counters[name] = value - (it == before.counters.end() ? 0 : it->second);
  }
  d.gauges = after.gauges;
  for (const auto& [name, data] : after.histograms) {
    HistogramData diff = data;
    if (const auto it = before.histograms.find(name);
        it != before.histograms.end()) {
      const HistogramData& prev = it->second;
      for (std::size_t i = 0;
           i < diff.counts.size() && i < prev.counts.size(); ++i)
        diff.counts[i] -= prev.counts[i];
      diff.sum -= prev.sum;
    }
    d.histograms.emplace(name, std::move(diff));
  }
  return d;
}

Json Snapshot::to_json() const {
  JsonObject counter_obj;
  for (const auto& [name, value] : counters)
    counter_obj.emplace(name, Json(value));
  JsonObject gauge_obj;
  for (const auto& [name, value] : gauges) gauge_obj.emplace(name, Json(value));
  JsonObject histo_obj;
  for (const auto& [name, data] : histograms) {
    JsonArray bounds;
    for (const double b : data.bounds) bounds.push_back(Json(b));
    JsonArray counts;
    for (const auto c : data.counts) counts.push_back(Json(c));
    JsonObject entry;
    entry.emplace("bounds", Json(std::move(bounds)));
    entry.emplace("counts", Json(std::move(counts)));
    entry.emplace("sum", Json(data.sum));
    entry.emplace("count", Json(data.total_count()));
    entry.emplace("mean", Json(data.mean()));
    histo_obj.emplace(name, Json(std::move(entry)));
  }
  JsonObject root;
  root.emplace("counters", Json(std::move(counter_obj)));
  root.emplace("gauges", Json(std::move(gauge_obj)));
  root.emplace("histograms", Json(std::move(histo_obj)));
  return Json(std::move(root));
}

// ---------------------------------------------------------------- Registry

std::vector<double> default_time_buckets() {
  // 1 µs doubling up to ~134 s: covers a single small GEMM through a full
  // client training session.
  std::vector<double> bounds;
  bounds.reserve(28);
  double b = 1e-6;
  for (int i = 0; i < 28; ++i, b *= 2.0) bounds.push_back(b);
  return bounds;
}

Registry& Registry::global() {
  // Leaked on purpose: worker threads may record metrics during static
  // destruction; a never-destroyed registry keeps their cached cell
  // pointers valid for the life of the process.
  static Registry* registry = new Registry();
  return *registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(name, std::unique_ptr<Counter>(new Counter(name)))
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(name))).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = default_time_buckets();
    it = histograms_
             .emplace(name, std::unique_ptr<Histogram>(
                                new Histogram(name, std::move(bounds))))
             .first;
  } else {
    SEAFL_CHECK(bounds.empty() || bounds == it->second->bounds(),
                "histogram '" << name
                              << "' re-registered with different buckets");
  }
  return *it->second;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->total();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_)
    snap.histograms[name] = h->snapshot();
  return snap;
}

Snapshot Registry::thread_snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  for (const auto& [name, c] : counters_)
    snap.counters[name] = c->thread_total();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_)
    snap.histograms[name] = h->thread_snapshot();
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace seafl::obs
