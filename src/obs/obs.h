// Umbrella header for the observability subsystem (DESIGN.md §9):
//  * metrics.h — thread-sharded counters / gauges / histograms + Registry
//  * profile.h — SEAFL_PROF_SCOPE wall-clock probes over the registry
//  * trace.h   — per-run virtual-time trace journals (JSONL + Chrome trace)
#pragma once

#include "obs/metrics.h"   // IWYU pragma: export
#include "obs/profile.h"   // IWYU pragma: export
#include "obs/trace.h"     // IWYU pragma: export
