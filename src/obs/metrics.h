// Thread-safe metrics registry: counters, gauges and fixed-bucket
// histograms, designed so the hot path is one relaxed atomic bump on a
// cache-line-private per-thread slot.
//
// Sharding model: every Counter/Histogram owns a set of cells, one per
// thread that has ever touched it (allocated lazily, stable addresses,
// never freed — the registry outlives all threads by design). A thread
// finds its cell through a thread-local table indexed by the metric's
// per-kind id, so after first touch an increment costs one bounds check,
// one pointer load and one relaxed fetch_add — no locks, no false sharing.
// snapshot() merges the cells; thread_snapshot() reads only the calling
// thread's cells, which gives exact per-run attribution when the run's
// kernels stay on one thread (the exp::Runner's SerialKernelScope mode).
//
// Gauges are single atomics (set/add of a current value has no useful
// sharded merge and gauges are never on hot paths).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"

namespace seafl::obs {

namespace detail {

inline constexpr std::size_t kCacheLine = 64;

struct alignas(kCacheLine) CounterCell {
  std::atomic<std::uint64_t> value{0};
};

/// One thread's histogram row: per-bucket counts plus the value sum.
struct HistogramCell {
  explicit HistogramCell(std::size_t buckets) : counts(buckets) {}
  std::vector<std::atomic<std::uint64_t>> counts;
  std::atomic<double> sum{0.0};
};

}  // namespace detail

/// Merged (or single-thread) view of one histogram.
struct HistogramData {
  std::vector<double> bounds;          ///< upper bucket bounds, ascending
  std::vector<std::uint64_t> counts;   ///< bounds.size() + 1 (last = overflow)
  double sum = 0.0;                    ///< sum of observed values

  std::uint64_t total_count() const;
  double mean() const;  ///< 0 when empty
};

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    cell().value.fetch_add(n, std::memory_order_relaxed);
  }
  /// Sum over every thread's cell.
  std::uint64_t total() const;
  /// The calling thread's cell only (0 if this thread never incremented).
  std::uint64_t thread_total() const;
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Counter(std::string name);
  detail::CounterCell& cell();
  void reset();

  std::string name_;
  std::size_t id_;
  mutable std::mutex mutex_;                // guards cells_ growth
  std::deque<detail::CounterCell> cells_;   // stable addresses
};

/// Last-written current value (not sharded; see file comment).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double d) { value_.fetch_add(d, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  void reset() { value_.store(0.0); }

  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts values v with
/// bounds[i-1] < v <= bounds[i]; the last bucket is the +inf overflow.
class Histogram {
 public:
  void observe(double v);
  HistogramData snapshot() const;         ///< merged over all threads
  HistogramData thread_snapshot() const;  ///< calling thread only
  const std::vector<double>& bounds() const { return bounds_; }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  Histogram(std::string name, std::vector<double> bounds);
  detail::HistogramCell& cell();
  void reset();

  std::string name_;
  std::size_t id_;
  std::vector<double> bounds_;
  mutable std::mutex mutex_;
  std::deque<detail::HistogramCell> cells_;
};

/// Point-in-time copy of a registry's metrics, mergeable and serializable.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  /// after - before, per metric (metrics absent from `before` count as 0;
  /// gauges take the `after` value).
  static Snapshot delta(const Snapshot& before, const Snapshot& after);

  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  ///  {"bounds": [...], "counts": [...], "sum": s, "count": n, "mean": m}}}
  Json to_json() const;
};

/// Exponential seconds buckets (1 µs .. ~134 s) used by the profiling
/// timers' latency histograms.
std::vector<double> default_time_buckets();

/// Named-metric registry. Registration is mutex-guarded and returns stable
/// references; callers cache them (the SEAFL_PROF_SCOPE macro does this via
/// a function-local static) so steady-state updates never take the lock.
class Registry {
 public:
  /// The process-wide registry every built-in probe records into.
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Finds or creates the named metric. histogram() with empty `bounds`
  /// uses default_time_buckets(); re-registering an existing histogram with
  /// different non-empty bounds throws.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  Snapshot snapshot() const;
  Snapshot thread_snapshot() const;

  /// Zeroes every metric (cells are kept). Callers must ensure no
  /// concurrent updates are in flight (test/bench harness use only).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace seafl::obs
