// Per-run structured trace journal: client-lifecycle events on the
// *virtual* clock, recorded through a TraceSink observer the Simulation
// calls when one is attached (null by default — tracing never perturbs a
// run's results; it only watches).
//
// Two export formats:
//  * JSONL — one JSON object per event, in emission order, for scripted
//    analysis (staleness traces, per-client participation timelines).
//  * Chrome trace-event JSON — one track per client plus a server track,
//    loadable in Perfetto / chrome://tracing, so a whole semi-async round's
//    straggler and staleness structure is visually inspectable: training
//    sessions are slices (begin at assignment, end at upload), epoch
//    completions / notifications / aggregations are instants, and the
//    accuracy curve is a counter track. Virtual seconds map to trace
//    microseconds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"

namespace seafl::obs {

enum class TraceEventKind {
  kAssigned,    ///< server dispatched the model; client starts training
  kEpochDone,   ///< one local epoch's compute finished (emitted at upload)
  kNotified,    ///< SEAFL^2 early-upload notification sent to the client
  kUpload,      ///< client update arrived and entered the buffer
  kUploadLost,  ///< client update was lost in transit
  kAggregate,   ///< server aggregated the buffer; round advanced
  kEval,        ///< global model evaluated
  // Fault-tolerance events (DESIGN.md §10).
  kCrash,       ///< device went offline mid-session; upload will never arrive
  kRecover,     ///< device back online (stamped with the future recovery time)
  kDeadlineExpired,    ///< server expired an assignment past its deadline
  kRedispatch,  ///< expired slot handed to a replacement client
  kRetry,       ///< client retransmits a lost upload after backoff
  kDegradedAggregate,  ///< round closed with fewer than K updates
  kScreened,    ///< update quarantined by pre-aggregation screening
  // Eager-executor events (DESIGN.md §12). Emitted only when eager training
  // is on — journals may differ lazy-vs-eager, run *results* never do.
  kSpeculate,   ///< session enqueued onto the training executor at dispatch
  kHarvest,     ///< upload event consumed the speculated session's result
  kSpeculationAbandoned,  ///< abandoned session's speculated job detached
  // Communication-efficiency events (DESIGN.md §14).
  kCompressed,  ///< compressed upload decoded server-side
};

/// Stable lowercase name ("assigned", "upload", ...) used in both exports.
const char* trace_event_name(TraceEventKind kind);

/// Marks server-side events, which have no client track.
inline constexpr std::size_t kServerTrack = static_cast<std::size_t>(-1);

/// One journal entry. Field meaning varies by kind (unused fields are 0):
///   kAssigned:   client, round (=base round), epochs (planned)
///   kEpochDone:  client, round (base round), epochs (1-based epoch index)
///   kNotified:   client, round (server round when sent)
///   kUpload:     client, round (server), base_round, epochs (completed),
///                value (staleness)
///   kUploadLost: client, round (server), base_round
///   kAggregate:  round (after advancing), updates, value (mean staleness)
///   kEval:       round, value (accuracy)
///   kCrash:      client, round (server), base_round; time = crash time
///   kRecover:    client, round (server); time = recovery time (in the
///                future at emission — journals are not time-sorted)
///   kDeadlineExpired: client, round (server), base_round
///   kRedispatch: client (the replacement), round (server)
///   kRetry:      client, round (server), epochs (attempt number, 1-based)
///   kDegradedAggregate: round (before advancing), updates (buffered count)
///   kScreened:   client, round (server), value (cosine to the mean delta)
///   kSpeculate:  client, round (=base round), epochs (planned)
///   kHarvest:    client, round (server), base_round, epochs (harvested)
///   kSpeculationAbandoned: client, round (server)
///   kCompressed: client, round (server), base_round, updates (container
///                bytes-on-wire), value (compression ratio raw/wire)
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kAssigned;
  double time = 0.0;  ///< virtual seconds
  std::size_t client = kServerTrack;
  std::uint64_t round = 0;
  std::uint64_t base_round = 0;
  std::size_t epochs = 0;
  std::size_t updates = 0;
  double value = 0.0;
};

/// Observer interface the Simulation reports into (see
/// Simulation::set_trace_sink). Implementations must not mutate simulation
/// state.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceEvent& event) = 0;
};

/// In-memory journal with file exporters.
class TraceJournal final : public TraceSink {
 public:
  void record(const TraceEvent& event) override { events_.push_back(event); }

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// One event as a JSON object (kind expanded to its name; unused fields
  /// included so every line has an identical schema).
  static Json event_json(const TraceEvent& event);

  /// Writes one JSON object per line, in emission order.
  void write_jsonl(const std::string& path) const;

  /// The journal as a Chrome trace-event document (see file comment).
  Json chrome_trace(const std::string& run_label = "seafl run") const;

  /// Writes chrome_trace() to `path`.
  void write_chrome_trace(const std::string& path,
                          const std::string& run_label = "seafl run") const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace seafl::obs
