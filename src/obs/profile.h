// Scoped wall-clock profiling probes for hot kernels and FL phases.
//
//   void gemm(...) {
//     SEAFL_PROF_SCOPE("tensor.gemm");
//     ...
//   }
//
// registers (once, lazily) a "<name>.calls" counter and a "<name>.seconds"
// latency histogram in the global obs::Registry, and on every pass through
// the scope — while profiling is enabled — records one call and the scope's
// elapsed wall time. Profiling is off by default; the disabled path costs
// one relaxed atomic load (plus a one-time static-init guard per call
// site), so instrumenting a kernel is free for normal runs. Virtual
// (simulated) time is never involved here — these are real seconds; the
// trace journal (obs/trace.h) covers the virtual timeline.
#pragma once

#include <atomic>
#include <chrono>

#include "obs/metrics.h"

namespace seafl::obs {

namespace detail {
extern std::atomic<bool> g_profiling_enabled;
}  // namespace detail

/// Globally enables/disables all SEAFL_PROF_SCOPE probes.
void set_profiling_enabled(bool on);
inline bool profiling_enabled() {
  return detail::g_profiling_enabled.load(std::memory_order_relaxed);
}

/// RAII guard: enables profiling for a scope, restoring the previous state.
class ProfilingScope {
 public:
  explicit ProfilingScope(bool on = true) : prev_(profiling_enabled()) {
    set_profiling_enabled(on);
  }
  ~ProfilingScope() { set_profiling_enabled(prev_); }
  ProfilingScope(const ProfilingScope&) = delete;
  ProfilingScope& operator=(const ProfilingScope&) = delete;

 private:
  bool prev_;
};

/// One instrumented code location: its call counter + seconds histogram,
/// interned by name so every call site with the same name shares metrics.
class ProfSite {
 public:
  /// Finds or creates the site (thread-safe; call sites cache the result).
  static ProfSite& get(const char* name);

  void record(double seconds) {
    calls_->add();
    seconds_->observe(seconds);
  }

 private:
  ProfSite(Counter& calls, Histogram& seconds)
      : calls_(&calls), seconds_(&seconds) {}
  Counter* calls_;
  Histogram* seconds_;
};

/// Times a scope and records it into a ProfSite — a no-op (no clock reads)
/// while profiling is disabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(ProfSite& site)
      : site_(profiling_enabled() ? &site : nullptr) {
    if (site_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (site_ != nullptr) {
      site_->record(std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start_)
                        .count());
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  ProfSite* site_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace seafl::obs

#define SEAFL_PROF_CONCAT_IMPL(a, b) a##b
#define SEAFL_PROF_CONCAT(a, b) SEAFL_PROF_CONCAT_IMPL(a, b)

/// Profiles the enclosing scope under `name` (a string literal).
#define SEAFL_PROF_SCOPE(name)                                               \
  static ::seafl::obs::ProfSite& SEAFL_PROF_CONCAT(seafl_prof_site_,         \
                                                   __LINE__) =               \
      ::seafl::obs::ProfSite::get(name);                                     \
  ::seafl::obs::ScopedTimer SEAFL_PROF_CONCAT(seafl_prof_timer_, __LINE__)(  \
      SEAFL_PROF_CONCAT(seafl_prof_site_, __LINE__))
