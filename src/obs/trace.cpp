#include "obs/trace.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "common/error.h"
#include "common/sink.h"

namespace seafl::obs {

namespace {

constexpr double kMicrosPerVirtualSecond = 1e6;

Json make_meta(const char* what, int pid, std::size_t tid,
               const std::string& value) {
  JsonObject args;
  args.emplace("name", Json(value));
  JsonObject e;
  e.emplace("ph", Json("M"));
  e.emplace("name", Json(what));
  e.emplace("pid", Json(pid));
  e.emplace("tid", Json(tid));
  e.emplace("args", Json(std::move(args)));
  return Json(std::move(e));
}

JsonObject make_event(const char* ph, const std::string& name, int pid,
                      std::size_t tid, double time) {
  JsonObject e;
  e.emplace("ph", Json(ph));
  e.emplace("name", Json(name));
  e.emplace("pid", Json(pid));
  e.emplace("tid", Json(tid));
  e.emplace("ts", Json(time * kMicrosPerVirtualSecond));
  return e;
}

}  // namespace

const char* trace_event_name(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kAssigned: return "assigned";
    case TraceEventKind::kEpochDone: return "epoch_done";
    case TraceEventKind::kNotified: return "notified";
    case TraceEventKind::kUpload: return "upload";
    case TraceEventKind::kUploadLost: return "upload_lost";
    case TraceEventKind::kAggregate: return "aggregate";
    case TraceEventKind::kEval: return "eval";
    case TraceEventKind::kCrash: return "crash";
    case TraceEventKind::kRecover: return "recover";
    case TraceEventKind::kDeadlineExpired: return "deadline_expired";
    case TraceEventKind::kRedispatch: return "redispatch";
    case TraceEventKind::kRetry: return "retry";
    case TraceEventKind::kDegradedAggregate: return "degraded_aggregate";
    case TraceEventKind::kScreened: return "screened";
    case TraceEventKind::kSpeculate: return "speculate";
    case TraceEventKind::kHarvest: return "harvest";
    case TraceEventKind::kSpeculationAbandoned:
      return "speculation_abandoned";
    case TraceEventKind::kCompressed: return "compressed";
  }
  return "unknown";
}

Json TraceJournal::event_json(const TraceEvent& event) {
  JsonObject o;
  o.emplace("event", Json(trace_event_name(event.kind)));
  o.emplace("time", Json(event.time));
  // Server events serialize client as null so every line shares one schema.
  o.emplace("client", event.client == kServerTrack
                          ? Json(nullptr)
                          : Json(static_cast<std::uint64_t>(event.client)));
  o.emplace("round", Json(event.round));
  o.emplace("base_round", Json(event.base_round));
  o.emplace("epochs", Json(static_cast<std::uint64_t>(event.epochs)));
  o.emplace("updates", Json(static_cast<std::uint64_t>(event.updates)));
  o.emplace("value", Json(event.value));
  return Json(std::move(o));
}

void TraceJournal::write_jsonl(const std::string& path) const {
  FileSink sink(path);
  for (const TraceEvent& event : events_)
    sink.write_line(event_json(event).dump());
  sink.flush();
}

Json TraceJournal::chrome_trace(const std::string& run_label) const {
  JsonArray out;

  // Track metadata: pid 0 hosts one thread per client, pid 1 the server.
  std::set<std::size_t> clients;
  for (const TraceEvent& e : events_)
    if (e.client != kServerTrack) clients.insert(e.client);
  out.push_back(make_meta("process_name", 0, 0, "clients — " + run_label));
  out.push_back(make_meta("process_name", 1, 0, "server — " + run_label));
  out.push_back(make_meta("thread_name", 1, 0, "server"));
  for (const std::size_t c : clients)
    out.push_back(make_meta("thread_name", 0, c,
                            "client " + std::to_string(c)));

  // Training sessions become B/E slices per client track. The journal is in
  // emission order, so each client's assigned event precedes its matching
  // upload; remember the open slice's name to close it by name.
  std::unordered_map<std::size_t, std::string> open_slice;
  for (const TraceEvent& e : events_) {
    switch (e.kind) {
      case TraceEventKind::kAssigned: {
        const std::string name = "train r" + std::to_string(e.round);
        JsonObject b = make_event("B", name, 0, e.client, e.time);
        JsonObject args;
        args.emplace("base_round", Json(e.round));
        args.emplace("planned_epochs",
                     Json(static_cast<std::uint64_t>(e.epochs)));
        b.emplace("args", Json(std::move(args)));
        b.emplace("cat", Json("train"));
        out.push_back(Json(std::move(b)));
        open_slice[e.client] = name;
        break;
      }
      case TraceEventKind::kUpload:
      case TraceEventKind::kUploadLost:
      case TraceEventKind::kCrash:
      case TraceEventKind::kDeadlineExpired: {
        // All four end a training session from the trace's point of view: a
        // crash kills the client's session, a deadline abandons it server-
        // side. A deadline after a crash finds no open slice (already
        // closed) and emits only the instant marker below.
        const auto it = open_slice.find(e.client);
        const bool close_slice =
            it != open_slice.end() || e.kind == TraceEventKind::kUpload ||
            e.kind == TraceEventKind::kUploadLost;
        if (close_slice) {
          const std::string name =
              it != open_slice.end() ? it->second : std::string("train");
          JsonObject end = make_event("E", name, 0, e.client, e.time);
          JsonObject args;
          args.emplace("epochs", Json(static_cast<std::uint64_t>(e.epochs)));
          args.emplace("staleness", Json(e.value));
          args.emplace("lost", Json(e.kind == TraceEventKind::kUploadLost));
          args.emplace("outcome", Json(trace_event_name(e.kind)));
          end.emplace("args", Json(std::move(args)));
          end.emplace("cat", Json("train"));
          out.push_back(Json(std::move(end)));
          if (it != open_slice.end()) open_slice.erase(it);
        }
        if (e.kind == TraceEventKind::kCrash ||
            e.kind == TraceEventKind::kDeadlineExpired) {
          JsonObject i = make_event("i", trace_event_name(e.kind), 0,
                                    e.client, e.time);
          i.emplace("s", Json("t"));
          out.push_back(Json(std::move(i)));
        }
        break;
      }
      case TraceEventKind::kRecover:
      case TraceEventKind::kRedispatch:
      case TraceEventKind::kRetry:
      case TraceEventKind::kScreened:
      case TraceEventKind::kSpeculate:
      case TraceEventKind::kHarvest:
      case TraceEventKind::kSpeculationAbandoned:
      case TraceEventKind::kCompressed: {
        JsonObject i = make_event("i", trace_event_name(e.kind), 0, e.client,
                                  e.time);
        i.emplace("s", Json("t"));
        out.push_back(Json(std::move(i)));
        break;
      }
      case TraceEventKind::kDegradedAggregate: {
        JsonObject i = make_event(
            "i", "degraded r" + std::to_string(e.round), 1, 0, e.time);
        i.emplace("s", Json("t"));
        JsonObject args;
        args.emplace("updates", Json(static_cast<std::uint64_t>(e.updates)));
        i.emplace("args", Json(std::move(args)));
        out.push_back(Json(std::move(i)));
        break;
      }
      case TraceEventKind::kEpochDone: {
        JsonObject i = make_event(
            "i", "epoch " + std::to_string(e.epochs), 0, e.client, e.time);
        i.emplace("s", Json("t"));
        out.push_back(Json(std::move(i)));
        break;
      }
      case TraceEventKind::kNotified: {
        JsonObject i = make_event("i", "notify", 0, e.client, e.time);
        i.emplace("s", Json("t"));
        out.push_back(Json(std::move(i)));
        break;
      }
      case TraceEventKind::kAggregate: {
        JsonObject i = make_event(
            "i", "aggregate r" + std::to_string(e.round), 1, 0, e.time);
        i.emplace("s", Json("t"));
        JsonObject args;
        args.emplace("updates", Json(static_cast<std::uint64_t>(e.updates)));
        args.emplace("mean_staleness", Json(e.value));
        i.emplace("args", Json(std::move(args)));
        out.push_back(Json(std::move(i)));
        break;
      }
      case TraceEventKind::kEval: {
        JsonObject c = make_event("C", "accuracy", 1, 0, e.time);
        JsonObject args;
        args.emplace("accuracy", Json(e.value));
        c.emplace("args", Json(std::move(args)));
        out.push_back(Json(std::move(c)));
        break;
      }
    }
  }

  // Clients still in flight when the run stopped leave open slices; close
  // them at the journal's horizon so every exported B has a matching E.
  if (!open_slice.empty()) {
    double horizon = 0.0;
    for (const TraceEvent& e : events_) horizon = std::max(horizon, e.time);
    // Ordered for a deterministic document.
    std::map<std::size_t, std::string> leftover(open_slice.begin(),
                                                open_slice.end());
    for (const auto& [client, name] : leftover) {
      JsonObject end = make_event("E", name, 0, client, horizon);
      JsonObject args;
      args.emplace("unfinished", Json(true));
      end.emplace("args", Json(std::move(args)));
      end.emplace("cat", Json("train"));
      out.push_back(Json(std::move(end)));
    }
  }

  JsonObject root;
  root.emplace("traceEvents", Json(std::move(out)));
  root.emplace("displayTimeUnit", Json("ms"));
  return Json(std::move(root));
}

void TraceJournal::write_chrome_trace(const std::string& path,
                                      const std::string& run_label) const {
  FileSink sink(path);
  sink.write_line(chrome_trace(run_label).dump());
  sink.flush();
}

}  // namespace seafl::obs
