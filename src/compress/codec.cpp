#include "compress/codec.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "common/error.h"
#include "common/rng.h"
#include "compress/codec_simd.h"
#include "tensor/ops.h"

namespace seafl::compress {
namespace {

constexpr char kMagic[8] = {'S', 'E', 'A', 'F', 'L', 'C', 'M', 'P'};
constexpr std::uint16_t kContainerVersion = 1;
// Same ceiling the wire protocol enforces on whole frames (1<<28 payload
// bytes / 4 bytes per float): a dim claim past this can never be legitimate,
// so reject it before any size arithmetic can overflow.
constexpr std::uint64_t kMaxDim = (1ULL << 28) / 4;

void append_u16(std::string& out, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}
void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}
void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}
void append_f32(std::string& out, float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  append_u32(out, bits);
}
std::uint16_t load_u16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
std::uint32_t load_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}
std::uint64_t load_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
float load_f32(const unsigned char* p) {
  const std::uint32_t bits = load_u32(p);
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Packs fixed-width unsigned values (2..16 bits each) LSB-first into bytes.
class BitWriter {
 public:
  explicit BitWriter(std::string& out) : out_(out) {}
  void push(std::uint32_t value, std::uint32_t bits) {
    acc_ |= static_cast<std::uint64_t>(value) << filled_;
    filled_ += bits;
    while (filled_ >= 8) {
      out_.push_back(static_cast<char>(acc_ & 0xff));
      acc_ >>= 8;
      filled_ -= 8;
    }
  }
  void flush() {
    if (filled_ > 0) {
      out_.push_back(static_cast<char>(acc_ & 0xff));
      acc_ = 0;
      filled_ = 0;
    }
  }

 private:
  std::string& out_;
  std::uint64_t acc_ = 0;
  std::uint32_t filled_ = 0;
};

class BitReader {
 public:
  BitReader(const unsigned char* data, std::size_t size)
      : data_(data), size_(size) {}
  std::uint32_t pull(std::uint32_t bits) {
    while (filled_ < bits) {
      SEAFL_DCHECK(pos_ < size_, "bit reader overrun");
      acc_ |= static_cast<std::uint64_t>(data_[pos_++]) << filled_;
      filled_ += 8;
    }
    const std::uint32_t v =
        static_cast<std::uint32_t>(acc_ & ((1ULL << bits) - 1));
    acc_ >>= bits;
    filled_ -= bits;
    return v;
  }

 private:
  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  std::uint32_t filled_ = 0;
};

std::size_t packed_bytes(std::uint64_t count, std::uint64_t bits) {
  return static_cast<std::size_t>((count * bits + 7) / 8);
}

/// Payload bytes the container must carry for this exact metadata tuple —
/// the data-independence contract made checkable at decode time.
std::size_t expected_payload_bytes(CodecKind codec, std::uint64_t bits,
                                   std::uint64_t dim, std::uint64_t k) {
  switch (codec) {
    case CodecKind::kIdentity:
      return static_cast<std::size_t>(dim) * 4;
    case CodecKind::kQuantize:
      return packed_bytes(dim, bits);
    case CodecKind::kTopK:
      return static_cast<std::size_t>(k) * 4 +
             (bits == 32 ? static_cast<std::size_t>(k) * 4
                         : packed_bytes(k, bits));
  }
  return 0;  // unreachable; kinds are validated before use
}

std::size_t topk_count(double fraction, std::size_t dim) {
  const auto k = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(dim)));
  return std::min(std::max<std::size_t>(k, 1), dim);
}

/// Grid half-width: quantized levels are integers in [-half, half], so the
/// level count is 2*half + 1 == 2^bits - 1 (symmetric, zero-preserving —
/// the same grid as the legacy deterministic quantizer).
std::int64_t grid_half(std::uint64_t bits) {
  return (static_cast<std::int64_t>(1) << (bits - 1)) - 1;
}

/// The encode-side input: delta against base, plus carried residual.
std::vector<float> encode_input(const std::vector<float>& weights,
                                const std::vector<float>& base,
                                std::vector<float>* residual) {
  const std::size_t dim = weights.size();
  SEAFL_CHECK(base.size() == dim, "codec base/weights dim mismatch: "
                                      << base.size() << " vs " << dim);
  if (residual != nullptr) {
    if (residual->empty()) residual->assign(dim, 0.0f);
    SEAFL_CHECK(residual->size() == dim,
                "error-feedback residual dim mismatch: " << residual->size()
                                                         << " vs " << dim);
  }
  std::vector<float> input(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    input[i] = (weights[i] - base[i]) +
               (residual != nullptr ? (*residual)[i] : 0.0f);
  }
  return input;
}

/// Stochastically rounds value/step to an integer level in [-half, half].
/// One uniform draw per call, always consumed (keeps the stream position a
/// pure function of the element index).
std::int64_t stochastic_level(double value, double step, std::int64_t half,
                              Rng& rng) {
  const double u = rng.uniform();
  const double x = value / step;
  const double lo = std::floor(x);
  std::int64_t q = static_cast<std::int64_t>(lo) + (u < (x - lo) ? 1 : 0);
  return std::clamp<std::int64_t>(q, -half, half);
}

// --- quantize ----------------------------------------------------------------

class QuantizeCodec final : public Codec {
 public:
  explicit QuantizeCodec(const CompressionConfig& config) : config_(config) {}
  const char* name() const override { return "quantize"; }
  CodecKind kind() const override { return CodecKind::kQuantize; }

  std::size_t encoded_bytes_for(std::size_t dim) const override {
    return kContainerHeaderBytes +
           expected_payload_bytes(CodecKind::kQuantize, config_.bits, dim, dim);
  }

  CompressedUpdate encode(const std::vector<float>& weights,
                          const std::vector<float>& base,
                          std::vector<float>* residual, std::size_t client,
                          std::uint64_t round,
                          std::uint64_t seed) const override {
    const std::vector<float> input = encode_input(weights, base, residual);
    const std::size_t dim = input.size();
    const std::uint64_t bits = config_.bits;
    const std::int64_t half = grid_half(bits);

    // max over doubles-of-floats == double-of(max over floats), so the
    // dispatched kernel reproduces the old double-accumulation scan bitwise.
    const double max_mag = seafl::max_abs(input);

    CompressedUpdate out;
    out.codec = CodecKind::kQuantize;
    out.bits = static_cast<std::uint32_t>(bits);
    out.dim = dim;
    out.k = dim;
    out.payload.reserve(packed_bytes(dim, bits));
    if (max_mag > 0.0) {
      const double step = max_mag / static_cast<double>(half);
      out.scale = static_cast<float>(step);
      Rng rng(seed, RngPurpose::kCompress, client, round);
      if (bits == 8) {
        // One byte per element: route through the q8 kernel (scalar or AVX2
        // per the ops vector backend), bitwise-equal to the BitWriter path
        // by construction.
        out.payload.resize(dim);
        detail::active_q8_encode()(
            input.data(), dim, step, half, rng,
            reinterpret_cast<unsigned char*>(out.payload.data()));
      } else {
        BitWriter writer(out.payload);
        for (std::size_t i = 0; i < dim; ++i) {
          const std::int64_t q = stochastic_level(input[i], step, half, rng);
          writer.push(static_cast<std::uint32_t>(q + half),
                      static_cast<std::uint32_t>(bits));
        }
        writer.flush();
      }
    } else {
      // All-zero input: keep the size contract (payload length is a pure
      // function of dim) with a zero scale that decodes to a zero delta.
      out.scale = 0.0f;
      out.payload.assign(packed_bytes(dim, bits), '\0');
    }

    if (residual != nullptr) {
      // New residual = what this encode failed to transmit, computed via the
      // same reconstruction the server performs so sim and deploy agree
      // bitwise on the carried state.
      const std::vector<float> delta = decode_delta(out);
      for (std::size_t i = 0; i < dim; ++i)
        (*residual)[i] = input[i] - delta[i];
    }
    return out;
  }

  void decode_into(const CompressedUpdate& update,
                   const std::vector<float>& base,
                   std::vector<float>& out) const override {
    SEAFL_CHECK(update.dim == base.size(),
                "compressed update dim " << update.dim
                                         << " != base dim " << base.size());
    decode_delta_into(update, out);
    add_inplace(out, base);
  }

  /// Shared reconstruction of the dense delta (used by decode_into and by
  /// the encoder's residual update). Every element of `delta` is written.
  static void decode_delta_into(const CompressedUpdate& update,
                                std::vector<float>& delta) {
    const auto dim = static_cast<std::size_t>(update.dim);
    delta.resize(dim);
    if (update.scale == 0.0f) {
      std::fill(delta.begin(), delta.end(), 0.0f);
      return;
    }
    const std::int64_t half = grid_half(update.bits);
    const double step = static_cast<double>(update.scale);
    if (update.bits == 8) {
      detail::active_q8_decode()(
          reinterpret_cast<const unsigned char*>(update.payload.data()), dim,
          step, half, delta.data());
      return;
    }
    BitReader reader(
        reinterpret_cast<const unsigned char*>(update.payload.data()),
        update.payload.size());
    for (std::size_t i = 0; i < dim; ++i) {
      const std::int64_t q =
          static_cast<std::int64_t>(reader.pull(update.bits)) - half;
      delta[i] = static_cast<float>(static_cast<double>(q) * step);
    }
  }

  static std::vector<float> decode_delta(const CompressedUpdate& update) {
    std::vector<float> delta;
    decode_delta_into(update, delta);
    return delta;
  }

 private:
  CompressionConfig config_;
};

// --- top-k -------------------------------------------------------------------

class TopKCodec final : public Codec {
 public:
  explicit TopKCodec(const CompressionConfig& config) : config_(config) {}
  const char* name() const override { return "topk"; }
  CodecKind kind() const override { return CodecKind::kTopK; }

  std::size_t encoded_bytes_for(std::size_t dim) const override {
    const std::size_t k = topk_count(config_.topk_fraction, dim);
    return kContainerHeaderBytes +
           expected_payload_bytes(CodecKind::kTopK, config_.bits, dim, k);
  }

  CompressedUpdate encode(const std::vector<float>& weights,
                          const std::vector<float>& base,
                          std::vector<float>* residual, std::size_t client,
                          std::uint64_t round,
                          std::uint64_t seed) const override {
    const std::vector<float> input = encode_input(weights, base, residual);
    const std::size_t dim = input.size();
    const std::size_t k = topk_count(config_.topk_fraction, dim);

    // Largest-magnitude coordinates, ties broken by lower index so selection
    // is deterministic; stored in ascending index order.
    std::vector<std::uint32_t> order(dim);
    std::iota(order.begin(), order.end(), 0u);
    std::nth_element(order.begin(), order.begin() + (k - 1), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       const float ma = std::fabs(input[a]);
                       const float mb = std::fabs(input[b]);
                       if (ma != mb) return ma > mb;
                       return a < b;
                     });
    std::vector<std::uint32_t> selected(order.begin(), order.begin() + k);
    std::sort(selected.begin(), selected.end());

    CompressedUpdate out;
    out.codec = CodecKind::kTopK;
    out.bits = static_cast<std::uint32_t>(config_.bits);
    out.dim = dim;
    out.k = k;
    out.payload.reserve(
        expected_payload_bytes(CodecKind::kTopK, config_.bits, dim, k));
    for (const std::uint32_t idx : selected) append_u32(out.payload, idx);

    if (config_.bits == 32) {
      out.scale = 0.0f;
      for (const std::uint32_t idx : selected)
        append_f32(out.payload, input[idx]);
    } else {
      double max_abs = 0.0;
      for (const std::uint32_t idx : selected)
        max_abs = std::max(max_abs, std::fabs(static_cast<double>(input[idx])));
      const std::int64_t half = grid_half(config_.bits);
      if (max_abs > 0.0) {
        const double step = max_abs / static_cast<double>(half);
        out.scale = static_cast<float>(step);
        Rng rng(seed, RngPurpose::kCompress, client, round);
        BitWriter writer(out.payload);
        for (const std::uint32_t idx : selected) {
          const std::int64_t q = stochastic_level(input[idx], step, half, rng);
          writer.push(static_cast<std::uint32_t>(q + half),
                      static_cast<std::uint32_t>(config_.bits));
        }
        writer.flush();
      } else {
        out.scale = 0.0f;
        out.payload.append(packed_bytes(k, config_.bits), '\0');
      }
    }

    if (residual != nullptr) {
      const std::vector<float> delta = decode_delta(out);
      for (std::size_t i = 0; i < dim; ++i)
        (*residual)[i] = input[i] - delta[i];
    }
    return out;
  }

  void decode_into(const CompressedUpdate& update,
                   const std::vector<float>& base,
                   std::vector<float>& out) const override {
    SEAFL_CHECK(update.dim == base.size(),
                "compressed update dim " << update.dim
                                         << " != base dim " << base.size());
    decode_delta_into(update, out);
    add_inplace(out, base);
  }

  /// Dense delta from the sparse payload. Index bounds come off the wire in
  /// deployment, so they are checked with a throwing SEAFL_CHECK — the
  /// server catches and drops the peer instead of crashing.
  static void decode_delta_into(const CompressedUpdate& update,
                                std::vector<float>& delta) {
    const auto dim = static_cast<std::size_t>(update.dim);
    const auto k = static_cast<std::size_t>(update.k);
    delta.assign(dim, 0.0f);
    const auto* bytes =
        reinterpret_cast<const unsigned char*>(update.payload.data());
    const unsigned char* values = bytes + k * 4;
    BitReader reader(values, update.payload.size() - k * 4);
    const std::int64_t half = update.bits == 32 ? 0 : grid_half(update.bits);
    const double step = static_cast<double>(update.scale);
    for (std::size_t i = 0; i < k; ++i) {
      const std::uint32_t idx = load_u32(bytes + i * 4);
      SEAFL_CHECK(idx < dim, "top-k index " << idx << " out of range (dim "
                                            << dim << ")");
      if (update.bits == 32) {
        delta[idx] = load_f32(values + i * 4);
      } else if (update.scale != 0.0f) {
        const std::int64_t q =
            static_cast<std::int64_t>(reader.pull(update.bits)) - half;
        delta[idx] = static_cast<float>(static_cast<double>(q) * step);
      }
    }
  }

  static std::vector<float> decode_delta(const CompressedUpdate& update) {
    std::vector<float> delta;
    decode_delta_into(update, delta);
    return delta;
  }

 private:
  CompressionConfig config_;
};

// --- identity ----------------------------------------------------------------

class IdentityCodec final : public Codec {
 public:
  const char* name() const override { return "identity"; }
  CodecKind kind() const override { return CodecKind::kIdentity; }

  std::size_t encoded_bytes_for(std::size_t dim) const override {
    return kContainerHeaderBytes + dim * 4;
  }

  CompressedUpdate encode(const std::vector<float>& weights,
                          const std::vector<float>& base,
                          std::vector<float>* /*residual*/,
                          std::size_t /*client*/, std::uint64_t /*round*/,
                          std::uint64_t /*seed*/) const override {
    SEAFL_CHECK(base.size() == weights.size(),
                "codec base/weights dim mismatch: " << base.size() << " vs "
                                                    << weights.size());
    // Absolute weights, not a delta: float addition does not round-trip
    // (base + (w - base) != w in general), and identity promises bitwise
    // fidelity. The residual is untouched — nothing is dropped.
    CompressedUpdate out;
    out.codec = CodecKind::kIdentity;
    out.bits = 32;
    out.dim = weights.size();
    out.k = weights.size();
    out.payload.reserve(weights.size() * 4);
    for (const float w : weights) append_f32(out.payload, w);
    return out;
  }

  void decode_into(const CompressedUpdate& update,
                   const std::vector<float>& base,
                   std::vector<float>& out) const override {
    SEAFL_CHECK(update.dim == base.size(),
                "compressed update dim " << update.dim
                                         << " != base dim " << base.size());
    const auto dim = static_cast<std::size_t>(update.dim);
    out.resize(dim);
    const auto* bytes =
        reinterpret_cast<const unsigned char*>(update.payload.data());
    for (std::size_t i = 0; i < dim; ++i) out[i] = load_f32(bytes + i * 4);
  }
};

}  // namespace

const char* codec_kind_name(CodecKind kind) {
  switch (kind) {
    case CodecKind::kIdentity:
      return "identity";
    case CodecKind::kQuantize:
      return "quantize";
    case CodecKind::kTopK:
      return "topk";
  }
  return "unknown";
}

void apply_codec_name(CompressionConfig& config, const std::string& name) {
  if (name == "identity" || name == "float32") {
    config.codec = CodecKind::kIdentity;
  } else if (name == "quantize") {
    config.codec = CodecKind::kQuantize;
  } else if (name == "int8") {
    config.codec = CodecKind::kQuantize;
    config.bits = 8;
  } else if (name == "int4") {
    config.codec = CodecKind::kQuantize;
    config.bits = 4;
  } else if (name == "topk") {
    config.codec = CodecKind::kTopK;
  } else {
    throw Error("unknown codec \"" + name +
                "\" (want identity|float32|quantize|int8|int4|topk)");
  }
}

void validate_compression(const CompressionConfig& config) {
  switch (config.codec) {
    case CodecKind::kIdentity:
      return;  // the plain path; other knobs are inert
    case CodecKind::kQuantize:
      SEAFL_CHECK(config.bits >= 2 && config.bits <= 16,
                  "compression.bits must be in [2, 16] for the quantize "
                  "codec, got "
                      << config.bits);
      return;
    case CodecKind::kTopK:
      SEAFL_CHECK(config.topk_fraction > 0.0 && config.topk_fraction <= 1.0,
                  "compression.topk_fraction must be in (0, 1], got "
                      << config.topk_fraction);
      SEAFL_CHECK(config.bits == 32 ||
                      (config.bits >= 2 && config.bits <= 16),
                  "compression.bits must be 32 (raw float values) or in "
                  "[2, 16] for the topk codec, got "
                      << config.bits);
      SEAFL_CHECK(config.bits >= 8 || config.error_feedback,
                  "topk with " << config.bits
                               << "-bit values requires error_feedback: "
                                  "sparsification plus coarse quantization "
                                  "drops too much mass to converge without "
                                  "a carried residual");
      return;
  }
  throw Error("unknown codec kind");
}

void append_compressed(std::string& out, const CompressedUpdate& update) {
  out.append(kMagic, sizeof(kMagic));
  append_u16(out, kContainerVersion);
  out.push_back(static_cast<char>(update.codec));
  out.push_back(static_cast<char>(update.bits));
  append_u64(out, update.dim);
  append_u64(out, update.k);
  append_f32(out, update.scale);
  out.append(update.payload);
}

CompressedUpdate decode_compressed(const void* data, std::size_t size,
                                   std::size_t* consumed) {
  SEAFL_CHECK(size >= kContainerHeaderBytes,
              "compressed container truncated: " << size << " bytes");
  const auto* p = static_cast<const unsigned char*>(data);
  SEAFL_CHECK(std::memcmp(p, kMagic, sizeof(kMagic)) == 0,
              "bad compressed container magic");
  const std::uint16_t version = load_u16(p + 8);
  SEAFL_CHECK(version == kContainerVersion,
              "unsupported compressed container version " << version);
  CompressedUpdate update;
  const std::uint8_t codec_byte = p[10];
  SEAFL_CHECK(codec_byte <= static_cast<std::uint8_t>(CodecKind::kTopK),
              "unknown codec byte " << static_cast<int>(codec_byte));
  update.codec = static_cast<CodecKind>(codec_byte);
  update.bits = p[11];
  update.dim = load_u64(p + 12);
  update.k = load_u64(p + 20);
  update.scale = load_f32(p + 28);

  SEAFL_CHECK(update.dim <= kMaxDim,
              "compressed container dim " << update.dim << " exceeds limit");
  SEAFL_CHECK(update.k <= update.dim, "compressed container k " << update.k
                                                                << " > dim "
                                                                << update.dim);
  switch (update.codec) {
    case CodecKind::kIdentity:
      SEAFL_CHECK(update.bits == 32 && update.k == update.dim,
                  "malformed identity container metadata");
      break;
    case CodecKind::kQuantize:
      SEAFL_CHECK(update.bits >= 2 && update.bits <= 16 &&
                      update.k == update.dim,
                  "malformed quantize container metadata");
      break;
    case CodecKind::kTopK:
      SEAFL_CHECK(update.bits == 32 || (update.bits >= 2 && update.bits <= 16),
                  "malformed topk container metadata");
      SEAFL_CHECK(update.dim == 0 || update.k >= 1,
                  "malformed topk container metadata");
      break;
  }
  const std::size_t payload_bytes =
      expected_payload_bytes(update.codec, update.bits, update.dim, update.k);
  SEAFL_CHECK(size - kContainerHeaderBytes >= payload_bytes,
              "compressed container payload truncated: want "
                  << payload_bytes << ", have " << size - kContainerHeaderBytes);
  update.payload.assign(
      reinterpret_cast<const char*>(p + kContainerHeaderBytes), payload_bytes);
  if (consumed != nullptr) *consumed = kContainerHeaderBytes + payload_bytes;
  return update;
}

std::unique_ptr<Codec> make_codec(const CompressionConfig& config) {
  validate_compression(config);
  switch (config.codec) {
    case CodecKind::kIdentity:
      return std::make_unique<IdentityCodec>();
    case CodecKind::kQuantize:
      return std::make_unique<QuantizeCodec>(config);
    case CodecKind::kTopK:
      return std::make_unique<TopKCodec>(config);
  }
  throw Error("unknown codec kind");
}

std::size_t transfer_bytes(std::size_t dim, std::size_t bits) {
  if (bits == 0) return kFloatContainerHeaderBytes + dim * sizeof(float);
  SEAFL_CHECK(bits >= 2 && bits <= 16, "quantization bits out of range");
  return kContainerHeaderBytes + packed_bytes(dim, bits);
}

std::size_t upload_wire_bytes(const CompressionConfig& config,
                              std::size_t legacy_quantize_bits,
                              std::size_t dim) {
  if (!config.enabled()) return transfer_bytes(dim, legacy_quantize_bits);
  switch (config.codec) {
    case CodecKind::kQuantize:
      return kContainerHeaderBytes +
             expected_payload_bytes(CodecKind::kQuantize, config.bits, dim,
                                    dim);
    case CodecKind::kTopK: {
      const std::size_t k = topk_count(config.topk_fraction, dim);
      return kContainerHeaderBytes +
             expected_payload_bytes(CodecKind::kTopK, config.bits, dim, k);
    }
    case CodecKind::kIdentity:
      break;  // unreachable: enabled() excludes identity
  }
  return transfer_bytes(dim, 0);
}

// Absorbed verbatim from the original fl/compression.cpp — the arithmetic
// (float max-abs accumulation, pow-derived level count, double rounding) is
// part of the legacy quantize_bits bitwise-reproducibility contract and must
// not be "cleaned up".
namespace {
double legacy_grid_step(const std::vector<float>& weights, std::size_t bits) {
  SEAFL_CHECK(bits >= 2 && bits <= 16,
              "quantization bits must be in [2, 16], got " << bits);
  float max_abs = 0.0f;
  for (const float w : weights) max_abs = std::max(max_abs, std::abs(w));
  if (max_abs == 0.0f) return 0.0;
  const double levels = std::pow(2.0, static_cast<double>(bits)) - 1.0;
  // Symmetric grid: (levels - 1) / 2 positive steps reach +max_abs.
  return 2.0 * max_abs / (levels - 1.0);
}
}  // namespace

double quantize_model_inplace(std::vector<float>& weights, std::size_t bits) {
  const double step = legacy_grid_step(weights, bits);
  if (step == 0.0) return 0.0;
  for (auto& w : weights) {
    w = static_cast<float>(std::round(static_cast<double>(w) / step) * step);
  }
  return step;
}

double quantization_error_bound(const std::vector<float>& weights,
                                std::size_t bits) {
  return legacy_grid_step(weights, bits) / 2.0;
}

}  // namespace seafl::compress
