// q8 kernel dispatch for the quantize codec's bits == 8 wire format (one
// byte per element). Internal to src/compress: codec.cpp routes its encode
// and decode inner loops through these when the element width allows a flat
// byte layout; every other width stays on the BitWriter/BitReader path.
#pragma once

#include <cstddef>
#include <cstdint>

namespace seafl {
class Rng;
}

namespace seafl::compress::detail {

/// Quantizes n floats to bytes: out[i] = stochastic_level(input[i]) + half,
/// consuming exactly one rng.uniform() per element in index order (the
/// stream position stays a pure function of the element index, so scalar
/// and SIMD kernels draw identical noise).
using Q8EncodeFn = void (*)(const float* input, std::size_t n, double step,
                            std::int64_t half, Rng& rng, unsigned char* out);

/// Dequantizes n bytes: out[i] = float((levels[i] - half) * step).
using Q8DecodeFn = void (*)(const unsigned char* levels, std::size_t n,
                            double step, std::int64_t half, float* out);

/// Resolved per call against the ops vector backend (seafl::vector_backend):
/// the AVX2 kernels when the backend is kSimd on an AVX2 host, else the
/// scalar reference. Both produce identical bytes/floats by construction —
/// every intermediate is the same double-precision value.
Q8EncodeFn active_q8_encode();
Q8DecodeFn active_q8_decode();

}  // namespace seafl::compress::detail
