// AVX2 fast paths for the 8-bit quantize codec — the only wire width whose
// inner loops are a flat byte per element and wide enough to pay for SIMD.
// Both kernels are bitwise-equal to codec.cpp's BitWriter/BitReader path by
// construction: every intermediate is the same double-precision value, the
// stochastic-rounding stream is consumed in the same element order, and the
// quantized level is a small exact integer (|level| <= half <= 127) so no
// vector conversion can round (DESIGN.md §17).
#include "compress/codec_simd.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/rng.h"
#include "tensor/ops.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SEAFL_CODEC_HAVE_X86_DISPATCH 1
#include <immintrin.h>
#else
#define SEAFL_CODEC_HAVE_X86_DISPATCH 0
#endif

namespace seafl::compress::detail {
namespace {

// Must stay arithmetic-identical to codec.cpp's stochastic_level: one
// uniform draw per call, always consumed.
inline std::int64_t q8_level(double value, double step, std::int64_t half,
                             Rng& rng) {
  const double u = rng.uniform();
  const double x = value / step;
  const double lo = std::floor(x);
  const std::int64_t q = static_cast<std::int64_t>(lo) + (u < (x - lo) ? 1 : 0);
  return std::clamp<std::int64_t>(q, -half, half);
}

void q8_encode_scalar(const float* input, std::size_t n, double step,
                      std::int64_t half, Rng& rng, unsigned char* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] =
        static_cast<unsigned char>(q8_level(input[i], step, half, rng) + half);
  }
}

void q8_decode_scalar(const unsigned char* levels, std::size_t n, double step,
                      std::int64_t half, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t q = static_cast<std::int64_t>(levels[i]) - half;
    out[i] = static_cast<float>(static_cast<double>(q) * step);
  }
}

#if SEAFL_CODEC_HAVE_X86_DISPATCH

// 4-wide (the width of _mm256_cvtpd_epi32): uniforms are drawn scalar, in
// element order, before the vector step. |x| <= half because step is
// max|input| / half, so lo, q and q + half are all exact small integers in
// double — floor/compare/clamp in vector registers reproduce the scalar
// int64 arithmetic exactly.
__attribute__((target("avx2"))) void q8_encode_avx2(const float* input,
                                                    std::size_t n, double step,
                                                    std::int64_t half,
                                                    Rng& rng,
                                                    unsigned char* out) {
  const __m256d step_v = _mm256_set1_pd(step);
  const __m256d one_v = _mm256_set1_pd(1.0);
  const __m256d half_v = _mm256_set1_pd(static_cast<double>(half));
  const __m256d neg_half_v = _mm256_set1_pd(-static_cast<double>(half));
  alignas(32) double u[4];
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    u[0] = rng.uniform();
    u[1] = rng.uniform();
    u[2] = rng.uniform();
    u[3] = rng.uniform();
    const __m256d uv = _mm256_load_pd(u);
    const __m256d x =
        _mm256_div_pd(_mm256_cvtps_pd(_mm_loadu_ps(input + i)), step_v);
    const __m256d lo = _mm256_floor_pd(x);
    const __m256d bump = _mm256_and_pd(
        _mm256_cmp_pd(uv, _mm256_sub_pd(x, lo), _CMP_LT_OQ), one_v);
    __m256d q = _mm256_add_pd(lo, bump);
    q = _mm256_min_pd(_mm256_max_pd(q, neg_half_v), half_v);
    const __m128i lanes = _mm256_cvtpd_epi32(_mm256_add_pd(q, half_v));
    const __m128i packed16 = _mm_packus_epi32(lanes, lanes);
    const __m128i packed8 = _mm_packus_epi16(packed16, packed16);
    const int word = _mm_cvtsi128_si32(packed8);
    std::memcpy(out + i, &word, 4);
  }
  for (; i < n; ++i) {
    out[i] =
        static_cast<unsigned char>(q8_level(input[i], step, half, rng) + half);
  }
}

// 8-wide: bytes -> int32 lanes -> two double halves -> (q - half) * step,
// narrowed to float with the same round-to-nearest the scalar cast uses.
__attribute__((target("avx2"))) void q8_decode_avx2(
    const unsigned char* levels, std::size_t n, double step, std::int64_t half,
    float* out) {
  const __m256d step_v = _mm256_set1_pd(step);
  const __m256d half_v = _mm256_set1_pd(static_cast<double>(half));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m128i bytes;
    std::memcpy(&bytes, levels + i, 8);
    const __m256i lanes32 = _mm256_cvtepu8_epi32(bytes);
    const __m256d lo = _mm256_sub_pd(
        _mm256_cvtepi32_pd(_mm256_castsi256_si128(lanes32)), half_v);
    const __m256d hi = _mm256_sub_pd(
        _mm256_cvtepi32_pd(_mm256_extracti128_si256(lanes32, 1)), half_v);
    const __m128 f0 = _mm256_cvtpd_ps(_mm256_mul_pd(lo, step_v));
    const __m128 f1 = _mm256_cvtpd_ps(_mm256_mul_pd(hi, step_v));
    _mm256_storeu_ps(out + i, _mm256_set_m128(f1, f0));
  }
  for (; i < n; ++i) {
    const std::int64_t q = static_cast<std::int64_t>(levels[i]) - half;
    out[i] = static_cast<float>(static_cast<double>(q) * step);
  }
}

#endif  // SEAFL_CODEC_HAVE_X86_DISPATCH

bool simd_selected() {
  return vector_backend() == VectorBackend::kSimd && simd_vector_available();
}

}  // namespace

Q8EncodeFn active_q8_encode() {
#if SEAFL_CODEC_HAVE_X86_DISPATCH
  if (simd_selected()) return q8_encode_avx2;
#endif
  return q8_encode_scalar;
}

Q8DecodeFn active_q8_decode() {
#if SEAFL_CODEC_HAVE_X86_DISPATCH
  if (simd_selected()) return q8_decode_avx2;
#endif
  return q8_decode_scalar;
}

}  // namespace seafl::compress::detail
