// Upload compression subsystem (DESIGN.md §14): codecs that turn a trained
// model vector into real bytes — the exact bytes the wire ships and the
// bandwidth model charges for — plus the matching server-side decode.
//
// Three codecs:
//  * identity  — float32 passthrough of the absolute weights (bitwise exact);
//  * quantize  — stochastic uniform quantization of the *delta* against the
//    dispatched base weights, `bits` (2..16) per scalar. Rounding noise is
//    drawn from a counter-keyed stream, so encode is a pure deterministic
//    function of (weights, base, residual, client, round, seed);
//  * topk      — top-k sparsification of the delta by magnitude (fraction of
//    coordinates kept), values stored as float32 or further quantized.
//
// Error feedback: when enabled, the coordinate mass a codec drops (the
// residual) is carried per client and folded into that client's *next*
// encode, so compression error accumulates into later uploads instead of
// being lost — the property AsyncFedED-style adaptive weighting relies on
// (update geometry survives transmission in expectation).
//
// Every encode is data-independent in *size*: encoded_bytes_for(dim) equals
// encoded_bytes() of any actual encode of a dim-length vector. That is what
// lets the virtual simulation schedule an upload's transmission time at
// dispatch, before the trained weights exist (fl/simulation.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace seafl::compress {

enum class CodecKind : std::uint8_t {
  kIdentity = 0,  ///< float32 passthrough (no compression on the wire)
  kQuantize = 1,  ///< stochastic uniform quantization of the delta
  kTopK = 2,      ///< top-k delta sparsification (+ optional quantization)
};

/// Stable lowercase name ("identity", "quantize", "topk").
const char* codec_kind_name(CodecKind kind);

/// The upload-compression knobs of a run (RunConfig::compression).
struct CompressionConfig {
  CodecKind codec = CodecKind::kIdentity;
  /// Bits per stored value: quantize needs [2, 16]; topk takes 32 (raw
  /// float32 values) or [2, 16] (kept values quantized too).
  std::size_t bits = 8;
  /// Fraction of coordinates kTopK keeps, in (0, 1]. At least one
  /// coordinate is always kept.
  double topk_fraction = 0.1;
  /// Carry dropped/rounded mass into the client's next encode.
  bool error_feedback = true;

  /// Identity means the plain float32 upload path everywhere (wire frames,
  /// byte accounting and timing all unchanged from a config predating the
  /// compress subsystem).
  bool enabled() const { return codec != CodecKind::kIdentity; }
};

/// Parses a codec selector into `config`. Accepts the three kind names plus
/// the width aliases "float32" (identity), "int8" and "int4" (quantize with
/// bits forced to 8 / 4). Throws seafl::Error on anything else.
void apply_codec_name(CompressionConfig& config, const std::string& name);

/// Throws seafl::Error with a field-specific message on the first invalid or
/// conflicting knob (bad bit width, topk_fraction out of (0, 1], coarse
/// top-k without error feedback).
void validate_compression(const CompressionConfig& config);

// --- the compressed-model container -----------------------------------------

/// SEAFLCMP container header: magic(8) + version(u16) + codec(u8) + bits(u8)
/// + dim(u64) + k(u64) + scale(f32).
inline constexpr std::size_t kContainerHeaderBytes = 32;

/// Header size of the plain SEAFLMDL float32 container (nn/serialize):
/// magic(8) + version(u32) + count(u64). Pinned by a test against
/// append_model_vector so the two layers cannot drift apart.
inline constexpr std::size_t kFloatContainerHeaderBytes = 20;

/// One encoded model update: metadata plus the packed payload. The bytes of
/// append_compressed() are exactly what the wire ships and exactly what
/// encoded_bytes() reports — the acceptance contract tying server-logged
/// bytes-on-wire to the codec.
struct CompressedUpdate {
  CodecKind codec = CodecKind::kIdentity;
  std::uint32_t bits = 32;  ///< stored value width (32 = raw float)
  std::uint64_t dim = 0;    ///< original vector length
  std::uint64_t k = 0;      ///< stored coordinates (== dim unless topk)
  float scale = 0.0f;       ///< quantization grid step (0 = none/all-zero)
  std::string payload;      ///< packed values (+ u32 indices for topk), LE

  /// Container bytes: header + payload.
  std::size_t encoded_bytes() const {
    return kContainerHeaderBytes + payload.size();
  }
};

/// Appends the SEAFLCMP container for `update` to `out`.
void append_compressed(std::string& out, const CompressedUpdate& update);

/// Parses one container from the front of `data`. Validates the header and
/// that the payload length matches what (codec, bits, dim, k) requires;
/// throws seafl::Error on anything malformed (wire decoding converts that
/// into a close-the-peer status, never a crash). On success `*consumed`
/// (when non-null) receives the container's total byte length.
CompressedUpdate decode_compressed(const void* data, std::size_t size,
                                   std::size_t* consumed = nullptr);

// --- the codec interface -----------------------------------------------------

class Codec {
 public:
  virtual ~Codec() = default;
  virtual const char* name() const = 0;
  virtual CodecKind kind() const = 0;

  /// Container bytes of any encode of a dim-length vector (data-independent
  /// by design; see file comment).
  virtual std::size_t encoded_bytes_for(std::size_t dim) const = 0;

  /// Encodes trained `weights` against `base` (the dispatched global
  /// snapshot the client trained from). A non-null `residual` is the
  /// client's carried error-feedback state: it is folded into this encode's
  /// input and rewritten to the new encode error — exactly one accumulation
  /// per call (an empty vector is treated as zeros and sized to dim).
  /// Deterministic in (weights, base, *residual, client, round, seed); the
  /// stochastic-rounding stream is Rng(seed, kCompress, client, round).
  virtual CompressedUpdate encode(const std::vector<float>& weights,
                                  const std::vector<float>& base,
                                  std::vector<float>* residual,
                                  std::size_t client, std::uint64_t round,
                                  std::uint64_t seed) const = 0;

  /// Reconstructs absolute weights: base + decoded delta (identity ignores
  /// `base` and returns the stored weights bitwise). Throws seafl::Error on
  /// a payload whose indices or dimensions are inconsistent.
  std::vector<float> decode(const CompressedUpdate& update,
                            const std::vector<float>& base) const {
    std::vector<float> out;
    decode_into(update, base, out);
    return out;
  }

  /// Allocation-aware decode: writes the reconstructed weights into `out`,
  /// resized to dim with capacity reused — the server's hot path recycles
  /// one buffer per buffered update this way. Same validation and errors as
  /// decode(); `out` holds unspecified contents if the payload throws.
  virtual void decode_into(const CompressedUpdate& update,
                           const std::vector<float>& base,
                           std::vector<float>& out) const = 0;
};

/// Builds the codec `config` selects (validates first).
std::unique_ptr<Codec> make_codec(const CompressionConfig& config);

// --- byte accounting ---------------------------------------------------------

/// Bytes on the wire for one model upload at the given precision. Includes
/// the container header: bits = 0 is a plain SEAFLMDL float32 container,
/// otherwise a SEAFLCMP container of packed `bits`-wide values.
std::size_t transfer_bytes(std::size_t dim, std::size_t bits);

/// On-wire bytes of one dim-length upload under a run's compression knobs:
/// the codec's container when compression is on, else transfer_bytes with
/// the legacy quantize_bits (0 = plain float32).
std::size_t upload_wire_bytes(const CompressionConfig& config,
                              std::size_t legacy_quantize_bits,
                              std::size_t dim);

// --- legacy shim (absorbed from fl/compression) ------------------------------

/// Deterministic (round-to-nearest) uniform symmetric quantization of
/// `weights` in place to `bits` bits per scalar (2..16). Returns the grid
/// step; 0 for an all-zero vector. This is the historical `quantize_bits`
/// fault knob — byte-for-byte the pre-subsystem arithmetic, kept separate
/// from the stochastic kQuantize codec so legacy configs stay bitwise
/// reproducible.
double quantize_model_inplace(std::vector<float>& weights, std::size_t bits);

/// Worst-case absolute rounding error of quantize_model_inplace: half the
/// grid step.
double quantization_error_bound(const std::vector<float>& weights,
                                std::size_t bits);

}  // namespace seafl::compress
