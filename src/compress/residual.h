// Per-client error-feedback state for the upload codecs (DESIGN.md §14).
//
// Each client carries one residual vector: the mass its last delivered
// encode dropped, folded into the next encode's input. The lifecycle rule
// that makes this correct under faults is *advance on the encode that gets
// delivered, never per attempt*:
//  * the virtual Simulation encodes exactly once, at the upload's arrival
//    event, so lost-forever uploads, crashed clients and deadline
//    re-dispatches never touch the residual;
//  * the deployment client encodes once per training session before the
//    retry loop, and every retry re-sends those same bytes, so a retransmit
//    cannot double-accumulate either.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

namespace seafl::compress {

/// Lazily materialized per-client residual vectors. Not thread-safe: both
/// drivers touch it from their single event/handler thread.
class ResidualStore {
 public:
  /// The client's residual, created as `dim` zeros on first access. Pass the
  /// returned vector to Codec::encode, which folds it in and rewrites it.
  std::vector<float>& for_client(std::size_t client, std::size_t dim) {
    auto& r = residuals_[client];
    if (r.empty()) r.assign(dim, 0.0f);
    return r;
  }

  /// Drops a client's carried state (e.g. when its data is reassigned to a
  /// fresh device identity — stale error mass would no longer correspond to
  /// anything that client observed).
  void reset(std::size_t client) { residuals_.erase(client); }

  bool has(std::size_t client) const { return residuals_.count(client) > 0; }
  std::size_t size() const { return residuals_.size(); }

  /// Read-only view of every materialized residual, for checkpoint capture
  /// (the caller sorts by client before serializing).
  const std::unordered_map<std::size_t, std::vector<float>>& all() const {
    return residuals_;
  }

  /// Reinstalls one checkpointed residual verbatim (checkpoint restore).
  void restore(std::size_t client, std::vector<float> residual) {
    residuals_[client] = std::move(residual);
  }

 private:
  std::unordered_map<std::size_t, std::vector<float>> residuals_;
};

}  // namespace seafl::compress
