// im2col / col2im lowering for 2-d convolution. Convolutions in seafl::nn are
// implemented as im2col + GEMM, the standard CPU strategy: it trades memory
// for dense, cache-friendly inner loops.
//
// Image layout is CHW (channels, height, width) per sample. The column buffer
// has shape [C*KH*KW, OH*OW]: each column holds the receptive field of one
// output position, so conv forward is W[OC, C*KH*KW] * cols.
#pragma once

#include <cstddef>
#include <span>

namespace seafl {

/// Geometry of one conv/pool operation.
struct ConvGeom {
  std::size_t channels = 1;
  std::size_t height = 1;
  std::size_t width = 1;
  std::size_t kernel_h = 1;
  std::size_t kernel_w = 1;
  std::size_t stride = 1;
  std::size_t pad = 0;

  std::size_t out_h() const { return (height + 2 * pad - kernel_h) / stride + 1; }
  std::size_t out_w() const { return (width + 2 * pad - kernel_w) / stride + 1; }
  std::size_t col_rows() const { return channels * kernel_h * kernel_w; }
  std::size_t col_cols() const { return out_h() * out_w(); }
};

/// Expands one CHW image into the [col_rows, col_cols] column matrix.
/// Out-of-bounds (padding) positions contribute zeros.
void im2col(const ConvGeom& g, std::span<const float> image,
            std::span<float> cols);

/// Scatters a column-matrix gradient back into a CHW image gradient
/// (accumulating overlaps). `image_grad` must be pre-zeroed by the caller.
void col2im(const ConvGeom& g, std::span<const float> cols,
            std::span<float> image_grad);

}  // namespace seafl
