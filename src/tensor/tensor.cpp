#include "tensor/tensor.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace seafl {

std::size_t shape_numel(const Shape& shape) {
  std::size_t n = 1;
  for (auto d : shape) n *= d;
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  SEAFL_CHECK(data_.size() == shape_numel(shape_),
              "value count " << data_.size() << " does not match shape "
                             << shape_to_string(shape_));
}

Tensor Tensor::vector(std::vector<float> values) {
  const std::size_t n = values.size();
  return Tensor(Shape{n}, std::move(values));
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::reshape(std::span<const std::size_t> new_shape) {
  std::size_t n = 1;
  for (auto d : new_shape) n *= d;
  SEAFL_CHECK(n == data_.size(),
              "reshape " << shape_to_string(shape_) << " -> "
                         << shape_to_string(Shape(new_shape.begin(),
                                                  new_shape.end()))
                         << " changes element count");
  shape_.assign(new_shape.begin(), new_shape.end());
}

bool Tensor::ensure_shape(std::span<const std::size_t> shape) {
  if (shape_.size() == shape.size() &&
      std::equal(shape_.begin(), shape_.end(), shape.begin())) {
    return false;
  }
  std::size_t n = 1;
  for (auto d : shape) n *= d;
  if (n != data_.size()) data_.resize(n, 0.0f);
  shape_.assign(shape.begin(), shape.end());
  return true;
}

void Tensor::fill_normal(Rng& rng, float mean, float stddev) {
  for (auto& v : data_)
    v = static_cast<float>(rng.normal(mean, stddev));
}

void Tensor::fill_uniform(Rng& rng, float lo, float hi) {
  for (auto& v : data_)
    v = static_cast<float>(rng.uniform(lo, hi));
}

bool Tensor::equals(const Tensor& other) const {
  return shape_ == other.shape_ && data_ == other.data_;
}

}  // namespace seafl
