// Internal kernel table behind the vector-backend dispatch seam (ops.h).
//
// Each entry operates on a raw contiguous range: the public ops functions in
// ops.cpp handle size checks and pool chunking, then call the active table on
// each chunk. Two tables exist — the portable scalar one (ops.cpp) and the
// AVX2 one (ops_simd.cpp), selected at runtime via __builtin_cpu_supports.
//
// Determinism contract (DESIGN.md §17): every kernel here is bitwise-equal
// across tables.
//  * Elementwise kernels are per-element independent float math with no FMA
//    contraction (the AVX2 functions are compiled target("avx2") WITHOUT
//    "fma"), so lane width cannot change results.
//  * Block reductions (dot_block / sum_block) accumulate into 8 double lanes:
//    element at block-local offset j accrues to lane (j & 7), lanes combined
//    sequentially lane0..lane7 at the end. Both tables implement exactly this
//    order, so scalar == AVX2 bitwise for every block length.
#pragma once

#include <cstddef>

namespace seafl::detail {

struct OpsKernels {
  // y[i] op= x[i] / scalars, over n elements.
  void (*add)(float* y, const float* x, std::size_t n);
  void (*sub)(float* y, const float* x, std::size_t n);
  void (*scale)(float* y, float s, std::size_t n);
  void (*axpy)(float* y, float a, const float* x, std::size_t n);
  void (*axpby)(float* y, float a, const float* x, float b, std::size_t n);
  // out[i] = a[i] op b[i] (out never aliases a partial overlap; exact
  // aliasing out==a or out==b is fine — loads precede stores per element).
  void (*add_to)(float* out, const float* a, const float* b, std::size_t n);
  void (*sub_to)(float* out, const float* a, const float* b, std::size_t n);
  // Lane-strided block reductions; n is one block (<= kReduceBlock).
  double (*dot_block)(const float* a, const float* b, std::size_t n);
  double (*sum_block)(const float* a, std::size_t n);
  // Max of |a[i]| as float (0 for empty; NaN elements are ignored).
  float (*max_abs)(const float* a, std::size_t n);
};

/// Portable table — the reference semantics.
const OpsKernels& scalar_ops_kernels();

/// AVX2 table on capable x86-64 hosts, otherwise the scalar table.
const OpsKernels& simd_ops_kernels();

/// True when simd_ops_kernels() is a genuinely vectorized table.
bool ops_simd_available();

}  // namespace seafl::detail
