// Packed, cache-blocked, register-tiled single-precision matrix multiply.
//
// Two backends serve the same contract (selected at runtime, tiled by
// default):
//   kTiled     — packs op(A)/op(B) panels into thread-local aligned buffers
//                (all four transpose cases resolved at pack time) and
//                computes with an unrolled MR x NR register-tile microkernel
//                over Kc-blocked panels (tensor/microkernel.h, tensor/pack.h).
//   kReference — the retained row-loop kernel, kept as the parity oracle and
//                the recorded performance baseline.
//
// Determinism contract: every C element is an ascending-k float addition
// chain finished by one shared scalar epilogue (microkernel.h); each C row
// is written by exactly one task, so results are bitwise identical across
// thread counts, pool partitions, and (absent FMA contraction) across the
// two backends. See DESIGN.md §11.
//
// The optional epilogue fuses the per-row / per-column bias add (and an
// optional ReLU clamp) that the nn layers would otherwise loop over C for.
#pragma once

#include <cstddef>
#include <span>

namespace seafl {

/// Whether an input operand is used as-is or transposed.
enum class Trans { kNo, kYes };

/// Which kernel implementation serves gemm() calls.
enum class GemmBackend { kReference, kTiled };

/// Current process-wide backend (kTiled unless overridden).
GemmBackend gemm_backend();

/// Selects the backend for subsequent gemm() calls.
void set_gemm_backend(GemmBackend backend);

/// RAII backend override for tests and benches.
class GemmBackendScope {
 public:
  explicit GemmBackendScope(GemmBackend backend) : prev_(gemm_backend()) {
    set_gemm_backend(backend);
  }
  ~GemmBackendScope() { set_gemm_backend(prev_); }
  GemmBackendScope(const GemmBackendScope&) = delete;
  GemmBackendScope& operator=(const GemmBackendScope&) = delete;

 private:
  GemmBackend prev_;
};

/// Fused operations applied while C is written (instead of a second sweep):
///   C[r,j] = alpha*acc + beta*C[r,j] + row_bias[r] + col_bias[j], then ReLU.
struct GemmEpilogue {
  const float* row_bias = nullptr;  ///< length m; conv bias (rows = channels)
  const float* col_bias = nullptr;  ///< length n; dense bias (cols = features)
  bool relu = false;                ///< clamp negatives after the bias adds
};

/// C[m,n] = alpha * op(A) * op(B) + beta * C, row-major.
/// Dimensions are those of the *operated* matrices: op(A) is m×k, op(B) k×n.
/// A therefore has physical shape m×k (kNo) or k×m (kYes), similarly B.
void gemm(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
          std::size_t k, float alpha, std::span<const float> a,
          std::span<const float> b, float beta, std::span<float> c);

/// gemm with a fused epilogue (bias adds / ReLU) in the C-store loop.
void gemm_ex(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
             std::size_t k, float alpha, std::span<const float> a,
             std::span<const float> b, float beta, std::span<float> c,
             const GemmEpilogue& epilogue);

/// Convenience: C = A * B with zero-initialized accumulation.
void matmul(std::size_t m, std::size_t n, std::size_t k,
            std::span<const float> a, std::span<const float> b,
            std::span<float> c);

namespace detail {

/// Reference backend entry (gemm_ref.cpp); same contract as gemm_ex.
void gemm_reference(Trans trans_a, Trans trans_b, std::size_t m,
                    std::size_t n, std::size_t k, float alpha, const float* a,
                    const float* b, float beta, float* c,
                    const GemmEpilogue& epilogue);

/// Tiled backend entry (gemm.cpp); parallelizes row panels over the pool.
void gemm_tiled(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
                std::size_t k, float alpha, const float* a, const float* b,
                float beta, float* c, const GemmEpilogue& epilogue);

/// Test hook: runs the tiled backend serially but split at the given
/// ascending row-panel boundaries (interior split points of [0, npanels)),
/// executing exactly the per-task function the pool runs. Used to prove the
/// result is bitwise invariant to how panels are partitioned across workers
/// without resizing the process-wide pool.
void gemm_tiled_partitioned(Trans trans_a, Trans trans_b, std::size_t m,
                            std::size_t n, std::size_t k, float alpha,
                            const float* a, const float* b, float beta,
                            float* c, const GemmEpilogue& epilogue,
                            std::span<const std::size_t> panel_splits);

}  // namespace detail

}  // namespace seafl
