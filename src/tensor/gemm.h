// Blocked single-precision matrix multiplication.
//
// Two entry points cover everything the NN layers need:
//   gemm       : C = alpha * op(A) * op(B) + beta * C
//   The op() transposes are handled by four specialized kernels (NN, NT, TN,
//   TT) so the inner loops stay branch-free and contiguous where possible.
//
// Rows of C are parallelized over the global thread pool; the result is
// independent of thread count because each output element is written by
// exactly one task.
#pragma once

#include <cstddef>
#include <span>

namespace seafl {

/// Whether an input operand is used as-is or transposed.
enum class Trans { kNo, kYes };

/// C[m,n] = alpha * op(A) * op(B) + beta * C, row-major.
/// Dimensions are those of the *operated* matrices: op(A) is m×k, op(B) k×n.
/// A therefore has physical shape m×k (kNo) or k×m (kYes), similarly B.
void gemm(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
          std::size_t k, float alpha, std::span<const float> a,
          std::span<const float> b, float beta, std::span<float> c);

/// Convenience: C = A * B with zero-initialized accumulation.
void matmul(std::size_t m, std::size_t n, std::size_t k,
            std::span<const float> a, std::span<const float> b,
            std::span<float> c);

}  // namespace seafl
