#include "tensor/workspace.h"

#include <algorithm>
#include <atomic>
#include <new>

namespace seafl {

namespace {

std::atomic<bool> g_enabled{true};
std::atomic<std::uint64_t> g_slot_allocs{0};

// Bound on free-list entries per type; beyond it the smallest block is
// dropped so pathological shape churn cannot hoard memory.
constexpr std::size_t kMaxPooled = 32;

template <typename T>
T* aligned_alloc_elems(std::size_t n) {
  return static_cast<T*>(
      ::operator new(n * sizeof(T), std::align_val_t{Workspace::kAlign}));
}

template <typename T>
void aligned_free_elems(T* p) {
  ::operator delete(p, std::align_val_t{Workspace::kAlign});
}

template <typename T>
std::vector<T> pool_take(std::vector<std::vector<T>>& pool, std::size_t n) {
  // Prefer the smallest block that fits to keep big blocks for big asks.
  std::size_t best = pool.size();
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (pool[i].capacity() >= n &&
        (best == pool.size() || pool[i].capacity() < pool[best].capacity()))
      best = i;
  }
  std::vector<T> out;
  if (best != pool.size()) {
    out = std::move(pool[best]);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(best));
  }
  out.resize(n);
  return out;
}

template <typename T>
void pool_put(std::vector<std::vector<T>>& pool, std::vector<T>&& v) {
  if (v.capacity() == 0) return;
  if (pool.size() >= kMaxPooled) {
    // Evict the smallest resident block if the newcomer is bigger.
    auto smallest = std::min_element(
        pool.begin(), pool.end(), [](const auto& a, const auto& b) {
          return a.capacity() < b.capacity();
        });
    if (smallest->capacity() >= v.capacity()) return;
    *smallest = std::move(v);
    return;
  }
  pool.push_back(std::move(v));
}

}  // namespace

Workspace& Workspace::tls() {
  thread_local Workspace ws;
  return ws;
}

Workspace::~Workspace() {
  for (auto& s : slots_) {
    if (s.ptr != nullptr) aligned_free_elems(s.ptr);
  }
  for (auto& s : dslots_) {
    if (s.ptr != nullptr) aligned_free_elems(s.ptr);
  }
}

void Workspace::grow(AlignedBuf& buf, std::size_t n, bool exact) {
  if (buf.ptr != nullptr) aligned_free_elems(buf.ptr);
  // Geometric growth so alternating sizes settle after one warmup pass.
  const std::size_t cap = exact ? n : std::max(n, buf.cap + buf.cap / 2);
  buf.ptr = aligned_alloc_elems<float>(cap);
  buf.cap = cap;
  g_slot_allocs.fetch_add(1, std::memory_order_relaxed);
}

void Workspace::grow(AlignedDBuf& buf, std::size_t n, bool exact) {
  if (buf.ptr != nullptr) aligned_free_elems(buf.ptr);
  const std::size_t cap = exact ? n : std::max(n, buf.cap + buf.cap / 2);
  buf.ptr = aligned_alloc_elems<double>(cap);
  buf.cap = cap;
  g_slot_allocs.fetch_add(1, std::memory_order_relaxed);
}

std::span<float> Workspace::floats(WsSlot slot, std::size_t n) {
  AlignedBuf& buf = slots_[static_cast<std::size_t>(slot)];
  if (!enabled()) {
    grow(buf, n, /*exact=*/true);  // fresh allocation every call ("before")
  } else if (buf.cap < n) {
    grow(buf, n, /*exact=*/false);
  }
  return {buf.ptr, n};
}

std::span<double> Workspace::doubles(WsDSlot slot, std::size_t n) {
  AlignedDBuf& buf = dslots_[static_cast<std::size_t>(slot)];
  if (!enabled()) {
    grow(buf, n, /*exact=*/true);
  } else if (buf.cap < n) {
    grow(buf, n, /*exact=*/false);
  }
  return {buf.ptr, n};
}

std::vector<float> Workspace::acquire_floats(std::size_t n) {
  if (!enabled()) return std::vector<float>(n);
  return pool_take(float_pool_, n);
}

std::vector<std::uint32_t> Workspace::acquire_u32(std::size_t n) {
  if (!enabled()) return std::vector<std::uint32_t>(n);
  return pool_take(u32_pool_, n);
}

void Workspace::release_floats(std::vector<float>&& v) {
  if (enabled()) pool_put(float_pool_, std::move(v));
}

void Workspace::release_u32(std::vector<std::uint32_t>&& v) {
  if (enabled()) pool_put(u32_pool_, std::move(v));
}

void Workspace::ensure_floats(std::vector<float>& v, std::size_t n) {
  if (n <= v.capacity()) {
    v.resize(n);
    return;
  }
  std::vector<float> fresh = acquire_floats(n);
  release_floats(std::move(v));
  v = std::move(fresh);
}

void Workspace::ensure_u32(std::vector<std::uint32_t>& v, std::size_t n) {
  if (n <= v.capacity()) {
    v.resize(n);
    return;
  }
  std::vector<std::uint32_t> fresh = acquire_u32(n);
  release_u32(std::move(v));
  v = std::move(fresh);
}

std::size_t Workspace::bytes_reserved() const {
  std::size_t total = 0;
  for (const auto& s : slots_) total += s.cap * sizeof(float);
  for (const auto& s : dslots_) total += s.cap * sizeof(double);
  return total;
}

void Workspace::set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool Workspace::enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

std::uint64_t Workspace::total_slot_allocs() {
  return g_slot_allocs.load(std::memory_order_relaxed);
}

}  // namespace seafl
