// Operand packing for the tiled GEMM backend.
//
// All four transpose cases are resolved HERE, at pack time: the packed
// layouts are transpose-free, so a single microkernel serves NN/NT/TN/TT.
// Ragged edges are zero-padded up to the register-tile size — padding lanes
// accumulate garbage*0 terms that never touch a real C element's chain, so
// the microkernel needs no tail variants.
#pragma once

#include <cstddef>

#include "tensor/gemm.h"

namespace seafl::detail {

/// op(A)[r, p] for the operated m x k view of a row-major buffer.
inline float a_elem(const float* a, Trans ta, std::size_t m, std::size_t k,
                    std::size_t r, std::size_t p) {
  return ta == Trans::kNo ? a[r * k + p] : a[p * m + r];
}

/// op(B)[p, j] for the operated k x n view of a row-major buffer.
inline float b_elem(const float* b, Trans tb, std::size_t n, std::size_t k,
                    std::size_t p, std::size_t j) {
  return tb == Trans::kNo ? b[p * n + j] : b[j * k + p];
}

/// Packs rows [r0, r0+kMR) x depth [p0, p0+kc) of op(A) into `apack`
/// (p-major: apack[p*kMR + i]); rows at or past `m` are zero-filled.
void pack_a_panel(const float* a, Trans ta, std::size_t m, std::size_t k,
                  std::size_t r0, std::size_t p0, std::size_t kc,
                  float* apack);

/// Packs the full op(B) (k x n) into ceil(n/kNR) column panels:
///   bpack[jp*(k*kNR) + p*kNR + jj] = op(B)[p, jp*kNR + jj]
/// with columns at or past `n` zero-filled. `bpack` must hold
/// ceil(n/kNR)*kNR*k floats.
void pack_b(const float* b, Trans tb, std::size_t n, std::size_t k,
            float* bpack);

}  // namespace seafl::detail
