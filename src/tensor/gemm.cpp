#include "tensor/gemm.h"

#include <vector>

#include "common/error.h"
#include "common/thread_pool.h"
#include "obs/profile.h"

namespace seafl {

namespace {

// Row-block size for parallel partitioning: small enough to balance, large
// enough to amortize task dispatch.
constexpr std::size_t kRowGrain = 16;
// Work (in multiply-adds) below which we stay serial.
constexpr std::size_t kSerialFlops = 1 << 16;

// Computes one row block [r0, r1) of C for the given transposition case.
// Layout reminders (row-major):
//   NN: A is m×k (a[r*k+p]),        B is k×n (b[p*n+j])
//   NT: A is m×k,                   B is n×k (b[j*k+p])
//   TN: A is k×m (a[p*m+r]),        B is k×n
//   TT: A is k×m,                   B is n×k
void block_nn(std::size_t r0, std::size_t r1, std::size_t n, std::size_t k,
              float alpha, const float* a, const float* b, float beta,
              float* c) {
  for (std::size_t r = r0; r < r1; ++r) {
    float* crow = c + r * n;
    if (beta == 0.0f) {
      for (std::size_t j = 0; j < n; ++j) crow[j] = 0.0f;
    } else if (beta != 1.0f) {
      for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
    }
    const float* arow = a + r * k;
    for (std::size_t p = 0; p < k; ++p) {
      const float av = alpha * arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void block_nt(std::size_t r0, std::size_t r1, std::size_t n, std::size_t k,
              float alpha, const float* a, const float* b, float beta,
              float* c) {
  for (std::size_t r = r0; r < r1; ++r) {
    const float* arow = a + r * k;
    float* crow = c + r * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = alpha * acc + (beta == 0.0f ? 0.0f : beta * crow[j]);
    }
  }
}

void block_tn(std::size_t r0, std::size_t r1, std::size_t m, std::size_t n,
              std::size_t k, float alpha, const float* a, const float* b,
              float beta, float* c) {
  for (std::size_t r = r0; r < r1; ++r) {
    float* crow = c + r * n;
    if (beta == 0.0f) {
      for (std::size_t j = 0; j < n; ++j) crow[j] = 0.0f;
    } else if (beta != 1.0f) {
      for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
    }
    for (std::size_t p = 0; p < k; ++p) {
      const float av = alpha * a[p * m + r];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void block_tt(std::size_t r0, std::size_t r1, std::size_t m, std::size_t n,
              std::size_t k, float alpha, const float* a, const float* b,
              float beta, float* c) {
  for (std::size_t r = r0; r < r1; ++r) {
    float* crow = c + r * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += a[p * m + r] * brow[p];
      crow[j] = alpha * acc + (beta == 0.0f ? 0.0f : beta * crow[j]);
    }
  }
}

}  // namespace

void gemm(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
          std::size_t k, float alpha, std::span<const float> a,
          std::span<const float> b, float beta, std::span<float> c) {
  SEAFL_PROF_SCOPE("tensor.gemm");
  if (m == 0 || n == 0) return;  // empty output: nothing to compute or check
  SEAFL_CHECK(a.size() >= m * k, "gemm: A too small (" << a.size() << " < "
                                                        << m * k << ")");
  SEAFL_CHECK(b.size() >= k * n, "gemm: B too small (" << b.size() << " < "
                                                        << k * n << ")");
  SEAFL_CHECK(c.size() >= m * n, "gemm: C too small (" << c.size() << " < "
                                                        << m * n << ")");
  if (k == 0) {
    if (beta == 0.0f) {
      for (std::size_t i = 0; i < m * n; ++i) c[i] = 0.0f;
    } else if (beta != 1.0f) {
      for (std::size_t i = 0; i < m * n; ++i) c[i] *= beta;
    }
    return;
  }

  auto run_block = [&](std::size_t r0, std::size_t r1) {
    if (trans_a == Trans::kNo && trans_b == Trans::kNo)
      block_nn(r0, r1, n, k, alpha, a.data(), b.data(), beta, c.data());
    else if (trans_a == Trans::kNo && trans_b == Trans::kYes)
      block_nt(r0, r1, n, k, alpha, a.data(), b.data(), beta, c.data());
    else if (trans_a == Trans::kYes && trans_b == Trans::kNo)
      block_tn(r0, r1, m, n, k, alpha, a.data(), b.data(), beta, c.data());
    else
      block_tt(r0, r1, m, n, k, alpha, a.data(), b.data(), beta, c.data());
  };

  if (m * n * k <= kSerialFlops) {
    run_block(0, m);
    return;
  }
  parallel_for_chunked(
      0, m, [&](std::size_t lo, std::size_t hi) { run_block(lo, hi); },
      kRowGrain);
}

void matmul(std::size_t m, std::size_t n, std::size_t k,
            std::span<const float> a, std::span<const float> b,
            std::span<float> c) {
  gemm(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a, b, 0.0f, c);
}

}  // namespace seafl
