#include "tensor/gemm.h"

#include <algorithm>
#include <atomic>

#include "common/error.h"
#include "common/thread_pool.h"
#include "obs/profile.h"
#include "tensor/microkernel.h"
#include "tensor/pack.h"
#include "tensor/workspace.h"

namespace seafl {

namespace {

using detail::gemm_store;
using detail::kKC;
using detail::kMR;
using detail::kNR;

// Work (in multiply-adds) below which we stay serial.
constexpr std::size_t kSerialFlops = 1 << 16;

std::atomic<GemmBackend> g_backend{GemmBackend::kTiled};

/// k == 0 / degenerate path: C gets only the epilogue (acc = 0).
void epilogue_only(std::size_t m, std::size_t n, float alpha, float beta,
                   float* c, const GemmEpilogue& epi) {
  for (std::size_t r = 0; r < m; ++r) {
    float* crow = c + r * n;
    for (std::size_t j = 0; j < n; ++j) {
      crow[j] = gemm_store(0.0f, alpha, beta, crow[j], epi.row_bias, r,
                           epi.col_bias, j, epi.relu);
    }
  }
}

/// Computes row panels [plo, phi) against the caller-packed `bpack`. This is
/// the unit of parallel work: each panel zeroes its own accumulator tiles,
/// packs its own A panels into this thread's arena, and writes its C rows
/// exactly once — so the result cannot depend on how panels are grouped
/// into tasks.
void tiled_chunk(Trans ta, std::size_t m, std::size_t n, std::size_t k,
                 float alpha, const float* a, float beta, float* c,
                 const GemmEpilogue& epi, const float* bpack, std::size_t plo,
                 std::size_t phi) {
  static const detail::MicrokernelFn kernel = detail::select_microkernel();
  Workspace& ws = Workspace::tls();
  const std::size_t npanels_n = (n + kNR - 1) / kNR;
  float* acc = ws.floats(WsSlot::kGemmAcc, npanels_n * kMR * kNR).data();
  float* apack =
      ws.floats(WsSlot::kGemmPackA, kMR * std::min(k, kKC)).data();

  for (std::size_t ip = plo; ip < phi; ++ip) {
    const std::size_t r0 = ip * kMR;
    std::fill(acc, acc + npanels_n * kMR * kNR, 0.0f);
    {
      SEAFL_PROF_SCOPE("tensor.microkernel");
      for (std::size_t p0 = 0; p0 < k; p0 += kKC) {
        const std::size_t kc = std::min(kKC, k - p0);
        detail::pack_a_panel(a, ta, m, k, r0, p0, kc, apack);
        for (std::size_t jp = 0; jp < npanels_n; ++jp) {
          kernel(kc, apack, bpack + jp * (k * kNR) + p0 * kNR,
                 acc + jp * (kMR * kNR));
        }
      }
    }
    const std::size_t mrem = std::min(kMR, m - r0);
    for (std::size_t ii = 0; ii < mrem; ++ii) {
      const std::size_t r = r0 + ii;
      for (std::size_t jp = 0; jp < npanels_n; ++jp) {
        const std::size_t j0 = jp * kNR;
        const std::size_t jn = std::min(kNR, n - j0);
        const float* tile = acc + jp * (kMR * kNR) + ii * kNR;
        float* crow = c + r * n + j0;
        for (std::size_t jj = 0; jj < jn; ++jj) {
          crow[jj] = gemm_store(tile[jj], alpha, beta, crow[jj], epi.row_bias,
                                r, epi.col_bias, j0 + jj, epi.relu);
        }
      }
    }
  }
}

/// Packs op(B) into the caller's arena (workers read it; the pool's queue
/// handoff orders the writes before any task runs).
const float* pack_b_shared(Trans tb, std::size_t n, std::size_t k,
                           const float* b) {
  const std::size_t npanels_n = (n + kNR - 1) / kNR;
  float* bpack =
      Workspace::tls().floats(WsSlot::kGemmPackB, npanels_n * kNR * k).data();
  detail::pack_b(b, tb, n, k, bpack);
  return bpack;
}

}  // namespace

GemmBackend gemm_backend() {
  return g_backend.load(std::memory_order_relaxed);
}

void set_gemm_backend(GemmBackend backend) {
  g_backend.store(backend, std::memory_order_relaxed);
}

namespace detail {

void gemm_tiled(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
                std::size_t k, float alpha, const float* a, const float* b,
                float beta, float* c, const GemmEpilogue& epilogue) {
  const float* bpack = pack_b_shared(trans_b, n, k, b);
  const std::size_t panels = (m + kMR - 1) / kMR;
  auto chunk = [&](std::size_t lo, std::size_t hi) {
    tiled_chunk(trans_a, m, n, k, alpha, a, beta, c, epilogue, bpack, lo, hi);
  };
  // Serial-kernel state short-circuits before any std::function forms, so
  // the exp::Runner training path stays allocation-free; results are
  // identical because panels never depend on the partition.
  if (m * n * k <= kSerialFlops || serial_kernels_active()) {
    chunk(0, panels);
    return;
  }
  // Aim for >= ~4M multiply-adds per task so pool dispatch cost stays
  // negligible; any grouping of panels yields bitwise-identical C.
  constexpr std::size_t kTaskMadds = std::size_t{1} << 22;
  const std::size_t panel_madds = std::max<std::size_t>(kMR * n * k, 1);
  const std::size_t grain =
      std::max<std::size_t>(1, kTaskMadds / panel_madds);
  parallel_for_chunked(0, panels, chunk, grain);
}

void gemm_tiled_partitioned(Trans trans_a, Trans trans_b, std::size_t m,
                            std::size_t n, std::size_t k, float alpha,
                            const float* a, const float* b, float beta,
                            float* c, const GemmEpilogue& epilogue,
                            std::span<const std::size_t> panel_splits) {
  const float* bpack = pack_b_shared(trans_b, n, k, b);
  const std::size_t panels = (m + kMR - 1) / kMR;
  std::size_t lo = 0;
  for (std::size_t split : panel_splits) {
    SEAFL_CHECK(split >= lo && split <= panels,
                "gemm_tiled_partitioned: bad split " << split);
    tiled_chunk(trans_a, m, n, k, alpha, a, beta, c, epilogue, bpack, lo,
                split);
    lo = split;
  }
  tiled_chunk(trans_a, m, n, k, alpha, a, beta, c, epilogue, bpack, lo,
              panels);
}

}  // namespace detail

void gemm_ex(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
             std::size_t k, float alpha, std::span<const float> a,
             std::span<const float> b, float beta, std::span<float> c,
             const GemmEpilogue& epilogue) {
  SEAFL_PROF_SCOPE("tensor.gemm");
  if (m == 0 || n == 0) return;  // empty output: nothing to compute or check
  SEAFL_CHECK(c.size() >= m * n, "gemm: C too small (" << c.size() << " < "
                                                        << m * n << ")");
  if (k == 0) {
    epilogue_only(m, n, alpha, beta, c.data(), epilogue);
    return;
  }
  SEAFL_CHECK(a.size() >= m * k, "gemm: A too small (" << a.size() << " < "
                                                        << m * k << ")");
  SEAFL_CHECK(b.size() >= k * n, "gemm: B too small (" << b.size() << " < "
                                                        << k * n << ")");
  if (gemm_backend() == GemmBackend::kReference) {
    detail::gemm_reference(trans_a, trans_b, m, n, k, alpha, a.data(),
                           b.data(), beta, c.data(), epilogue);
  } else {
    detail::gemm_tiled(trans_a, trans_b, m, n, k, alpha, a.data(), b.data(),
                       beta, c.data(), epilogue);
  }
}

void gemm(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
          std::size_t k, float alpha, std::span<const float> a,
          std::span<const float> b, float beta, std::span<float> c) {
  gemm_ex(trans_a, trans_b, m, n, k, alpha, a, b, beta, c, GemmEpilogue{});
}

void matmul(std::size_t m, std::size_t n, std::size_t k,
            std::span<const float> a, std::span<const float> b,
            std::span<float> c) {
  gemm(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a, b, 0.0f, c);
}

}  // namespace seafl
