#include "tensor/pack.h"

#include <algorithm>

#include "obs/profile.h"
#include "tensor/microkernel.h"

namespace seafl::detail {

void pack_a_panel(const float* a, Trans ta, std::size_t m, std::size_t k,
                  std::size_t r0, std::size_t p0, std::size_t kc,
                  float* apack) {
  SEAFL_PROF_SCOPE("tensor.pack");
  const std::size_t mr = std::min(kMR, m - r0);
  if (ta == Trans::kNo) {
    // op(A) rows are contiguous: gather kMR strided row pointers.
    const float* rows[kMR];
    for (std::size_t i = 0; i < mr; ++i) rows[i] = a + (r0 + i) * k + p0;
    for (std::size_t p = 0; p < kc; ++p) {
      float* out = apack + p * kMR;
      for (std::size_t i = 0; i < mr; ++i) out[i] = rows[i][p];
      for (std::size_t i = mr; i < kMR; ++i) out[i] = 0.0f;
    }
  } else {
    // op(A)[r, p] = a[p*m + r]: each p is a contiguous run of rows.
    for (std::size_t p = 0; p < kc; ++p) {
      const float* src = a + (p0 + p) * m + r0;
      float* out = apack + p * kMR;
      for (std::size_t i = 0; i < mr; ++i) out[i] = src[i];
      for (std::size_t i = mr; i < kMR; ++i) out[i] = 0.0f;
    }
  }
}

void pack_b(const float* b, Trans tb, std::size_t n, std::size_t k,
            float* bpack) {
  SEAFL_PROF_SCOPE("tensor.pack");
  const std::size_t npanels = (n + kNR - 1) / kNR;
  for (std::size_t jp = 0; jp < npanels; ++jp) {
    const std::size_t j0 = jp * kNR;
    const std::size_t jn = std::min(kNR, n - j0);
    float* panel = bpack + jp * (k * kNR);
    if (tb == Trans::kNo) {
      // op(B) rows contiguous: copy kNR-wide stripes row by row.
      for (std::size_t p = 0; p < k; ++p) {
        const float* src = b + p * n + j0;
        float* out = panel + p * kNR;
        for (std::size_t jj = 0; jj < jn; ++jj) out[jj] = src[jj];
        for (std::size_t jj = jn; jj < kNR; ++jj) out[jj] = 0.0f;
      }
    } else {
      // op(B)[p, j] = b[j*k + p]: walk each source column contiguously.
      for (std::size_t jj = 0; jj < jn; ++jj) {
        const float* src = b + (j0 + jj) * k;
        for (std::size_t p = 0; p < k; ++p) panel[p * kNR + jj] = src[p];
      }
      for (std::size_t jj = jn; jj < kNR; ++jj) {
        for (std::size_t p = 0; p < k; ++p) panel[p * kNR + jj] = 0.0f;
      }
    }
  }
}

}  // namespace seafl::detail
