// Runtime-dispatched SIMD variants of the GEMM microkernel.
//
// The portable microkernel in microkernel.h compiles against the build's
// baseline ISA (plain x86-64 => SSE2). This translation unit additionally
// compiles an AVX2 variant with a per-function target attribute and picks
// between them once at startup with __builtin_cpu_supports, so the same
// binary runs everywhere and uses 8-wide ymm arithmetic where available.
//
// Determinism: the AVX2 kernel is bitwise identical to the portable one.
// Each vector lane is a distinct C element; within a lane the accumulation
// is the same strictly ascending-p chain of IEEE single-precision multiply
// then add. The function target is "avx2" WITHOUT "fma", so the compiler
// cannot contract the explicit _mm256_mul_ps/_mm256_add_ps pair into a
// fused multiply-add (under SEAFL_NATIVE=-march=native the whole build is
// FMA-enabled and the usual native-build caveat from microkernel.h applies).

#include "tensor/microkernel.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SEAFL_HAVE_X86_DISPATCH 1
#include <immintrin.h>
#endif

namespace seafl::detail {

#if defined(SEAFL_HAVE_X86_DISPATCH)

static_assert(kMR == 4 && kNR == 8,
              "microkernel_avx2 hard-codes a 4x8 register tile");

__attribute__((target("avx2"))) static void microkernel_avx2(
    std::size_t kc, const float* SEAFL_RESTRICT apanel,
    const float* SEAFL_RESTRICT bpanel, float* SEAFL_RESTRICT acc) {
  __m256 r0 = _mm256_loadu_ps(acc + 0 * kNR);
  __m256 r1 = _mm256_loadu_ps(acc + 1 * kNR);
  __m256 r2 = _mm256_loadu_ps(acc + 2 * kNR);
  __m256 r3 = _mm256_loadu_ps(acc + 3 * kNR);
  for (std::size_t p = 0; p < kc; ++p) {
    const __m256 bv = _mm256_loadu_ps(bpanel + p * kNR);
    const float* SEAFL_RESTRICT ap = apanel + p * kMR;
    r0 = _mm256_add_ps(r0, _mm256_mul_ps(_mm256_broadcast_ss(ap + 0), bv));
    r1 = _mm256_add_ps(r1, _mm256_mul_ps(_mm256_broadcast_ss(ap + 1), bv));
    r2 = _mm256_add_ps(r2, _mm256_mul_ps(_mm256_broadcast_ss(ap + 2), bv));
    r3 = _mm256_add_ps(r3, _mm256_mul_ps(_mm256_broadcast_ss(ap + 3), bv));
  }
  _mm256_storeu_ps(acc + 0 * kNR, r0);
  _mm256_storeu_ps(acc + 1 * kNR, r1);
  _mm256_storeu_ps(acc + 2 * kNR, r2);
  _mm256_storeu_ps(acc + 3 * kNR, r3);
}

MicrokernelFn select_microkernel() {
  if (__builtin_cpu_supports("avx2")) return &microkernel_avx2;
  return &microkernel;
}

const char* microkernel_name() {
  return __builtin_cpu_supports("avx2") ? "avx2" : "portable";
}

#else  // !defined(SEAFL_HAVE_X86_DISPATCH)

MicrokernelFn select_microkernel() { return &microkernel; }

const char* microkernel_name() { return "portable"; }

#endif

}  // namespace seafl::detail
