#include "tensor/ops.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/thread_pool.h"
#include "tensor/ops_kernels.h"
#include "tensor/workspace.h"

namespace seafl {

namespace {
// Below this size the scheduling cost of parallel_for exceeds the work.
constexpr std::size_t kParallelThreshold = 1 << 15;

// Reduction block size. Partial sums are computed per fixed-size block and
// combined in index order, so block boundaries depend only on input length.
constexpr std::size_t kReduceBlock = 1 << 13;

std::atomic<VectorBackend> g_vector_backend{VectorBackend::kSimd};

const detail::OpsKernels& active_kernels() {
  return vector_backend() == VectorBackend::kSimd
             ? detail::simd_ops_kernels()
             : detail::scalar_ops_kernels();
}

void check_same_size(std::span<const float> a, std::span<const float> b) {
  SEAFL_CHECK(a.size() == b.size(),
              "span size mismatch: " << a.size() << " vs " << b.size());
}

// One dispatch point for every elementwise kernel: runs body(lo, hi) over
// [0, n), serially when small, chunked across the global pool otherwise.
// Results are thread-count independent because each index is written by
// exactly one chunk. When kernels are serial (pool worker / SerialKernel-
// Scope) the body runs directly — identical results, and no std::function
// materializes, keeping the training hot path allocation-free.
template <typename Body>
void chunked_apply(std::size_t n, Body&& body) {
  if (n < kParallelThreshold || serial_kernels_active()) {
    body(std::size_t{0}, n);
    return;
  }
  parallel_for_chunked(0, n, std::forward<Body>(body));
}

// Deterministic blocked reduction: block_fn(blk) yields the partial for one
// kReduceBlock-sized block; partials are folded in index order. Block
// boundaries depend only on the input length — never on the worker count or
// whether kernels run serially — so the result is bit-identical across any
// pool size. The pooled path parks partials in the workspace arena
// (WsDSlot::kOpsPartials): workers write disjoint indices and the
// parallel_for barrier orders those writes before the fold.
template <typename BlockFn>
double blocked_reduce(std::size_t n, BlockFn&& block_fn) {
  const std::size_t num_blocks = (n + kReduceBlock - 1) / kReduceBlock;
  if (n < kParallelThreshold || serial_kernels_active()) {
    double total = 0.0;
    for (std::size_t blk = 0; blk < num_blocks; ++blk) total += block_fn(blk);
    return total;
  }
  std::span<double> partials =
      Workspace::tls().doubles(WsDSlot::kOpsPartials, num_blocks);
  parallel_for(0, num_blocks,
               [&](std::size_t blk) { partials[blk] = block_fn(blk); },
               /*grain=*/1);
  double total = 0.0;
  for (std::size_t blk = 0; blk < num_blocks; ++blk) total += partials[blk];
  return total;
}
}  // namespace

// ---- portable kernel table --------------------------------------------------

namespace detail {
namespace {

void add_scalar(float* y, const float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += x[i];
}

void sub_scalar(float* y, const float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] -= x[i];
}

void scale_scalar(float* y, float s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] *= s;
}

void axpy_scalar(float* y, float a, const float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void axpby_scalar(float* y, float a, const float* x, float b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = a * x[i] + b * y[i];
}

void add_to_scalar(float* out, const float* a, const float* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void sub_to_scalar(float* out, const float* a, const float* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

// Lane-strided reference order (ops_kernels.h): element at offset j accrues
// to lane (j & 7); lanes fold sequentially at the end. The AVX2 table keeps
// lanes 0..3 / 4..7 in two __m256d registers and lands on the same bits.
double dot_block_scalar(const float* a, const float* b, std::size_t n) {
  double lanes[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i)
    lanes[i & 7] += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  double total = 0.0;
  for (int l = 0; l < 8; ++l) total += lanes[l];
  return total;
}

double sum_block_scalar(const float* a, std::size_t n) {
  double lanes[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i)
    lanes[i & 7] += static_cast<double>(a[i]);
  double total = 0.0;
  for (int l = 0; l < 8; ++l) total += lanes[l];
  return total;
}

// Max is order-free, so no lane contract is needed; both tables ignore NaN
// elements (std::max keeps the accumulator when the candidate is NaN, and
// the AVX2 kernel places the candidate first so maxps returns the
// accumulator on NaN).
float max_abs_scalar(const float* a, std::size_t n) {
  float m = 0.0f;
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::fabs(a[i]));
  return m;
}

}  // namespace

const OpsKernels& scalar_ops_kernels() {
  static constexpr OpsKernels k = {
      add_scalar,    sub_scalar,    scale_scalar,
      axpy_scalar,   axpby_scalar,  add_to_scalar,
      sub_to_scalar, dot_block_scalar, sum_block_scalar,
      max_abs_scalar,
  };
  return k;
}

}  // namespace detail

// ---- backend selection ------------------------------------------------------

VectorBackend vector_backend() {
  return g_vector_backend.load(std::memory_order_relaxed);
}

void set_vector_backend(VectorBackend backend) {
  g_vector_backend.store(backend, std::memory_order_relaxed);
}

bool simd_vector_available() { return detail::ops_simd_available(); }

const char* vector_backend_name() {
  return (vector_backend() == VectorBackend::kSimd &&
          detail::ops_simd_available())
             ? "avx2"
             : "scalar";
}

// ---- public kernels ---------------------------------------------------------

void add_inplace(std::span<float> y, std::span<const float> x) {
  check_same_size(y, x);
  const detail::OpsKernels& k = active_kernels();
  chunked_apply(y.size(), [&](std::size_t lo, std::size_t hi) {
    k.add(y.data() + lo, x.data() + lo, hi - lo);
  });
}

void sub_inplace(std::span<float> y, std::span<const float> x) {
  check_same_size(y, x);
  const detail::OpsKernels& k = active_kernels();
  chunked_apply(y.size(), [&](std::size_t lo, std::size_t hi) {
    k.sub(y.data() + lo, x.data() + lo, hi - lo);
  });
}

void scale_inplace(std::span<float> y, float s) {
  const detail::OpsKernels& k = active_kernels();
  chunked_apply(y.size(), [&](std::size_t lo, std::size_t hi) {
    k.scale(y.data() + lo, s, hi - lo);
  });
}

void axpy(std::span<float> y, float a, std::span<const float> x) {
  check_same_size(y, x);
  const detail::OpsKernels& k = active_kernels();
  chunked_apply(y.size(), [&](std::size_t lo, std::size_t hi) {
    k.axpy(y.data() + lo, a, x.data() + lo, hi - lo);
  });
}

void axpby(std::span<float> y, float a, std::span<const float> x, float b) {
  check_same_size(y, x);
  const detail::OpsKernels& k = active_kernels();
  chunked_apply(y.size(), [&](std::size_t lo, std::size_t hi) {
    k.axpby(y.data() + lo, a, x.data() + lo, b, hi - lo);
  });
}

void relu_inplace(std::span<float> y) {
  chunked_apply(y.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) y[i] = y[i] > 0.0f ? y[i] : 0.0f;
  });
}

void relu_backward_inplace(std::span<float> dy, std::span<const float> x) {
  check_same_size(dy, x);
  chunked_apply(dy.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      if (x[i] <= 0.0f) dy[i] = 0.0f;
    }
  });
}

void add_to(std::span<float> out, std::span<const float> a,
            std::span<const float> b) {
  check_same_size(out, a);
  check_same_size(a, b);
  const detail::OpsKernels& k = active_kernels();
  chunked_apply(out.size(), [&](std::size_t lo, std::size_t hi) {
    k.add_to(out.data() + lo, a.data() + lo, b.data() + lo, hi - lo);
  });
}

void sub_to(std::span<float> out, std::span<const float> a,
            std::span<const float> b) {
  check_same_size(out, a);
  check_same_size(a, b);
  const detail::OpsKernels& k = active_kernels();
  chunked_apply(out.size(), [&](std::size_t lo, std::size_t hi) {
    k.sub_to(out.data() + lo, a.data() + lo, b.data() + lo, hi - lo);
  });
}

double dot(std::span<const float> a, std::span<const float> b) {
  check_same_size(a, b);
  const detail::OpsKernels& k = active_kernels();
  return blocked_reduce(a.size(), [&](std::size_t blk) {
    const std::size_t lo = blk * kReduceBlock;
    const std::size_t hi = std::min(a.size(), lo + kReduceBlock);
    return k.dot_block(a.data() + lo, b.data() + lo, hi - lo);
  });
}

double l2_norm(std::span<const float> a) { return std::sqrt(dot(a, a)); }

double sum(std::span<const float> a) {
  const detail::OpsKernels& k = active_kernels();
  return blocked_reduce(a.size(), [&](std::size_t blk) {
    const std::size_t lo = blk * kReduceBlock;
    const std::size_t hi = std::min(a.size(), lo + kReduceBlock);
    return k.sum_block(a.data() + lo, hi - lo);
  });
}

float max_value(std::span<const float> a) {
  SEAFL_CHECK(!a.empty(), "max_value of empty span");
  return *std::max_element(a.begin(), a.end());
}

std::size_t argmax(std::span<const float> a) {
  SEAFL_CHECK(!a.empty(), "argmax of empty span");
  return static_cast<std::size_t>(
      std::max_element(a.begin(), a.end()) - a.begin());
}

double max_abs(std::span<const float> a) {
  // Order-free reduction: a single serial scan through the active table (the
  // AVX2 kernel makes this memory-bound even single-threaded).
  const detail::OpsKernels& k = active_kernels();
  return static_cast<double>(k.max_abs(a.data(), a.size()));
}

double cosine_similarity(std::span<const float> a, std::span<const float> b) {
  check_same_size(a, b);
  const double na = l2_norm(a);
  const double nb = l2_norm(b);
  constexpr double kEps = 1e-12;
  if (na < kEps || nb < kEps) return 0.0;
  const double c = dot(a, b) / (na * nb);
  if (!std::isfinite(c)) return 0.0;  // inf/NaN inputs (diverged models)
  return std::clamp(c, -1.0, 1.0);
}

void softmax_rows(std::span<const float> in, std::span<float> out,
                  std::size_t rows, std::size_t cols) {
  SEAFL_CHECK(in.size() == rows * cols && out.size() == rows * cols,
              "softmax_rows: size mismatch");
  for (std::size_t r = 0; r < rows; ++r) {
    const float* x = in.data() + r * cols;
    float* y = out.data() + r * cols;
    float mx = x[0];
    for (std::size_t c = 1; c < cols; ++c) mx = std::max(mx, x[c]);
    double total = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      y[c] = std::exp(x[c] - mx);
      total += y[c];
    }
    const float inv = static_cast<float>(1.0 / total);
    for (std::size_t c = 0; c < cols; ++c) y[c] *= inv;
  }
}

}  // namespace seafl
