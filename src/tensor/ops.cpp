#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/thread_pool.h"

namespace seafl {

namespace {
// Below this size the scheduling cost of parallel_for exceeds the work.
constexpr std::size_t kParallelThreshold = 1 << 15;

void check_same_size(std::span<const float> a, std::span<const float> b) {
  SEAFL_CHECK(a.size() == b.size(),
              "span size mismatch: " << a.size() << " vs " << b.size());
}

// One dispatch point for every elementwise kernel: runs body(lo, hi) over
// [0, n), serially when small, chunked across the global pool otherwise.
// Results are thread-count independent because each index is written by
// exactly one chunk. When kernels are serial (pool worker / SerialKernel-
// Scope) the body runs directly — identical results, and no std::function
// materializes, keeping the training hot path allocation-free.
template <typename Body>
void chunked_apply(std::size_t n, Body&& body) {
  if (n < kParallelThreshold || serial_kernels_active()) {
    body(std::size_t{0}, n);
    return;
  }
  parallel_for_chunked(0, n, std::forward<Body>(body));
}
}  // namespace

void add_inplace(std::span<float> y, std::span<const float> x) {
  check_same_size(y, x);
  chunked_apply(y.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) y[i] += x[i];
  });
}

void sub_inplace(std::span<float> y, std::span<const float> x) {
  check_same_size(y, x);
  chunked_apply(y.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) y[i] -= x[i];
  });
}

void scale_inplace(std::span<float> y, float s) {
  chunked_apply(y.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) y[i] *= s;
  });
}

void axpy(std::span<float> y, float a, std::span<const float> x) {
  check_same_size(y, x);
  chunked_apply(y.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) y[i] += a * x[i];
  });
}

void axpby(std::span<float> y, float a, std::span<const float> x, float b) {
  check_same_size(y, x);
  chunked_apply(y.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) y[i] = a * x[i] + b * y[i];
  });
}

void relu_inplace(std::span<float> y) {
  chunked_apply(y.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) y[i] = y[i] > 0.0f ? y[i] : 0.0f;
  });
}

void relu_backward_inplace(std::span<float> dy, std::span<const float> x) {
  check_same_size(dy, x);
  chunked_apply(dy.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      if (x[i] <= 0.0f) dy[i] = 0.0f;
    }
  });
}

double dot(std::span<const float> a, std::span<const float> b) {
  check_same_size(a, b);
  if (a.size() < kParallelThreshold) {
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
      acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    return acc;
  }
  // Deterministic reduction: partial sums over *fixed-size* blocks combined
  // in index order. Block boundaries depend only on the input length — never
  // on the worker count or whether kernels are running serially — so the
  // result is bit-identical across any pool size (the experiment runner's
  // parallel-vs-serial equality guarantee rests on this).
  constexpr std::size_t kBlock = 1 << 13;
  const std::size_t num_blocks = (a.size() + kBlock - 1) / kBlock;
  if (serial_kernels_active()) {
    // Same block structure, folded in index order — bitwise-equal to the
    // pooled path with zero allocations.
    double total = 0.0;
    for (std::size_t blk = 0; blk < num_blocks; ++blk) {
      const std::size_t lo = blk * kBlock;
      const std::size_t hi = std::min(a.size(), lo + kBlock);
      double acc = 0.0;
      for (std::size_t i = lo; i < hi; ++i)
        acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
      total += acc;
    }
    return total;
  }
  std::vector<double> partials(num_blocks, 0.0);
  parallel_for(0, num_blocks, [&](std::size_t blk) {
    const std::size_t lo = blk * kBlock;
    const std::size_t hi = std::min(a.size(), lo + kBlock);
    double acc = 0.0;
    for (std::size_t i = lo; i < hi; ++i)
      acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    partials[blk] = acc;
  }, /*grain=*/1);
  double total = 0.0;
  for (const double acc : partials) total += acc;
  return total;
}

double l2_norm(std::span<const float> a) { return std::sqrt(dot(a, a)); }

double sum(std::span<const float> a) {
  double acc = 0.0;
  for (float v : a) acc += v;
  return acc;
}

float max_value(std::span<const float> a) {
  SEAFL_CHECK(!a.empty(), "max_value of empty span");
  return *std::max_element(a.begin(), a.end());
}

std::size_t argmax(std::span<const float> a) {
  SEAFL_CHECK(!a.empty(), "argmax of empty span");
  return static_cast<std::size_t>(
      std::max_element(a.begin(), a.end()) - a.begin());
}

double cosine_similarity(std::span<const float> a, std::span<const float> b) {
  check_same_size(a, b);
  const double na = l2_norm(a);
  const double nb = l2_norm(b);
  constexpr double kEps = 1e-12;
  if (na < kEps || nb < kEps) return 0.0;
  const double c = dot(a, b) / (na * nb);
  if (!std::isfinite(c)) return 0.0;  // inf/NaN inputs (diverged models)
  return std::clamp(c, -1.0, 1.0);
}

void softmax_rows(std::span<const float> in, std::span<float> out,
                  std::size_t rows, std::size_t cols) {
  SEAFL_CHECK(in.size() == rows * cols && out.size() == rows * cols,
              "softmax_rows: size mismatch");
  for (std::size_t r = 0; r < rows; ++r) {
    const float* x = in.data() + r * cols;
    float* y = out.data() + r * cols;
    float mx = x[0];
    for (std::size_t c = 1; c < cols; ++c) mx = std::max(mx, x[c]);
    double total = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      y[c] = std::exp(x[c] - mx);
      total += y[c];
    }
    const float inv = static_cast<float>(1.0 / total);
    for (std::size_t c = 0; c < cols; ++c) y[c] *= inv;
  }
}

}  // namespace seafl
