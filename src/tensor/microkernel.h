// The register-tiled GEMM microkernel and the shared C-store epilogue.
//
// Determinism contract (DESIGN.md §11): for every output element C[r,j],
// both GEMM backends compute
//
//   acc  = sum over p ascending of op(A)[r,p] * op(B)[p,j]   (float chain)
//   C    = alpha*acc [+ beta*C] [+ row_bias[r]] [+ col_bias[j]] [relu]
//
// as ONE float addition chain in strictly ascending k order, with the scalar
// epilogue applied through the single `gemm_store` definition below. Because
// the chain never depends on how rows are partitioned across tasks, results
// are bitwise identical at any thread count, and the tiled and reference
// backends agree bitwise whenever the compiler does not contract mul+add
// into FMA (i.e. on any non-FMA target; under -march=native with FMA the
// backends may differ by final-rounding ULPs — the parity tests encode
// exactly this rule).
#pragma once

#include <cstddef>

#if defined(__GNUC__) || defined(__clang__)
#define SEAFL_RESTRICT __restrict__
#else
#define SEAFL_RESTRICT
#endif

namespace seafl::detail {

/// Register-tile rows: how many C rows one microkernel invocation owns.
inline constexpr std::size_t kMR = 4;
/// Register-tile columns: SIMD lanes the compiler vectorizes over.
inline constexpr std::size_t kNR = 8;
/// K-panel depth: packed A panels are at most kMR*kKC floats (4 KiB) so the
/// panel stays L1-resident while it is swept across every column panel.
inline constexpr std::size_t kKC = 256;

/// The one C-store expression shared by every backend (see header comment).
inline float gemm_store(float acc, float alpha, float beta, float c_old,
                        const float* row_bias, std::size_t r,
                        const float* col_bias, std::size_t j, bool relu) {
  float v = alpha * acc;
  if (beta != 0.0f) v += beta * c_old;
  if (row_bias != nullptr) v += row_bias[r];
  if (col_bias != nullptr) v += col_bias[j];
  if (relu) v = v > 0.0f ? v : 0.0f;
  return v;
}

/// One register tile: acc[kMR][kNR] += A-panel x B-panel over `kc` steps.
///
///   apanel: kc x kMR, p-major (apanel[p*kMR + i] = op(A)[r0+i, p0+p])
///   bpanel: kc x kNR, p-major (bpanel[p*kNR + j] = op(B)[p0+p, j0+j])
///   acc:    kMR*kNR running tile, loaded and stored so accumulation can
///           resume across K panels without breaking the addition chain
///           (a float round-trips through memory exactly).
///
/// The p loop is strictly sequential; the compiler vectorizes the kNR inner
/// loop (distinct accumulator lanes), which never reassociates any single
/// element's chain.
inline void microkernel(std::size_t kc, const float* SEAFL_RESTRICT apanel,
                        const float* SEAFL_RESTRICT bpanel,
                        float* SEAFL_RESTRICT acc) {
  float r[kMR * kNR];
  for (std::size_t i = 0; i < kMR * kNR; ++i) r[i] = acc[i];
  for (std::size_t p = 0; p < kc; ++p) {
    const float* SEAFL_RESTRICT ap = apanel + p * kMR;
    const float* SEAFL_RESTRICT bp = bpanel + p * kNR;
    for (std::size_t i = 0; i < kMR; ++i) {
      const float av = ap[i];
      for (std::size_t j = 0; j < kNR; ++j) r[i * kNR + j] += av * bp[j];
    }
  }
  for (std::size_t i = 0; i < kMR * kNR; ++i) acc[i] = r[i];
}

/// Signature shared by the portable microkernel and its SIMD variants.
using MicrokernelFn = void (*)(std::size_t, const float* SEAFL_RESTRICT,
                               const float* SEAFL_RESTRICT,
                               float* SEAFL_RESTRICT);

/// Picks the fastest microkernel the running CPU supports (currently the
/// AVX2 variant on capable x86-64 hosts, else the portable kernel above).
/// Every variant computes the identical ascending-p addition chain per
/// element with separate multiply and add instructions, so the choice never
/// changes results bitwise. Defined in microkernel_simd.cpp.
MicrokernelFn select_microkernel();

/// "avx2" or "portable" — recorded in benchmark JSON for reproducibility.
const char* microkernel_name();

}  // namespace seafl::detail
