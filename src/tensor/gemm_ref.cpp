// Reference GEMM backend: the retained row-loop kernel.
//
// Serves three roles: the parity oracle for the tiled backend (identical
// per-element addition chains, see microkernel.h), the recorded performance
// baseline for bench/micro_tensor, and a fallback selectable at runtime via
// set_gemm_backend(). Structure follows the pre-tiling kernel: row-parallel
// over the pool, contiguous inner loops per transpose case — minus the
// per-term zero-skip branches, which are hoisted out entirely (they cost a
// branch per k step on dense data and perturb the addition chain when a
// zero coincides with a -0.0 accumulator).
#include <algorithm>

#include "common/thread_pool.h"
#include "tensor/gemm.h"
#include "tensor/microkernel.h"
#include "tensor/pack.h"

namespace seafl::detail {

namespace {

// Row-block size for parallel partitioning: small enough to balance, large
// enough to amortize task dispatch.
constexpr std::size_t kRowGrain = 16;
// Work (in multiply-adds) below which we stay serial.
constexpr std::size_t kSerialFlops = 1 << 16;
// Column-strip width: row accumulators live in this stack buffer so the
// inner loops write registers/L1 instead of striding over C.
constexpr std::size_t kJTile = 128;

void ref_rows(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k,
              float alpha, const float* a, const float* b, float beta,
              float* c, const GemmEpilogue& epi, std::size_t r0,
              std::size_t r1) {
  float acc[kJTile];
  for (std::size_t r = r0; r < r1; ++r) {
    float* crow = c + r * n;
    for (std::size_t j0 = 0; j0 < n; j0 += kJTile) {
      const std::size_t jn = std::min(kJTile, n - j0);
      if (tb == Trans::kNo) {
        // op(B) rows contiguous: p-outer, strip accumulators (NN / TN).
        std::fill(acc, acc + jn, 0.0f);
        for (std::size_t p = 0; p < k; ++p) {
          const float av = a_elem(a, ta, m, k, r, p);
          const float* brow = b + p * n + j0;
          for (std::size_t jj = 0; jj < jn; ++jj) acc[jj] += av * brow[jj];
        }
      } else {
        // op(B) columns contiguous: j-outer dot products (NT / TT).
        for (std::size_t jj = 0; jj < jn; ++jj) {
          const float* bcol = b + (j0 + jj) * k;
          float s = 0.0f;
          if (ta == Trans::kNo) {
            const float* arow = a + r * k;
            for (std::size_t p = 0; p < k; ++p) s += arow[p] * bcol[p];
          } else {
            for (std::size_t p = 0; p < k; ++p) s += a[p * m + r] * bcol[p];
          }
          acc[jj] = s;
        }
      }
      for (std::size_t jj = 0; jj < jn; ++jj) {
        crow[j0 + jj] =
            gemm_store(acc[jj], alpha, beta, crow[j0 + jj], epi.row_bias, r,
                       epi.col_bias, j0 + jj, epi.relu);
      }
    }
  }
}

}  // namespace

void gemm_reference(Trans trans_a, Trans trans_b, std::size_t m,
                    std::size_t n, std::size_t k, float alpha, const float* a,
                    const float* b, float beta, float* c,
                    const GemmEpilogue& epilogue) {
  auto rows = [&](std::size_t lo, std::size_t hi) {
    ref_rows(trans_a, trans_b, m, n, k, alpha, a, b, beta, c, epilogue, lo,
             hi);
  };
  if (m * n * k <= kSerialFlops || serial_kernels_active()) {
    rows(0, m);
    return;
  }
  parallel_for_chunked(0, m, rows, kRowGrain);
}

}  // namespace seafl::detail
