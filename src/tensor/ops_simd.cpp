// AVX2 implementations of the ops kernel table (ops_kernels.h), following
// the microkernel_simd.cpp dispatch idiom: compiled with
// __attribute__((target("avx2"))) — deliberately WITHOUT "fma", so the
// compiler cannot contract the separate multiply and add below into a fused
// operation. That keeps every elementwise kernel bitwise-equal to the
// portable table, and lets the block reductions land on exactly the
// lane-strided reference order (lane j&7, folded lane0..lane7).
//
// Selection is a one-time __builtin_cpu_supports("avx2") check; on other
// hosts (or non-x86 builds) simd_ops_kernels() aliases the scalar table.
#include <algorithm>
#include <cmath>
#include <cstddef>

#include "tensor/ops_kernels.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SEAFL_OPS_HAVE_X86_DISPATCH 1
#include <immintrin.h>
#else
#define SEAFL_OPS_HAVE_X86_DISPATCH 0
#endif

namespace seafl::detail {

#if SEAFL_OPS_HAVE_X86_DISPATCH

namespace {

__attribute__((target("avx2"))) void add_avx2(float* y, const float* x,
                                              std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

__attribute__((target("avx2"))) void sub_avx2(float* y, const float* x,
                                              std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_sub_ps(_mm256_loadu_ps(y + i), _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] -= x[i];
}

__attribute__((target("avx2"))) void scale_avx2(float* y, float s,
                                                std::size_t n) {
  const __m256 sv = _mm256_set1_ps(s);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_mul_ps(_mm256_loadu_ps(y + i), sv));
  }
  for (; i < n; ++i) y[i] *= s;
}

__attribute__((target("avx2"))) void axpy_avx2(float* y, float a,
                                               const float* x, std::size_t n) {
  const __m256 av = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 prod = _mm256_mul_ps(av, _mm256_loadu_ps(x + i));
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), prod));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

__attribute__((target("avx2"))) void axpby_avx2(float* y, float a,
                                                const float* x, float b,
                                                std::size_t n) {
  const __m256 av = _mm256_set1_ps(a);
  const __m256 bv = _mm256_set1_ps(b);
  std::size_t i = 0;
  // Both loads precede the store, so exact aliasing (x == y) is safe.
  for (; i + 8 <= n; i += 8) {
    const __m256 ax = _mm256_mul_ps(av, _mm256_loadu_ps(x + i));
    const __m256 by = _mm256_mul_ps(bv, _mm256_loadu_ps(y + i));
    _mm256_storeu_ps(y + i, _mm256_add_ps(ax, by));
  }
  for (; i < n; ++i) y[i] = a * x[i] + b * y[i];
}

__attribute__((target("avx2"))) void add_to_avx2(float* out, const float* a,
                                                 const float* b,
                                                 std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_loadu_ps(a + i),
                                            _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

__attribute__((target("avx2"))) void sub_to_avx2(float* out, const float* a,
                                                 const float* b,
                                                 std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_sub_ps(_mm256_loadu_ps(a + i),
                                            _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

// acc0 holds lanes 0..3, acc1 lanes 4..7 of the lane-strided reference
// order: element at offset j accrues to lane (j & 7) in ascending j, lanes
// folded 0..7 at the end — bit-for-bit what dot_block_scalar computes. The
// scalar tail starts at a multiple of 8, so (i & 7) lands in the same lane
// the vector loop would have used.
__attribute__((target("avx2"))) double dot_block_avx2(const float* a,
                                                      const float* b,
                                                      std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 av = _mm256_loadu_ps(a + i);
    const __m256 bv = _mm256_loadu_ps(b + i);
    const __m256d alo = _mm256_cvtps_pd(_mm256_castps256_ps128(av));
    const __m256d blo = _mm256_cvtps_pd(_mm256_castps256_ps128(bv));
    const __m256d ahi = _mm256_cvtps_pd(_mm256_extractf128_ps(av, 1));
    const __m256d bhi = _mm256_cvtps_pd(_mm256_extractf128_ps(bv, 1));
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(alo, blo));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(ahi, bhi));
  }
  alignas(32) double lanes[8];
  _mm256_store_pd(lanes, acc0);
  _mm256_store_pd(lanes + 4, acc1);
  for (; i < n; ++i)
    lanes[i & 7] += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  double total = 0.0;
  for (int l = 0; l < 8; ++l) total += lanes[l];
  return total;
}

__attribute__((target("avx2"))) double sum_block_avx2(const float* a,
                                                      std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 av = _mm256_loadu_ps(a + i);
    acc0 = _mm256_add_pd(acc0, _mm256_cvtps_pd(_mm256_castps256_ps128(av)));
    acc1 = _mm256_add_pd(acc1, _mm256_cvtps_pd(_mm256_extractf128_ps(av, 1)));
  }
  alignas(32) double lanes[8];
  _mm256_store_pd(lanes, acc0);
  _mm256_store_pd(lanes + 4, acc1);
  for (; i < n; ++i) lanes[i & 7] += static_cast<double>(a[i]);
  double total = 0.0;
  for (int l = 0; l < 8; ++l) total += lanes[l];
  return total;
}

__attribute__((target("avx2"))) float max_abs_avx2(const float* a,
                                                   std::size_t n) {
  const __m256 sign_mask = _mm256_set1_ps(-0.0f);
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_andnot_ps(sign_mask, _mm256_loadu_ps(a + i));
    // Candidate first: maxps returns the SECOND operand when either is NaN,
    // so a NaN element leaves the accumulator untouched — matching the
    // scalar table's std::max(acc, fabs(v)) semantics.
    acc = _mm256_max_ps(v, acc);
  }
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  float m = 0.0f;
  for (int l = 0; l < 8; ++l) m = std::max(m, lanes[l]);
  for (; i < n; ++i) m = std::max(m, std::fabs(a[i]));
  return m;
}

const OpsKernels kAvx2Kernels = {
    add_avx2,    sub_avx2,    scale_avx2,     axpy_avx2,      axpby_avx2,
    add_to_avx2, sub_to_avx2, dot_block_avx2, sum_block_avx2, max_abs_avx2,
};

bool cpu_has_avx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}

}  // namespace

const OpsKernels& simd_ops_kernels() {
  return cpu_has_avx2() ? kAvx2Kernels : scalar_ops_kernels();
}

bool ops_simd_available() { return cpu_has_avx2(); }

#else  // !SEAFL_OPS_HAVE_X86_DISPATCH

const OpsKernels& simd_ops_kernels() { return scalar_ops_kernels(); }

bool ops_simd_available() { return false; }

#endif

}  // namespace seafl::detail
