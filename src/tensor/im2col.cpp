#include "tensor/im2col.h"

#include "common/error.h"
#include "obs/profile.h"

namespace seafl {

void im2col(const ConvGeom& g, std::span<const float> image,
            std::span<float> cols) {
  SEAFL_PROF_SCOPE("tensor.im2col");
  SEAFL_CHECK(image.size() >= g.channels * g.height * g.width,
              "im2col: image buffer too small");
  SEAFL_CHECK(cols.size() >= g.col_rows() * g.col_cols(),
              "im2col: column buffer too small");
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  const std::size_t col_cols = oh * ow;
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.channels; ++c) {
    const float* chan = image.data() + c * g.height * g.width;
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        float* out = cols.data() + row * col_cols;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          // Signed arithmetic: padding can push source coords negative.
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * g.stride + kh) -
              static_cast<std::ptrdiff_t>(g.pad);
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * g.stride + kw) -
                static_cast<std::ptrdiff_t>(g.pad);
            float v = 0.0f;
            if (iy >= 0 && iy < static_cast<std::ptrdiff_t>(g.height) &&
                ix >= 0 && ix < static_cast<std::ptrdiff_t>(g.width)) {
              v = chan[static_cast<std::size_t>(iy) * g.width +
                       static_cast<std::size_t>(ix)];
            }
            out[oy * ow + ox] = v;
          }
        }
      }
    }
  }
}

void col2im(const ConvGeom& g, std::span<const float> cols,
            std::span<float> image_grad) {
  SEAFL_PROF_SCOPE("tensor.col2im");
  SEAFL_CHECK(image_grad.size() >= g.channels * g.height * g.width,
              "col2im: image buffer too small");
  SEAFL_CHECK(cols.size() >= g.col_rows() * g.col_cols(),
              "col2im: column buffer too small");
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  const std::size_t col_cols = oh * ow;
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.channels; ++c) {
    float* chan = image_grad.data() + c * g.height * g.width;
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* in = cols.data() + row * col_cols;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * g.stride + kh) -
              static_cast<std::ptrdiff_t>(g.pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.height)) continue;
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * g.stride + kw) -
                static_cast<std::ptrdiff_t>(g.pad);
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(g.width)) continue;
            chan[static_cast<std::size_t>(iy) * g.width +
                 static_cast<std::size_t>(ix)] += in[oy * ow + ox];
          }
        }
      }
    }
  }
}

}  // namespace seafl
