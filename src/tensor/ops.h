// Elementwise and reduction kernels over float spans. These operate on raw
// spans (not Tensor) so the same kernels serve tensors, flattened model
// parameter vectors, and gradient buffers. Large inputs are parallelized over
// the global thread pool; results are independent of thread count.
#pragma once

#include <cstddef>
#include <span>

#include "tensor/tensor.h"

namespace seafl {

// ---- in-place elementwise -------------------------------------------------

/// y += x  (sizes must match)
void add_inplace(std::span<float> y, std::span<const float> x);

/// y -= x
void sub_inplace(std::span<float> y, std::span<const float> x);

/// y *= s
void scale_inplace(std::span<float> y, float s);

/// y += a * x  — the workhorse of SGD and weighted aggregation.
void axpy(std::span<float> y, float a, std::span<const float> x);

/// y = a*x + b*y  (used by server mixing, Eq. 8 of the paper)
void axpby(std::span<float> y, float a, std::span<const float> x, float b);

/// y[i] = max(y[i], 0)
void relu_inplace(std::span<float> y);

/// dy[i] = x[i] > 0 ? dy[i] : 0  — ReLU backward masking.
void relu_backward_inplace(std::span<float> dy, std::span<const float> x);

// ---- reductions -------------------------------------------------------------

/// Dot product (double accumulation for stability).
double dot(std::span<const float> a, std::span<const float> b);

/// Euclidean norm.
double l2_norm(std::span<const float> a);

/// Sum of elements.
double sum(std::span<const float> a);

/// Maximum element; requires non-empty input.
float max_value(std::span<const float> a);

/// Index of the maximum element; requires non-empty input. Ties break low.
std::size_t argmax(std::span<const float> a);

/// Cosine similarity in [-1, 1]; returns 0 when either vector is ~zero.
/// This is Θ(·,·) in Eq. 5 of the paper.
double cosine_similarity(std::span<const float> a, std::span<const float> b);

// ---- softmax ----------------------------------------------------------------

/// Row-wise softmax over a [rows, cols] matrix, written into `out`
/// (may alias `in`). Numerically stabilized by max subtraction.
void softmax_rows(std::span<const float> in, std::span<float> out,
                  std::size_t rows, std::size_t cols);

}  // namespace seafl
