// Elementwise and reduction kernels over float spans. These operate on raw
// spans (not Tensor) so the same kernels serve tensors, flattened model
// parameter vectors, and gradient buffers. Large inputs are parallelized over
// the global thread pool; results are independent of thread count.
#pragma once

#include <cstddef>
#include <span>

#include "tensor/tensor.h"

namespace seafl {

// ---- vector-kernel backend dispatch ----------------------------------------
//
// Same seam as GemmBackendScope: the span kernels below run through a
// runtime-dispatched table (portable scalar vs AVX2). Both tables follow the
// lane-strided reduction contract (ops_kernels.h / DESIGN.md §17), so the
// backends are bitwise-interchangeable; the override exists for parity tests
// and benches.

enum class VectorBackend {
  kScalar,  ///< portable reference kernels
  kSimd,    ///< AVX2 kernels where the CPU supports them (else scalar)
};

/// Currently selected backend (process-wide). Defaults to kSimd.
VectorBackend vector_backend();

/// Overrides the backend. kSimd on a host without AVX2 silently runs scalar.
void set_vector_backend(VectorBackend backend);

/// True when a vectorized table is actually available on this host.
bool simd_vector_available();

/// Name of the kernel table the current selection resolves to:
/// "avx2" or "scalar".
const char* vector_backend_name();

/// RAII override, mirroring GemmBackendScope.
class VectorBackendScope {
 public:
  explicit VectorBackendScope(VectorBackend backend)
      : previous_(vector_backend()) {
    set_vector_backend(backend);
  }
  ~VectorBackendScope() { set_vector_backend(previous_); }
  VectorBackendScope(const VectorBackendScope&) = delete;
  VectorBackendScope& operator=(const VectorBackendScope&) = delete;

 private:
  VectorBackend previous_;
};

// ---- in-place elementwise -------------------------------------------------

/// y += x  (sizes must match)
void add_inplace(std::span<float> y, std::span<const float> x);

/// y -= x
void sub_inplace(std::span<float> y, std::span<const float> x);

/// y *= s
void scale_inplace(std::span<float> y, float s);

/// y += a * x  — the workhorse of SGD and weighted aggregation.
void axpy(std::span<float> y, float a, std::span<const float> x);

/// y = a*x + b*y  (used by server mixing, Eq. 8 of the paper)
void axpby(std::span<float> y, float a, std::span<const float> x, float b);

/// y[i] = max(y[i], 0)
void relu_inplace(std::span<float> y);

/// dy[i] = x[i] > 0 ? dy[i] : 0  — ReLU backward masking.
void relu_backward_inplace(std::span<float> dy, std::span<const float> x);

// ---- out-of-place elementwise ----------------------------------------------

/// out = a + b  (all sizes must match; out may alias a or b exactly)
void add_to(std::span<float> out, std::span<const float> a,
            std::span<const float> b);

/// out = a - b  — e.g. client-delta construction in screening/weighting.
void sub_to(std::span<float> out, std::span<const float> a,
            std::span<const float> b);

// ---- reductions -------------------------------------------------------------

/// Dot product (double accumulation for stability).
double dot(std::span<const float> a, std::span<const float> b);

/// Euclidean norm.
double l2_norm(std::span<const float> a);

/// Sum of elements.
double sum(std::span<const float> a);

/// Maximum element; requires non-empty input.
float max_value(std::span<const float> a);

/// Index of the maximum element; requires non-empty input. Ties break low.
std::size_t argmax(std::span<const float> a);

/// Largest |a[i]| (0 for empty input; NaN elements are ignored). Returned as
/// double because callers (quantizer scale derivation) divide by it in double.
double max_abs(std::span<const float> a);

/// Cosine similarity in [-1, 1]; returns 0 when either vector is ~zero.
/// This is Θ(·,·) in Eq. 5 of the paper.
double cosine_similarity(std::span<const float> a, std::span<const float> b);

// ---- softmax ----------------------------------------------------------------

/// Row-wise softmax over a [rows, cols] matrix, written into `out`
/// (may alias `in`). Numerically stabilized by max subtraction.
void softmax_rows(std::span<const float> in, std::span<float> out,
                  std::size_t rows, std::size_t cols);

}  // namespace seafl
