// Thread-local workspace arena for kernel scratch memory.
//
// Every hot-path scratch buffer in the tensor/nn layers — GEMM packing
// panels, im2col column matrices, conv gradient columns — is acquired from
// here instead of being allocated per call. Each thread owns one arena
// (`Workspace::tls()`), so pool workers and callers never share buffers and
// no locking is needed; buffers grow monotonically and are reused for the
// life of the thread, which drives steady-state training-step allocations to
// zero after warmup.
//
// Lifetime rules (see DESIGN.md §11):
//  * A slot span is valid until the NEXT acquisition of the SAME slot on the
//    SAME thread. Distinct slots never alias, so a kernel may hold several
//    slots at once (conv backward holds im2col cols + dcols while GEMM holds
//    its pack buffers).
//  * Slots are call-scoped scratch only. State that must survive across
//    layer calls (pooling argmax indices, activation tensors) is layer-owned;
//    the arena only *recycles* its storage via acquire/release free lists.
//  * Pool workers may read a buffer packed by the submitting thread (the
//    pool's queue mutex orders the writes before the task runs), but only the
//    owning thread ever writes a slot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace seafl {

/// Scratch channels. Each enumerator is one independent per-thread buffer.
enum class WsSlot : std::size_t {
  kGemmPackA = 0,  ///< packed A panel (MR x Kc), per compute task
  kGemmPackB,      ///< packed B panels (Kc x NR column panels), per caller
  kGemmAcc,        ///< C accumulator tiles for one row panel, per task
  kGemmRef,        ///< reference-kernel row accumulators
  kIm2colCols,     ///< conv im2col column matrix [col_rows, col_cols]
  kConvDcols,      ///< conv backward column-gradient matrix
  kScreenDeltas,   ///< screening's flat K x dim client-delta matrix
  kScreenMean,     ///< screening's mean-delta vector
  kAggSum,         ///< strategy aggregate accumulator (Eq. 7 weighted sum)
  kImportanceDelta,  ///< adaptive-weights client-minus-global delta
  kCount
};

/// Double-precision scratch channels, independent of the float slots.
enum class WsDSlot : std::size_t {
  kOpsPartials = 0,  ///< per-block reduction partials for pooled dot/sum
  kScreenNorms,      ///< screening's per-update delta norms
  kScreenScratch,    ///< screening's median scratch (nth_element clobbers it)
  kWeightScratch,    ///< adaptive/strategy per-update weight vector
  kCount
};

/// Per-thread arena of aligned, growable scratch buffers plus a small
/// free-list used to recycle storage of persistent layer buffers.
class Workspace {
 public:
  /// 64-byte alignment: covers cache lines and any SIMD width the compiler
  /// auto-vectorizes to (SSE/AVX/AVX-512).
  static constexpr std::size_t kAlign = 64;

  /// The calling thread's arena (constructed on first use).
  static Workspace& tls();

  /// Returns `n` floats of scratch for `slot`. Contents are unspecified.
  /// The span is invalidated by the next floats() call for the same slot on
  /// this thread (growth may reallocate).
  std::span<float> floats(WsSlot slot, std::size_t n);

  /// Double-precision analogue of floats(); same lifetime rules, separate
  /// buffers. One relaxation for WsDSlot::kOpsPartials: pool workers may each
  /// write a disjoint index range of the caller's span (the pool barrier in
  /// parallel_for orders those writes before the caller reads them and before
  /// the slot's next acquisition).
  std::span<double> doubles(WsDSlot slot, std::size_t n);

  // ---- free-list recycling for persistent (layer-owned) buffers ----------

  /// Returns a vector of exactly `n` elements, reusing previously released
  /// storage when a large-enough block is available. Contents unspecified.
  std::vector<float> acquire_floats(std::size_t n);
  std::vector<std::uint32_t> acquire_u32(std::size_t n);

  /// Donates a buffer's storage back to the free list.
  void release_floats(std::vector<float>&& v);
  void release_u32(std::vector<std::uint32_t>&& v);

  /// Resizes `v` to exactly `n` elements without shrinking capacity,
  /// drawing replacement storage from the free list when it must grow.
  void ensure_floats(std::vector<float>& v, std::size_t n);
  void ensure_u32(std::vector<std::uint32_t>& v, std::size_t n);

  /// Bytes currently reserved by this thread's slot buffers.
  std::size_t bytes_reserved() const;

  // ---- instrumentation / bench hooks -------------------------------------

  /// Globally enables/disables reuse. When disabled, every floats() call
  /// allocates fresh exact-size storage and free lists are bypassed — the
  /// pre-arena allocation behaviour, used by benches to measure "before".
  static void set_enabled(bool on);
  static bool enabled();

  /// Process-wide count of slot-buffer (re)allocations. Flat after warmup
  /// when the arena is enabled.
  static std::uint64_t total_slot_allocs();

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

 private:
  Workspace() = default;
  ~Workspace();

  struct AlignedBuf {
    float* ptr = nullptr;
    std::size_t cap = 0;  // floats
  };

  struct AlignedDBuf {
    double* ptr = nullptr;
    std::size_t cap = 0;  // doubles
  };

  void grow(AlignedBuf& buf, std::size_t n, bool exact);
  void grow(AlignedDBuf& buf, std::size_t n, bool exact);

  AlignedBuf slots_[static_cast<std::size_t>(WsSlot::kCount)];
  AlignedDBuf dslots_[static_cast<std::size_t>(WsDSlot::kCount)];
  std::vector<std::vector<float>> float_pool_;
  std::vector<std::vector<std::uint32_t>> u32_pool_;
};

}  // namespace seafl
