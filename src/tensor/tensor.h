// A minimal dense float32 tensor: contiguous row-major storage with a small
// shape vector. This is the numeric substrate for seafl::nn — it deliberately
// supports exactly what FL training needs (no broadcasting, no strided views,
// no autograd) so that every operation is simple, predictable and fast.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace seafl {

/// Shape of a tensor: up to a handful of dimensions, row-major layout.
using Shape = std::vector<std::size_t>;

/// Returns the number of elements implied by a shape (1 for rank-0).
std::size_t shape_numel(const Shape& shape);

/// Human-readable "[2, 3, 4]" rendering for error messages.
std::string shape_to_string(const Shape& shape);

/// Dense row-major float tensor with value semantics (copy copies data).
///
/// Invariants: data().size() == numel() == product(shape()). Element order is
/// row-major (last dimension fastest).
class Tensor {
 public:
  /// Empty rank-1 tensor of size 0.
  Tensor() : shape_{0} {}

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor with explicit values; values.size() must match the shape.
  Tensor(Shape shape, std::vector<float> values);

  /// Creates a rank-1 tensor from explicit values (named factory rather than
  /// an initializer-list constructor, so Tensor({2, 3}) unambiguously means
  /// "shape [2, 3]").
  static Tensor vector(std::vector<float> values);

  const Shape& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t numel() const { return data_.size(); }
  std::size_t dim(std::size_t axis) const {
    SEAFL_DCHECK(axis < shape_.size(), "axis out of range");
    return shape_[axis];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return {data_.data(), data_.size()}; }
  std::span<const float> span() const { return {data_.data(), data_.size()}; }

  float& operator[](std::size_t i) {
    SEAFL_DCHECK(i < data_.size(), "flat index out of range");
    return data_[i];
  }
  float operator[](std::size_t i) const {
    SEAFL_DCHECK(i < data_.size(), "flat index out of range");
    return data_[i];
  }

  /// 2-d element access (rank must be 2).
  float& at(std::size_t r, std::size_t c) {
    SEAFL_DCHECK(rank() == 2, "at(r,c) requires rank-2 tensor");
    SEAFL_DCHECK(r < shape_[0] && c < shape_[1], "index out of range");
    return data_[r * shape_[1] + c];
  }
  float at(std::size_t r, std::size_t c) const {
    return const_cast<Tensor*>(this)->at(r, c);
  }

  /// Sets every element to `value`.
  void fill(float value);

  /// Reinterprets the tensor with a new shape of equal numel (metadata-only
  /// change; data is shared since storage is contiguous row-major). Takes a
  /// span so steady-state calls reuse the shape vector's capacity instead of
  /// allocating a temporary.
  void reshape(std::span<const std::size_t> new_shape);
  void reshape(std::initializer_list<std::size_t> new_shape) {
    reshape(std::span<const std::size_t>(new_shape.begin(),
                                         new_shape.size()));
  }

  /// Gives the tensor the requested shape, reusing existing storage. The
  /// hot-path alternative to `*this = Tensor(shape)`: when the shape already
  /// matches (the steady state in training loops) this compares and returns
  /// without touching memory; otherwise it resizes in place — vector capacity
  /// is retained across shrinks, so repeated forward/backward passes allocate
  /// only until the largest batch has been seen. Existing element values are
  /// preserved where sizes overlap; callers that accumulate (rather than
  /// overwrite) must fill(0) themselves. Returns true when the shape changed.
  bool ensure_shape(std::span<const std::size_t> shape);
  bool ensure_shape(std::initializer_list<std::size_t> shape) {
    return ensure_shape(std::span<const std::size_t>(shape.begin(),
                                                     shape.size()));
  }

  /// Fills with N(mean, stddev) samples drawn from `rng`.
  void fill_normal(Rng& rng, float mean, float stddev);

  /// Fills with U[lo, hi) samples drawn from `rng`.
  void fill_uniform(Rng& rng, float lo, float hi);

  /// True when shapes and all elements are exactly equal.
  bool equals(const Tensor& other) const;

  /// Creates a zero tensor shaped like `other`.
  static Tensor zeros_like(const Tensor& other) { return Tensor(other.shape()); }

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace seafl
