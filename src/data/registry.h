// Named federated tasks: dataset + partition + model defaults, mirroring the
// paper's three benchmarks (plus the §III preliminary MNIST-style probe).
// Each task bundles everything an experiment needs so bench binaries stay
// declarative.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "data/dataset.h"
#include "data/partition.h"
#include "nn/model_zoo.h"

namespace seafl {

/// Construction parameters for a federated task.
struct TaskSpec {
  std::string name = "synth-mnist";   ///< registry key, see make_task()
  std::size_t num_clients = 100;
  std::size_t samples_per_client = 100;  ///< average train samples per client
  std::size_t test_samples = 1000;
  double dirichlet_alpha = 0.3;       ///< label-skew concentration

  /// Fraction of clients whose training labels are replaced with uniform
  /// noise (robustness experiments: such clients produce misaligned updates
  /// that importance-aware aggregation should discount). 0 disables.
  double corrupt_client_fraction = 0.0;

  /// Population-scale mode: when > 0 the task builds a fixed train pool of
  /// this many samples and a lazy PooledPartition over it, instead of
  /// materializing num_clients × samples_per_client samples and index lists.
  /// Memory then tracks the pool, not the population, which is what lets a
  /// 1M-client run fit on a laptop (DESIGN.md §16). Incompatible with
  /// corrupt_client_fraction (corruption relabels per-client shards, which
  /// pooled clients share).
  std::size_t pool_samples = 0;

  std::uint64_t seed = 42;
};

/// A ready-to-train federated task.
struct FlTask {
  std::string name;
  Dataset train;
  Dataset test;
  /// Train indices per client, behind the lazy/materialized seam. Immutable
  /// and shared: copies of the task alias one view.
  std::shared_ptr<const PartitionView> partition;
  InputSpec input;
  std::size_t num_classes = 0;
  ModelKind default_model = ModelKind::kMlp;
  double target_accuracy = 0.9; ///< per-task convergence target (see below)

  std::size_t num_clients() const {
    return partition ? partition->num_clients() : 0;
  }
  std::size_t client_samples(std::size_t client) const {
    return partition->client_samples(client);
  }
};

/// Builds a named task. Known names (per DESIGN.md §1):
///   "synth-mnist"   — Gaussian clusters, MLP; the §III preliminary probe
///   "synth-emnist"  — 1x12x12 patterned images, lenet_lite (Fig. 5a)
///   "synth-cifar10" — 3x12x12 patterned images, resnet_lite (Fig. 5b, 6a)
///   "synth-cinic10" — 3x12x12 noisier patterned images, vgg_lite
///                     (Fig. 5c, 6b); pair with a smaller per-client share
/// Target accuracies are set to values these synthetic tasks reliably reach,
/// playing the role of the paper's 96% (MNIST) / 50-70% (CIFAR) targets.
FlTask make_task(const TaskSpec& spec);

/// Lists the registry's known task names.
std::vector<std::string> known_tasks();

/// Default convergence target of a named task, without building its dataset
/// (the experiment runner resolves target-accuracy sentinels through this).
/// Throws on an unknown name.
double task_target_accuracy(const std::string& name);

}  // namespace seafl
