// Mini-batch iteration over a subset of a dataset, with seeded per-epoch
// shuffling. One DataLoader per client training session.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace seafl {

/// Yields shuffled mini-batches over a fixed index subset of a dataset.
/// Batch tensors are reused across calls (no steady-state allocation).
class DataLoader {
 public:
  /// Unbound loader; reset() must be called before use. Lets a long-lived
  /// owner (e.g. ClientTrainer) rebind the loader per session while reusing
  /// the index buffer's capacity.
  DataLoader() = default;

  /// @param dataset backing store (must outlive the loader)
  /// @param indices subset this loader iterates (copied)
  /// @param batch_size max samples per batch (last batch may be smaller)
  /// @param as_images emit [B, C, H, W] batches instead of [B, numel]
  DataLoader(const Dataset& dataset, std::vector<std::size_t> indices,
             std::size_t batch_size, bool as_images);

  /// Rebinds the loader. The index subset is copied into the existing
  /// buffer, so rebinding never allocates once the buffer has reached the
  /// largest subset size seen.
  void reset(const Dataset& dataset, std::span<const std::size_t> indices,
             std::size_t batch_size, bool as_images);

  /// Starts a new epoch: reshuffles with `rng` and rewinds.
  void begin_epoch(Rng& rng);

  /// Fills the next batch; returns false when the epoch is exhausted.
  bool next(Tensor& features, std::vector<std::int32_t>& labels);

  std::size_t size() const { return indices_.size(); }
  std::size_t batches_per_epoch() const {
    return (indices_.size() + batch_size_ - 1) / batch_size_;
  }

 private:
  const Dataset* dataset_ = nullptr;
  std::vector<std::size_t> indices_;
  std::size_t batch_size_ = 0;
  bool as_images_ = false;
  std::size_t cursor_ = 0;
};

}  // namespace seafl
