#include "data/dataset.h"

#include <algorithm>

namespace seafl {

Dataset::Dataset(InputSpec input, Tensor features,
                 std::vector<std::int32_t> labels, std::size_t num_classes)
    : input_(input),
      features_(std::move(features)),
      labels_(std::move(labels)),
      num_classes_(num_classes) {
  SEAFL_CHECK(num_classes_ >= 2, "dataset needs at least 2 classes");
  SEAFL_CHECK(features_.numel() == labels_.size() * input_.numel(),
              "feature tensor size " << features_.numel()
                                     << " != samples * sample_numel ("
                                     << labels_.size() << " * "
                                     << input_.numel() << ")");
  for (const auto y : labels_) {
    SEAFL_CHECK(y >= 0 && static_cast<std::size_t>(y) < num_classes_,
                "label " << y << " out of range");
  }
}

void Dataset::set_label(std::size_t i, std::int32_t label) {
  SEAFL_CHECK(i < size(), "set_label index out of range");
  SEAFL_CHECK(label >= 0 && static_cast<std::size_t>(label) < num_classes_,
              "label " << label << " out of range");
  labels_[i] = label;
}

std::span<const float> Dataset::sample(std::size_t i) const {
  SEAFL_DCHECK(i < size(), "sample index out of range");
  return {features_.data() + i * sample_numel(), sample_numel()};
}

void Dataset::gather(std::span<const std::size_t> indices,
                     Tensor& features_out,
                     std::vector<std::int32_t>& labels_out,
                     bool as_images) const {
  const std::size_t batch = indices.size();
  const std::size_t numel = sample_numel();
  if (as_images) {
    features_out.ensure_shape(
        {batch, input_.channels, input_.height, input_.width});
  } else {
    features_out.ensure_shape({batch, numel});
  }
  labels_out.resize(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    const std::size_t i = indices[b];
    SEAFL_CHECK(i < size(), "gather index " << i << " out of range");
    const auto src = sample(i);
    std::copy(src.begin(), src.end(), features_out.data() + b * numel);
    labels_out[b] = labels_[i];
  }
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Tensor features({indices.size(), sample_numel()});
  std::vector<std::int32_t> labels(indices.size());
  for (std::size_t b = 0; b < indices.size(); ++b) {
    const std::size_t i = indices[b];
    SEAFL_CHECK(i < size(), "subset index " << i << " out of range");
    const auto src = sample(i);
    std::copy(src.begin(), src.end(), features.data() + b * sample_numel());
    labels[b] = labels_[i];
  }
  return Dataset(input_, std::move(features), std::move(labels), num_classes_);
}

std::vector<std::size_t> Dataset::class_histogram() const {
  std::vector<std::size_t> hist(num_classes_, 0);
  for (const auto y : labels_) ++hist[static_cast<std::size_t>(y)];
  return hist;
}

}  // namespace seafl
