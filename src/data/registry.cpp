#include "data/registry.h"

#include "data/synthetic.h"

namespace seafl {

namespace {

/// Splits `full` into (train, test): the first `test_n` samples become the
/// test set. Generators emit labels round-robin, so both splits are balanced
/// and identically distributed.
std::pair<Dataset, Dataset> split(const Dataset& full, std::size_t test_n) {
  SEAFL_CHECK(test_n < full.size(), "test split larger than dataset");
  std::vector<std::size_t> test_idx(test_n);
  for (std::size_t i = 0; i < test_n; ++i) test_idx[i] = i;
  std::vector<std::size_t> train_idx(full.size() - test_n);
  for (std::size_t i = 0; i < train_idx.size(); ++i)
    train_idx[i] = test_n + i;
  return {full.subset(train_idx), full.subset(test_idx)};
}

}  // namespace

FlTask make_task(const TaskSpec& spec) {
  SEAFL_CHECK(spec.num_clients >= 1, "need at least one client");
  SEAFL_CHECK(spec.samples_per_client >= 2,
              "need at least 2 samples per client");
  const bool pooled = spec.pool_samples > 0;
  SEAFL_CHECK(!pooled || spec.corrupt_client_fraction == 0.0,
              "pool_samples is incompatible with corrupt_client_fraction");
  const std::size_t train_n =
      pooled ? spec.pool_samples : spec.num_clients * spec.samples_per_client;
  const std::size_t total_n = train_n + spec.test_samples;

  FlTask task;
  task.name = spec.name;

  Dataset full;
  if (spec.name == "synth-mnist") {
    GaussianSpec g;
    g.num_samples = total_n;
    g.num_classes = 10;
    g.input = InputSpec{1, 1, 32};
    g.noise = 0.9;
    g.seed = spec.seed;
    full = make_gaussian_dataset(g);
    task.default_model = ModelKind::kMlp;
  } else if (spec.name == "synth-emnist") {
    PatternSpec p;
    p.num_samples = total_n;
    p.num_classes = 10;
    p.input = InputSpec{1, 12, 12};
    p.noise = 0.8;
    p.seed = spec.seed;
    full = make_pattern_dataset(p);
    task.default_model = ModelKind::kLenetLite;
  } else if (spec.name == "synth-cifar10") {
    PatternSpec p;
    p.num_samples = total_n;
    p.num_classes = 10;
    p.input = InputSpec{3, 12, 12};
    p.noise = 1.2;  // harder than synth-emnist, like CIFAR vs EMNIST
    p.seed = spec.seed;
    full = make_pattern_dataset(p);
    task.default_model = ModelKind::kResnetLite;
  } else if (spec.name == "synth-cinic10") {
    PatternSpec p;
    p.num_samples = total_n;
    p.num_classes = 10;
    p.input = InputSpec{3, 12, 12};
    p.noise = 1.5;  // hardest of the three, like CINIC-10
    p.seed = spec.seed;
    full = make_pattern_dataset(p);
    task.default_model = ModelKind::kVggLite;
  } else {
    SEAFL_CHECK(false, "unknown task '" << spec.name
                                        << "'; known: synth-mnist, "
                                           "synth-emnist, synth-cifar10, "
                                           "synth-cinic10");
  }

  task.target_accuracy = task_target_accuracy(spec.name);

  auto [train, test] = split(full, spec.test_samples);
  task.input = train.input();
  task.num_classes = train.num_classes();
  SEAFL_CHECK(spec.corrupt_client_fraction >= 0.0 &&
                  spec.corrupt_client_fraction <= 1.0,
              "corrupt_client_fraction out of [0, 1]");
  if (pooled) {
    task.partition = std::make_shared<PooledPartition>(
        train, spec.num_clients, spec.samples_per_client,
        spec.dirichlet_alpha, spec.seed);
  } else {
    Partition lists = dirichlet_partition(train, spec.num_clients,
                                          spec.dirichlet_alpha, spec.seed);

    // Label-noise injection: a fraction of clients get uniformly random
    // training labels. Their updates are genuinely harmful, which is the
    // scenario where importance-aware aggregation (Eq. 5) earns its keep.
    if (spec.corrupt_client_fraction > 0.0) {
      Rng rng(spec.seed, RngPurpose::kPartition, /*a=*/999);
      std::vector<std::size_t> order(spec.num_clients);
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      rng.shuffle(order);
      const auto corrupt = static_cast<std::size_t>(
          spec.corrupt_client_fraction *
          static_cast<double>(spec.num_clients));
      for (std::size_t c = 0; c < corrupt; ++c) {
        for (const std::size_t i : lists[order[c]]) {
          train.set_label(i, static_cast<std::int32_t>(
                                 rng.uniform_int(task.num_classes)));
        }
      }
    }
    task.partition = std::make_shared<MaterializedPartition>(std::move(lists));
  }

  task.train = std::move(train);
  task.test = std::move(test);
  return task;
}

std::vector<std::string> known_tasks() {
  return {"synth-mnist", "synth-emnist", "synth-cifar10", "synth-cinic10"};
}

double task_target_accuracy(const std::string& name) {
  if (name == "synth-mnist") return 0.90;
  if (name == "synth-emnist") return 0.88;
  if (name == "synth-cifar10") return 0.80;
  if (name == "synth-cinic10") return 0.72;
  throw Error("unknown task '" + name + "'");
}

}  // namespace seafl
