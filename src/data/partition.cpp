#include "data/partition.h"

#include <algorithm>
#include <cmath>

#include "common/distributions.h"
#include "common/rng.h"

namespace seafl {

std::size_t MaterializedPartition::client_samples(std::size_t client) const {
  SEAFL_CHECK(client < lists_.size(),
              "partition client " << client << " out of range");
  return lists_[client].size();
}

std::span<const std::size_t> MaterializedPartition::client_indices(
    std::size_t client, std::vector<std::size_t>& /*scratch*/) const {
  SEAFL_CHECK(client < lists_.size(),
              "partition client " << client << " out of range");
  return lists_[client];
}

PooledPartition::PooledPartition(const Dataset& pool, std::size_t num_clients,
                                 std::size_t samples_per_client, double alpha,
                                 std::uint64_t seed)
    : num_clients_(num_clients),
      samples_per_client_(samples_per_client),
      alpha_(alpha),
      seed_(seed) {
  SEAFL_CHECK(num_clients >= 1, "need at least one client");
  SEAFL_CHECK(samples_per_client >= 2, "need at least 2 samples per client");
  SEAFL_CHECK(pool.size() >= 1, "empty sample pool");
  SEAFL_CHECK(alpha > 0.0, "dirichlet alpha must be positive");
  std::vector<std::vector<std::size_t>> by_class(pool.num_classes());
  for (std::size_t i = 0; i < pool.size(); ++i)
    by_class[static_cast<std::size_t>(pool.label(i))].push_back(i);
  // Keep only non-empty classes: the per-client mixture is drawn over the
  // classes the pool actually contains.
  for (auto& idx : by_class)
    if (!idx.empty()) by_class_.push_back(std::move(idx));
}

std::span<const std::size_t> PooledPartition::client_indices(
    std::size_t client, std::vector<std::size_t>& scratch) const {
  SEAFL_CHECK(client < num_clients_,
              "partition client " << client << " out of range");
  // Pure function of (seed, client): every regeneration yields the same
  // list, which is what licenses never storing it.
  Rng rng(seed_, RngPurpose::kPartition, client);
  const auto props = sample_dirichlet(rng, by_class_.size(), alpha_);
  scratch.clear();
  scratch.reserve(samples_per_client_);
  for (std::size_t s = 0; s < samples_per_client_; ++s) {
    const double u = rng.uniform();
    double cdf = 0.0;
    std::size_t k = by_class_.size() - 1;
    for (std::size_t c = 0; c < by_class_.size(); ++c) {
      cdf += props[c];
      if (u < cdf) {
        k = c;
        break;
      }
    }
    scratch.push_back(by_class_[k][rng.uniform_int(by_class_[k].size())]);
  }
  return scratch;
}

Partition materialize(const PartitionView& view) {
  Partition out(view.num_clients());
  std::vector<std::size_t> scratch;
  for (std::size_t c = 0; c < out.size(); ++c) {
    const auto idx = view.client_indices(c, scratch);
    out[c].assign(idx.begin(), idx.end());
  }
  return out;
}

Partition dirichlet_partition(const Dataset& dataset, std::size_t num_clients,
                              double alpha, std::uint64_t seed,
                              std::size_t min_per_client) {
  SEAFL_CHECK(num_clients >= 1, "need at least one client");
  SEAFL_CHECK(dataset.size() >= num_clients * min_per_client,
              "dataset too small: " << dataset.size() << " samples for "
                                    << num_clients << " clients");
  Rng rng(seed, RngPurpose::kPartition);

  // Group sample indices by class, shuffled within each class.
  std::vector<std::vector<std::size_t>> by_class(dataset.num_classes());
  for (std::size_t i = 0; i < dataset.size(); ++i)
    by_class[static_cast<std::size_t>(dataset.label(i))].push_back(i);
  for (auto& idx : by_class) rng.shuffle(idx);

  Partition out(num_clients);
  for (auto& idx : by_class) {
    if (idx.empty()) continue;
    const auto props = sample_dirichlet(rng, num_clients, alpha);
    // Convert proportions to cut points over this class's samples.
    std::size_t assigned = 0;
    for (std::size_t c = 0; c < num_clients; ++c) {
      std::size_t take =
          c + 1 == num_clients
              ? idx.size() - assigned
              : static_cast<std::size_t>(
                    std::floor(props[c] * static_cast<double>(idx.size())));
      take = std::min(take, idx.size() - assigned);
      for (std::size_t j = 0; j < take; ++j)
        out[c].push_back(idx[assigned + j]);
      assigned += take;
    }
  }

  // Rebalance: ensure the floor by moving samples from the largest clients.
  for (std::size_t c = 0; c < num_clients; ++c) {
    while (out[c].size() < min_per_client) {
      const auto donor = static_cast<std::size_t>(
          std::max_element(out.begin(), out.end(),
                           [](const auto& a, const auto& b) {
                             return a.size() < b.size();
                           }) -
          out.begin());
      SEAFL_CHECK(out[donor].size() > min_per_client,
                  "cannot satisfy min_per_client=" << min_per_client);
      out[c].push_back(out[donor].back());
      out[donor].pop_back();
    }
  }
  return out;
}

Partition iid_partition(const Dataset& dataset, std::size_t num_clients,
                        std::uint64_t seed) {
  SEAFL_CHECK(num_clients >= 1, "need at least one client");
  SEAFL_CHECK(dataset.size() >= num_clients,
              "fewer samples than clients");
  Rng rng(seed, RngPurpose::kPartition);
  std::vector<std::size_t> order(dataset.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  Partition out(num_clients);
  for (std::size_t i = 0; i < order.size(); ++i)
    out[i % num_clients].push_back(order[i]);
  return out;
}

double partition_skew(const Dataset& dataset, const Partition& partition) {
  const std::size_t classes = dataset.num_classes();
  std::vector<double> global(classes, 0.0);
  for (std::size_t i = 0; i < dataset.size(); ++i)
    global[static_cast<std::size_t>(dataset.label(i))] += 1.0;
  for (auto& g : global) g /= static_cast<double>(dataset.size());

  double total_tv = 0.0;
  std::size_t counted = 0;
  for (const auto& idx : partition) {
    if (idx.empty()) continue;
    std::vector<double> local(classes, 0.0);
    for (const auto i : idx)
      local[static_cast<std::size_t>(dataset.label(i))] += 1.0;
    double tv = 0.0;
    for (std::size_t k = 0; k < classes; ++k)
      tv += std::abs(local[k] / static_cast<double>(idx.size()) - global[k]);
    total_tv += tv / 2.0;
    ++counted;
  }
  return counted == 0 ? 0.0 : total_tv / static_cast<double>(counted);
}

double partition_skew(const Dataset& dataset, const PartitionView& partition,
                      std::size_t max_clients) {
  const std::size_t n = std::min(partition.num_clients(), max_clients);
  Partition head(n);
  std::vector<std::size_t> scratch;
  for (std::size_t c = 0; c < n; ++c) {
    const auto idx = partition.client_indices(c, scratch);
    head[c].assign(idx.begin(), idx.end());
  }
  return partition_skew(dataset, head);
}

}  // namespace seafl
