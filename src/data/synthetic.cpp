#include "data/synthetic.h"

#include <cmath>

#include "common/rng.h"

namespace seafl {

Dataset make_gaussian_dataset(const GaussianSpec& spec) {
  SEAFL_CHECK(spec.num_classes >= 2, "need at least 2 classes");
  SEAFL_CHECK(spec.num_samples >= spec.num_classes,
              "need at least one sample per class");
  const std::size_t dim = spec.input.numel();
  SEAFL_CHECK(dim >= 2, "need at least 2 feature dimensions");

  // Class means drawn once from the dataset's own stream so that train and
  // test splits generated with different seeds share the same geometry when
  // callers derive both from one root (see registry.cpp).
  Rng mean_rng(spec.seed, RngPurpose::kDataGen, /*a=*/0);
  Tensor means({spec.num_classes, dim});
  means.fill_normal(mean_rng, 0.0f,
                    static_cast<float>(spec.mean_scale / std::sqrt(1.0)));

  Rng rng(spec.seed, RngPurpose::kDataGen, /*a=*/1);
  Tensor features({spec.num_samples, dim});
  std::vector<std::int32_t> labels(spec.num_samples);
  for (std::size_t i = 0; i < spec.num_samples; ++i) {
    const auto y = static_cast<std::int32_t>(i % spec.num_classes);
    labels[i] = y;
    const float* mean = means.data() + static_cast<std::size_t>(y) * dim;
    float* x = features.data() + i * dim;
    for (std::size_t d = 0; d < dim; ++d)
      x[d] = mean[d] + static_cast<float>(rng.normal(0.0, spec.noise));
  }
  return Dataset(spec.input, std::move(features), std::move(labels),
                 spec.num_classes);
}

namespace {
/// Evaluates class `y`'s smooth template at pixel (c, r, col).
/// Each class owns `waves` sinusoid components per channel with frequencies,
/// phases and orientations drawn from a class-specific stream.
struct Template {
  // One component: value = a * sin(fx*x + fy*y + phase).
  struct Wave {
    float fx, fy, phase, amp;
  };
  std::vector<std::vector<Wave>> per_channel;  // [channels][waves]

  float eval(std::size_t c, std::size_t row, std::size_t col) const {
    float v = 0.0f;
    for (const auto& w : per_channel[c]) {
      v += w.amp * std::sin(w.fx * static_cast<float>(col) +
                            w.fy * static_cast<float>(row) + w.phase);
    }
    return v;
  }
};

Template make_template(std::uint64_t seed, std::size_t cls,
                       const PatternSpec& spec) {
  Template t;
  Rng rng(seed, RngPurpose::kDataGen, /*a=*/100 + cls);
  t.per_channel.resize(spec.input.channels);
  for (auto& waves : t.per_channel) {
    waves.resize(spec.waves_per_class);
    for (auto& w : waves) {
      // Low spatial frequencies so the template is smooth at small sizes.
      w.fx = static_cast<float>(rng.uniform(0.3, 1.4));
      w.fy = static_cast<float>(rng.uniform(0.3, 1.4));
      w.phase = static_cast<float>(rng.uniform(0.0, 6.2831853));
      w.amp = static_cast<float>(rng.uniform(0.5, 1.0));
    }
  }
  return t;
}
}  // namespace

Dataset make_pattern_dataset(const PatternSpec& spec) {
  SEAFL_CHECK(spec.num_classes >= 2, "need at least 2 classes");
  SEAFL_CHECK(spec.num_samples >= spec.num_classes,
              "need at least one sample per class");
  SEAFL_CHECK(spec.waves_per_class >= 1, "need at least one wave");
  const std::size_t numel = spec.input.numel();

  std::vector<Template> templates;
  templates.reserve(spec.num_classes);
  for (std::size_t k = 0; k < spec.num_classes; ++k)
    templates.push_back(make_template(spec.seed, k, spec));

  Rng rng(spec.seed, RngPurpose::kDataGen, /*a=*/1);
  Tensor features({spec.num_samples, numel});
  std::vector<std::int32_t> labels(spec.num_samples);
  for (std::size_t i = 0; i < spec.num_samples; ++i) {
    const auto y = static_cast<std::int32_t>(i % spec.num_classes);
    labels[i] = y;
    const Template& t = templates[static_cast<std::size_t>(y)];
    const float scale = static_cast<float>(
        rng.uniform(1.0 - spec.amplitude_jitter, 1.0 + spec.amplitude_jitter));
    float* x = features.data() + i * numel;
    std::size_t p = 0;
    for (std::size_t c = 0; c < spec.input.channels; ++c) {
      for (std::size_t r = 0; r < spec.input.height; ++r) {
        for (std::size_t col = 0; col < spec.input.width; ++col, ++p) {
          x[p] = scale * t.eval(c, r, col) +
                 static_cast<float>(rng.normal(0.0, spec.noise));
        }
      }
    }
  }
  return Dataset(spec.input, std::move(features), std::move(labels),
                 spec.num_classes);
}

}  // namespace seafl
