// In-memory labeled dataset: features stored sample-major in one contiguous
// tensor, labels as int32 class indices.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/model_zoo.h"  // InputSpec
#include "tensor/tensor.h"

namespace seafl {

/// A dense classification dataset. Samples share a fixed InputSpec geometry;
/// feature storage is [N, channels*height*width] row-major.
class Dataset {
 public:
  Dataset() = default;

  /// @param input per-sample geometry; @param features [N, input.numel()]
  /// flattened features; @param labels N class ids; @param num_classes count.
  Dataset(InputSpec input, Tensor features, std::vector<std::int32_t> labels,
          std::size_t num_classes);

  std::size_t size() const { return labels_.size(); }
  std::size_t num_classes() const { return num_classes_; }
  const InputSpec& input() const { return input_; }
  std::size_t sample_numel() const { return input_.numel(); }

  /// Flat features of sample i.
  std::span<const float> sample(std::size_t i) const;
  std::int32_t label(std::size_t i) const {
    SEAFL_DCHECK(i < labels_.size(), "sample index out of range");
    return labels_[i];
  }

  /// Overwrites one label (used to inject label noise for robustness
  /// experiments); the new label must be a valid class id.
  void set_label(std::size_t i, std::int32_t label);
  std::span<const std::int32_t> labels() const { return labels_; }

  /// Gathers the given sample indices into a batch tensor shaped
  /// [B, C, H, W] (or [B, numel] when as_images is false) plus labels.
  void gather(std::span<const std::size_t> indices, Tensor& features_out,
              std::vector<std::int32_t>& labels_out, bool as_images) const;

  /// Materializes a subset as a standalone Dataset.
  Dataset subset(std::span<const std::size_t> indices) const;

  /// Per-class sample counts (histogram of labels).
  std::vector<std::size_t> class_histogram() const;

 private:
  InputSpec input_;
  Tensor features_;  // [N, sample_numel]
  std::vector<std::int32_t> labels_;
  std::size_t num_classes_ = 0;
};

}  // namespace seafl
