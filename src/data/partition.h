// Client partitioning: splits a dataset's sample indices across N clients.
// The Dirichlet label-skew partitioner is the standard device for simulating
// non-IID federated data (Li et al., ICDE'22), and is what the SEAFL paper
// uses (concentration 0.3 in §III, 5.0 in §VI).
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace seafl {

/// Index lists, one per client.
using Partition = std::vector<std::vector<std::size_t>>;

/// Dirichlet label-skew partition: for each class, the class's samples are
/// split across clients in proportions drawn from Dir(alpha). Low alpha =
/// heavy skew. Guarantees every client ends up with at least `min_per_client`
/// samples by stealing from the largest shards.
Partition dirichlet_partition(const Dataset& dataset, std::size_t num_clients,
                              double alpha, std::uint64_t seed,
                              std::size_t min_per_client = 2);

/// IID partition: a global shuffle dealt round-robin.
Partition iid_partition(const Dataset& dataset, std::size_t num_clients,
                        std::uint64_t seed);

/// Summary statistic of label skew: mean across clients of the total
/// variation distance between the client's label distribution and the global
/// one. 0 = IID, -> (1 - 1/classes) as skew maximizes.
double partition_skew(const Dataset& dataset, const Partition& partition);

}  // namespace seafl
