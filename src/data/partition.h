// Client partitioning: splits a dataset's sample indices across N clients.
// The Dirichlet label-skew partitioner is the standard device for simulating
// non-IID federated data (Li et al., ICDE'22), and is what the SEAFL paper
// uses (concentration 0.3 in §III, 5.0 in §VI).
//
// Two representations coexist behind the PartitionView seam (DESIGN.md §16):
// the classic eagerly materialized index lists (exact Dirichlet cuts with
// global rebalancing — inherently O(population) to build), and a pooled lazy
// partition whose per-client index list is a pure function of
// (seed, client), regenerated on demand in O(samples_per_client). The lazy
// form is what lets a million-client simulation hold only the active
// sessions' state in memory.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "data/dataset.h"

namespace seafl {

/// Index lists, one per client.
using Partition = std::vector<std::vector<std::size_t>>;

/// Read-only oracle over a client partition. Implementations are immutable
/// after construction and safe to query from multiple threads concurrently.
/// `client_indices` returns a span that is valid until the next call passing
/// the same `scratch` vector (lazy views fill `scratch`; materialized views
/// return a span over internal storage and leave `scratch` untouched), so
/// each concurrent reader must bring its own scratch buffer.
class PartitionView {
 public:
  virtual ~PartitionView() = default;
  virtual std::size_t num_clients() const = 0;
  virtual std::size_t client_samples(std::size_t client) const = 0;
  virtual std::span<const std::size_t> client_indices(
      std::size_t client, std::vector<std::size_t>& scratch) const = 0;
};

/// PartitionView over eagerly built index lists (dirichlet_partition /
/// iid_partition output). Zero-copy reads; O(total samples) memory.
class MaterializedPartition final : public PartitionView {
 public:
  explicit MaterializedPartition(Partition lists) : lists_(std::move(lists)) {}

  std::size_t num_clients() const override { return lists_.size(); }
  std::size_t client_samples(std::size_t client) const override;
  std::span<const std::size_t> client_indices(
      std::size_t client, std::vector<std::size_t>& scratch) const override;

  const Partition& lists() const { return lists_; }

 private:
  Partition lists_;
};

/// Lazy label-skew partition over a fixed shared sample pool: client c's
/// index list is regenerated on demand from Rng(seed, kPartition, c) — a
/// Dir(alpha) class mixture followed by samples_per_client pooled draws.
/// Memory is O(pool) for the by-class index (shared across all clients),
/// independent of the population size; clients sample the pool with
/// replacement, so distinct clients may share samples (the statistical
/// license: synthetic pools are exchangeable within a class).
class PooledPartition final : public PartitionView {
 public:
  PooledPartition(const Dataset& pool, std::size_t num_clients,
                  std::size_t samples_per_client, double alpha,
                  std::uint64_t seed);

  std::size_t num_clients() const override { return num_clients_; }
  std::size_t client_samples(std::size_t) const override {
    return samples_per_client_;
  }
  std::span<const std::size_t> client_indices(
      std::size_t client, std::vector<std::size_t>& scratch) const override;

 private:
  std::vector<std::vector<std::size_t>> by_class_;  ///< non-empty classes
  std::size_t num_clients_ = 0;
  std::size_t samples_per_client_ = 0;
  double alpha_ = 0.3;
  std::uint64_t seed_ = 0;
};

/// Expands a view into plain index lists (test oracle / small-n tooling).
Partition materialize(const PartitionView& view);

/// Dirichlet label-skew partition: for each class, the class's samples are
/// split across clients in proportions drawn from Dir(alpha). Low alpha =
/// heavy skew. Guarantees every client ends up with at least `min_per_client`
/// samples by stealing from the largest shards.
Partition dirichlet_partition(const Dataset& dataset, std::size_t num_clients,
                              double alpha, std::uint64_t seed,
                              std::size_t min_per_client = 2);

/// IID partition: a global shuffle dealt round-robin.
Partition iid_partition(const Dataset& dataset, std::size_t num_clients,
                        std::uint64_t seed);

/// Summary statistic of label skew: mean across clients of the total
/// variation distance between the client's label distribution and the global
/// one. 0 = IID, -> (1 - 1/classes) as skew maximizes.
double partition_skew(const Dataset& dataset, const Partition& partition);

/// View overload; capped at the first `max_clients` clients so the statistic
/// stays affordable for population-scale lazy partitions.
double partition_skew(const Dataset& dataset, const PartitionView& partition,
                      std::size_t max_clients = 4096);

}  // namespace seafl
