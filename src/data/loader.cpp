#include "data/loader.h"

namespace seafl {

DataLoader::DataLoader(const Dataset& dataset,
                       std::vector<std::size_t> indices,
                       std::size_t batch_size, bool as_images)
    : dataset_(&dataset),
      indices_(std::move(indices)),
      batch_size_(batch_size),
      as_images_(as_images) {
  SEAFL_CHECK(batch_size_ >= 1, "batch size must be positive");
  SEAFL_CHECK(!indices_.empty(), "DataLoader needs at least one sample");
  for (const auto i : indices_)
    SEAFL_CHECK(i < dataset.size(), "index " << i << " out of range");
}

void DataLoader::reset(const Dataset& dataset,
                       std::span<const std::size_t> indices,
                       std::size_t batch_size, bool as_images) {
  SEAFL_CHECK(batch_size >= 1, "batch size must be positive");
  SEAFL_CHECK(!indices.empty(), "DataLoader needs at least one sample");
  for (const auto i : indices)
    SEAFL_CHECK(i < dataset.size(), "index " << i << " out of range");
  dataset_ = &dataset;
  indices_.assign(indices.begin(), indices.end());
  batch_size_ = batch_size;
  as_images_ = as_images;
  cursor_ = 0;
}

void DataLoader::begin_epoch(Rng& rng) {
  rng.shuffle(indices_);
  cursor_ = 0;
}

bool DataLoader::next(Tensor& features, std::vector<std::int32_t>& labels) {
  if (cursor_ >= indices_.size()) return false;
  const std::size_t take = std::min(batch_size_, indices_.size() - cursor_);
  dataset_->gather({indices_.data() + cursor_, take}, features, labels,
                   as_images_);
  cursor_ += take;
  return true;
}

}  // namespace seafl
