// Synthetic dataset generators. These replace the paper's EMNIST / CIFAR-10 /
// CINIC-10, which are unavailable offline (see DESIGN.md §1). Two families:
//
//  * Gaussian clusters — each class is an isotropic Gaussian around a random
//    unit-ish mean vector. Fast to learn; used for the §III preliminary
//    experiments where the paper itself uses MNIST as a quick probe.
//
//  * Patterned images — each class has a smooth spatial template (a sum of
//    class-specific 2-d sinusoids per channel); samples are scaled templates
//    plus pixel noise. Convolutional structure genuinely helps on these,
//    making them an honest stand-in for image benchmarks.
//
// Difficulty is controlled by the noise level and (for images) template
// correlation across classes; harder datasets need more rounds to converge,
// mirroring EMNIST < CIFAR-10 < CINIC-10 difficulty ordering.
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace seafl {

/// Configuration of a Gaussian-cluster dataset.
struct GaussianSpec {
  std::size_t num_samples = 1000;
  std::size_t num_classes = 10;
  InputSpec input{1, 1, 32};  ///< geometry; features are flattened anyway
  double mean_scale = 1.0;    ///< cluster-center magnitude
  double noise = 0.6;         ///< per-dimension sample stddev
  std::uint64_t seed = 1;
};

/// Generates a Gaussian-cluster dataset; labels are balanced round-robin.
Dataset make_gaussian_dataset(const GaussianSpec& spec);

/// Configuration of a patterned-image dataset.
struct PatternSpec {
  std::size_t num_samples = 1000;
  std::size_t num_classes = 10;
  InputSpec input{1, 12, 12};
  std::size_t waves_per_class = 3;  ///< sinusoid components per template
  double amplitude_jitter = 0.25;   ///< per-sample template scaling spread
  double noise = 0.5;               ///< additive pixel noise stddev
  std::uint64_t seed = 1;
};

/// Generates a patterned-image dataset; labels are balanced round-robin.
Dataset make_pattern_dataset(const PatternSpec& spec);

}  // namespace seafl
