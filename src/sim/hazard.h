// Device churn model: per-client crash/recovery timelines on the virtual
// clock.
//
// Each client alternates online and offline intervals from t = 0 (everyone
// starts online). Interval durations are exponential draws — mean
// `mean_uptime` while online, `mean_downtime` while offline — from a
// per-client stream derived from the root seed (RngPurpose::kChurn), so a
// client's whole availability timeline is a pure function of (seed, client):
// it does not depend on what the server does, on query order, or on whether
// a trace sink is attached. This is the hazard half of the fault-tolerance
// layer; the recovery policies that react to it (assignment deadlines,
// re-dispatch, degraded aggregation) live in fl/simulation.
//
// Timelines are generated lazily: queries past the generated horizon extend
// the per-client edge list by drawing further intervals in sequence. The
// model is therefore cheap for short runs and must be owned per-simulation
// (the lazy cache is not thread-safe; a Simulation is single-threaded).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "sim/schedule.h"

namespace seafl {

/// Churn process parameters. mean_uptime == 0 disables churn entirely
/// (every client is permanently online and queries are O(1)).
struct ChurnConfig {
  double mean_uptime = 0.0;    ///< mean online interval, virtual seconds
  double mean_downtime = 60.0; ///< mean offline interval after a crash
  std::uint64_t seed = 42;     ///< root seed (kChurn streams derive from it)
};

/// Deterministic per-client availability oracle (see file comment).
class ChurnModel {
 public:
  /// A disabled model: every client is always online.
  ChurnModel() = default;

  ChurnModel(const ChurnConfig& config, std::size_t num_clients);

  /// Churn with a diurnal overlay (sim/schedule.h): a client is online iff
  /// its crash/recovery process AND its schedule window both say so.
  ChurnModel(const ChurnConfig& config, const ScheduleConfig& schedule,
             std::size_t num_clients);

  bool enabled() const { return churn_enabled() || schedule_.enabled(); }
  std::size_t num_clients() const {
    return churn_enabled() ? timelines_.size() : schedule_.num_clients();
  }

  /// Is the client online at virtual time t?
  bool online_at(std::size_t client, double t) const;

  /// First time >= t at which the client is (or goes) offline. Returns t
  /// itself when the client is already offline at t; infinity when churn is
  /// disabled.
  double next_offline(std::size_t client, double t) const;

  /// First time >= t at which the client is (or comes back) online.
  double next_online(std::size_t client, double t) const;

 private:
  bool churn_enabled() const { return config_.mean_uptime > 0.0; }

  struct Timeline {
    // Interval boundaries in increasing order, starting from an online
    // interval at t = 0: edges[0] is the first crash, edges[1] the first
    // recovery, edges[2] the second crash, ... (even index = crash edge).
    std::vector<double> edges;
    Rng rng;
  };

  /// Extends the client's edge list until it strictly covers time t.
  void extend_past(Timeline& tl, double t) const;

  /// Index of the interval containing t (0 = initial online interval).
  /// Even result = online, odd = offline. Extends the timeline as needed.
  std::size_t interval_at(std::size_t client, double t) const;

  /// Component queries ignoring the other component (each treats its own
  /// disabled state as "always online").
  double churn_next_offline(std::size_t client, double t) const;
  double churn_next_online(std::size_t client, double t) const;

  ChurnConfig config_;
  ScheduleTable schedule_;
  mutable std::vector<Timeline> timelines_;
};

}  // namespace seafl
