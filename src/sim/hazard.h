// Device churn model: per-client crash/recovery timelines on the virtual
// clock.
//
// Each client alternates online and offline intervals from t = 0 (everyone
// starts online). Interval durations are exponential draws — mean
// `mean_uptime` while online, `mean_downtime` while offline — from a
// per-client stream derived from the root seed (RngPurpose::kChurn), so a
// client's whole availability timeline is a pure function of (seed, client):
// it does not depend on what the server does, on query order, or on whether
// a trace sink is attached. This is the hazard half of the fault-tolerance
// layer; the recovery policies that react to it (assignment deadlines,
// re-dispatch, degraded aggregation) live in fl/simulation.
//
// Timelines are generated lazily: queries past the generated horizon extend
// the per-client edge list by drawing further intervals in sequence, and
// only queried clients hold any state at all. advance_horizon() bounds that
// state for long population-scale runs by pruning edges behind the virtual
// clock and evicting timelines that have gone unqueried — both safe because
// any timeline can be regenerated bit-for-bit from its stream (DESIGN.md
// §16). The stateful cache is not thread-safe (a Simulation is
// single-threaded); pool workers scanning candidates use the stateless
// probe_online_at() instead.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "sim/schedule.h"

namespace seafl {

/// Churn process parameters. mean_uptime == 0 disables churn entirely
/// (every client is permanently online and queries are O(1)).
struct ChurnConfig {
  double mean_uptime = 0.0;    ///< mean online interval, virtual seconds
  double mean_downtime = 60.0; ///< mean offline interval after a crash
  std::uint64_t seed = 42;     ///< root seed (kChurn streams derive from it)
};

/// Deterministic per-client availability oracle (see file comment).
class ChurnModel {
 public:
  /// A disabled model: every client is always online.
  ChurnModel() = default;

  ChurnModel(const ChurnConfig& config, std::size_t num_clients);

  /// Churn with a diurnal overlay (sim/schedule.h): a client is online iff
  /// its crash/recovery process AND its schedule window both say so.
  ChurnModel(const ChurnConfig& config, const ScheduleConfig& schedule,
             std::size_t num_clients);

  bool enabled() const { return churn_enabled() || schedule_.enabled(); }
  std::size_t num_clients() const {
    return churn_enabled() ? num_clients_ : schedule_.num_clients();
  }

  /// Is the client online at virtual time t?
  bool online_at(std::size_t client, double t) const;

  /// First time >= t at which the client is (or goes) offline. Returns t
  /// itself when the client is already offline at t; infinity when churn is
  /// disabled.
  double next_offline(std::size_t client, double t) const;

  /// First time >= t at which the client is (or comes back) online.
  double next_online(std::size_t client, double t) const;

  /// Stateless online_at: regenerates the client's timeline locally from
  /// its stream without touching the shared cache, so concurrent calls from
  /// pool workers are safe. Same answer as online_at for every (client, t).
  bool probe_online_at(std::size_t client, double t) const;

  /// Declares that no future query will look strictly before time t (the
  /// virtual clock is monotone): edges at or before t are pruned from
  /// cached timelines, and timelines unqueried for two consecutive
  /// advances are evicted. Both are answer-preserving — pruned interval
  /// indices stay exact via the dropped-edge count, and an evicted timeline
  /// regenerates bit-for-bit on its next query.
  void advance_horizon(double t);

  /// Cached timelines currently held (observability; bounded by advances).
  std::size_t cached_timelines() const { return timelines_.size(); }

 private:
  bool churn_enabled() const { return config_.mean_uptime > 0.0; }

  struct Timeline {
    // Interval boundaries in increasing order, starting from an online
    // interval at t = 0: globally, edge i=0 is the first crash, i=1 the
    // first recovery, ... (even global index = crash edge). The vector
    // holds edges dropped_ onward; pruned prefixes advance `dropped` and
    // remember the last pruned edge in `resume_from` so generation can
    // continue from the true previous edge.
    std::vector<double> edges;
    std::size_t dropped = 0;
    double resume_from = 0.0;
    std::uint64_t touched = 0;  ///< generation of the last query
    Rng rng;
  };

  /// The client's cached timeline, created (and its stream seeded) on first
  /// query.
  Timeline& timeline(std::size_t client) const;

  /// Extends the client's edge list until it strictly covers time t.
  void extend_past(Timeline& tl, double t) const;

  /// Global index of the interval containing t (0 = initial online
  /// interval). Even result = online, odd = offline. Extends the timeline
  /// as needed.
  std::size_t interval_at(std::size_t client, double t) const;

  /// Component queries ignoring the other component (each treats its own
  /// disabled state as "always online").
  double churn_next_offline(std::size_t client, double t) const;
  double churn_next_online(std::size_t client, double t) const;

  ChurnConfig config_;
  ScheduleTable schedule_;
  std::size_t num_clients_ = 0;
  mutable std::unordered_map<std::size_t, Timeline> timelines_;
  std::uint64_t generation_ = 0;  ///< bumped by advance_horizon
};

}  // namespace seafl
