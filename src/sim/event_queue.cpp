#include "sim/event_queue.h"

namespace seafl {

std::uint64_t EventQueue::schedule_at(double when, Callback cb) {
  SEAFL_CHECK(when >= now_, "cannot schedule in the past (when=" << when
                                                                  << ", now="
                                                                  << now_
                                                                  << ")");
  SEAFL_CHECK(cb != nullptr, "null event callback");
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{when, seq});
  callbacks_.emplace(seq, std::move(cb));
  return seq;
}

std::uint64_t EventQueue::schedule_after(double delay, Callback cb) {
  SEAFL_CHECK(delay >= 0.0, "negative delay " << delay);
  return schedule_at(now_ + delay, std::move(cb));
}

bool EventQueue::cancel(std::uint64_t id) {
  return callbacks_.erase(id) > 0;
}

bool EventQueue::run_one() {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    heap_.pop();
    const auto it = callbacks_.find(top.seq);
    if (it == callbacks_.end()) continue;  // cancelled
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    now_ = top.time;
    cb();
    return true;
  }
  return false;
}

std::size_t EventQueue::run_until(double until) {
  std::size_t executed = 0;
  while (!heap_.empty()) {
    // Peek past cancelled entries without executing.
    const Entry top = heap_.top();
    if (callbacks_.find(top.seq) == callbacks_.end()) {
      heap_.pop();
      continue;
    }
    if (top.time > until) break;
    run_one();
    ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

std::size_t EventQueue::run_all(std::size_t max_events) {
  std::size_t executed = 0;
  while (run_one()) {
    ++executed;
    SEAFL_CHECK(executed < max_events,
                "event budget exhausted (" << max_events
                                           << "); runaway scheduling loop?");
  }
  return executed;
}

}  // namespace seafl
