#include "sim/event_queue.h"

#include <algorithm>

namespace seafl {

namespace {

/// Don't bother compacting tiny heaps; rebuilding costs more than the dead
/// entries do.
constexpr std::size_t kCompactFloor = 64;

}  // namespace

void EventQueue::advance_to(double t) {
  SEAFL_CHECK(t >= now_,
              "cannot advance backwards (t=" << t << ", now=" << now_ << ")");
  SEAFL_CHECK(empty(), "advance_to on a queue with pending events");
  now_ = t;
}

std::uint64_t EventQueue::schedule_at(double when, Callback cb) {
  SEAFL_CHECK(when >= now_, "cannot schedule in the past (when=" << when
                                                                  << ", now="
                                                                  << now_
                                                                  << ")");
  SEAFL_CHECK(cb != nullptr, "null event callback");
  const std::uint64_t seq = next_seq_++;
  heap_.push_back(Entry{when, seq});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
  callbacks_.emplace(seq, std::move(cb));
  return seq;
}

std::uint64_t EventQueue::schedule_after(double delay, Callback cb) {
  SEAFL_CHECK(delay >= 0.0, "negative delay " << delay);
  return schedule_at(now_ + delay, std::move(cb));
}

bool EventQueue::cancel(std::uint64_t id) {
  const bool cancelled = callbacks_.erase(id) > 0;
  if (cancelled) maybe_compact();
  return cancelled;
}

void EventQueue::pop_top() {
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
  heap_.pop_back();
}

void EventQueue::maybe_compact() {
  // Every live callback has exactly one heap entry, so the dead count is
  // heap_.size() - pending(). Rebuild once dead entries dominate: O(n) then,
  // amortized O(1) per cancel, and the heap never exceeds 2x live + floor.
  if (heap_.size() < kCompactFloor) return;
  if (heap_.size() <= 2 * callbacks_.size()) return;
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const Entry& e) {
                               return callbacks_.find(e.seq) ==
                                      callbacks_.end();
                             }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), std::greater<>());
}

std::optional<double> EventQueue::next_time() {
  while (!heap_.empty()) {
    const Entry top = heap_.front();
    if (callbacks_.find(top.seq) == callbacks_.end()) {
      pop_top();  // cancelled; discard lazily like run_until does
      continue;
    }
    return top.time;
  }
  return std::nullopt;
}

bool EventQueue::run_one() {
  while (!heap_.empty()) {
    const Entry top = heap_.front();
    pop_top();
    const auto it = callbacks_.find(top.seq);
    if (it == callbacks_.end()) continue;  // cancelled
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    now_ = top.time;
    cb();
    return true;
  }
  return false;
}

std::size_t EventQueue::run_until(double until) {
  std::size_t executed = 0;
  while (!heap_.empty()) {
    // Peek past cancelled entries without executing.
    const Entry top = heap_.front();
    if (callbacks_.find(top.seq) == callbacks_.end()) {
      pop_top();
      continue;
    }
    if (top.time > until) break;
    run_one();
    ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

std::size_t EventQueue::run_all(std::size_t max_events) {
  std::size_t executed = 0;
  while (run_one()) {
    ++executed;
    SEAFL_CHECK(executed < max_events,
                "event budget exhausted (" << max_events
                                           << "); runaway scheduling loop?");
  }
  return executed;
}

}  // namespace seafl
