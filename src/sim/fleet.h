// Device fleet timing model.
//
// The paper's testbed (§III, §VI.A) models system heterogeneity two ways:
//  * heavy-tailed per-device compute speeds drawn from a Pareto distribution;
//  * after every local epoch, a device idles for a duration drawn from a
//    Zipf distribution (s = 1.7) capped at 60 virtual seconds.
// Fleet reproduces both. Per-device speed factors come from a stream keyed
// by the device id alone (a device is persistently fast or slow); idle
// periods are re-drawn per (device, round, epoch) from independent streams, so
// straggling has both a persistent and a transient component — matching the
// heavy-tailed "few very slow devices" regime the paper targets.
#pragma once

#include <cstdint>
#include <vector>

#include "common/distributions.h"
#include "common/rng.h"

namespace seafl {

/// Fleet construction parameters.
struct FleetConfig {
  std::size_t num_devices = 100;

  // Compute speed: per-device slowdown factor ~ Pareto(scale=1, shape).
  // shape ~1.2-2 gives the heavy tail the paper assumes; larger = more even.
  double pareto_shape = 1.5;
  double speed_cap = 20.0;  ///< clamp on the slowdown factor

  // Per-sample compute cost on a speed-1 device, in virtual seconds per
  // (sample * unit work). Actual epoch time scales with the model's relative
  // flops and the client's sample count. The default makes a 60-sample MLP
  // epoch take ~6 virtual seconds on the fastest device — commensurate with
  // the Zipf idle periods, so both heterogeneity sources matter (as in the
  // paper, where local epochs take seconds and idles reach 60 s).
  double seconds_per_unit_work = 0.1;

  // Idle periods between epochs: Zipf(s) over {1..max_idle_seconds} seconds.
  double zipf_s = 1.7;
  std::uint64_t max_idle_seconds = 60;
  double idle_scale = 1.0;  ///< multiplies drawn idle durations (0 disables)

  // Network latency per transfer direction (seconds); jittered ±20%.
  double mean_latency = 0.2;

  // Uplink bandwidth model (DESIGN.md §14): mean bytes/second a device can
  // push, so an upload's transmission time is payload_bytes / bandwidth on
  // top of the latency. Per-device bandwidth is the mean divided by a
  // persistent Pareto slowdown (same shape/cap as compute speed, drawn from
  // an independent stream) — the heavy-tailed slow *links* that compression
  // is meant to rescue. 0 disables: payload size does not affect timing,
  // which is the exact pre-bandwidth-model behavior.
  double mean_uplink_bytes_per_sec = 0.0;

  std::uint64_t seed = 42;
};

/// Immutable per-device timing oracle. O(1) memory regardless of fleet
/// size: every per-device quantity — including the persistent slowdown and
/// uplink draws — is derived at query time from its counter-keyed stream
/// (DESIGN.md §16), so a million-device fleet costs no more to hold than a
/// hundred-device one. Persistence is a property of the stream key
/// (seed, purpose, device), not of stored state.
class Fleet {
 public:
  explicit Fleet(const FleetConfig& config);

  std::size_t size() const { return config_.num_devices; }

  /// Persistent compute slowdown of device k (>= 1; Pareto-tailed).
  double slowdown(std::size_t device) const;

  /// Virtual seconds device k needs for ONE local epoch over `num_samples`
  /// samples of a model whose relative cost is `work_per_sample` (from
  /// estimate_flops_per_sample, normalized by caller), *excluding* idle time.
  double epoch_compute_seconds(std::size_t device, std::size_t num_samples,
                               double work_per_sample) const;

  /// Idle period after epoch `epoch` of round `round` on device k.
  /// Deterministic in (seed, device, round, epoch).
  double idle_seconds(std::size_t device, std::uint64_t round,
                      std::uint64_t epoch) const;

  /// One-way network latency for a transfer by device k in round `round`.
  /// `leg` disambiguates download (0) / upload (1) / notification (2).
  double latency_seconds(std::size_t device, std::uint64_t round,
                         std::uint64_t leg) const;

  /// Persistent uplink bandwidth of device k in bytes/second; 0 when the
  /// bandwidth model is off (treat as infinite).
  double uplink_bytes_per_sec(std::size_t device) const;

  /// Full upload duration for a payload of `payload_bytes`: upload-leg
  /// latency plus transmission time over the device's uplink. Collapses to
  /// latency_seconds(device, round, 1) exactly when the bandwidth model is
  /// off.
  double upload_seconds(std::size_t device, std::uint64_t round,
                        std::size_t payload_bytes) const;

  /// Full local-training duration: E epochs of compute plus E idle periods
  /// (the paper's devices idle after each completed epoch).
  double training_seconds(std::size_t device, std::uint64_t round,
                          std::size_t num_samples, double work_per_sample,
                          std::size_t epochs) const;

  const FleetConfig& config() const { return config_; }

 private:
  FleetConfig config_;
  ParetoSampler speed_sampler_;
  ZipfSampler idle_sampler_;
};

}  // namespace seafl
