#include "sim/schedule.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace seafl {

namespace {
constexpr double kInfinity = std::numeric_limits<double>::infinity();
}  // namespace

ScheduleTable::ScheduleTable(const ScheduleConfig& config,
                             std::size_t num_clients)
    : config_(config), num_clients_(num_clients) {
  if (!enabled()) return;
  SEAFL_CHECK(config.period > 0.0, "schedule period must be positive");
  SEAFL_CHECK(config.online_fraction > 0.0 && config.online_fraction <= 1.0,
              "online_fraction must be in (0, 1], got "
                  << config.online_fraction);
}

double ScheduleTable::phase(std::size_t client) const {
  // Derived per query — bitwise the draw a construction-time table stored.
  Rng rng(config_.seed, RngPurpose::kSchedule, client);
  return rng.uniform() * config_.period;
}

double ScheduleTable::local_time(std::size_t client, double t) const {
  SEAFL_CHECK(client < num_clients_,
              "schedule client " << client << " out of range");
  double local = std::fmod(t - phase(client), config_.period);
  if (local < 0.0) local += config_.period;
  return local;
}

bool ScheduleTable::online_at(std::size_t client, double t) const {
  if (!enabled()) return true;
  return local_time(client, t) < config_.online_fraction * config_.period;
}

double ScheduleTable::next_offline(std::size_t client, double t) const {
  if (!enabled() || config_.online_fraction >= 1.0) return kInfinity;
  const double window = config_.online_fraction * config_.period;
  const double local = local_time(client, t);
  if (local >= window) return t;  // already out of window
  double at = t + (window - local);
  // When the crossing lies within an ulp of t the sum can round back inside
  // the window; nudge to the first representable out-of-window instant so
  // the contract (!online_at(result)) holds exactly — the churn fixpoint
  // composition relies on it.
  while (online_at(client, at)) at = std::nextafter(at, kInfinity);
  return at;
}

double ScheduleTable::next_online(std::size_t client, double t) const {
  if (!enabled()) return t;
  const double window = config_.online_fraction * config_.period;
  const double local = local_time(client, t);
  if (local < window) return t;  // already in-window
  double at = t + (config_.period - local);
  while (!online_at(client, at)) at = std::nextafter(at, kInfinity);
  return at;
}

}  // namespace seafl
