// Discrete-event simulation core: a virtual clock plus a priority queue of
// timestamped callbacks. This is the substrate that replaces the PLATO
// framework's wall-clock emulation (DESIGN.md §1): FL wall-clock time is
// *simulated*, so experiments are deterministic and run as fast as the
// training math allows.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/error.h"

namespace seafl {

/// Virtual-time event loop. Events execute in (time, insertion-seq) order;
/// the sequence number makes simultaneous events deterministic.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Current virtual time in seconds (monotonically non-decreasing).
  double now() const { return now_; }

  /// Jumps the clock forward to `t` (>= now) without running anything.
  /// Checkpoint restore uses this to re-enter a run mid-stream before
  /// re-scheduling the serialized pending events.
  void advance_to(double t);

  /// Schedules `cb` at absolute virtual time `when` (>= now). Returns an id
  /// usable with cancel().
  std::uint64_t schedule_at(double when, Callback cb);

  /// Schedules `cb` after `delay` seconds of virtual time.
  std::uint64_t schedule_after(double delay, Callback cb);

  /// Cancels a pending event; returns false if it already ran or never
  /// existed. Cancellation is lazy (the heap entry stays behind and is
  /// skipped on pop), but once dead entries outnumber live ones the heap is
  /// compacted, so heap_size() stays within a constant factor of pending()
  /// under any cancel pattern.
  bool cancel(std::uint64_t id);

  /// Runs the next pending event (advancing the clock). Returns false when
  /// the queue is empty.
  bool run_one();

  /// Runs events until the queue drains or `until` virtual seconds pass
  /// (whichever first). Returns the number of events executed.
  std::size_t run_until(double until);

  /// Runs every pending event (including ones scheduled while running).
  /// `max_events` guards against runaway self-scheduling loops.
  std::size_t run_all(std::size_t max_events = 100'000'000);

  std::size_t pending() const { return callbacks_.size(); }
  bool empty() const { return pending() == 0; }

  /// Whether the event with this id is still scheduled (neither run nor
  /// cancelled). Checkpoint capture uses this to tell live tracked events
  /// from ones that already fired.
  bool is_pending(std::uint64_t id) const {
    return callbacks_.count(id) > 0;
  }

  /// Time of the earliest pending event, or nullopt when the queue is empty.
  /// Prunes lazily-cancelled heap heads as a side effect. Wall-clock drivers
  /// (net::SocketTransport) use this to bound their poll timeout.
  std::optional<double> next_time();

  /// Heap entries currently held, dead (lazily-cancelled) ones included.
  /// Bounded: compaction keeps this <= max(2 * pending(), a small floor).
  std::size_t heap_size() const { return heap_.size(); }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    // Ordered as a min-heap via std::greater on (time, seq).
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void pop_top();
  void maybe_compact();

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  // Min-heap (std::*_heap with std::greater) over a plain vector so
  // compaction can rebuild it in place — std::priority_queue hides its
  // container.
  std::vector<Entry> heap_;
  // Callbacks keyed by seq; an entry absent from the map was cancelled (or
  // already ran), so its heap entry is skipped lazily.
  std::unordered_map<std::uint64_t, Callback> callbacks_;
};

}  // namespace seafl
