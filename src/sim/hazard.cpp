#include "sim/hazard.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace seafl {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Exponential draw with the given mean. uniform() < 1, so log never sees 0.
double exponential(Rng& rng, double mean) {
  return -mean * std::log(1.0 - rng.uniform());
}

}  // namespace

ChurnModel::ChurnModel(const ChurnConfig& config, std::size_t num_clients)
    : ChurnModel(config, ScheduleConfig{}, num_clients) {}

ChurnModel::ChurnModel(const ChurnConfig& config,
                       const ScheduleConfig& schedule,
                       std::size_t num_clients)
    : config_(config),
      schedule_(schedule, num_clients),
      num_clients_(num_clients) {
  if (!churn_enabled()) return;
  SEAFL_CHECK(config.mean_uptime > 0.0, "mean_uptime must be positive");
  SEAFL_CHECK(config.mean_downtime > 0.0,
              "mean_downtime must be positive when churn is enabled");
}

ChurnModel::Timeline& ChurnModel::timeline(std::size_t client) const {
  SEAFL_CHECK(client < num_clients_,
              "churn client " << client << " out of range");
  auto [it, inserted] = timelines_.try_emplace(client);
  if (inserted) it->second.rng = Rng(config_.seed, RngPurpose::kChurn, client);
  it->second.touched = generation_;
  return it->second;
}

void ChurnModel::extend_past(Timeline& tl, double t) const {
  // Draws are strictly sequential per client, so the timeline is identical
  // no matter which queries (or in what order) forced its generation.
  while (tl.edges.empty() || tl.edges.back() <= t) {
    const double last = tl.edges.empty() ? tl.resume_from : tl.edges.back();
    const bool next_is_crash = (tl.dropped + tl.edges.size()) % 2 == 0;
    const double mean =
        next_is_crash ? config_.mean_uptime : config_.mean_downtime;
    tl.edges.push_back(last + exponential(tl.rng, mean));
  }
}

std::size_t ChurnModel::interval_at(std::size_t client, double t) const {
  Timeline& tl = timeline(client);
  extend_past(tl, t);
  // Number of edges at or before t; intervals are [edge_{i-1}, edge_i).
  // Pruned edges are all <= the horizon <= t, so they count wholesale.
  return tl.dropped +
         static_cast<std::size_t>(
             std::upper_bound(tl.edges.begin(), tl.edges.end(), t) -
             tl.edges.begin());
}

double ChurnModel::churn_next_offline(std::size_t client, double t) const {
  if (!churn_enabled()) return kInfinity;
  const std::size_t i = interval_at(client, t);
  if (i % 2 == 1) return t;  // already offline
  // End of the current online interval. extend_past guarantees the edge
  // after t is cached, so the global index lands inside the vector.
  return timelines_.at(client).edges[i - timelines_.at(client).dropped];
}

double ChurnModel::churn_next_online(std::size_t client, double t) const {
  if (!churn_enabled()) return t;
  const std::size_t i = interval_at(client, t);
  if (i % 2 == 0) return t;  // already online
  return timelines_.at(client).edges[i - timelines_.at(client).dropped];
}

bool ChurnModel::online_at(std::size_t client, double t) const {
  if (churn_enabled() && interval_at(client, t) % 2 != 0) return false;
  return schedule_.online_at(client, t);
}

bool ChurnModel::probe_online_at(std::size_t client, double t) const {
  if (churn_enabled()) {
    SEAFL_CHECK(client < num_clients_,
                "churn client " << client << " out of range");
    // Local regeneration from the stream head: no shared state touched, so
    // pool workers may probe concurrently. The edge sequence is the same
    // one the cache would hold, hence the same interval parity.
    Rng rng(config_.seed, RngPurpose::kChurn, client);
    double edge = 0.0;
    std::size_t drawn = 0;
    while (edge <= t) {
      const double mean =
          drawn % 2 == 0 ? config_.mean_uptime : config_.mean_downtime;
      edge += exponential(rng, mean);
      ++drawn;
    }
    // drawn - 1 edges are <= t, so t lies in global interval drawn - 1.
    if ((drawn - 1) % 2 != 0) return false;
  }
  return schedule_.online_at(client, t);
}

void ChurnModel::advance_horizon(double t) {
  if (!churn_enabled()) return;
  ++generation_;
  for (auto it = timelines_.begin(); it != timelines_.end();) {
    Timeline& tl = it->second;
    // Evict timelines unqueried for two consecutive advances; the next
    // query regenerates them from scratch, bit-for-bit.
    if (tl.touched + 1 < generation_) {
      it = timelines_.erase(it);
      continue;
    }
    // Prune edges at or before the horizon: future queries are all > t, so
    // only the count (for interval parity) and the last pruned value (for
    // sequential extension) still matter.
    const auto first_kept =
        std::upper_bound(tl.edges.begin(), tl.edges.end(), t);
    const auto pruned =
        static_cast<std::size_t>(first_kept - tl.edges.begin());
    if (pruned > 0) {
      tl.resume_from = tl.edges[pruned - 1];
      tl.edges.erase(tl.edges.begin(), first_kept);
      tl.dropped += pruned;
    }
    ++it;
  }
}

double ChurnModel::next_offline(std::size_t client, double t) const {
  if (!enabled()) return kInfinity;
  if (!online_at(client, t)) return t;
  // Online in both components: offline begins when either one flips.
  return std::min(churn_next_offline(client, t),
                  schedule_.next_offline(client, t));
}

double ChurnModel::next_online(std::size_t client, double t) const {
  if (!enabled()) return t;
  // Fixpoint: advance to each component's next online time until both agree.
  // Every iteration either converges or strictly advances past at least one
  // component's offline interval, so this terminates for any real timeline;
  // the iteration bound guards against degenerate configurations.
  double at = t;
  for (std::size_t iter = 0; iter < 100000; ++iter) {
    const double next =
        std::max(churn_next_online(client, at), schedule_.next_online(client, at));
    if (next == at) return at;
    at = next;
  }
  SEAFL_CHECK(false, "next_online did not converge for client "
                         << client << " from t=" << t);
  return at;
}

}  // namespace seafl
