#include "sim/fleet.h"

#include <algorithm>

namespace seafl {

Fleet::Fleet(const FleetConfig& config)
    : config_(config),
      speed_sampler_(1.0, config.pareto_shape),
      idle_sampler_(std::max<std::uint64_t>(1, config.max_idle_seconds),
                    config.zipf_s) {
  SEAFL_CHECK(config.num_devices >= 1, "fleet needs at least one device");
  SEAFL_CHECK(config.seconds_per_unit_work > 0.0,
              "seconds_per_unit_work must be positive");
  SEAFL_CHECK(config.speed_cap >= 1.0, "speed cap must be >= 1");
}

double Fleet::slowdown(std::size_t device) const {
  SEAFL_CHECK(device < config_.num_devices, "device " << device
                                                      << " out of range");
  // Derived at query time from the per-device stream; bitwise identical to
  // the draw a construction-time table would have stored.
  Rng rng(config_.seed, RngPurpose::kDeviceSpeed, device);
  return speed_sampler_.sample_capped(rng, config_.speed_cap);
}

double Fleet::epoch_compute_seconds(std::size_t device,
                                    std::size_t num_samples,
                                    double work_per_sample) const {
  SEAFL_CHECK(work_per_sample > 0.0, "work_per_sample must be positive");
  return static_cast<double>(num_samples) * work_per_sample *
         config_.seconds_per_unit_work * slowdown(device);
}

double Fleet::idle_seconds(std::size_t device, std::uint64_t round,
                           std::uint64_t epoch) const {
  if (config_.idle_scale <= 0.0) return 0.0;
  Rng rng(config_.seed, RngPurpose::kDeviceSpeed,
          /*a=*/1'000'000 + device, round, epoch);
  return config_.idle_scale *
         static_cast<double>(idle_sampler_.sample(rng));
}

double Fleet::latency_seconds(std::size_t device, std::uint64_t round,
                              std::uint64_t leg) const {
  if (config_.mean_latency <= 0.0) return 0.0;
  Rng rng(config_.seed, RngPurpose::kNetwork, device, round, leg);
  return config_.mean_latency * rng.uniform(0.8, 1.2);
}

double Fleet::uplink_bytes_per_sec(std::size_t device) const {
  if (config_.mean_uplink_bytes_per_sec <= 0.0) return 0.0;
  SEAFL_CHECK(device < config_.num_devices,
              "device " << device << " out of range");
  // Heavy-tailed link speeds, independent of compute speeds: the a-label
  // offset keeps the stream disjoint from latency draws (a = device,
  // b = round) the same way idle_seconds offsets within kDeviceSpeed.
  Rng rng(config_.seed, RngPurpose::kNetwork, /*a=*/2'000'000 + device);
  return config_.mean_uplink_bytes_per_sec /
         speed_sampler_.sample_capped(rng, config_.speed_cap);
}

double Fleet::upload_seconds(std::size_t device, std::uint64_t round,
                             std::size_t payload_bytes) const {
  double seconds = latency_seconds(device, round, /*leg=*/1);
  if (config_.mean_uplink_bytes_per_sec > 0.0) {
    seconds +=
        static_cast<double>(payload_bytes) / uplink_bytes_per_sec(device);
  }
  return seconds;
}

double Fleet::training_seconds(std::size_t device, std::uint64_t round,
                               std::size_t num_samples,
                               double work_per_sample,
                               std::size_t epochs) const {
  double total = 0.0;
  for (std::size_t e = 0; e < epochs; ++e) {
    total += epoch_compute_seconds(device, num_samples, work_per_sample);
    total += idle_seconds(device, round, e);
  }
  return total;
}

}  // namespace seafl
