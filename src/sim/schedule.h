// Diurnal availability schedule: periodic per-client online windows.
//
// Long-horizon runs need day/night population swings that the memoryless
// churn process cannot express: a phone is reliably on charge overnight and
// reliably pocketed at work, every day. ScheduleTable models this as a
// deterministic periodic gate — client k is online during
//     [phase_k + n * period,  phase_k + n * period + online_fraction * period)
// for every integer n, with phase_k derived per client from the root seed
// (RngPurpose::kSchedule) at query time — the table stores no per-client
// state at all (O(1) memory at any population, DESIGN.md §16). Like the
// churn timelines the whole table is a pure function of (seed, client), so
// it needs no checkpointing and every query is O(1).
//
// The schedule composes with ChurnModel as an overlay (hazard.h): a client
// is online iff both its churn process and its schedule window say so —
// i.e. random crashes ride on top of the deterministic diurnal tide.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace seafl {

/// Diurnal window parameters. period == 0 disables the schedule (every
/// client permanently in-window).
struct ScheduleConfig {
  double period = 0.0;           ///< full day length, virtual seconds
  double online_fraction = 0.5;  ///< in-window share of each period, (0, 1]
  std::uint64_t seed = 42;       ///< root seed (kSchedule streams derive)
};

/// Deterministic periodic availability gate (see file comment).
class ScheduleTable {
 public:
  /// A disabled table: every client is always in-window.
  ScheduleTable() = default;

  ScheduleTable(const ScheduleConfig& config, std::size_t num_clients);

  bool enabled() const { return config_.period > 0.0; }
  std::size_t num_clients() const { return num_clients_; }

  /// Is the client inside an online window at virtual time t (>= 0)?
  bool online_at(std::size_t client, double t) const;

  /// First time >= t at which the client is (or falls) out of window.
  /// Returns t when already out; infinity when the schedule is disabled or
  /// online_fraction == 1.
  double next_offline(std::size_t client, double t) const;

  /// First time >= t at which the client is (or comes back) in-window.
  double next_online(std::size_t client, double t) const;

 private:
  /// Per-client window offset in [0, period), derived from the phase stream.
  double phase(std::size_t client) const;

  /// Position of t inside the client's period, in [0, period).
  double local_time(std::size_t client, double t) const;

  ScheduleConfig config_;
  std::size_t num_clients_ = 0;
};

}  // namespace seafl
