// Little-endian byte (de)serialization primitives shared by binary
// container formats (the SEAFLCKPT checkpoint container; net/wire keeps its
// own private copies for wire-protocol stability). Writers append to a
// std::string; the Reader is bounds-checked and never throws — after any
// failed read `ok()` turns false and every later read returns zero, so a
// decoder can run a whole parse and check validity once at the end.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace seafl::bytes {

inline void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

inline void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void put_f64(std::string& out, double v) {
  static_assert(sizeof(double) == 8, "IEEE-754 double expected");
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, 8);
  put_u64(out, bits);
}

inline void put_f32(std::string& out, float v) {
  static_assert(sizeof(float) == 4, "IEEE-754 float expected");
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, 4);
  put_u32(out, bits);
}

/// Length-prefixed byte blob (u64 length + payload).
inline void put_blob(std::string& out, const std::string& blob) {
  put_u64(out, blob.size());
  out.append(blob);
}

/// Bounds-checked sequential reader over a byte span it does not own.
class Reader {
 public:
  Reader(const void* data, std::size_t size)
      : data_(static_cast<const unsigned char*>(data)), size_(size) {}

  bool ok() const { return ok_; }
  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return ok_ ? size_ - pos_ : 0; }

  std::uint8_t u8() {
    if (!take(1)) return 0;
    return data_[pos_ - 1];
  }

  std::uint16_t u16() {
    if (!take(2)) return 0;
    const unsigned char* p = data_ + pos_ - 2;
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
  }

  std::uint32_t u32() {
    if (!take(4)) return 0;
    const unsigned char* p = data_ + pos_ - 4;
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
    return v;
  }

  std::uint64_t u64() {
    if (!take(8)) return 0;
    const unsigned char* p = data_ + pos_ - 8;
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    return v;
  }

  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, 8);
    return ok_ ? v : 0.0;
  }

  float f32() {
    const std::uint32_t bits = u32();
    float v = 0.0f;
    std::memcpy(&v, &bits, 4);
    return ok_ ? v : 0.0f;
  }

  /// Length-prefixed blob written by put_blob. Empty on failure.
  std::string blob() {
    const std::uint64_t len = u64();
    if (!ok_ || len > remaining()) {
      ok_ = false;
      return {};
    }
    std::string out(reinterpret_cast<const char*>(data_ + pos_),
                    static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return out;
  }

  /// Raw byte run without a length prefix. Null on failure.
  const unsigned char* bytes(std::size_t n) {
    if (!take(n)) return nullptr;
    return data_ + pos_ - n;
  }

 private:
  bool take(std::size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace seafl::bytes
