#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace seafl {

namespace {
thread_local bool tl_serial_kernels = false;

/// Pool size requested by set_global_pool_threads before first use.
std::atomic<std::size_t> g_requested_threads{0};
std::atomic<bool> g_pool_constructed{false};
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  // Tasks running on a worker must never fan out to the same pool: if every
  // worker blocked waiting for chunks that only workers can run, the pool
  // would deadlock. parallel_for checks this flag and runs serially instead.
  tl_serial_kernels = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool(g_requested_threads.load());
  g_pool_constructed.store(true);
  return pool;
}

void set_global_pool_threads(std::size_t num_threads) {
  if (g_pool_constructed.load()) {
    const std::size_t actual = global_pool().size();
    const std::size_t effective =
        num_threads == 0
            ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
            : num_threads;
    SEAFL_CHECK(actual == effective,
                "set_global_pool_threads(" << num_threads
                << ") after the pool already started with " << actual
                << " workers; pass --jobs before any parallel work");
    return;
  }
  g_requested_threads.store(num_threads);
}

bool serial_kernels_active() { return tl_serial_kernels; }

SerialKernelScope::SerialKernelScope() : prev_(tl_serial_kernels) {
  tl_serial_kernels = true;
}

SerialKernelScope::~SerialKernelScope() { tl_serial_kernels = prev_; }

void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  if (begin >= end) return;
  if (serial_kernels_active()) {  // pool worker or SerialKernelScope
    fn(begin, end);
    return;
  }
  const std::size_t n = end - begin;
  ThreadPool& pool = global_pool();
  const std::size_t max_chunks = pool.size() + 1;  // workers + caller
  if (grain == 0) grain = 1;
  std::size_t num_chunks = std::min(max_chunks, (n + grain - 1) / grain);
  if (num_chunks <= 1) {
    fn(begin, end);
    return;
  }
  const std::size_t chunk = (n + num_chunks - 1) / num_chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(num_chunks - 1);
  // Workers take chunks 1..num_chunks-1; the caller runs chunk 0 so a 1-core
  // host still makes progress without a context switch.
  for (std::size_t c = 1; c < num_chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    futures.push_back(pool.submit([&fn, lo, hi] { fn(lo, hi); }));
  }
  fn(begin, std::min(end, begin + chunk));
  for (auto& f : futures) f.get();
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  parallel_for_chunked(
      begin, end,
      [&fn](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      grain);
}

}  // namespace seafl
