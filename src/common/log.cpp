#include "common/log.h"

#include <chrono>
#include <cstdio>

namespace seafl {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

StderrSink& default_sink() {
  static StderrSink sink;
  return sink;
}

std::atomic<LineSink*> g_sink{nullptr};  // nullptr = default stderr sink

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    default:               return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void set_log_sink(LineSink* sink) { g_sink.store(sink); }

namespace detail {
void log_line(LogLevel level, const std::string& message) {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  const double elapsed =
      std::chrono::duration<double>(clock::now() - start).count();
  char prefix[40];
  std::snprintf(prefix, sizeof(prefix), "[%9.3f] [%s] ", elapsed,
                level_tag(level));
  LineSink* sink = g_sink.load();
  if (sink == nullptr) sink = &default_sink();
  sink->write_line(prefix + message);
}
}  // namespace detail

}  // namespace seafl
