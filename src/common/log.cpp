#include "common/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace seafl {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_sink_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    default:               return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

namespace detail {
void log_line(LogLevel level, const std::string& message) {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  const double elapsed =
      std::chrono::duration<double>(clock::now() - start).count();
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[%9.3f] [%s] %s\n", elapsed, level_tag(level),
               message.c_str());
}
}  // namespace detail

}  // namespace seafl
