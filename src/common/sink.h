// Line-oriented output sinks shared by the logger and the observability
// journal writers: one abstraction for "append a text line somewhere",
// with stderr and buffered-file implementations. Sinks are thread-safe —
// concurrent write_line calls never interleave within a line.
#pragma once

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace seafl {

/// Abstract destination for text lines (newline appended by the sink).
class LineSink {
 public:
  virtual ~LineSink() = default;
  /// Appends `line` plus a newline. Must be safe to call concurrently.
  virtual void write_line(std::string_view line) = 0;
  /// Pushes buffered output to the underlying medium.
  virtual void flush() {}
};

/// Writes lines to stderr (the logger's default destination).
class StderrSink final : public LineSink {
 public:
  void write_line(std::string_view line) override;
  void flush() override;

 private:
  std::mutex mutex_;
};

/// Buffered file sink. The file is created (truncated) on construction and
/// flushed + closed on destruction; construction throws Error when the path
/// cannot be opened.
class FileSink final : public LineSink {
 public:
  explicit FileSink(const std::string& path);
  ~FileSink() override;
  FileSink(const FileSink&) = delete;
  FileSink& operator=(const FileSink&) = delete;

  void write_line(std::string_view line) override;
  void flush() override;
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::FILE* file_;
  std::mutex mutex_;
};

}  // namespace seafl
