// Small descriptive-statistics helpers used by benches, examples and the
// fairness metrics: online mean/variance (Welford) and order statistics.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.h"

namespace seafl {

/// Numerically stable online accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Population variance; 0 with fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// p-th percentile (0 <= p <= 1) with linear interpolation between order
/// statistics. Copies and sorts; intended for result post-processing, not
/// hot loops. Requires a non-empty input.
double percentile(std::span<const double> values, double p);

/// Jain's fairness index over non-negative values:
/// (sum x)^2 / (n * sum x^2), in (0, 1]; 1 = perfectly even. The standard
/// participation-fairness metric in FL scheduling work.
double jains_index(std::span<const double> values);

}  // namespace seafl
