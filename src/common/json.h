// Minimal JSON value type with a parser and serializer — just enough for the
// experiment result cache, sweep artifacts and observability journals, with
// no external dependency. (Lives in common so low-level layers like
// seafl::obs can serialize without depending on the experiment stack;
// seafl::exp re-exports it from exp/json.h.)
//
// Numbers are stored as double and serialized with 17 significant digits, so
// every finite double survives a dump/parse round trip bit-exactly (the
// cache's byte-identical-results guarantee depends on this). Objects keep
// their keys sorted, making dumps canonical.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace seafl {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

/// A JSON document node: null, bool, number, string, array or object.
class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::uint64_t u) : value_(static_cast<double>(u)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  /// Typed accessors; throw Error when the node holds a different type.
  bool as_bool() const;
  double as_double() const;
  std::uint64_t as_u64() const;  ///< number, checked non-negative & integral
  std::size_t as_size() const { return static_cast<std::size_t>(as_u64()); }
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  /// Object member access; throws when not an object or the key is absent.
  const Json& at(const std::string& key) const;
  /// True when this is an object containing `key`.
  bool contains(const std::string& key) const;

  /// Serializes compactly (no whitespace). Deterministic: object keys are
  /// sorted, doubles printed with up to 17 significant digits.
  std::string dump() const;

  /// Parses a complete JSON document; throws Error with the byte offset on
  /// malformed input or trailing garbage.
  static Json parse(const std::string& text);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value_;
};

}  // namespace seafl
