#include "common/sink.h"

#include "common/error.h"

namespace seafl {

void StderrSink::write_line(std::string_view line) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fputc('\n', stderr);
}

void StderrSink::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fflush(stderr);
}

FileSink::FileSink(const std::string& path)
    : path_(path), file_(std::fopen(path.c_str(), "w")) {
  SEAFL_CHECK(file_ != nullptr, "cannot open '" << path << "' for writing");
}

FileSink::~FileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void FileSink::write_line(std::string_view line) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
}

void FileSink::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fflush(file_);
}

}  // namespace seafl
