// Minimal leveled logger. Single global sink (stderr), thread-safe, with a
// runtime-adjustable level so benches can silence per-round chatter.
#pragma once

#include <sstream>
#include <string>

namespace seafl {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);

/// Returns the current global minimum level.
LogLevel log_level();

namespace detail {
/// Emits one formatted line (timestamped, level-tagged) to stderr.
void log_line(LogLevel level, const std::string& message);
}  // namespace detail

}  // namespace seafl

#define SEAFL_LOG_AT(level, ...)                               \
  do {                                                         \
    if (static_cast<int>(level) >=                             \
        static_cast<int>(::seafl::log_level())) {              \
      std::ostringstream seafl_log_os_;                        \
      seafl_log_os_ << __VA_ARGS__;                            \
      ::seafl::detail::log_line(level, seafl_log_os_.str());   \
    }                                                          \
  } while (false)

#define SEAFL_DEBUG(...) SEAFL_LOG_AT(::seafl::LogLevel::kDebug, __VA_ARGS__)
#define SEAFL_INFO(...) SEAFL_LOG_AT(::seafl::LogLevel::kInfo, __VA_ARGS__)
#define SEAFL_WARN(...) SEAFL_LOG_AT(::seafl::LogLevel::kWarn, __VA_ARGS__)
#define SEAFL_ERROR(...) SEAFL_LOG_AT(::seafl::LogLevel::kError, __VA_ARGS__)
