// Minimal leveled logger. One process-wide sink (stderr by default, any
// LineSink via set_log_sink — the same abstraction the obs trace writers
// use), thread-safe, with a runtime-adjustable level so benches can silence
// per-round chatter and a rate-limited macro so per-round debug logging
// stays usable at 100-client scale.
#pragma once

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

#include "common/sink.h"

namespace seafl {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);

/// Returns the current global minimum level.
LogLevel log_level();

/// Redirects log output to `sink` (not owned; must outlive the redirection).
/// nullptr restores the default stderr sink.
void set_log_sink(LineSink* sink);

namespace detail {
/// Emits one formatted line (timestamped, level-tagged) to the current sink.
void log_line(LogLevel level, const std::string& message);
}  // namespace detail

}  // namespace seafl

#define SEAFL_LOG_AT(level, ...)                               \
  do {                                                         \
    if (static_cast<int>(level) >=                             \
        static_cast<int>(::seafl::log_level())) {              \
      std::ostringstream seafl_log_os_;                        \
      seafl_log_os_ << __VA_ARGS__;                            \
      ::seafl::detail::log_line(level, seafl_log_os_.str());   \
    }                                                          \
  } while (false)

#define SEAFL_DEBUG(...) SEAFL_LOG_AT(::seafl::LogLevel::kDebug, __VA_ARGS__)
#define SEAFL_INFO(...) SEAFL_LOG_AT(::seafl::LogLevel::kInfo, __VA_ARGS__)
#define SEAFL_WARN(...) SEAFL_LOG_AT(::seafl::LogLevel::kWarn, __VA_ARGS__)
#define SEAFL_ERROR(...) SEAFL_LOG_AT(::seafl::LogLevel::kError, __VA_ARGS__)

// Rate limiting: logs occurrences 1, n+1, 2n+1, ... of this call site (the
// counter is per-site and counts even while the level filter drops the
// line, so lowering the level later keeps the cadence).
#define SEAFL_LOG_EVERY_N(n, level, ...)                                     \
  do {                                                                       \
    static_assert((n) >= 1, "SEAFL_LOG_EVERY_N needs n >= 1");               \
    static std::atomic<std::uint64_t> seafl_log_occurrences_{0};             \
    if (seafl_log_occurrences_.fetch_add(1, std::memory_order_relaxed) %     \
            (n) ==                                                           \
        0) {                                                                 \
      SEAFL_LOG_AT(level, __VA_ARGS__);                                      \
    }                                                                        \
  } while (false)

#define SEAFL_DEBUG_EVERY_N(n, ...) \
  SEAFL_LOG_EVERY_N(n, ::seafl::LogLevel::kDebug, __VA_ARGS__)
#define SEAFL_INFO_EVERY_N(n, ...) \
  SEAFL_LOG_EVERY_N(n, ::seafl::LogLevel::kInfo, __VA_ARGS__)
#define SEAFL_WARN_EVERY_N(n, ...) \
  SEAFL_LOG_EVERY_N(n, ::seafl::LogLevel::kWarn, __VA_ARGS__)
