// Tiny command-line flag parser for bench/example binaries.
// Supports --name=value and --name value forms plus boolean switches.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace seafl {

/// Parses argv into a flag map and exposes typed getters with defaults.
/// Unknown flags are collected (not rejected) so harness wrappers can pass
/// through extra options.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  /// True if --name was present (with or without a value).
  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  /// Boolean flags: "--fast" or "--fast=true/false/1/0".
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace seafl
