// Tiny command-line flag parser for bench/example binaries.
// Supports --name=value and --name value forms plus boolean switches.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace seafl {

/// A parsed "host:port" endpoint (see CliArgs::get_host_port).
struct HostPort {
  std::string host;
  std::uint16_t port = 0;
};

/// Parses argv into a flag map and exposes typed getters with defaults.
/// Unknown flags are collected (not rejected) so harness wrappers can pass
/// through extra options.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  /// True if --name was present (with or without a value).
  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  /// Boolean flags: "--fast" or "--fast=true/false/1/0".
  bool get_bool(const std::string& name, bool fallback) const;

  /// Port-valued flag ("--listen 7070"). Validates the value is an integer
  /// in [0, 65535] (0 = pick an ephemeral port); throws seafl::Error
  /// otherwise.
  std::uint16_t get_port(const std::string& name,
                         std::uint16_t fallback) const;

  /// Endpoint flag ("--connect host:port"). A bare "port" value reuses the
  /// fallback host. Validates a non-empty host and a port in [1, 65535];
  /// throws seafl::Error on malformed values.
  HostPort get_host_port(const std::string& name,
                         const HostPort& fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace seafl
