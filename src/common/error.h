// Error handling primitives shared by every SEAFL module.
//
// We use exceptions for unrecoverable precondition violations: the library is
// a research framework, and failing loudly with context beats silently
// producing wrong science. SEAFL_CHECK is always on (it guards user-facing
// API contracts); SEAFL_DCHECK compiles out in release builds and guards
// internal invariants on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace seafl {

/// Exception thrown on violated API contracts and invariants.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "SEAFL_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace seafl

/// Always-on contract check; throws seafl::Error with expression + location.
/// Usage: SEAFL_CHECK(k > 0, "buffer size must be positive, got " << k);
#define SEAFL_CHECK(expr, ...)                                              \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream seafl_check_os_;                                   \
      static_cast<void>(seafl_check_os_ __VA_OPT__(<< __VA_ARGS__));        \
      ::seafl::detail::raise_check_failure(#expr, __FILE__, __LINE__,       \
                                           seafl_check_os_.str());          \
    }                                                                       \
  } while (false)

/// Debug-only invariant check. Compiles to nothing when NDEBUG is defined.
#ifdef NDEBUG
#define SEAFL_DCHECK(expr, ...) \
  do {                          \
  } while (false)
#else
#define SEAFL_DCHECK(expr, ...) SEAFL_CHECK(expr, __VA_ARGS__)
#endif
