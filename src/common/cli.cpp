#include "common/cli.h"

#include <cstdlib>

#include "common/error.h"

namespace seafl {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "";  // boolean switch
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string CliArgs::get_string(const std::string& name,
                                const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  SEAFL_CHECK(!it->second.empty(), "flag --" << name << " needs a value");
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  SEAFL_CHECK(!it->second.empty(), "flag --" << name << " needs a value");
  return std::strtod(it->second.c_str(), nullptr);
}

namespace {

/// Strict decimal port parse: digits only, value <= 65535.
bool parse_port(const std::string& text, std::uint16_t& port) {
  if (text.empty() || text.size() > 5) return false;
  std::uint32_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint32_t>(c - '0');
  }
  if (value > 65535) return false;
  port = static_cast<std::uint16_t>(value);
  return true;
}

}  // namespace

std::uint16_t CliArgs::get_port(const std::string& name,
                                std::uint16_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  std::uint16_t port = 0;
  SEAFL_CHECK(parse_port(it->second, port),
              "flag --" << name << " needs a port in [0, 65535], got '"
                        << it->second << "'");
  return port;
}

HostPort CliArgs::get_host_port(const std::string& name,
                                const HostPort& fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second;
  HostPort out = fallback;
  const auto colon = v.rfind(':');
  std::string port_text;
  if (colon == std::string::npos) {
    port_text = v;  // bare port, host from the fallback
  } else {
    out.host = v.substr(0, colon);
    port_text = v.substr(colon + 1);
    SEAFL_CHECK(!out.host.empty(),
                "flag --" << name << " has an empty host in '" << v << "'");
  }
  SEAFL_CHECK(parse_port(port_text, out.port) && out.port != 0,
              "flag --" << name << " needs host:port with a port in "
                        << "[1, 65535], got '" << v << "'");
  return out;
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "1" || v == "true" || v == "yes") return true;
  if (v == "0" || v == "false" || v == "no") return false;
  SEAFL_CHECK(false, "flag --" << name << " has non-boolean value '" << v
                               << "'");
  return fallback;
}

}  // namespace seafl
