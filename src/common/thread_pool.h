// Fixed-size thread pool with a shared task queue, plus a blocked
// parallel_for built on top of it.
//
// Design notes (hpc-parallel idioms):
//  * One global pool (global_pool()) shared by GEMM, elementwise kernels and
//    the FL client executor, so the process never oversubscribes cores.
//  * parallel_for runs the caller's lambda on [begin, end) in contiguous
//    chunks; the calling thread participates, so a 1-core host degrades to a
//    plain loop with no queueing overhead.
//  * Determinism: parallel_for never reorders results — each index is
//    processed exactly once and chunk assignment is a pure function of the
//    range and worker count, so code whose per-index work is independent is
//    bit-reproducible at any thread count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/error.h"

namespace seafl {

/// A fixed-size pool of worker threads consuming from one FIFO queue.
class ThreadPool {
 public:
  /// @param num_threads worker count; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Joins all workers. Pending tasks are drained before destruction returns.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      SEAFL_CHECK(!stopping_, "submit() on a stopped ThreadPool");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Number of worker threads (not counting callers of parallel_for).
  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Returns the process-wide shared pool (lazily constructed with one worker
/// per hardware thread). All SEAFL kernels schedule onto this pool.
ThreadPool& global_pool();

/// Runs fn(i) for every i in [begin, end), partitioned into contiguous chunks
/// across the pool plus the calling thread. Blocks until all indices finish.
/// fn must be safe to invoke concurrently for distinct indices.
///
/// @param grain minimum indices per chunk; ranges smaller than 2*grain run
///        serially on the caller to avoid scheduling overhead.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 1024);

/// Chunked variant: fn(chunk_begin, chunk_end) is invoked once per chunk so
/// the body can amortize per-chunk setup (e.g. local accumulators).
void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain = 1024);

}  // namespace seafl
