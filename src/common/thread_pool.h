// Fixed-size thread pool with a shared task queue, plus a blocked
// parallel_for built on top of it.
//
// Design notes (hpc-parallel idioms):
//  * One global pool (global_pool()) shared by GEMM, elementwise kernels and
//    the FL client executor, so the process never oversubscribes cores.
//  * parallel_for runs the caller's lambda on [begin, end) in contiguous
//    chunks; the calling thread participates, so a 1-core host degrades to a
//    plain loop with no queueing overhead.
//  * Determinism: parallel_for never reorders results — each index is
//    processed exactly once and chunk assignment is a pure function of the
//    range and worker count, so code whose per-index work is independent is
//    bit-reproducible at any thread count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/error.h"

namespace seafl {

/// A fixed-size pool of worker threads consuming from one FIFO queue.
class ThreadPool {
 public:
  /// @param num_threads worker count; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Joins all workers. Pending tasks are drained before destruction returns.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      SEAFL_CHECK(!stopping_, "submit() on a stopped ThreadPool");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Number of worker threads (not counting callers of parallel_for).
  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Returns the process-wide shared pool (lazily constructed with one worker
/// per hardware thread, or the size requested via set_global_pool_threads).
/// All SEAFL kernels schedule onto this pool.
ThreadPool& global_pool();

/// Sizes the global pool explicitly (the `--jobs` knob). Must be called
/// before the pool's first use; calling afterwards with a different size is
/// an error (the already-running workers cannot be resized). 0 restores the
/// hardware-concurrency default. Idempotent for an equal size.
void set_global_pool_threads(std::size_t num_threads);

/// True when the current thread must not fan kernel work out to the pool:
/// either it *is* a pool worker (fanning out could deadlock — every worker
/// waiting on chunks only workers can run), or it is inside a
/// SerialKernelScope. parallel_for degrades to a plain loop in this state;
/// results are unchanged because chunk outputs never depend on the split.
bool serial_kernels_active();

/// RAII marker forcing serial kernels on the current thread. The experiment
/// runner wraps each simulation in one so concurrent runs get one core each
/// instead of contending over the pool mid-GEMM.
class SerialKernelScope {
 public:
  SerialKernelScope();
  ~SerialKernelScope();
  SerialKernelScope(const SerialKernelScope&) = delete;
  SerialKernelScope& operator=(const SerialKernelScope&) = delete;

 private:
  bool prev_;
};

/// Runs fn(i) for every i in [begin, end), partitioned into contiguous chunks
/// across the pool plus the calling thread. Blocks until all indices finish.
/// fn must be safe to invoke concurrently for distinct indices.
///
/// @param grain minimum indices per chunk; ranges smaller than 2*grain run
///        serially on the caller to avoid scheduling overhead.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 1024);

/// Chunked variant: fn(chunk_begin, chunk_end) is invoked once per chunk so
/// the body can amortize per-chunk setup (e.g. local accumulators).
void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain = 1024);

}  // namespace seafl
