// Deterministic random number generation for reproducible experiments.
//
// Every piece of randomness in SEAFL flows from a named *stream* derived from
// a root seed via SplitMix64 hashing (e.g. the stream for client 17's local
// shuffle in round 42 is derive(root, kClientTrain, 17, 42)). This makes every
// experiment bit-reproducible regardless of thread scheduling: a client update
// depends only on its own stream, never on global RNG state mutated by other
// clients.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded through SplitMix64
// as its authors recommend. It is small, fast, and statistically strong — and
// unlike std::mt19937 its behaviour here is fully specified by this header,
// not by the standard library implementation.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.h"

namespace seafl {

/// One step of the SplitMix64 hash/generator. Used both as a stream deriver
/// and as the seeding function for Xoshiro256.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derives a child seed from a root seed and up to four stream labels.
/// Distinct label tuples yield (with overwhelming probability) independent
/// streams. Labels are typically (purpose, client_id, round).
inline std::uint64_t derive_seed(std::uint64_t root, std::uint64_t a,
                                 std::uint64_t b = 0, std::uint64_t c = 0,
                                 std::uint64_t d = 0) {
  std::uint64_t s = root;
  std::uint64_t h = splitmix64(s);
  s ^= a * 0x9e3779b97f4a7c15ULL;
  h ^= splitmix64(s);
  s ^= b * 0xc2b2ae3d27d4eb4fULL;
  h ^= splitmix64(s);
  s ^= c * 0x165667b19e3779f9ULL;
  h ^= splitmix64(s);
  s ^= d * 0x27d4eb2f165667c5ULL;
  h ^= splitmix64(s);
  return h;
}

/// Well-known stream purposes, used as the first label of derive_seed so that
/// different subsystems can never collide even with equal (id, round) labels.
enum class RngPurpose : std::uint64_t {
  kDataGen = 1,        ///< synthetic dataset generation
  kPartition = 2,      ///< non-IID partitioning
  kInit = 3,           ///< model weight initialization
  kClientTrain = 4,    ///< local-training mini-batch shuffling
  kDeviceSpeed = 5,    ///< device speed / idle-time sampling
  kSelection = 6,      ///< server-side client selection
  kNetwork = 7,        ///< network latency sampling
  kDropout = 8,        ///< client availability / upload loss
  kChurn = 9,          ///< device crash/recovery timelines (sim/hazard)
  kCompress = 10,      ///< stochastic-rounding noise in upload codecs
  kSchedule = 11,      ///< diurnal availability phase (sim/schedule)
  kTest = 100,         ///< unit tests
};

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator, so it can be used
/// with <random> distributions, though SEAFL's own samplers are preferred for
/// cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  /// Convenience: construct directly on a derived stream.
  Rng(std::uint64_t root, RngPurpose purpose, std::uint64_t a = 0,
      std::uint64_t b = 0, std::uint64_t c = 0)
      : Rng(derive_seed(root, static_cast<std::uint64_t>(purpose), a, b, c)) {}

  void reseed(std::uint64_t seed) {
    for (auto& word : state_) word = splitmix64(seed);
    // All-zero state is the one forbidden state of xoshiro; splitmix64 cannot
    // produce four consecutive zeros from any seed, but guard anyway.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0)
      state_[0] = 1;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Uses rejection sampling to avoid modulo bias.
  std::uint64_t uniform_int(std::uint64_t n) {
    SEAFL_CHECK(n > 0, "uniform_int bound must be positive");
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    SEAFL_CHECK(lo <= hi, "uniform_int range is empty");
    return lo + static_cast<std::int64_t>(
                    uniform_int(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Standard normal via Box–Muller (deterministic, platform-independent).
  double normal() {
    if (have_cached_normal_) {
      have_cached_normal_ = false;
      return cached_normal_;
    }
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();  // avoid log(0)
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    cached_normal_ = r * std::sin(kTwoPi * u2);
    have_cached_normal_ = true;
    return r * std::cos(kTwoPi * u2);
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) { return uniform() < p; }

  /// Fisher–Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    const auto n = c.size();
    if (n < 2) return;
    for (std::size_t i = n - 1; i > 0; --i) {
      const std::size_t j = uniform_int(static_cast<std::uint64_t>(i) + 1);
      using std::swap;
      swap(c[i], c[j]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool have_cached_normal_ = false;
};

}  // namespace seafl
