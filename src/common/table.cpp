#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace seafl {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_header(std::vector<std::string> header) {
  SEAFL_CHECK(rows_.empty(), "set_header must precede add_row");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  SEAFL_CHECK(header_.empty() || row.size() == header_.size(),
              "row arity " << row.size() << " != header arity "
                           << header_.size());
  rows_.push_back(std::move(row));
}

void Table::print() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto print_row = [&](const std::vector<std::string>& row) {
    std::string line = "| ";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      line += cell;
      line.append(widths[i] - cell.size(), ' ');
      line += " | ";
    }
    std::printf("%s\n", line.c_str());
  };
  std::size_t total = 1;
  for (auto w : widths) total += w + 3;

  if (!title_.empty()) std::printf("\n%s\n", title_.c_str());
  std::printf("%s\n", std::string(total, '-').c_str());
  if (!header_.empty()) {
    print_row(header_);
    std::printf("%s\n", std::string(total, '-').c_str());
  }
  for (const auto& row : rows_) print_row(row);
  std::printf("%s\n", std::string(total, '-').c_str());
  std::fflush(stdout);
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  SEAFL_CHECK(out.good(), "cannot open CSV for writing: " << path);
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << csv_escape(row[i]);
    }
    out << '\n';
  };
  if (!header_.empty()) write_row(header_);
  for (const auto& row : rows_) write_row(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

std::string fmt_time_or_na(double seconds) {
  if (seconds < 0.0) return "n/a";
  return fmt(seconds, 1) + "s";
}

}  // namespace seafl
