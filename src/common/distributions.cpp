#include "common/distributions.h"

#include <algorithm>
#include <cmath>

namespace seafl {

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : s_(s) {
  SEAFL_CHECK(n >= 1, "Zipf needs n >= 1");
  SEAFL_CHECK(s > 0.0, "Zipf exponent must be positive, got " << s);
  cdf_.resize(n);
  double total = 0.0;
  for (std::uint64_t k = 1; k <= n; ++k) {
    total += std::pow(static_cast<double>(k), -s);
    cdf_[k - 1] = total;
  }
  for (auto& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin()) + 1;
}

ParetoSampler::ParetoSampler(double scale, double shape)
    : scale_(scale), shape_(shape) {
  SEAFL_CHECK(scale > 0.0, "Pareto scale must be positive");
  SEAFL_CHECK(shape > 0.0, "Pareto shape must be positive");
}

double ParetoSampler::sample(Rng& rng) const {
  double u = rng.uniform();
  while (u <= 0.0) u = rng.uniform();
  return scale_ / std::pow(u, 1.0 / shape_);
}

double ParetoSampler::sample_capped(Rng& rng, double cap) const {
  return std::min(sample(rng), cap);
}

double sample_gamma(Rng& rng, double shape) {
  SEAFL_CHECK(shape > 0.0, "Gamma shape must be positive, got " << shape);
  if (shape < 1.0) {
    // Boosting: Gamma(a) = Gamma(a+1) * U^(1/a).
    double u = rng.uniform();
    while (u <= 0.0) u = rng.uniform();
    return sample_gamma(rng, shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia–Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = rng.normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.uniform();
    if (u < 1.0 - 0.0331 * (x * x) * (x * x)) return d * v;
    if (u > 0.0 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v;
  }
}

std::vector<double> sample_dirichlet(Rng& rng, std::size_t dim, double alpha) {
  SEAFL_CHECK(dim >= 1, "Dirichlet dimension must be >= 1");
  SEAFL_CHECK(alpha > 0.0, "Dirichlet concentration must be positive");
  std::vector<double> out(dim);
  double total = 0.0;
  for (auto& v : out) {
    v = sample_gamma(rng, alpha);
    total += v;
  }
  if (total <= 0.0) {
    // Degenerate draw (all underflowed); fall back to uniform.
    for (auto& v : out) v = 1.0 / static_cast<double>(dim);
    return out;
  }
  for (auto& v : out) v /= total;
  return out;
}

double sample_exponential(Rng& rng, double rate) {
  SEAFL_CHECK(rate > 0.0, "Exponential rate must be positive");
  double u = rng.uniform();
  while (u <= 0.0) u = rng.uniform();
  return -std::log(u) / rate;
}

}  // namespace seafl
