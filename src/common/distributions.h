// Samplers for the distributions the SEAFL paper uses to model heterogeneity:
//   * Zipf          — idle-period durations between client epochs (§III,
//                     s = 1.7, capped at 60 s in the paper's testbed)
//   * Pareto        — heavy-tailed per-epoch compute times (§VI.A)
//   * Dirichlet     — non-IID label partitioning across clients (§III, §VI.A)
//   * Exponential   — network latency jitter
//
// All samplers draw from seafl::Rng so results are platform-deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace seafl {

/// Bounded Zipf distribution over ranks {1, ..., n} with exponent s.
/// P(k) ∝ k^-s. Sampling uses the precomputed CDF (O(log n) per draw), which
/// is exact — matching the paper's Zipf(s=1.7) idle-time model.
class ZipfSampler {
 public:
  /// @param n upper rank bound (inclusive); must be >= 1.
  /// @param s exponent; must be > 0.
  ZipfSampler(std::uint64_t n, double s);

  /// Draws a rank in [1, n].
  std::uint64_t sample(Rng& rng) const;

  std::uint64_t n() const { return cdf_.size(); }
  double s() const { return s_; }

 private:
  double s_;
  std::vector<double> cdf_;  // normalized cumulative probabilities
};

/// Pareto (Type I) distribution with scale x_m > 0 and shape a > 0.
/// Used to model heavy-tailed per-epoch training times across devices.
class ParetoSampler {
 public:
  ParetoSampler(double scale, double shape);

  /// Draws a value in [scale, ∞). Inverse-CDF method.
  double sample(Rng& rng) const;

  /// Draws but truncates to at most `cap` (paper caps idle lengths at 60 s).
  double sample_capped(Rng& rng, double cap) const;

  double scale() const { return scale_; }
  double shape() const { return shape_; }

 private:
  double scale_;
  double shape_;
};

/// Samples a point from the symmetric Dirichlet distribution Dir(alpha) of the
/// given dimension. Small alpha (e.g. 0.3) yields highly skewed vectors —
/// the standard FL device for simulating non-IID label distributions.
std::vector<double> sample_dirichlet(Rng& rng, std::size_t dim, double alpha);

/// Samples from Gamma(shape, 1) via Marsaglia–Tsang (shape >= 1) with the
/// standard boost for shape < 1. Building block for the Dirichlet sampler.
double sample_gamma(Rng& rng, double shape);

/// Exponential with the given rate (lambda > 0).
double sample_exponential(Rng& rng, double rate);

}  // namespace seafl
