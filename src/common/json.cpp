#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.h"

namespace seafl {

namespace {

[[noreturn]] void type_error(const char* wanted) {
  throw Error(std::string("json: value is not ") + wanted);
}

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(double d, std::string& out) {
  SEAFL_CHECK(std::isfinite(d), "json: cannot serialize non-finite number");
  // Integers within the exactly-representable range print without exponent
  // or trailing ".0" — keeps counters readable and round-trippable.
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

/// Recursive-descent parser over the raw text.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    SEAFL_CHECK(pos_ == text_.size(),
                "json: trailing garbage at offset " << pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    SEAFL_CHECK(pos_ < text_.size(), "json: unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    SEAFL_CHECK(pos_ < text_.size() && text_[pos_] == c,
                "json: expected '" << c << "' at offset " << pos_);
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json(parse_string());
    if (consume_literal("true")) return Json(true);
    if (consume_literal("false")) return Json(false);
    if (consume_literal("null")) return Json(nullptr);
    return parse_number();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      SEAFL_CHECK(pos_ < text_.size(), "json: unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      SEAFL_CHECK(pos_ < text_.size(), "json: unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          SEAFL_CHECK(pos_ + 4 <= text_.size(), "json: truncated \\u escape");
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          const long code = std::strtol(hex.c_str(), nullptr, 16);
          // Cache payloads only ever escape control characters; reject
          // anything outside one-byte range rather than mis-decode it.
          SEAFL_CHECK(code >= 0 && code < 0x80,
                      "json: unsupported \\u escape \\u" << hex);
          out += static_cast<char>(code);
          break;
        }
        default:
          SEAFL_CHECK(false, "json: bad escape '\\" << esc << "'");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    SEAFL_CHECK(pos_ > start, "json: expected a value at offset " << start);
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    SEAFL_CHECK(end == token.c_str() + token.size(),
                "json: bad number '" << token << "'");
    return Json(d);
  }

  Json parse_array() {
    expect('[');
    JsonArray out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(out));
    }
    for (;;) {
      out.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(out));
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject out;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(out));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(out));
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::as_bool() const {
  if (!is_bool()) type_error("a bool");
  return std::get<bool>(value_);
}

double Json::as_double() const {
  if (!is_number()) type_error("a number");
  return std::get<double>(value_);
}

std::uint64_t Json::as_u64() const {
  const double d = as_double();
  SEAFL_CHECK(d >= 0.0 && d == std::floor(d),
              "json: number " << d << " is not an unsigned integer");
  return static_cast<std::uint64_t>(d);
}

const std::string& Json::as_string() const {
  if (!is_string()) type_error("a string");
  return std::get<std::string>(value_);
}

const JsonArray& Json::as_array() const {
  if (!is_array()) type_error("an array");
  return std::get<JsonArray>(value_);
}

const JsonObject& Json::as_object() const {
  if (!is_object()) type_error("an object");
  return std::get<JsonObject>(value_);
}

const Json& Json::at(const std::string& key) const {
  const JsonObject& obj = as_object();
  const auto it = obj.find(key);
  SEAFL_CHECK(it != obj.end(), "json: missing key '" << key << "'");
  return it->second;
}

bool Json::contains(const std::string& key) const {
  return is_object() && as_object().count(key) > 0;
}

std::string Json::dump() const {
  std::string out;
  if (is_null()) {
    out = "null";
  } else if (is_bool()) {
    out = as_bool() ? "true" : "false";
  } else if (is_number()) {
    dump_number(as_double(), out);
  } else if (is_string()) {
    dump_string(as_string(), out);
  } else if (is_array()) {
    out += '[';
    bool first = true;
    for (const Json& v : as_array()) {
      if (!first) out += ',';
      first = false;
      out += v.dump();
    }
    out += ']';
  } else {
    out += '{';
    bool first = true;
    for (const auto& [key, value] : as_object()) {
      if (!first) out += ',';
      first = false;
      dump_string(key, out);
      out += ':';
      out += value.dump();
    }
    out += '}';
  }
  return out;
}

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace seafl
