#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace seafl {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  SEAFL_CHECK(count_ > 0, "min of empty stats");
  return min_;
}

double RunningStats::max() const {
  SEAFL_CHECK(count_ > 0, "max of empty stats");
  return max_;
}

double percentile(std::span<const double> values, double p) {
  SEAFL_CHECK(!values.empty(), "percentile of empty data");
  SEAFL_CHECK(p >= 0.0 && p <= 1.0, "percentile must be in [0, 1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double jains_index(std::span<const double> values) {
  SEAFL_CHECK(!values.empty(), "fairness index of empty data");
  double total = 0.0, total_sq = 0.0;
  for (const double v : values) {
    SEAFL_CHECK(v >= 0.0, "fairness index needs non-negative values");
    total += v;
    total_sq += v * v;
  }
  if (total_sq == 0.0) return 1.0;  // all-zero: trivially even
  return total * total /
         (static_cast<double>(values.size()) * total_sq);
}

}  // namespace seafl
