// Result reporting: aligned console tables (for paper-style bench output) and
// CSV files (for downstream plotting).
#pragma once

#include <string>
#include <vector>

namespace seafl {

/// Accumulates rows of string cells and renders them as an aligned ASCII
/// table and/or a CSV file. Used by every bench harness so figures regenerate
/// as both human-readable tables and machine-readable series.
class Table {
 public:
  /// @param title printed above the table (e.g. "Fig. 2a — buffer size").
  explicit Table(std::string title = "");

  /// Sets the header row. Must be called before add_row.
  void set_header(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders the aligned table to stdout.
  void print() const;

  /// Writes header + rows as CSV. Cells containing commas/quotes are quoted.
  void write_csv(const std::string& path) const;

  std::size_t num_rows() const { return rows_.size(); }
  const std::string& title() const { return title_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision (fixed notation).
std::string fmt(double value, int precision = 2);

/// Formats a value as "123.4s" or "n/a" when negative (target not reached).
std::string fmt_time_or_na(double seconds);

}  // namespace seafl
