// Length-prefixed binary wire protocol for the SEAFL deployment mode
// (DESIGN.md §13). Every frame is
//
//   [u32 magic "WLFS"][u16 version][u16 type][u32 payload_len][payload]
//
// with all integers little-endian. Frames carry the federated protocol's
// message types: registration (hello/welcome), model dispatch, the upload
// (a retry is an upload re-sent with attempt > 1), SEAFL^2's early-upload
// notification, session cancellation, evaluation broadcasts and shutdown.
// Model payloads are embedded as SEAFLMDL containers (nn/serialize), so a
// dispatch's weights field is byte-identical to a saved model file.
//
// Decoding is defensive by design: a malformed header (bad magic, unknown
// version or type, oversized length) or a payload that does not parse is a
// *status*, never a crash — the transport closes the offending peer and the
// process keeps serving everyone else.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "compress/codec.h"

namespace seafl::net {

inline constexpr std::uint32_t kWireMagic = 0x53464C57u;  // "WLFS" on the wire
inline constexpr std::uint16_t kWireVersion = 1;
/// Frame header size in bytes (magic + version + type + payload length).
inline constexpr std::size_t kFrameHeaderBytes = 12;
/// Upper bound on one frame's payload (a vgg_lite model is ~1 MB; this
/// leaves two orders of magnitude of headroom while rejecting absurd
/// lengths before any allocation happens).
inline constexpr std::uint32_t kMaxFramePayload = 1u << 28;

enum class MsgType : std::uint16_t {
  kHello = 1,     ///< client -> server: register (id, model size, seed echo)
  kWelcome = 2,   ///< server -> client: registration accepted
  kDispatch = 3,  ///< server -> client: train these weights
  kNotify = 4,    ///< server -> client: upload after your current epoch
  kCancel = 5,    ///< server -> client: session expired, discard it
  kUpload = 6,    ///< client -> server: trained update (attempt > 1 = retry)
  kEval = 7,      ///< server -> client: round closed, accuracy broadcast
  kShutdown = 8,  ///< server -> client: run complete, disconnect
  /// client -> server: trained update as a SEAFLCMP compressed container
  /// (src/compress) instead of SEAFLMDL floats — the wire actually ships
  /// the smaller payload when a run enables a codec.
  kCompressedUpload = 9,
};

struct HelloMsg {
  std::uint64_t client = 0;        ///< client id in [0, num_clients)
  std::uint64_t model_params = 0;  ///< flat model size (config echo check)
  std::uint64_t seed = 0;          ///< run seed (config echo check)
};

struct WelcomeMsg {
  std::uint64_t client = 0;
  std::uint64_t round = 0;            ///< server round at registration
  std::uint64_t clients_expected = 0; ///< registrations the run waits for
};

struct DispatchMsg {
  std::uint64_t session = 0;     ///< server-unique session id
  std::uint64_t base_round = 0;  ///< t_k of the dispatched weights
  std::uint32_t epochs = 0;      ///< planned local epochs
  std::uint32_t frozen_layers = 0;
  std::vector<float> weights;
};

struct NotifyMsg {
  std::uint64_t session = 0;
};

struct CancelMsg {
  std::uint64_t session = 0;
};

struct UploadMsg {
  std::uint64_t session = 0;
  std::uint64_t client = 0;
  std::uint64_t base_round = 0;
  std::uint64_t num_samples = 0;
  std::uint32_t epochs_completed = 0;
  std::uint32_t attempt = 1;  ///< 1 = first transmission, >1 = retry
  double train_loss = 0.0;
  std::vector<float> weights;
};

struct EvalMsg {
  std::uint64_t round = 0;
  double accuracy = 0.0;
  double loss = 0.0;
};

struct ShutdownMsg {
  std::uint64_t rounds = 0;
  double final_accuracy = 0.0;
};

/// UploadMsg's compressed twin: same metadata, but the model travels as the
/// codec's exact container bytes (compress::append_compressed), so the bytes
/// a server logs for the update equal CompressedUpdate::encoded_bytes().
struct CompressedUploadMsg {
  std::uint64_t session = 0;
  std::uint64_t client = 0;
  std::uint64_t base_round = 0;
  std::uint64_t num_samples = 0;
  std::uint32_t epochs_completed = 0;
  std::uint32_t attempt = 1;  ///< 1 = first transmission, >1 = retry
  double train_loss = 0.0;
  compress::CompressedUpdate update;
};

using MessageBody =
    std::variant<HelloMsg, WelcomeMsg, DispatchMsg, NotifyMsg, CancelMsg,
                 UploadMsg, EvalMsg, ShutdownMsg, CompressedUploadMsg>;

/// One protocol message; the wire type tag is derived from the body's
/// variant alternative.
struct Message {
  MessageBody body;

  MsgType type() const;

  template <typename T>
  const T& as() const {
    return std::get<T>(body);
  }
  template <typename T>
  bool is() const {
    return std::holds_alternative<T>(body);
  }
};

/// Stable lowercase name ("hello", "dispatch", ...) for logs and tests.
const char* msg_type_name(MsgType type);

/// Serializes `message` into one complete frame.
std::string encode_frame(const Message& message);

enum class DecodeStatus {
  kOk,            ///< one frame decoded; `consumed` bytes were used
  kNeedMoreData,  ///< the buffer holds a frame prefix; read more and retry
  kBadMagic,      ///< not a SEAFL frame — close the connection
  kBadVersion,    ///< protocol version mismatch — close the connection
  kBadType,       ///< unknown message type — close the connection
  kOversized,     ///< header claims a payload above kMaxFramePayload
  kMalformed,     ///< sized payload present but does not parse
};

/// True for the statuses after which a connection cannot continue (any
/// status except kOk / kNeedMoreData).
bool is_fatal(DecodeStatus status);

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kNeedMoreData;
  std::size_t consumed = 0;  ///< bytes to drop from the buffer (kOk only)
  Message message;           ///< valid when status == kOk
};

/// Attempts to decode one frame from the front of `data`. Never throws and
/// never reads past `size`, whatever the bytes contain.
DecodeResult decode_frame(const void* data, std::size_t size);

}  // namespace seafl::net
