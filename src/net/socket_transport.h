// Real-socket Transport (DESIGN.md §13): localhost/LAN TCP with a poll(2)
// event loop, per-peer send queues and wall-clock timers.
//
// Threading model: one SocketTransport is driven by exactly one thread (the
// one calling run_one()/poll_io()); it is not internally synchronized.
// Cross-process concurrency comes from running one transport per process —
// or per std::thread in the in-process loopback tests.
//
// Robustness contract:
//  * partial reads/writes are normal: frames are reassembled from the recv
//    buffer and flushed from the send queue as the socket drains;
//  * EOF and connection errors surface as on_peer_disconnected, never as
//    exceptions, once the connection is established. Disconnect callbacks
//    are deferred to run_one()'s top level — they never fire re-entrantly
//    beneath a handler's own send()/flush()/poll_io() call, so a handler
//    may broadcast while iterating its peer bookkeeping;
//  * a peer sending a malformed frame (wire.h's fatal decode statuses) is
//    closed and reported disconnected — one bad client cannot take down
//    the server.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/transport.h"
#include "net/wire.h"

namespace seafl::net {

/// Tuning knobs for a SocketTransport.
struct SocketOptions {
  /// Longest one run_one() call may block in poll() when no timer is due
  /// sooner. Keeps shutdown/stop latency bounded.
  double max_poll_seconds = 0.05;
  /// Per-peer receive-buffer cap; a peer whose buffered-but-unparseable
  /// input exceeds this is treated as misbehaving and closed. Must admit
  /// one max-size frame.
  std::size_t max_recv_buffer = kFrameHeaderBytes + kMaxFramePayload;
};

/// I/O counters (monotonic over the transport's lifetime).
struct SocketStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t protocol_errors = 0;  ///< peers closed on malformed input
  std::uint64_t disconnects = 0;      ///< remote EOF / connection errors
};

class SocketTransport final : public Transport {
 public:
  /// Server: binds and listens on `port` (0 = ephemeral; read the result
  /// back with port()). Throws seafl::Error on bind/listen failure.
  static std::unique_ptr<SocketTransport> listen(std::uint16_t port,
                                                 SocketOptions options = {});

  /// Client: connects to host:port within `timeout_seconds`. The host must
  /// be a numeric IPv4 address or "localhost". Throws seafl::Error on
  /// failure or timeout. The server appears as the single peer.
  static std::unique_ptr<SocketTransport> connect(const std::string& host,
                                                  std::uint16_t port,
                                                  double timeout_seconds,
                                                  SocketOptions options = {});

  ~SocketTransport() override;
  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// Installs the event receiver (not owned; may be null to drop events).
  void set_handler(MessageHandler* handler) { handler_ = handler; }

  /// The locally bound port (listen mode: the answer to port 0).
  std::uint16_t port() const { return port_; }

  /// Currently connected peers, ascending (stable broadcast order).
  std::vector<PeerId> peers() const;
  std::size_t peer_count() const { return peers_.size(); }
  bool connected(PeerId peer) const { return peers_.count(peer) != 0; }

  /// Serializes and enqueues `message` for `peer`, then opportunistically
  /// flushes. Returns false if the peer is not connected (the message is
  /// dropped — the caller learns about dead peers via the handler).
  bool send(PeerId peer, const Message& message);

  /// Locally closes a peer (no on_peer_disconnected callback).
  void close_peer(PeerId peer);

  /// Blocks until every send queue drained or `timeout_seconds` elapsed.
  /// Returns true when all queues are empty. Incoming frames received
  /// meanwhile are delivered normally.
  bool flush(double timeout_seconds);

  /// Makes run_one() return false from now on. Callable from handlers.
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  /// One I/O pass: poll up to `timeout_seconds` (0 = non-blocking), then
  /// accept/read/write and deliver decoded frames. Exposed separately from
  /// run_one() so a handler deep in a long computation (a client mid-epoch)
  /// can pump the socket without re-entering timer dispatch.
  void poll_io(double timeout_seconds);

  const SocketStats& stats() const { return stats_; }

  // --- Transport -------------------------------------------------------------
  Clock& clock() override { return clock_; }
  const Clock& clock() const override { return clock_; }
  std::uint64_t schedule_at(double when, Callback cb) override;
  std::uint64_t schedule_after(double delay, Callback cb) override;
  bool cancel(std::uint64_t id) override { return timers_.cancel(id); }
  /// Fires due timers, then polls I/O once. Returns false once stopped.
  bool run_one() override;

 private:
  struct Peer {
    int fd = -1;
    std::string rx;          ///< unparsed inbound bytes
    std::string tx;          ///< unsent outbound bytes
    std::size_t tx_off = 0;  ///< sent prefix of tx
  };

  SocketTransport(int listen_fd, std::uint16_t port, SocketOptions options);

  void accept_pending();
  /// Reads until EAGAIN; decodes and delivers frames. Returns false when
  /// the peer was closed (EOF, error, protocol violation).
  bool read_peer(PeerId id);
  /// Writes queued bytes until EAGAIN. Returns false when the peer broke.
  bool write_peer(PeerId id);
  void drop_peer(PeerId id, bool notify);
  /// Fires queued on_peer_disconnected callbacks (run_one-level only).
  void deliver_disconnects();

  SocketOptions options_;
  WallClock clock_;
  /// Wall-clock timer store: the same EventQueue the simulation uses, but
  /// only ever advanced to clock_.now() — ordering and cancellation come
  /// for free, determinism is not claimed (DESIGN.md §13).
  EventQueue timers_;
  MessageHandler* handler_ = nullptr;
  int listen_fd_ = -1;  ///< -1 in connect mode
  std::uint16_t port_ = 0;
  PeerId next_peer_ = 0;
  std::map<PeerId, Peer> peers_;
  /// Peers dropped since the last run_one-level dispatch; their
  /// on_peer_disconnected is owed but must not fire mid-send (re-entrancy).
  std::vector<PeerId> pending_disconnects_;
  SocketStats stats_;
  bool stopped_ = false;
};

}  // namespace seafl::net
