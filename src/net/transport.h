// Transport abstraction (DESIGN.md §13): the seam between the server's
// protocol logic and how time passes / messages move.
//
// Both deployment modes implement the same small surface:
//  * a Clock (net/clock.h) for "now",
//  * cancellable timers (schedule_at / schedule_after / cancel),
//  * run_one(), which makes one unit of progress — executing the next
//    virtual event, or polling sockets and firing due wall-clock timers.
//
// VirtualTransport (here) is the simulation's path: timers ARE the message
// deliveries — a simulated upload is a callback scheduled at its virtual
// arrival time, so no peer/message surface exists. SocketTransport
// (net/socket_transport.h) adds the peer surface: real frames on real TCP
// connections, delivered through a MessageHandler, with timers running on
// the wall clock between polls.
#pragma once

#include <cstdint>
#include <functional>

#include "net/clock.h"
#include "sim/event_queue.h"

namespace seafl::net {

/// Identifies one connected peer of a SocketTransport (monotonic, never
/// reused within a transport's lifetime).
using PeerId = std::uint64_t;

struct Message;  // net/wire.h

/// Receives socket-transport events. Callbacks run on the thread driving
/// run_one(); they may send(), close_peer() and schedule timers, but must
/// not destroy the transport.
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;
  /// A peer completed the TCP accept (server side only).
  virtual void on_peer_connected(PeerId peer) { (void)peer; }
  /// One decoded frame arrived from `peer`.
  virtual void on_message(PeerId peer, const Message& message) = 0;
  /// The peer's connection ended (EOF, error, or a protocol violation).
  /// Not invoked for peers closed locally via close_peer().
  virtual void on_peer_disconnected(PeerId peer) { (void)peer; }
};

/// Timers + clock + progress, implemented by both deployment modes.
class Transport {
 public:
  using Callback = std::function<void()>;

  virtual ~Transport() = default;

  virtual Clock& clock() = 0;
  virtual const Clock& clock() const = 0;

  /// Schedules `cb` at absolute time `when` on this transport's clock.
  /// Returns an id usable with cancel().
  virtual std::uint64_t schedule_at(double when, Callback cb) = 0;

  /// Schedules `cb` after `delay` seconds on this transport's clock.
  virtual std::uint64_t schedule_after(double delay, Callback cb) = 0;

  /// Cancels a pending timer; false if it already fired or never existed.
  virtual bool cancel(std::uint64_t id) = 0;

  /// Makes one unit of progress. Virtual: runs the next event (false when
  /// the queue is empty). Socket: fires due timers and polls I/O once
  /// (false once stop() has been requested).
  virtual bool run_one() = 0;
};

/// The simulation's transport: a thin, zero-overhead veneer over the
/// discrete-event queue. Owning it (rather than a bare EventQueue) is what
/// lets fl::Simulation state its dependency as "a Transport + a Clock" —
/// the regression gate is that routing through this class is bitwise
/// identical to the pre-abstraction direct calls, which forwarding
/// one-liners guarantee.
class VirtualTransport final : public Transport {
 public:
  VirtualTransport() : clock_(queue_) {}

  Clock& clock() override { return clock_; }
  const Clock& clock() const override { return clock_; }

  std::uint64_t schedule_at(double when, Callback cb) override {
    return queue_.schedule_at(when, std::move(cb));
  }
  std::uint64_t schedule_after(double delay, Callback cb) override {
    return queue_.schedule_after(delay, std::move(cb));
  }
  bool cancel(std::uint64_t id) override { return queue_.cancel(id); }
  bool run_one() override { return queue_.run_one(); }

  /// The underlying queue, for simulation-only affordances (run_until,
  /// pending-event introspection in tests).
  EventQueue& queue() { return queue_; }
  const EventQueue& queue() const { return queue_; }

 private:
  EventQueue queue_;
  VirtualClock clock_;
};

}  // namespace seafl::net
