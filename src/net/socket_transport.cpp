#include "net/socket_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>

#include "common/error.h"

namespace seafl::net {

namespace {

/// Keeps a peer's flushed-prefix bookkeeping from pinning a large buffer.
constexpr std::size_t kTxCompactThreshold = 1u << 20;

int to_poll_ms(double seconds) {
  if (seconds <= 0.0) return 0;
  const double ms = std::ceil(seconds * 1000.0);
  return static_cast<int>(std::min(ms, 60'000.0));
}

void set_tcp_nodelay(int fd) {
  int one = 1;
  // Best effort: latency tuning, not correctness.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

[[noreturn]] void throw_errno(const std::string& what, int err) {
  throw Error(what + ": " + std::strerror(err));
}

}  // namespace

SocketTransport::SocketTransport(int listen_fd, std::uint16_t port,
                                 SocketOptions options)
    : options_(options), listen_fd_(listen_fd), port_(port) {
  SEAFL_CHECK(options_.max_poll_seconds > 0.0,
              "max_poll_seconds must be positive");
  SEAFL_CHECK(options_.max_recv_buffer >=
                  kFrameHeaderBytes + kMaxFramePayload,
              "max_recv_buffer must admit one maximum-size frame");
}

std::unique_ptr<SocketTransport> SocketTransport::listen(
    std::uint16_t port, SocketOptions options) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket()", errno);
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw_errno("bind()", err);
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    throw_errno("listen()", err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int err = errno;
    ::close(fd);
    throw_errno("getsockname()", err);
  }
  return std::unique_ptr<SocketTransport>(
      new SocketTransport(fd, ntohs(bound.sin_port), options));
}

std::unique_ptr<SocketTransport> SocketTransport::connect(
    const std::string& host, std::uint16_t port, double timeout_seconds,
    SocketOptions options) {
  SEAFL_CHECK(port != 0, "cannot connect to port 0");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string ip = host == "localhost" ? "127.0.0.1" : host;
  SEAFL_CHECK(::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) == 1,
              "host '" << host
                       << "' is not a numeric IPv4 address or localhost");

  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket()", errno);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      const int err = errno;
      ::close(fd);
      throw_errno("connect to " + host + ":" + std::to_string(port), err);
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int rc = ::poll(&pfd, 1, to_poll_ms(timeout_seconds));
    if (rc <= 0) {
      ::close(fd);
      throw Error("connect to " + host + ":" + std::to_string(port) +
                  " timed out after " + std::to_string(timeout_seconds) +
                  " s");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    (void)::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      ::close(fd);
      throw_errno("connect to " + host + ":" + std::to_string(port), err);
    }
  }
  set_tcp_nodelay(fd);

  auto transport = std::unique_ptr<SocketTransport>(
      new SocketTransport(-1, port, options));
  const PeerId id = ++transport->next_peer_;
  transport->peers_[id].fd = fd;
  return transport;
}

SocketTransport::~SocketTransport() {
  for (auto& [id, peer] : peers_) ::close(peer.fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

std::vector<PeerId> SocketTransport::peers() const {
  std::vector<PeerId> out;
  out.reserve(peers_.size());
  for (const auto& [id, peer] : peers_) out.push_back(id);
  return out;
}

std::uint64_t SocketTransport::schedule_at(double when, Callback cb) {
  // A wall timestamp computed before a slow operation may already be in the
  // past by the time it reaches us; "now" is the closest honest deadline.
  return timers_.schedule_at(std::max(when, timers_.now()), std::move(cb));
}

std::uint64_t SocketTransport::schedule_after(double delay, Callback cb) {
  SEAFL_CHECK(delay >= 0.0, "negative delay " << delay);
  return schedule_at(clock_.now() + delay, std::move(cb));
}

bool SocketTransport::run_one() {
  if (stopped_) return false;
  timers_.run_until(clock_.now());  // fire due timers (may stop() us)
  deliver_disconnects();
  if (stopped_) return false;
  double timeout = options_.max_poll_seconds;
  if (const auto next = timers_.next_time())
    timeout = std::clamp(*next - clock_.now(), 0.0, timeout);
  poll_io(timeout);
  deliver_disconnects();
  return !stopped_;
}

void SocketTransport::deliver_disconnects() {
  // A callback may drop further peers (failed sends), growing the queue
  // while we drain it — hence the index loop over a stable-for-append
  // vector instead of iterators.
  for (std::size_t i = 0; i < pending_disconnects_.size(); ++i) {
    const PeerId id = pending_disconnects_[i];
    if (handler_ != nullptr) handler_->on_peer_disconnected(id);
  }
  pending_disconnects_.clear();
}

void SocketTransport::poll_io(double timeout_seconds) {
  std::vector<pollfd> fds;
  std::vector<PeerId> ids;
  fds.reserve(peers_.size() + 1);
  ids.reserve(peers_.size());
  if (listen_fd_ >= 0) fds.push_back(pollfd{listen_fd_, POLLIN, 0});
  for (const auto& [id, peer] : peers_) {
    short events = POLLIN;
    if (peer.tx_off < peer.tx.size()) events |= POLLOUT;
    fds.push_back(pollfd{peer.fd, events, 0});
    ids.push_back(id);
  }
  // poll() with zero fds is a plain bounded sleep, which is exactly what a
  // peerless transport should do instead of spinning.
  const int rc = ::poll(fds.empty() ? nullptr : fds.data(),
                        static_cast<nfds_t>(fds.size()),
                        to_poll_ms(timeout_seconds));
  if (rc <= 0) return;  // timeout or EINTR: nothing ready

  std::size_t base = 0;
  if (listen_fd_ >= 0) {
    if ((fds[0].revents & POLLIN) != 0) accept_pending();
    base = 1;
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const PeerId id = ids[i];
    const short revents = fds[base + i].revents;
    if (revents == 0) continue;
    // A handler callback for an earlier peer may have closed this one.
    if (peers_.find(id) == peers_.end()) continue;
    if ((revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
      if (!read_peer(id)) continue;
    }
    if (peers_.find(id) == peers_.end()) continue;
    if ((revents & POLLOUT) != 0) (void)write_peer(id);
  }
}

void SocketTransport::accept_pending() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or a transient accept error
    }
    set_tcp_nodelay(fd);
    const PeerId id = ++next_peer_;
    peers_[id].fd = fd;
    if (handler_ != nullptr) handler_->on_peer_connected(id);
  }
}

bool SocketTransport::read_peer(PeerId id) {
  {
    Peer& peer = peers_.at(id);
    char buf[65536];
    for (;;) {
      const ssize_t n = ::recv(peer.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        peer.rx.append(buf, static_cast<std::size_t>(n));
        stats_.bytes_received += static_cast<std::uint64_t>(n);
        if (static_cast<std::size_t>(n) < sizeof(buf)) break;
        continue;
      }
      if (n == 0) {  // orderly EOF
        ++stats_.disconnects;
        drop_peer(id, /*notify=*/true);
        return false;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      ++stats_.disconnects;
      drop_peer(id, /*notify=*/true);
      return false;
    }
  }

  // Deliver every complete frame. The handler may send, close peers or
  // stop the transport, so re-look the peer up each iteration.
  for (;;) {
    const auto it = peers_.find(id);
    if (it == peers_.end()) return false;
    std::string& rx = it->second.rx;
    if (rx.empty()) break;
    const DecodeResult decoded = decode_frame(rx.data(), rx.size());
    if (decoded.status == DecodeStatus::kNeedMoreData) {
      if (rx.size() > options_.max_recv_buffer) {
        ++stats_.protocol_errors;
        drop_peer(id, /*notify=*/true);
        return false;
      }
      break;
    }
    if (is_fatal(decoded.status)) {
      ++stats_.protocol_errors;
      drop_peer(id, /*notify=*/true);
      return false;
    }
    rx.erase(0, decoded.consumed);
    ++stats_.frames_received;
    if (handler_ != nullptr) handler_->on_message(id, decoded.message);
  }
  return peers_.find(id) != peers_.end();
}

bool SocketTransport::write_peer(PeerId id) {
  Peer& peer = peers_.at(id);
  while (peer.tx_off < peer.tx.size()) {
    const ssize_t n =
        ::send(peer.fd, peer.tx.data() + peer.tx_off,
               peer.tx.size() - peer.tx_off, MSG_NOSIGNAL);
    if (n >= 0) {
      peer.tx_off += static_cast<std::size_t>(n);
      stats_.bytes_sent += static_cast<std::uint64_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    ++stats_.disconnects;
    drop_peer(id, /*notify=*/true);
    return false;
  }
  if (peer.tx_off == peer.tx.size()) {
    peer.tx.clear();
    peer.tx_off = 0;
  } else if (peer.tx_off >= kTxCompactThreshold) {
    peer.tx.erase(0, peer.tx_off);
    peer.tx_off = 0;
  }
  return true;
}

bool SocketTransport::send(PeerId peer, const Message& message) {
  const auto it = peers_.find(peer);
  if (it == peers_.end()) return false;
  it->second.tx.append(encode_frame(message));
  ++stats_.frames_sent;
  (void)write_peer(peer);  // opportunistic flush; queue drains on POLLOUT
  return true;
}

void SocketTransport::close_peer(PeerId peer) {
  drop_peer(peer, /*notify=*/false);
}

void SocketTransport::drop_peer(PeerId id, bool notify) {
  const auto it = peers_.find(id);
  if (it == peers_.end()) return;
  ::close(it->second.fd);
  peers_.erase(it);
  // Deferred, not fired here: drop_peer runs beneath send()/flush() calls
  // made by handlers that may be mid-iteration over their own peer maps.
  // The callback fires at run_one()'s top level instead (peer ids are
  // never reused, so a late notice cannot alias a new connection).
  if (notify) pending_disconnects_.push_back(id);
}

bool SocketTransport::flush(double timeout_seconds) {
  const double deadline = clock_.now() + timeout_seconds;
  for (;;) {
    bool pending = false;
    for (const auto& [id, peer] : peers_)
      if (peer.tx_off < peer.tx.size()) pending = true;
    if (!pending) return true;
    const double remaining = deadline - clock_.now();
    if (remaining <= 0.0) return false;
    poll_io(std::min(remaining, options_.max_poll_seconds));
  }
}

}  // namespace seafl::net
