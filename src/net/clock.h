// Time source abstraction (DESIGN.md §13). Every consumer of "now" in the
// server stack reads a Clock, so the same protocol logic runs under the
// simulation's virtual time (VirtualClock over an EventQueue) or under real
// elapsed time (WallClock over std::chrono::steady_clock).
//
// Contract: now() is monotonically non-decreasing, in seconds, starting at
// (or near) 0 when the owning run begins. VirtualClock is deterministic;
// WallClock is, by nature, not — see DESIGN.md §13 for exactly which outputs
// stay deterministic under each.
#pragma once

#include <chrono>

#include "sim/event_queue.h"

namespace seafl::net {

/// Read-only time source, in seconds since the run started.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual double now() const = 0;
};

/// Virtual time: forwards to the discrete-event queue that drives the run.
/// now() advances only when the queue executes an event, so everything
/// observing this clock is deterministic.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(const EventQueue& queue) : queue_(&queue) {}
  double now() const override { return queue_->now(); }

 private:
  const EventQueue* queue_;
};

/// Wall time: seconds elapsed on the monotonic system clock since this
/// object was constructed (one WallClock per process/run).
class WallClock final : public Clock {
 public:
  WallClock() : epoch_(std::chrono::steady_clock::now()) {}
  double now() const override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace seafl::net
