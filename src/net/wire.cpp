#include "net/wire.h"

#include <bit>
#include <cstring>

#include "common/error.h"
#include "nn/serialize.h"

namespace seafl::net {

namespace {

// --- little-endian primitives ----------------------------------------------
// Written byte-by-byte so the format is identical on any host endianness.

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<char>((v >> shift) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<char>((v >> shift) & 0xff));
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Bounds-checked sequential reader over a payload. Every read_* reports
/// failure by flipping `ok`; callers check once at the end, so a truncated
/// payload falls through harmlessly instead of branching at every field.
struct Cursor {
  const unsigned char* p;
  std::size_t remaining;
  bool ok = true;

  bool take(std::size_t n) {
    if (!ok || remaining < n) {
      ok = false;
      return false;
    }
    return true;
  }

  std::uint16_t read_u16() {
    if (!take(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(p[0]) |
                      static_cast<std::uint16_t>(p[1]) << 8;
    p += 2;
    remaining -= 2;
    return v;
  }

  std::uint32_t read_u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
    p += 4;
    remaining -= 4;
    return v;
  }

  std::uint64_t read_u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    p += 8;
    remaining -= 8;
    return v;
  }

  double read_f64() { return std::bit_cast<double>(read_u64()); }

  /// Reads an embedded SEAFLMDL container (nn/serialize).
  std::vector<float> read_model() {
    if (!ok) return {};
    try {
      std::size_t consumed = 0;
      std::vector<float> weights = decode_model_vector(p, remaining, &consumed);
      p += consumed;
      remaining -= consumed;
      return weights;
    } catch (const Error&) {
      ok = false;
      return {};
    }
  }

  /// Reads an embedded SEAFLCMP container (compress/codec.h).
  compress::CompressedUpdate read_compressed() {
    if (!ok) return {};
    try {
      std::size_t consumed = 0;
      compress::CompressedUpdate update =
          compress::decode_compressed(p, remaining, &consumed);
      p += consumed;
      remaining -= consumed;
      return update;
    } catch (const Error&) {
      ok = false;
      return {};
    }
  }
};

// --- per-type payload codecs ------------------------------------------------

void encode_body(std::string& out, const HelloMsg& m) {
  put_u64(out, m.client);
  put_u64(out, m.model_params);
  put_u64(out, m.seed);
}

bool decode_body(Cursor& c, HelloMsg& m) {
  m.client = c.read_u64();
  m.model_params = c.read_u64();
  m.seed = c.read_u64();
  return c.ok;
}

void encode_body(std::string& out, const WelcomeMsg& m) {
  put_u64(out, m.client);
  put_u64(out, m.round);
  put_u64(out, m.clients_expected);
}

bool decode_body(Cursor& c, WelcomeMsg& m) {
  m.client = c.read_u64();
  m.round = c.read_u64();
  m.clients_expected = c.read_u64();
  return c.ok;
}

void encode_body(std::string& out, const DispatchMsg& m) {
  put_u64(out, m.session);
  put_u64(out, m.base_round);
  put_u32(out, m.epochs);
  put_u32(out, m.frozen_layers);
  append_model_vector(out, m.weights);
}

bool decode_body(Cursor& c, DispatchMsg& m) {
  m.session = c.read_u64();
  m.base_round = c.read_u64();
  m.epochs = c.read_u32();
  m.frozen_layers = c.read_u32();
  m.weights = c.read_model();
  return c.ok;
}

void encode_body(std::string& out, const NotifyMsg& m) {
  put_u64(out, m.session);
}

bool decode_body(Cursor& c, NotifyMsg& m) {
  m.session = c.read_u64();
  return c.ok;
}

void encode_body(std::string& out, const CancelMsg& m) {
  put_u64(out, m.session);
}

bool decode_body(Cursor& c, CancelMsg& m) {
  m.session = c.read_u64();
  return c.ok;
}

void encode_body(std::string& out, const UploadMsg& m) {
  put_u64(out, m.session);
  put_u64(out, m.client);
  put_u64(out, m.base_round);
  put_u64(out, m.num_samples);
  put_u32(out, m.epochs_completed);
  put_u32(out, m.attempt);
  put_f64(out, m.train_loss);
  append_model_vector(out, m.weights);
}

bool decode_body(Cursor& c, UploadMsg& m) {
  m.session = c.read_u64();
  m.client = c.read_u64();
  m.base_round = c.read_u64();
  m.num_samples = c.read_u64();
  m.epochs_completed = c.read_u32();
  m.attempt = c.read_u32();
  m.train_loss = c.read_f64();
  m.weights = c.read_model();
  return c.ok;
}

void encode_body(std::string& out, const EvalMsg& m) {
  put_u64(out, m.round);
  put_f64(out, m.accuracy);
  put_f64(out, m.loss);
}

bool decode_body(Cursor& c, EvalMsg& m) {
  m.round = c.read_u64();
  m.accuracy = c.read_f64();
  m.loss = c.read_f64();
  return c.ok;
}

void encode_body(std::string& out, const ShutdownMsg& m) {
  put_u64(out, m.rounds);
  put_f64(out, m.final_accuracy);
}

bool decode_body(Cursor& c, ShutdownMsg& m) {
  m.rounds = c.read_u64();
  m.final_accuracy = c.read_f64();
  return c.ok;
}

void encode_body(std::string& out, const CompressedUploadMsg& m) {
  put_u64(out, m.session);
  put_u64(out, m.client);
  put_u64(out, m.base_round);
  put_u64(out, m.num_samples);
  put_u32(out, m.epochs_completed);
  put_u32(out, m.attempt);
  put_f64(out, m.train_loss);
  compress::append_compressed(out, m.update);
}

bool decode_body(Cursor& c, CompressedUploadMsg& m) {
  m.session = c.read_u64();
  m.client = c.read_u64();
  m.base_round = c.read_u64();
  m.num_samples = c.read_u64();
  m.epochs_completed = c.read_u32();
  m.attempt = c.read_u32();
  m.train_loss = c.read_f64();
  m.update = c.read_compressed();
  return c.ok;
}

template <typename T>
bool decode_as(Cursor& c, Message& out) {
  T body;
  if (!decode_body(c, body)) return false;
  // A payload with trailing bytes is malformed too: the sender and receiver
  // disagree about the message layout, which must not pass silently.
  if (c.remaining != 0) return false;
  out.body = std::move(body);
  return true;
}

}  // namespace

MsgType Message::type() const {
  // Indexed by MessageBody's alternative order, which mirrors MsgType.
  static constexpr MsgType kByIndex[] = {
      MsgType::kHello,  MsgType::kWelcome,  MsgType::kDispatch,
      MsgType::kNotify, MsgType::kCancel,   MsgType::kUpload,
      MsgType::kEval,   MsgType::kShutdown, MsgType::kCompressedUpload};
  static_assert(sizeof(kByIndex) / sizeof(kByIndex[0]) ==
                std::variant_size_v<MessageBody>);
  return kByIndex[body.index()];
}

const char* msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::kHello: return "hello";
    case MsgType::kWelcome: return "welcome";
    case MsgType::kDispatch: return "dispatch";
    case MsgType::kNotify: return "notify";
    case MsgType::kCancel: return "cancel";
    case MsgType::kUpload: return "upload";
    case MsgType::kEval: return "eval";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kCompressedUpload: return "compressed_upload";
  }
  return "unknown";
}

bool is_fatal(DecodeStatus status) {
  return status != DecodeStatus::kOk && status != DecodeStatus::kNeedMoreData;
}

std::string encode_frame(const Message& message) {
  std::string payload;
  std::visit([&payload](const auto& body) { encode_body(payload, body); },
             message.body);
  SEAFL_CHECK(payload.size() <= kMaxFramePayload,
              "frame payload " << payload.size() << " exceeds the "
                               << kMaxFramePayload << "-byte wire limit");
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  put_u32(frame, kWireMagic);
  put_u16(frame, kWireVersion);
  put_u16(frame, static_cast<std::uint16_t>(message.type()));
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  frame.append(payload);
  return frame;
}

DecodeResult decode_frame(const void* data, std::size_t size) {
  DecodeResult result;
  if (size < kFrameHeaderBytes) return result;  // kNeedMoreData

  Cursor header{static_cast<const unsigned char*>(data), size};
  const std::uint32_t magic = header.read_u32();
  const std::uint16_t version = header.read_u16();
  const std::uint16_t type = header.read_u16();
  const std::uint32_t payload_len = header.read_u32();

  if (magic != kWireMagic) {
    result.status = DecodeStatus::kBadMagic;
    return result;
  }
  if (version != kWireVersion) {
    result.status = DecodeStatus::kBadVersion;
    return result;
  }
  if (type < static_cast<std::uint16_t>(MsgType::kHello) ||
      type > static_cast<std::uint16_t>(MsgType::kCompressedUpload)) {
    result.status = DecodeStatus::kBadType;
    return result;
  }
  if (payload_len > kMaxFramePayload) {
    result.status = DecodeStatus::kOversized;
    return result;
  }
  if (size - kFrameHeaderBytes < payload_len) return result;  // kNeedMoreData

  Cursor c{static_cast<const unsigned char*>(data) + kFrameHeaderBytes,
           payload_len};
  bool ok = false;
  switch (static_cast<MsgType>(type)) {
    case MsgType::kHello: ok = decode_as<HelloMsg>(c, result.message); break;
    case MsgType::kWelcome:
      ok = decode_as<WelcomeMsg>(c, result.message);
      break;
    case MsgType::kDispatch:
      ok = decode_as<DispatchMsg>(c, result.message);
      break;
    case MsgType::kNotify: ok = decode_as<NotifyMsg>(c, result.message); break;
    case MsgType::kCancel: ok = decode_as<CancelMsg>(c, result.message); break;
    case MsgType::kUpload: ok = decode_as<UploadMsg>(c, result.message); break;
    case MsgType::kEval: ok = decode_as<EvalMsg>(c, result.message); break;
    case MsgType::kShutdown:
      ok = decode_as<ShutdownMsg>(c, result.message);
      break;
    case MsgType::kCompressedUpload:
      ok = decode_as<CompressedUploadMsg>(c, result.message);
      break;
  }
  if (!ok) {
    result.status = DecodeStatus::kMalformed;
    return result;
  }
  result.status = DecodeStatus::kOk;
  result.consumed = kFrameHeaderBytes + payload_len;
  return result;
}

}  // namespace seafl::net
