// Umbrella header: the seafl::exp experiment-orchestration subsystem.
//
//   exp::SweepSpec sweep;                      // declarative cartesian grid
//   sweep.base.world = ...;                    // dataset + fleet spec
//   sweep.axes.push_back(exp::make_axis("algorithm", {"seafl", "fedbuff"}));
//   sweep.axes.push_back(exp::make_axis("buffer", {"5", "10"}));
//   exp::add_seed_axis(sweep, 4, 42);          // 4-seed replication
//
//   exp::Runner runner({.jobs = 4});           // parallel + cached
//   auto results = runner.run(sweep);          // bitwise == the serial run
//   auto stats = exp::summarize_by_arm(results);  // mean/stddev/CI95
#pragma once

#include "exp/cache.h"
#include "exp/json.h"
#include "exp/runner.h"
#include "exp/spec.h"
#include "exp/summary.h"
