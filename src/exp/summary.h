// Seed-replicated statistics over sweep results: arms that differ only in
// their seeds are grouped, and each metric gets mean / sample stddev / 95%
// confidence interval (normal approximation, 1.96 * s / sqrt(n)).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "exp/runner.h"

namespace seafl::exp {

/// Descriptive statistics of one metric across seed replicates.
struct SummaryStat {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1); 0 when n < 2
  double ci95 = 0.0;    ///< 95% CI half-width; 0 when n < 2
};

/// Computes mean / sample stddev / CI95 (via common/stats RunningStats).
SummaryStat summarize(std::span<const double> values);

/// Aggregate of one arm's seed replicates.
struct ArmSummary {
  std::string label;  ///< arm label with the "seed=..." token stripped
  std::string key;    ///< seedless_key of the group
  std::size_t seeds = 0;
  std::size_t reached = 0;          ///< replicates that hit the target
  SummaryStat time_to_target;       ///< over reached replicates only
  SummaryStat tail_accuracy;        ///< tail_accuracy(result, 3)
  SummaryStat final_accuracy;
  SummaryStat rounds;
  SummaryStat mean_staleness;
};

/// Groups results by seedless_key (first-appearance order preserved) and
/// summarizes each group.
std::vector<ArmSummary> summarize_by_arm(std::span<const ArmResult> results);

/// Table header / row for ArmSummary (mean ± ci95 rendering).
std::vector<std::string> summary_header();
std::vector<std::string> summary_row(const ArmSummary& summary);

/// Full machine-readable sweep artifact: per-arm configs, hashes, cache
/// provenance, curves and the per-group summaries.
Json sweep_to_json(std::span<const ArmResult> results,
                   std::span<const ArmSummary> summaries);

}  // namespace seafl::exp
