#include "exp/runner.h"

#include <atomic>
#include <cstdio>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/thread_pool.h"

namespace seafl::exp {

namespace {

/// A built experiment world, shared read-only by every arm that names it.
struct BuiltWorld {
  FlTask task;
  Fleet fleet;
};

/// Canonical identity of a WorldSpec (the world-determining subset of the
/// arm's canonical config), used to build each distinct world exactly once.
std::string world_key(const ArmSpec& spec) {
  ArmSpec probe;
  probe.world = spec.world;
  // Null out everything that does not shape the world, so arms differing
  // only in strategy/params share one entry.
  probe.algorithm.clear();
  probe.params = ExperimentParams{};
  return canonical_config(probe);
}

/// Executes one arm against its built world. The target-accuracy sentinel
/// (< 0) resolves to the task's default here, after the dataset exists.
RunResult execute(const ArmSpec& spec, const BuiltWorld& world) {
  ExperimentParams params = spec.params;
  if (params.target_accuracy < 0.0) {
    params.target_accuracy = world.task.target_accuracy;
  }
  return run_arm(spec.algorithm, params, world.task, world.fleet);
}

}  // namespace

Runner::Runner(RunnerOptions options)
    : options_(std::move(options)), cache_(options_.cache_dir) {}

std::vector<ArmResult> Runner::run(const std::vector<ArmSpec>& arms) {
  simulations_run_ = 0;
  std::vector<ArmResult> results(arms.size());
  std::vector<std::string> canonicals(arms.size());
  for (std::size_t i = 0; i < arms.size(); ++i) {
    results[i].spec = arms[i];
    results[i].hash = config_hash(arms[i]);
    canonicals[i] = canonical_config(arms[i]);
  }

  // Phase 1: serve cache hits; collect one executable index per distinct
  // hash and remember duplicates to fill afterwards.
  std::vector<std::size_t> pending;                       // unique misses
  std::unordered_map<std::string, std::size_t> first_of;  // hash -> index
  std::vector<std::pair<std::size_t, std::size_t>> copies;  // (dst, src)
  for (std::size_t i = 0; i < arms.size(); ++i) {
    if (const auto it = first_of.find(results[i].hash); it != first_of.end()) {
      copies.emplace_back(i, it->second);
      continue;
    }
    first_of.emplace(results[i].hash, i);
    if (options_.use_cache && !options_.refresh) {
      if (auto cached = cache_.load(results[i].hash, canonicals[i])) {
        results[i].result = std::move(*cached);
        results[i].from_cache = true;
        continue;
      }
    }
    pending.push_back(i);
  }

  // Phase 2: build each distinct world once, serially on the caller (dataset
  // generation itself uses the parallel kernels). Only worlds that a pending
  // arm actually needs are built — a fully-cached sweep builds none.
  std::unordered_map<std::string, std::unique_ptr<BuiltWorld>> worlds;
  for (const std::size_t i : pending) {
    const std::string key = world_key(arms[i]);
    if (worlds.count(key) > 0) continue;
    auto world = std::make_unique<BuiltWorld>(
        BuiltWorld{make_task(arms[i].world.task), Fleet(arms[i].world.fleet)});
    worlds.emplace(key, std::move(world));
  }

  // Phase 3: execute pending arms, up to `jobs` concurrently. Workers pull
  // indices from a shared counter; each result lands at its own index, so
  // completion order never affects the output.
  const std::size_t total = pending.size();
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex progress_mutex;
  auto run_indices = [&](bool serial_kernels) {
    for (std::size_t n = next.fetch_add(1); n < total;
         n = next.fetch_add(1)) {
      const std::size_t i = pending[n];
      if (options_.progress) {
        std::lock_guard<std::mutex> lock(progress_mutex);
        std::fprintf(stderr, "\r[%zu/%zu] %s\033[K", done.load() + 1, total,
                     arms[i].label.c_str());
        std::fflush(stderr);
      }
      const BuiltWorld& world = *worlds.at(world_key(arms[i]));
      if (serial_kernels) {
        SerialKernelScope scope;
        results[i].result = execute(arms[i], world);
      } else {
        results[i].result = execute(arms[i], world);
      }
      if (options_.use_cache) {
        cache_.store(results[i].hash, canonicals[i], results[i].result);
      }
      done.fetch_add(1);
    }
  };

  const std::size_t jobs = std::max<std::size_t>(1, options_.jobs);
  if (jobs == 1 || total <= 1) {
    run_indices(/*serial_kernels=*/false);
  } else {
    // Record the first failure and drain the index counter instead of
    // letting an exception escape while workers still reference this frame.
    std::mutex error_mutex;
    std::exception_ptr first_error;
    auto guarded = [&] {
      try {
        run_indices(/*serial_kernels=*/true);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        next.store(total);  // stop handing out further arms
      }
    };
    std::vector<std::future<void>> workers;
    const std::size_t helpers = std::min(jobs - 1, total - 1);
    workers.reserve(helpers);
    for (std::size_t w = 0; w < helpers; ++w) {
      workers.push_back(global_pool().submit(guarded));
    }
    // The caller participates too; its kernels also stay serial so every
    // concurrent run gets one core instead of contending mid-GEMM.
    guarded();
    for (auto& w : workers) w.get();
    if (first_error) std::rethrow_exception(first_error);
  }
  if (options_.progress && total > 0) std::fprintf(stderr, "\n");
  simulations_run_ = total;

  for (const auto& [dst, src] : copies) {
    results[dst].result = results[src].result;
    results[dst].from_cache = results[src].from_cache;
  }
  return results;
}

}  // namespace seafl::exp
