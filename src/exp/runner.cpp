#include "exp/runner.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace seafl::exp {

namespace {

/// A built experiment world, shared read-only by every arm that names it.
struct BuiltWorld {
  FlTask task;
  Fleet fleet;
};

/// Canonical identity of a WorldSpec (the world-determining subset of the
/// arm's canonical config), used to build each distinct world exactly once.
std::string world_key(const ArmSpec& spec) {
  ArmSpec probe;
  probe.world = spec.world;
  // Null out everything that does not shape the world, so arms differing
  // only in strategy/params share one entry.
  probe.algorithm.clear();
  probe.params = ExperimentParams{};
  return canonical_config(probe);
}

/// Executes one arm against its built world. The target-accuracy sentinel
/// (< 0) resolves to the task's default here, after the dataset exists.
/// `eager` / `sim_jobs` place the arm's client training on the shared pool;
/// they never change the result (so the cache stays valid across modes).
RunResult execute(const ArmSpec& spec, const BuiltWorld& world,
                  obs::TraceSink* trace, bool eager, std::size_t sim_jobs) {
  ExperimentParams params = spec.params;
  if (params.target_accuracy < 0.0) {
    params.target_accuracy = world.task.target_accuracy;
  }
  params.eager_training = eager;
  params.sim_jobs = eager ? sim_jobs : 0;
  return run_arm(spec.algorithm, params, world.task, world.fleet, trace);
}

void write_text_file(const std::string& path, const std::string& payload) {
  std::ofstream out(path, std::ios::trunc);
  SEAFL_CHECK(out.good(), "runner: cannot write " << path);
  out << payload << "\n";
}

/// Per-arm timing summary written next to the cached result.
Json metrics_json(const ArmSpec& spec, const std::string& hash,
                  double wall_seconds, const obs::Snapshot& delta) {
  JsonObject doc;
  doc.emplace("label", Json(spec.label));
  doc.emplace("hash", Json(hash));
  doc.emplace("wall_seconds", Json(wall_seconds));
  doc.emplace("metrics", delta.to_json());
  return Json(std::move(doc));
}

}  // namespace

Runner::Runner(RunnerOptions options)
    : options_(std::move(options)), cache_(options_.cache_dir) {}

std::vector<ArmResult> Runner::run(const std::vector<ArmSpec>& arms) {
  simulations_run_ = 0;
  std::vector<ArmResult> results(arms.size());
  std::vector<std::string> canonicals(arms.size());
  for (std::size_t i = 0; i < arms.size(); ++i) {
    results[i].spec = arms[i];
    results[i].hash = config_hash(arms[i]);
    canonicals[i] = canonical_config(arms[i]);
  }

  // Phase 1: serve cache hits; collect one executable index per distinct
  // hash and remember duplicates to fill afterwards.
  std::vector<std::size_t> pending;                       // unique misses
  std::unordered_map<std::string, std::size_t> first_of;  // hash -> index
  std::vector<std::pair<std::size_t, std::size_t>> copies;  // (dst, src)
  for (std::size_t i = 0; i < arms.size(); ++i) {
    if (const auto it = first_of.find(results[i].hash); it != first_of.end()) {
      copies.emplace_back(i, it->second);
      continue;
    }
    first_of.emplace(results[i].hash, i);
    // A trace request forces execution: a cached result has no journal.
    const bool must_execute = !options_.trace_dir.empty();
    if (options_.use_cache && !options_.refresh && !must_execute) {
      if (auto cached = cache_.load(results[i].hash, canonicals[i])) {
        results[i].result = std::move(*cached);
        results[i].from_cache = true;
        continue;
      }
    }
    pending.push_back(i);
  }

  // Phase 2: build each distinct world once, serially on the caller (dataset
  // generation itself uses the parallel kernels). Only worlds that a pending
  // arm actually needs are built — a fully-cached sweep builds none.
  std::unordered_map<std::string, std::unique_ptr<BuiltWorld>> worlds;
  for (const std::size_t i : pending) {
    const std::string key = world_key(arms[i]);
    if (worlds.count(key) > 0) continue;
    auto world = std::make_unique<BuiltWorld>(
        BuiltWorld{make_task(arms[i].world.task), Fleet(arms[i].world.fleet)});
    worlds.emplace(key, std::move(world));
  }

  // Phase 3: execute pending arms, up to `jobs` concurrently. Workers pull
  // indices from a shared counter; each result lands at its own index, so
  // completion order never affects the output.
  const std::size_t total = pending.size();
  const bool tracing = !options_.trace_dir.empty();
  if (tracing && total > 0) {
    std::filesystem::create_directories(options_.trace_dir);
  }
  // Profiling stays on for the whole run() so worker threads started at any
  // point record; per-arm attribution comes from snapshot deltas below.
  std::optional<obs::ProfilingScope> profiling;
  if (options_.metrics) {
    profiling.emplace();
    if (total > 0) std::filesystem::create_directories(cache_.dir());
  }
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex progress_mutex;
  const std::size_t jobs = std::max<std::size_t>(1, options_.jobs);
  // Metrics attribution under jobs > 1 is a per-thread snapshot delta; an
  // eager arm's training runs on other threads, so the combination would
  // mis-attribute. Eager is pure placement — forcing it off is invisible in
  // the results.
  const bool eager =
      options_.eager_training && !(options_.metrics && jobs > 1);
  auto run_indices = [&](bool serial_kernels) {
    for (std::size_t n = next.fetch_add(1); n < total;
         n = next.fetch_add(1)) {
      const std::size_t i = pending[n];
      if (options_.progress) {
        std::lock_guard<std::mutex> lock(progress_mutex);
        std::fprintf(stderr, "\r[%zu/%zu] %s\033[K", done.load() + 1, total,
                     arms[i].label.c_str());
        std::fflush(stderr);
      }
      const BuiltWorld& world = *worlds.at(world_key(arms[i]));
      obs::TraceJournal journal;
      obs::TraceSink* sink = tracing ? &journal : nullptr;
      // With serial kernels everything the arm does happens on this thread,
      // so the per-thread delta is exact. With jobs == 1 arms run one at a
      // time and kernels may fan out to the pool; the global delta is then
      // the right attribution.
      obs::Snapshot before;
      const auto wall_start = std::chrono::steady_clock::now();
      if (options_.metrics) {
        before = serial_kernels ? obs::Registry::global().thread_snapshot()
                                : obs::Registry::global().snapshot();
      }
      if (serial_kernels) {
        SerialKernelScope scope;
        results[i].result =
            execute(arms[i], world, sink, eager, options_.sim_jobs);
      } else {
        results[i].result =
            execute(arms[i], world, sink, eager, options_.sim_jobs);
      }
      if (options_.metrics) {
        const obs::Snapshot after =
            serial_kernels ? obs::Registry::global().thread_snapshot()
                           : obs::Registry::global().snapshot();
        const double wall =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          wall_start)
                .count();
        write_text_file(
            cache_.dir() + "/" + results[i].hash + ".metrics.json",
            metrics_json(arms[i], results[i].hash, wall,
                         obs::Snapshot::delta(before, after))
                .dump());
      }
      if (tracing) {
        const std::string base = options_.trace_dir + "/" + results[i].hash;
        journal.write_chrome_trace(base + ".trace.json", arms[i].label);
        journal.write_jsonl(base + ".jsonl");
      }
      if (options_.use_cache) {
        cache_.store(results[i].hash, canonicals[i], results[i].result);
      }
      done.fetch_add(1);
    }
  };

  if (jobs == 1 || total <= 1) {
    run_indices(/*serial_kernels=*/false);
  } else {
    // Record the first failure and drain the index counter instead of
    // letting an exception escape while workers still reference this frame.
    std::mutex error_mutex;
    std::exception_ptr first_error;
    auto guarded = [&] {
      try {
        run_indices(/*serial_kernels=*/true);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        next.store(total);  // stop handing out further arms
      }
    };
    std::vector<std::future<void>> workers;
    const std::size_t helpers = std::min(jobs - 1, total - 1);
    workers.reserve(helpers);
    for (std::size_t w = 0; w < helpers; ++w) {
      workers.push_back(global_pool().submit(guarded));
    }
    // The caller participates too; its kernels also stay serial so every
    // concurrent run gets one core instead of contending mid-GEMM.
    guarded();
    for (auto& w : workers) w.get();
    if (first_error) std::rethrow_exception(first_error);
  }
  if (options_.progress && total > 0) std::fprintf(stderr, "\n");
  simulations_run_ = total;

  for (const auto& [dst, src] : copies) {
    results[dst].result = results[src].result;
    results[dst].from_cache = results[src].from_cache;
  }
  return results;
}

}  // namespace seafl::exp
