// Content-addressed on-disk result cache: one JSON file per executed arm at
// <dir>/<config-hash>.json, so re-running a sweep only simulates arms whose
// configuration changed. Entries echo the full canonical config and are
// verified against it on load (a hash collision degrades to a cache miss,
// never to a wrong result).
//
// Cached results restore every RunResult field except `final_weights`, which
// is deliberately not persisted (it is the one field whose size scales with
// the model, and no sweep consumer reads it). Consumers needing final
// weights should run with the cache disabled.
#pragma once

#include <optional>
#include <string>

#include "exp/json.h"
#include "fl/types.h"

namespace seafl::exp {

/// Serializes a run outcome (minus final_weights) for caching / artifacts.
Json result_to_json(const RunResult& result);

/// Inverse of result_to_json; throws Error on a malformed document.
RunResult result_from_json(const Json& json);

/// Filesystem-backed cache keyed by config_hash(). Safe for concurrent
/// writers: entries are written to a temp file and atomically renamed.
class ResultCache {
 public:
  /// @param dir cache directory; created on first store.
  explicit ResultCache(std::string dir);

  /// Loads the entry for `hash`, verifying its stored canonical config
  /// matches `canonical`. Returns nullopt when absent, unreadable or
  /// mismatched (corrupt files are treated as misses, not errors).
  std::optional<RunResult> load(const std::string& hash,
                                const std::string& canonical) const;

  /// Persists `result` under `hash`, echoing `canonical` for verification.
  void store(const std::string& hash, const std::string& canonical,
             const RunResult& result) const;

  std::string path_for(const std::string& hash) const;
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

}  // namespace seafl::exp
