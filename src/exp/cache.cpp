#include "exp/cache.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace seafl::exp {

namespace {

/// Bumped whenever the cached-result layout changes; older entries become
/// misses instead of parse errors.
// v2: RunResult gained the fault-tolerance counters (client_crashes,
// redispatches, ...). Old entries become misses and re-run.
// v3: the tiled GEMM changed the FP addition order inside kernels, so
// numerically-sensitive cached curves no longer match what a fresh run
// produces; invalidate rather than mix kernel generations in one sweep.
// v4: RunResult gained the speculation counters (speculation_cut /
// speculation_wasted); the result JSON has two more fields.
// v5: RunResult gained the communication accounting (upload_wire_bytes /
// upload_raw_bytes), and transfer_bytes now charges container headers, so
// cached byte counts from older versions would under-report.
// v6: Simulation's in-flight session table became insertion-order
// independent (checkpoint/resume work), which can reorder SEAFL^2
// notification ties; arms also gained the diurnal availability knobs.
// Cached curves from older binaries may not match a fresh run.
// v7: RunResult gained the population-scale accounting (population +
// sparse_participation) and TaskSpec the pool knob; the result JSON has two
// more fields and the canonical config one more line.
// v8: the span reduction kernels moved to the lane-strided partial-sum
// contract (DESIGN.md §17) — dot/sum/l2_norm/cosine accumulate in a fixed
// 8-lane order, changing the floating-point association, so cached curves
// from older binaries differ in final ULPs from a fresh run.
constexpr std::uint64_t kCacheVersion = 8;

Json curve_to_json(const std::vector<AccuracyPoint>& curve) {
  JsonArray out;
  out.reserve(curve.size());
  for (const AccuracyPoint& p : curve) {
    out.push_back(JsonArray{Json(p.time), Json(p.round), Json(p.accuracy),
                            Json(p.loss)});
  }
  return Json(std::move(out));
}

std::vector<AccuracyPoint> curve_from_json(const Json& json) {
  std::vector<AccuracyPoint> curve;
  for (const Json& entry : json.as_array()) {
    const JsonArray& row = entry.as_array();
    SEAFL_CHECK(row.size() == 4, "cache: accuracy point needs 4 fields");
    AccuracyPoint p;
    p.time = row[0].as_double();
    p.round = row[1].as_u64();
    p.accuracy = row[2].as_double();
    p.loss = row[3].as_double();
    curve.push_back(p);
  }
  return curve;
}

Json round_log_to_json(const std::vector<RoundStat>& log) {
  JsonArray out;
  out.reserve(log.size());
  for (const RoundStat& s : log) {
    out.push_back(JsonArray{Json(s.round), Json(s.time), Json(s.updates),
                            Json(s.mean_staleness), Json(s.partial)});
  }
  return Json(std::move(out));
}

std::vector<RoundStat> round_log_from_json(const Json& json) {
  std::vector<RoundStat> log;
  for (const Json& entry : json.as_array()) {
    const JsonArray& row = entry.as_array();
    SEAFL_CHECK(row.size() == 5, "cache: round stat needs 5 fields");
    RoundStat s;
    s.round = row[0].as_u64();
    s.time = row[1].as_double();
    s.updates = row[2].as_size();
    s.mean_staleness = row[3].as_double();
    s.partial = row[4].as_size();
    log.push_back(s);
  }
  return log;
}

}  // namespace

Json result_to_json(const RunResult& r) {
  JsonObject obj;
  obj.emplace("curve", curve_to_json(r.curve));
  obj.emplace("round_log", round_log_to_json(r.round_log));
  JsonArray participation;
  participation.reserve(r.participation.size());
  for (const std::size_t count : r.participation) {
    participation.push_back(Json(count));
  }
  obj.emplace("participation", Json(std::move(participation)));
  JsonArray sparse;
  sparse.reserve(r.sparse_participation.size());
  for (const auto& [client, count] : r.sparse_participation) {
    sparse.push_back(JsonArray{Json(client), Json(count)});
  }
  obj.emplace("sparse_participation", Json(std::move(sparse)));
  obj.emplace("population", Json(r.population));
  obj.emplace("time_to_target", Json(r.time_to_target));
  obj.emplace("final_accuracy", Json(r.final_accuracy));
  obj.emplace("final_time", Json(r.final_time));
  obj.emplace("rounds", Json(r.rounds));
  obj.emplace("total_updates", Json(r.total_updates));
  obj.emplace("partial_updates", Json(r.partial_updates));
  obj.emplace("model_downloads", Json(r.model_downloads));
  obj.emplace("model_uploads", Json(r.model_uploads));
  obj.emplace("notifications", Json(r.notifications));
  obj.emplace("lost_uploads", Json(r.lost_uploads));
  obj.emplace("aggregations", Json(r.aggregations));
  obj.emplace("server_aggregation_work", Json(r.server_aggregation_work));
  obj.emplace("dropped_updates", Json(r.dropped_updates));
  obj.emplace("stale_waits", Json(r.stale_waits));
  obj.emplace("mean_staleness", Json(r.mean_staleness));
  obj.emplace("client_crashes", Json(r.client_crashes));
  obj.emplace("deadline_expirations", Json(r.deadline_expirations));
  obj.emplace("redispatches", Json(r.redispatches));
  obj.emplace("abandoned_slots", Json(r.abandoned_slots));
  obj.emplace("upload_retries", Json(r.upload_retries));
  obj.emplace("degraded_aggregations", Json(r.degraded_aggregations));
  obj.emplace("screened_updates", Json(r.screened_updates));
  obj.emplace("clipped_updates", Json(r.clipped_updates));
  obj.emplace("speculation_cut", Json(r.speculation_cut));
  obj.emplace("speculation_wasted", Json(r.speculation_wasted));
  obj.emplace("upload_wire_bytes", Json(r.upload_wire_bytes));
  obj.emplace("upload_raw_bytes", Json(r.upload_raw_bytes));
  return Json(std::move(obj));
}

RunResult result_from_json(const Json& json) {
  RunResult r;
  r.curve = curve_from_json(json.at("curve"));
  r.round_log = round_log_from_json(json.at("round_log"));
  for (const Json& count : json.at("participation").as_array()) {
    r.participation.push_back(count.as_size());
  }
  for (const Json& entry : json.at("sparse_participation").as_array()) {
    const JsonArray& pair = entry.as_array();
    SEAFL_CHECK(pair.size() == 2, "cache: sparse participation needs 2 fields");
    r.sparse_participation.emplace(pair[0].as_size(), pair[1].as_size());
  }
  r.population = json.at("population").as_size();
  r.time_to_target = json.at("time_to_target").as_double();
  r.final_accuracy = json.at("final_accuracy").as_double();
  r.final_time = json.at("final_time").as_double();
  r.rounds = json.at("rounds").as_u64();
  r.total_updates = json.at("total_updates").as_size();
  r.partial_updates = json.at("partial_updates").as_size();
  r.model_downloads = json.at("model_downloads").as_size();
  r.model_uploads = json.at("model_uploads").as_size();
  r.notifications = json.at("notifications").as_size();
  r.lost_uploads = json.at("lost_uploads").as_size();
  r.aggregations = json.at("aggregations").as_size();
  r.server_aggregation_work = json.at("server_aggregation_work").as_double();
  r.dropped_updates = json.at("dropped_updates").as_size();
  r.stale_waits = json.at("stale_waits").as_size();
  r.mean_staleness = json.at("mean_staleness").as_double();
  r.client_crashes = json.at("client_crashes").as_size();
  r.deadline_expirations = json.at("deadline_expirations").as_size();
  r.redispatches = json.at("redispatches").as_size();
  r.abandoned_slots = json.at("abandoned_slots").as_size();
  r.upload_retries = json.at("upload_retries").as_size();
  r.degraded_aggregations = json.at("degraded_aggregations").as_size();
  r.screened_updates = json.at("screened_updates").as_size();
  r.clipped_updates = json.at("clipped_updates").as_size();
  r.speculation_cut = json.at("speculation_cut").as_size();
  r.speculation_wasted = json.at("speculation_wasted").as_size();
  r.upload_wire_bytes = json.at("upload_wire_bytes").as_size();
  r.upload_raw_bytes = json.at("upload_raw_bytes").as_size();
  return r;
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

std::string ResultCache::path_for(const std::string& hash) const {
  return dir_ + "/" + hash + ".json";
}

std::optional<RunResult> ResultCache::load(const std::string& hash,
                                           const std::string& canonical) const {
  std::ifstream in(path_for(hash));
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    const Json doc = Json::parse(buffer.str());
    if (doc.at("version").as_u64() != kCacheVersion) return std::nullopt;
    // Collision / stale-entry guard: the stored config must match exactly.
    if (doc.at("config").as_string() != canonical) return std::nullopt;
    return result_from_json(doc.at("result"));
  } catch (const Error&) {
    return std::nullopt;  // corrupt entry: re-run and overwrite
  }
}

void ResultCache::store(const std::string& hash, const std::string& canonical,
                        const RunResult& result) const {
  namespace fs = std::filesystem;
  fs::create_directories(dir_);
  JsonObject doc;
  doc.emplace("version", Json(kCacheVersion));
  doc.emplace("hash", Json(hash));
  doc.emplace("config", Json(canonical));
  doc.emplace("result", result_to_json(result));
  const std::string payload = Json(std::move(doc)).dump();

  // Write-then-rename so concurrent runners never observe a torn entry.
  const std::string tmp =
      path_for(hash) + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::trunc);
    SEAFL_CHECK(out.good(), "cache: cannot write " << tmp);
    out << payload;
  }
  std::error_code ec;
  fs::rename(tmp, path_for(hash), ec);
  if (ec) fs::remove(tmp, ec);
}

}  // namespace seafl::exp
