// Declarative experiment specification: a sweep is a cartesian grid over
// named axes (strategy preset, K, beta, seeds, fleet knobs, ...), each arm a
// fully-determined (algorithm, params, world) triple. Arms serialize to a
// canonical key=value form whose hash keys the on-disk result cache, so a
// re-run only executes arms whose configuration actually changed.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/presets.h"
#include "data/registry.h"
#include "sim/fleet.h"

namespace seafl::exp {

/// Everything needed to build an experiment world (dataset + device fleet),
/// by value — worlds are constructed lazily by the Runner and shared across
/// arms with an identical WorldSpec.
struct WorldSpec {
  TaskSpec task;
  FleetConfig fleet;
};

/// One fully-determined experiment arm. `params.target_accuracy < 0` is the
/// "task default" sentinel: the Runner substitutes the built task's
/// target_accuracy at execution time (the config hash stores the sentinel,
/// which is stable without building the dataset).
struct ArmSpec {
  std::string algorithm = "seafl";  ///< preset name, see make_arm()
  ExperimentParams params;
  WorldSpec world;
  std::string label;  ///< display only; never part of the config hash
};

/// One grid point of an axis: the value for the axis' field, an optional
/// display label ("K=10"; empty = "<field>=<value>"), and optional extra
/// field overrides applied with it (e.g. K=1 also switching the preset to
/// fedasync).
struct AxisValue {
  std::string value;
  std::string label;
  std::vector<std::pair<std::string, std::string>> overrides;
};

/// A named sweep axis. `field` names any overridable ArmSpec field (see
/// apply_override); the grid takes the cartesian product of all axes.
struct Axis {
  std::string field;
  std::vector<AxisValue> values;
};

/// Convenience: an axis over plain values with auto "<field>=<value>" labels.
Axis make_axis(std::string field, const std::vector<std::string>& values);

/// A declarative sweep: base configuration plus axes. Enumeration is
/// row-major with the LAST axis varying fastest; axes are applied in order,
/// so when two axes touch the same field the later axis wins, and a value's
/// extra overrides are applied after its own field.
struct SweepSpec {
  ArmSpec base;
  std::vector<Axis> axes;
};

/// Sets one named field of an arm from its string form. Accepted fields are
/// the bench CLI flag names (task, clients, samples, dirichlet, pareto,
/// buffer, staleness/beta, epochs, lr, rounds, seed, ...); "seed" is a
/// compound alias setting the task, fleet and run seeds together, matching
/// the one---seed-drives-everything convention of the bench binaries.
/// Throws on an unknown field or an unparsable value.
void apply_override(ArmSpec& spec, const std::string& field,
                    const std::string& value);

/// Expands the grid into concrete arms (base copied, overrides applied,
/// labels composed by joining the axis labels with spaces).
std::vector<ArmSpec> enumerate(const SweepSpec& sweep);

/// Canonical serialization of every result-determining field, one sorted
/// "key=value" line each. Two specs describe the same experiment iff their
/// canonical configs are equal, regardless of how they were constructed.
std::string canonical_config(const ArmSpec& spec);

/// 64-bit FNV-1a of canonical_config (plus a schema-version salt), as 16
/// lowercase hex chars. Keys the result cache.
std::string config_hash(const ArmSpec& spec);

/// Canonical config with the seed fields (task/fleet/run seed) removed:
/// equal for seed replicates of the same arm. Groups multi-seed statistics.
std::string seedless_key(const ArmSpec& spec);

/// Appends a "seed" axis with `num_seeds` values base, base+1000, ... (the
/// derived-seed convention the multi-seed benches already use).
void add_seed_axis(SweepSpec& sweep, std::size_t num_seeds,
                   std::uint64_t base_seed);

}  // namespace seafl::exp
