#include "exp/summary.h"

#include <cmath>
#include <map>

#include "common/stats.h"
#include "common/table.h"
#include "fl/metrics.h"

namespace seafl::exp {

namespace {

/// "SEAFL K=10 seed=42" -> "SEAFL K=10".
std::string strip_seed_token(const std::string& label) {
  std::string out;
  std::size_t pos = 0;
  while (pos < label.size()) {
    std::size_t end = label.find(' ', pos);
    if (end == std::string::npos) end = label.size();
    const std::string token = label.substr(pos, end - pos);
    if (token.rfind("seed=", 0) != 0) {
      if (!out.empty()) out += ' ';
      out += token;
    }
    pos = end + 1;
  }
  return out;
}

std::string fmt_stat(const SummaryStat& s, int precision) {
  if (s.count == 0) return "n/a";
  std::string out = fmt(s.mean, precision);
  if (s.count > 1) out += "±" + fmt(s.ci95, precision);
  return out;
}

}  // namespace

SummaryStat summarize(std::span<const double> values) {
  SummaryStat s;
  s.count = values.size();
  if (values.empty()) return s;
  RunningStats stats;
  for (const double v : values) stats.add(v);
  s.mean = stats.mean();
  if (values.size() > 1) {
    // RunningStats reports population variance; rescale to the sample form.
    const double n = static_cast<double>(values.size());
    s.stddev = std::sqrt(stats.variance() * n / (n - 1.0));
    s.ci95 = 1.96 * s.stddev / std::sqrt(n);
  }
  return s;
}

std::vector<ArmSummary> summarize_by_arm(std::span<const ArmResult> results) {
  std::vector<std::string> order;
  std::map<std::string, std::vector<const ArmResult*>> groups;
  for (const ArmResult& r : results) {
    const std::string key = seedless_key(r.spec);
    if (groups.count(key) == 0) order.push_back(key);
    groups[key].push_back(&r);
  }

  std::vector<ArmSummary> summaries;
  summaries.reserve(order.size());
  for (const std::string& key : order) {
    const auto& group = groups[key];
    ArmSummary s;
    s.key = key;
    s.label = strip_seed_token(group.front()->spec.label);
    s.seeds = group.size();

    std::vector<double> times, tails, finals, rounds, staleness;
    for (const ArmResult* r : group) {
      if (r->result.time_to_target >= 0.0) {
        times.push_back(r->result.time_to_target);
        ++s.reached;
      }
      tails.push_back(tail_accuracy(r->result, 3));
      finals.push_back(r->result.final_accuracy);
      rounds.push_back(static_cast<double>(r->result.rounds));
      staleness.push_back(r->result.mean_staleness);
    }
    s.time_to_target = summarize(times);
    s.tail_accuracy = summarize(tails);
    s.final_accuracy = summarize(finals);
    s.rounds = summarize(rounds);
    s.mean_staleness = summarize(staleness);
    summaries.push_back(std::move(s));
  }
  return summaries;
}

std::vector<std::string> summary_header() {
  return {"arm",       "seeds", "reached",        "time-to-target",
          "tail-acc",  "final-acc", "mean-rounds", "mean-staleness"};
}

std::vector<std::string> summary_row(const ArmSummary& s) {
  return {s.label,
          std::to_string(s.seeds),
          std::to_string(s.reached) + "/" + std::to_string(s.seeds),
          fmt_stat(s.time_to_target, 1),
          fmt_stat(s.tail_accuracy, 4),
          fmt_stat(s.final_accuracy, 4),
          fmt_stat(s.rounds, 1),
          fmt_stat(s.mean_staleness, 2)};
}

namespace {

Json stat_to_json(const SummaryStat& s) {
  JsonObject obj;
  obj.emplace("count", Json(s.count));
  obj.emplace("mean", Json(s.mean));
  obj.emplace("stddev", Json(s.stddev));
  obj.emplace("ci95", Json(s.ci95));
  return Json(std::move(obj));
}

}  // namespace

Json sweep_to_json(std::span<const ArmResult> results,
                   std::span<const ArmSummary> summaries) {
  JsonArray arms;
  arms.reserve(results.size());
  for (const ArmResult& r : results) {
    JsonObject arm;
    arm.emplace("label", Json(r.spec.label));
    arm.emplace("hash", Json(r.hash));
    arm.emplace("config", Json(canonical_config(r.spec)));
    arm.emplace("from_cache", Json(r.from_cache));
    arm.emplace("result", result_to_json(r.result));
    arms.push_back(Json(std::move(arm)));
  }

  JsonArray groups;
  groups.reserve(summaries.size());
  for (const ArmSummary& s : summaries) {
    JsonObject group;
    group.emplace("label", Json(s.label));
    group.emplace("seeds", Json(s.seeds));
    group.emplace("reached", Json(s.reached));
    group.emplace("time_to_target", stat_to_json(s.time_to_target));
    group.emplace("tail_accuracy", stat_to_json(s.tail_accuracy));
    group.emplace("final_accuracy", stat_to_json(s.final_accuracy));
    group.emplace("rounds", stat_to_json(s.rounds));
    group.emplace("mean_staleness", stat_to_json(s.mean_staleness));
    groups.push_back(Json(std::move(group)));
  }

  JsonObject doc;
  doc.emplace("arms", Json(std::move(arms)));
  doc.emplace("summaries", Json(std::move(groups)));
  return Json(std::move(doc));
}

}  // namespace seafl::exp
