#include "exp/spec.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/error.h"
#include "compress/codec.h"

namespace seafl::exp {

namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt_float(float v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(v));
  return buf;
}

[[noreturn]] void bad_value(const std::string& field, const std::string& value,
                            const char* expected) {
  throw Error("override " + field + "=" + value + ": expected " + expected);
}

std::uint64_t parse_u64(const std::string& field, const std::string& value) {
  try {
    return std::stoull(value);
  } catch (const std::exception&) {
    bad_value(field, value, "an unsigned integer");
  }
}

std::size_t parse_size(const std::string& field, const std::string& value) {
  return static_cast<std::size_t>(parse_u64(field, value));
}

double parse_double(const std::string& field, const std::string& value) {
  try {
    return std::stod(value);
  } catch (const std::exception&) {
    bad_value(field, value, "a number");
  }
}

bool parse_bool(const std::string& field, const std::string& value) {
  if (value == "true" || value == "1") return true;
  if (value == "false" || value == "0") return false;
  bad_value(field, value, "a bool");
}

/// "inf"/"none" mean no staleness limit.
std::uint64_t parse_staleness(const std::string& field,
                              const std::string& value) {
  if (value == "inf" || value == "none") return kNoStalenessLimit;
  return parse_u64(field, value);
}

std::string staleness_to_string(std::uint64_t beta) {
  return beta == kNoStalenessLimit ? "inf" : std::to_string(beta);
}

/// One overridable/serializable field. `get == nullptr` marks a compound
/// alias: settable, but represented in the canonical config by the plain
/// fields it expands to.
struct FieldBinding {
  const char* name;
  void (*set)(ArmSpec&, const std::string&);
  std::string (*get)(const ArmSpec&);
};

// The single source of truth tying override names, canonical serialization
// and hashing together. Adding a result-determining knob to ExperimentParams
// / TaskSpec / FleetConfig requires a row here (the hash-coverage test in
// tests/exp enumerates this table).
const std::vector<FieldBinding>& field_table() {
  static const std::vector<FieldBinding> table = {
      {"algorithm",
       [](ArmSpec& s, const std::string& v) { s.algorithm = v; },
       [](const ArmSpec& s) { return s.algorithm; }},

      // --- task / dataset ---------------------------------------------------
      {"task", [](ArmSpec& s, const std::string& v) { s.world.task.name = v; },
       [](const ArmSpec& s) { return s.world.task.name; }},
      {"task-clients",
       [](ArmSpec& s, const std::string& v) {
         s.world.task.num_clients = parse_size("task-clients", v);
       },
       [](const ArmSpec& s) {
         return std::to_string(s.world.task.num_clients);
       }},
      {"samples",
       [](ArmSpec& s, const std::string& v) {
         s.world.task.samples_per_client = parse_size("samples", v);
       },
       [](const ArmSpec& s) {
         return std::to_string(s.world.task.samples_per_client);
       }},
      {"test-samples",
       [](ArmSpec& s, const std::string& v) {
         s.world.task.test_samples = parse_size("test-samples", v);
       },
       [](const ArmSpec& s) {
         return std::to_string(s.world.task.test_samples);
       }},
      {"dirichlet",
       [](ArmSpec& s, const std::string& v) {
         s.world.task.dirichlet_alpha = parse_double("dirichlet", v);
       },
       [](const ArmSpec& s) { return fmt_double(s.world.task.dirichlet_alpha); }},
      {"corrupt",
       [](ArmSpec& s, const std::string& v) {
         s.world.task.corrupt_client_fraction = parse_double("corrupt", v);
       },
       [](const ArmSpec& s) {
         return fmt_double(s.world.task.corrupt_client_fraction);
       }},
      {"pool",
       [](ArmSpec& s, const std::string& v) {
         s.world.task.pool_samples = parse_size("pool", v);
       },
       [](const ArmSpec& s) {
         return std::to_string(s.world.task.pool_samples);
       }},
      {"task-seed",
       [](ArmSpec& s, const std::string& v) {
         s.world.task.seed = parse_u64("task-seed", v);
       },
       [](const ArmSpec& s) { return std::to_string(s.world.task.seed); }},

      // --- fleet ------------------------------------------------------------
      {"devices",
       [](ArmSpec& s, const std::string& v) {
         s.world.fleet.num_devices = parse_size("devices", v);
       },
       [](const ArmSpec& s) {
         return std::to_string(s.world.fleet.num_devices);
       }},
      {"pareto",
       [](ArmSpec& s, const std::string& v) {
         s.world.fleet.pareto_shape = parse_double("pareto", v);
       },
       [](const ArmSpec& s) { return fmt_double(s.world.fleet.pareto_shape); }},
      {"cap",
       [](ArmSpec& s, const std::string& v) {
         s.world.fleet.speed_cap = parse_double("cap", v);
       },
       [](const ArmSpec& s) { return fmt_double(s.world.fleet.speed_cap); }},
      {"spuw",
       [](ArmSpec& s, const std::string& v) {
         s.world.fleet.seconds_per_unit_work = parse_double("spuw", v);
       },
       [](const ArmSpec& s) {
         return fmt_double(s.world.fleet.seconds_per_unit_work);
       }},
      {"zipf-s",
       [](ArmSpec& s, const std::string& v) {
         s.world.fleet.zipf_s = parse_double("zipf-s", v);
       },
       [](const ArmSpec& s) { return fmt_double(s.world.fleet.zipf_s); }},
      {"max-idle",
       [](ArmSpec& s, const std::string& v) {
         s.world.fleet.max_idle_seconds = parse_u64("max-idle", v);
       },
       [](const ArmSpec& s) {
         return std::to_string(s.world.fleet.max_idle_seconds);
       }},
      {"idle-scale",
       [](ArmSpec& s, const std::string& v) {
         s.world.fleet.idle_scale = parse_double("idle-scale", v);
       },
       [](const ArmSpec& s) { return fmt_double(s.world.fleet.idle_scale); }},
      {"latency",
       [](ArmSpec& s, const std::string& v) {
         s.world.fleet.mean_latency = parse_double("latency", v);
       },
       [](const ArmSpec& s) { return fmt_double(s.world.fleet.mean_latency); }},
      {"uplink",
       [](ArmSpec& s, const std::string& v) {
         s.world.fleet.mean_uplink_bytes_per_sec = parse_double("uplink", v);
       },
       [](const ArmSpec& s) {
         return fmt_double(s.world.fleet.mean_uplink_bytes_per_sec);
       }},
      {"fleet-seed",
       [](ArmSpec& s, const std::string& v) {
         s.world.fleet.seed = parse_u64("fleet-seed", v);
       },
       [](const ArmSpec& s) { return std::to_string(s.world.fleet.seed); }},

      // --- experiment parameters -------------------------------------------
      {"buffer",
       [](ArmSpec& s, const std::string& v) {
         s.params.buffer_size = parse_size("buffer", v);
       },
       [](const ArmSpec& s) { return std::to_string(s.params.buffer_size); }},
      {"concurrency",
       [](ArmSpec& s, const std::string& v) {
         s.params.concurrency = parse_size("concurrency", v);
       },
       [](const ArmSpec& s) { return std::to_string(s.params.concurrency); }},
      {"staleness",
       [](ArmSpec& s, const std::string& v) {
         s.params.staleness_limit = parse_staleness("staleness", v);
       },
       [](const ArmSpec& s) {
         return staleness_to_string(s.params.staleness_limit);
       }},
      {"epochs",
       [](ArmSpec& s, const std::string& v) {
         s.params.local_epochs = parse_size("epochs", v);
       },
       [](const ArmSpec& s) { return std::to_string(s.params.local_epochs); }},
      {"batch",
       [](ArmSpec& s, const std::string& v) {
         s.params.batch_size = parse_size("batch", v);
       },
       [](const ArmSpec& s) { return std::to_string(s.params.batch_size); }},
      {"lr",
       [](ArmSpec& s, const std::string& v) {
         s.params.learning_rate = static_cast<float>(parse_double("lr", v));
       },
       [](const ArmSpec& s) { return fmt_float(s.params.learning_rate); }},
      {"clip",
       [](ArmSpec& s, const std::string& v) {
         s.params.clip_norm = static_cast<float>(parse_double("clip", v));
       },
       [](const ArmSpec& s) { return fmt_float(s.params.clip_norm); }},
      {"alpha",
       [](ArmSpec& s, const std::string& v) {
         s.params.alpha = parse_double("alpha", v);
       },
       [](const ArmSpec& s) { return fmt_double(s.params.alpha); }},
      {"mu",
       [](ArmSpec& s, const std::string& v) {
         s.params.mu = parse_double("mu", v);
       },
       [](const ArmSpec& s) { return fmt_double(s.params.mu); }},
      {"vartheta",
       [](ArmSpec& s, const std::string& v) {
         s.params.vartheta = parse_double("vartheta", v);
       },
       [](const ArmSpec& s) { return fmt_double(s.params.vartheta); }},
      {"target",
       [](ArmSpec& s, const std::string& v) {
         s.params.target_accuracy = parse_double("target", v);
       },
       [](const ArmSpec& s) { return fmt_double(s.params.target_accuracy); }},
      {"stop-at-target",
       [](ArmSpec& s, const std::string& v) {
         s.params.stop_at_target = parse_bool("stop-at-target", v);
       },
       [](const ArmSpec& s) {
         return std::string(s.params.stop_at_target ? "true" : "false");
       }},
      {"rounds",
       [](ArmSpec& s, const std::string& v) {
         s.params.max_rounds = parse_u64("rounds", v);
       },
       [](const ArmSpec& s) { return std::to_string(s.params.max_rounds); }},
      {"max-seconds",
       [](ArmSpec& s, const std::string& v) {
         s.params.max_virtual_seconds = parse_double("max-seconds", v);
       },
       [](const ArmSpec& s) {
         return fmt_double(s.params.max_virtual_seconds);
       }},
      {"eval-every",
       [](ArmSpec& s, const std::string& v) {
         s.params.eval_every = parse_u64("eval-every", v);
       },
       [](const ArmSpec& s) { return std::to_string(s.params.eval_every); }},
      {"eval-subset",
       [](ArmSpec& s, const std::string& v) {
         s.params.eval_subset = parse_size("eval-subset", v);
       },
       [](const ArmSpec& s) { return std::to_string(s.params.eval_subset); }},
      {"run-seed",
       [](ArmSpec& s, const std::string& v) {
         s.params.seed = parse_u64("run-seed", v);
       },
       [](const ArmSpec& s) { return std::to_string(s.params.seed); }},

      // --- upload compression (DESIGN.md §14) ---------------------------------
      {"codec",
       [](ArmSpec& s, const std::string& v) {
         // Validate eagerly so a sweep over a typo fails at enumeration,
         // not mid-run; the string itself is what serializes.
         compress::CompressionConfig probe;
         compress::apply_codec_name(probe, v);
         s.params.codec = v;
       },
       [](const ArmSpec& s) { return s.params.codec; }},
      {"codec-bits",
       [](ArmSpec& s, const std::string& v) {
         s.params.codec_bits = parse_size("codec-bits", v);
       },
       [](const ArmSpec& s) { return std::to_string(s.params.codec_bits); }},
      {"topk",
       [](ArmSpec& s, const std::string& v) {
         s.params.topk_fraction = parse_double("topk", v);
       },
       [](const ArmSpec& s) { return fmt_double(s.params.topk_fraction); }},
      {"error-feedback",
       [](ArmSpec& s, const std::string& v) {
         s.params.error_feedback = parse_bool("error-feedback", v);
       },
       [](const ArmSpec& s) {
         return std::string(s.params.error_feedback ? "true" : "false");
       }},

      // --- diurnal availability (DESIGN.md §15) ------------------------------
      {"diurnal-period",
       [](ArmSpec& s, const std::string& v) {
         s.params.diurnal_period = parse_double("diurnal-period", v);
       },
       [](const ArmSpec& s) { return fmt_double(s.params.diurnal_period); }},
      {"diurnal-online",
       [](ArmSpec& s, const std::string& v) {
         s.params.diurnal_online_fraction = parse_double("diurnal-online", v);
       },
       [](const ArmSpec& s) {
         return fmt_double(s.params.diurnal_online_fraction);
       }},

      // --- compound aliases (not serialized; expand to the fields above) ----
      {"seed",
       [](ArmSpec& s, const std::string& v) {
         const std::uint64_t seed = parse_u64("seed", v);
         s.world.task.seed = seed;
         s.world.fleet.seed = seed;
         s.params.seed = seed;
       },
       nullptr},
      {"clients",
       [](ArmSpec& s, const std::string& v) {
         const std::size_t n = parse_size("clients", v);
         s.world.task.num_clients = n;
         s.world.fleet.num_devices = n;
       },
       nullptr},
      {"beta",
       [](ArmSpec& s, const std::string& v) {
         s.params.staleness_limit = parse_staleness("beta", v);
       },
       nullptr},
      {"strategy",
       [](ArmSpec& s, const std::string& v) { s.algorithm = v; }, nullptr},
  };
  return table;
}

/// Bumped whenever the simulation's observable behaviour changes in a way
/// the config fields cannot express, invalidating every cache entry.
constexpr const char* kConfigSchema = "seafl-exp-config-v1";

constexpr const char* kSeedFields[] = {"task-seed", "fleet-seed", "run-seed"};

std::string serialize(const ArmSpec& spec, bool include_seeds) {
  std::map<std::string, std::string> kv;  // sorted keys: canonical order
  for (const FieldBinding& f : field_table()) {
    if (f.get == nullptr) continue;
    kv.emplace(f.name, f.get(spec));
  }
  if (!include_seeds) {
    for (const char* name : kSeedFields) kv.erase(name);
  }
  std::string out;
  out += kConfigSchema;
  out += '\n';
  for (const auto& [key, value] : kv) {
    out += key;
    out += '=';
    out += value;
    out += '\n';
  }
  return out;
}

}  // namespace

Axis make_axis(std::string field, const std::vector<std::string>& values) {
  Axis axis;
  axis.field = std::move(field);
  axis.values.reserve(values.size());
  for (const std::string& v : values) axis.values.push_back({v, "", {}});
  return axis;
}

void apply_override(ArmSpec& spec, const std::string& field,
                    const std::string& value) {
  for (const FieldBinding& f : field_table()) {
    if (field == f.name) {
      f.set(spec, value);
      return;
    }
  }
  SEAFL_CHECK(false, "unknown experiment field '" << field << "'");
}

std::vector<ArmSpec> enumerate(const SweepSpec& sweep) {
  std::size_t total = 1;
  for (const Axis& axis : sweep.axes) {
    SEAFL_CHECK(!axis.values.empty(),
                "sweep axis '" << axis.field << "' has no values");
    total *= axis.values.size();
  }

  std::vector<ArmSpec> arms;
  arms.reserve(total);
  for (std::size_t idx = 0; idx < total; ++idx) {
    ArmSpec arm = sweep.base;
    std::string label = sweep.base.label;
    // Row-major decode: the last axis varies fastest.
    std::size_t stride = total;
    for (const Axis& axis : sweep.axes) {
      stride /= axis.values.size();
      const AxisValue& v = axis.values[(idx / stride) % axis.values.size()];
      apply_override(arm, axis.field, v.value);
      for (const auto& [field, value] : v.overrides) {
        apply_override(arm, field, value);
      }
      const std::string part =
          v.label.empty() ? axis.field + "=" + v.value : v.label;
      if (!label.empty()) label += ' ';
      label += part;
    }
    arm.label = label;
    arms.push_back(std::move(arm));
  }
  return arms;
}

std::string canonical_config(const ArmSpec& spec) {
  return serialize(spec, /*include_seeds=*/true);
}

std::string seedless_key(const ArmSpec& spec) {
  return serialize(spec, /*include_seeds=*/false);
}

std::string config_hash(const ArmSpec& spec) {
  // FNV-1a, 64-bit.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : canonical_config(spec)) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

void add_seed_axis(SweepSpec& sweep, std::size_t num_seeds,
                   std::uint64_t base_seed) {
  SEAFL_CHECK(num_seeds > 0, "add_seed_axis: need at least one seed");
  Axis axis;
  axis.field = "seed";
  for (std::size_t i = 0; i < num_seeds; ++i) {
    const std::uint64_t seed = base_seed + 1000 * i;  // run_seeds convention
    axis.values.push_back({std::to_string(seed), "seed=" + std::to_string(seed),
                           {}});
  }
  sweep.axes.push_back(std::move(axis));
}

}  // namespace seafl::exp
