// Compatibility re-export: the JSON value type moved to common/json.h so
// lower layers (seafl::obs) can use it. Experiment code keeps spelling
// exp::Json.
#pragma once

#include "common/json.h"

namespace seafl::exp {

using Json = seafl::Json;
using JsonArray = seafl::JsonArray;
using JsonObject = seafl::JsonObject;

}  // namespace seafl::exp
