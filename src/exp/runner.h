// Parallel, cached execution of experiment arms.
//
// The Runner takes the arms of a sweep and returns one result per arm, in
// enumeration order, having
//  * served arms whose config hash is already in the result cache from disk,
//  * deduplicated arms with identical hashes (one simulation, shared result),
//  * built each distinct world (dataset + fleet) exactly once, shared
//    read-only across runs, and
//  * executed the remaining simulations concurrently — up to `jobs` at a
//    time on the shared ThreadPool, each wrapped in a SerialKernelScope so a
//    run's tensor kernels stay on its own core instead of re-entering the
//    pool (never nested-parallel).
//
// Determinism: a simulation's outcome depends only on its ArmSpec (all
// randomness flows from named seed streams, and kernel reductions use fixed
// block boundaries), and results land at their arm's index — so a parallel
// sweep is bitwise-identical to the serial one at any `jobs` value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/cache.h"
#include "exp/spec.h"

namespace seafl::exp {

struct RunnerOptions {
  /// Simulations in flight at once. 1 = run serially on the caller (kernels
  /// may still parallelize); N>1 = the caller plus N-1 pool workers execute
  /// arms concurrently, each with serial kernels.
  std::size_t jobs = 1;

  std::string cache_dir = "results/cache";
  bool use_cache = true;  ///< read hits and store new results
  bool refresh = false;   ///< ignore existing entries (still store)

  /// Live "\r[done/total] label" line on stderr while simulating.
  bool progress = true;

  /// When non-empty, each executed arm also writes its trace journal here:
  /// <hash>.trace.json (Chrome trace-event format, Perfetto-loadable) and
  /// <hash>.jsonl (one event per line). Forces execution — cache reads are
  /// skipped so the traces exist — but results are still stored, and tracing
  /// never changes them (see Simulation::set_trace_sink).
  std::string trace_dir;

  /// Enables kernel/phase profiling for the duration of run() and writes a
  /// per-arm timing summary next to the cached result, at
  /// <cache_dir>/<hash>.metrics.json (wall seconds plus the arm's
  /// counter/histogram deltas: gemm, im2col, conv, client train, aggregate,
  /// evaluate). Attribution is exact at any `jobs` value: concurrent arms
  /// run with serial kernels, so a per-thread snapshot delta isolates each.
  bool metrics = false;

  /// Intra-arm eager session execution (RunConfig::eager_training): each
  /// executed simulation speculates its client sessions onto the shared
  /// pool (DESIGN.md §12). Composes with `jobs` — arm workers and training
  /// jobs drain one global pool, so the process never oversubscribes.
  /// Results are bitwise identical either way; forced off when `metrics`
  /// runs with jobs > 1, where exact per-thread attribution needs every
  /// kernel of an arm to stay on the arm's own thread.
  bool eager_training = false;

  /// RunConfig::sim_jobs: cap on live speculated sessions per simulation
  /// (0 = unlimited). Only meaningful with eager_training.
  std::size_t sim_jobs = 0;
};

/// One arm's outcome.
struct ArmResult {
  ArmSpec spec;
  std::string hash;        ///< config_hash(spec)
  RunResult result;        ///< final_weights empty when served from cache
  bool from_cache = false;
};

class Runner {
 public:
  explicit Runner(RunnerOptions options = {});

  /// Executes all arms; results are returned in input order.
  std::vector<ArmResult> run(const std::vector<ArmSpec>& arms);
  std::vector<ArmResult> run(const SweepSpec& sweep) {
    return run(enumerate(sweep));
  }

  /// Simulations actually executed by the last run() (cache hits and
  /// duplicate arms excluded).
  std::size_t simulations_run() const { return simulations_run_; }

 private:
  RunnerOptions options_;
  ResultCache cache_;
  std::size_t simulations_run_ = 0;
};

}  // namespace seafl::exp
