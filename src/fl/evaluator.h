// Server-side test evaluation of a flat model vector.
#pragma once

#include "data/registry.h"
#include "fl/types.h"
#include "nn/loss.h"

namespace seafl {

/// Test metrics of one evaluation pass.
struct EvalResult {
  double accuracy = 0.0;  ///< top-1 on the evaluation set
  double loss = 0.0;      ///< mean cross-entropy
};

/// Evaluates flat model vectors on a task's test set (optionally a fixed
/// random subset to bound evaluation cost in benches). Owns one reusable
/// model instance.
class Evaluator {
 public:
  /// @param subset 0 = full test set, otherwise evaluate on `subset` samples
  ///        chosen once (seeded), fixed for the evaluator's lifetime.
  Evaluator(const FlTask& task, const ModelFactory& factory,
            std::size_t batch_size, std::size_t subset, std::uint64_t seed);

  /// Evaluates `weights` (dimension must match the architecture).
  EvalResult evaluate(const ModelVector& weights);

  std::size_t eval_samples() const { return indices_.size(); }

 private:
  const FlTask* task_;
  std::unique_ptr<Sequential> model_;
  std::size_t batch_size_;
  std::vector<std::size_t> indices_;
  SoftmaxCrossEntropy loss_;
  Tensor batch_features_;
  std::vector<std::int32_t> batch_labels_;
};

}  // namespace seafl
