// Server-side test evaluation of a flat model vector.
#pragma once

#include <memory>
#include <mutex>

#include "data/registry.h"
#include "fl/types.h"
#include "nn/loss.h"

namespace seafl {

/// Test metrics of one evaluation pass.
struct EvalResult {
  double accuracy = 0.0;  ///< top-1 on the evaluation set
  double loss = 0.0;      ///< mean cross-entropy
};

/// Evaluates flat model vectors on a task's test set (optionally a fixed
/// random subset to bound evaluation cost in benches).
///
/// Batches are scored in parallel on the shared thread pool. The per-batch
/// loss and correct-count land in fixed slots and are reduced in batch-index
/// order afterwards, so the result is bitwise identical to the serial loop
/// at any worker count (the fixed-block reduction idiom of DESIGN.md §8).
/// Each concurrent chunk leases an evaluation context (model clone + batch
/// tensors), so at most pool-workers + 1 contexts ever exist and their
/// tensors are reused across evaluations instead of reallocating.
class Evaluator {
 public:
  /// @param subset 0 = full test set, otherwise evaluate on `subset` samples
  ///        chosen once (seeded), fixed for the evaluator's lifetime.
  Evaluator(const FlTask& task, const ModelFactory& factory,
            std::size_t batch_size, std::size_t subset, std::uint64_t seed);

  /// Evaluates `weights` (dimension must match the architecture).
  EvalResult evaluate(const ModelVector& weights);

  std::size_t eval_samples() const { return indices_.size(); }

 private:
  /// One leased evaluation context.
  struct Slot {
    std::unique_ptr<Sequential> model;
    SoftmaxCrossEntropy loss;
    Tensor batch_features;
    std::vector<std::int32_t> batch_labels;
    std::uint64_t version = 0;  ///< evaluate() pass whose weights are loaded
  };

  Slot* acquire_slot();
  void release_slot(Slot* slot);

  const FlTask* task_;
  ModelFactory factory_;
  std::size_t batch_size_;
  std::size_t num_params_ = 0;  ///< for up-front dimension validation
  std::vector<std::size_t> indices_;
  std::uint64_t version_ = 0;  ///< bumped per evaluate() pass

  std::mutex slots_mutex_;
  std::vector<std::unique_ptr<Slot>> slots_;  ///< every context ever created
  std::vector<Slot*> free_slots_;

  std::vector<double> batch_loss_;          ///< per-batch loss * batch size
  std::vector<std::size_t> batch_correct_;  ///< per-batch correct count
};

}  // namespace seafl
