// Shared value types of the federated-learning substrate.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "compress/codec.h"
#include "nn/sgd.h"

namespace seafl {

/// Flat model weights as exchanged between server and clients.
using ModelVector = std::vector<float>;

/// Sentinel for "no staleness limit" (FedBuff's ∞ in the paper).
inline constexpr std::uint64_t kNoStalenessLimit =
    std::numeric_limits<std::uint64_t>::max();

/// One client's uploaded result.
struct LocalUpdate {
  std::size_t client = 0;
  std::uint64_t base_round = 0;   ///< t_k: round the client's weights are based on
  ModelVector weights;            ///< w^k after local training
  std::size_t num_samples = 0;    ///< |D_k|
  std::size_t epochs_completed = 0;  ///< < E when partial training fired
  double arrival_time = 0.0;      ///< virtual upload-complete time
  double train_loss = 0.0;        ///< mean loss over the last local epoch
};

/// One point of the accuracy-vs-virtual-time curve.
struct AccuracyPoint {
  double time = 0.0;      ///< virtual seconds since training start
  std::uint64_t round = 0;
  double accuracy = 0.0;  ///< test-set top-1
  double loss = 0.0;      ///< test-set mean cross-entropy
};

/// Execution mode of the simulation loop.
enum class FlMode {
  kSemiAsync,  ///< buffer K updates per round (FedBuff / SEAFL family)
  kSync,       ///< wait for all selected clients (FedAvg)
};

/// How the server picks training cohorts (the initial semi-async cohort, or
/// every round's cohort in sync mode). Speed-aware policies echo the
/// scheduling line of work the paper surveys (Oort, PyramidFL): preferring
/// fast devices shortens rounds but starves slow devices' data.
enum class SelectionPolicy {
  kRandom,        ///< uniform without replacement (the paper's setting)
  kFastestFirst,  ///< lowest fleet slowdown first (deterministic)
  kDataWeighted,  ///< sample-count-proportional, without replacement
};

/// Fault injection and the server/client recovery policies that answer it
/// (DESIGN.md §10). The hazard half (device churn) is simulated by a
/// ChurnModel (sim/hazard.h) owned by the Simulation; the policy half is
/// enforced by the simulation loop. All knobs default to off, so a fault-free
/// config reproduces pre-fault-layer behavior exactly.
struct FaultConfig {
  // --- hazard: device churn -------------------------------------------------
  /// Mean online interval (virtual seconds) of the per-client crash/recovery
  /// process; a client that crashes mid-session never delivers its upload.
  /// 0 disables churn entirely.
  double mean_uptime = 0.0;
  /// Mean offline interval after a crash (exponential).
  double mean_downtime = 60.0;

  // --- hazard: diurnal availability windows ---------------------------------
  /// Deterministic day/night schedule (sim/schedule.h): each client is only
  /// reachable inside its periodic online window, with a per-client phase
  /// drawn from the seed. Composes with churn (a client must satisfy both).
  /// 0 disables the schedule.
  double diurnal_period = 0.0;
  /// In-window share of each diurnal period, (0, 1].
  double diurnal_online_fraction = 0.5;

  // --- recovery: per-assignment deadlines -----------------------------------
  /// The server expires an assignment `deadline_factor` x its expected
  /// session duration after dispatch, cancels the presumed-dead client, and
  /// re-dispatches the slot to a fresh online client. 0 disables; otherwise
  /// must be >= 1 (a healthy client always beats its deadline).
  double deadline_factor = 0.0;

  // --- recovery: client upload retransmission -------------------------------
  /// How many times a client re-sends an upload lost in transit
  /// (upload_loss_prob) before giving up. 0 reproduces the one-shot loss.
  std::size_t max_upload_retries = 0;
  /// First retransmission backoff (virtual seconds); doubles per retry.
  double retry_backoff = 1.0;
  /// Cap on the exponential backoff.
  double retry_backoff_cap = 32.0;

  // --- recovery: round-deadline graceful degradation ------------------------
  /// If the buffer cannot reach K within `round_deadline` virtual seconds of
  /// the round start (too many assigned clients died), aggregate with
  /// whatever is buffered once it holds >= min_updates instead of stalling.
  /// 0 disables.
  double round_deadline = 0.0;
  /// Degraded-aggregation floor (1 <= min_updates <= K).
  std::size_t min_updates = 1;

  bool churn_enabled() const { return mean_uptime > 0.0; }
  bool diurnal_enabled() const { return diurnal_period > 0.0; }
};

/// Orchestration parameters shared by all algorithms. Strategy-specific
/// hyperparameters (alpha, mu, vartheta, ...) live in the strategy configs.
struct RunConfig {
  FlMode mode = FlMode::kSemiAsync;

  std::size_t buffer_size = 10;      ///< K (ignored in sync mode)
  std::size_t concurrency = 20;      ///< M: clients training at once
  std::uint64_t staleness_limit = kNoStalenessLimit;  ///< beta

  /// SEAFL semantics for clients at the staleness limit: the server
  /// synchronously waits for them before aggregating (see §IV.B).
  bool wait_for_stale = false;

  /// SEAFL^2: notify over-limit clients to upload after their current epoch.
  bool partial_training = false;

  /// SAFA-style alternative (extension): drop updates older than the limit
  /// instead of waiting. Mutually exclusive with wait_for_stale.
  bool drop_stale = false;

  std::size_t local_epochs = 5;      ///< E
  std::size_t batch_size = 20;       ///< B
  SgdConfig sgd;                     ///< local optimizer

  /// FedProx-style proximal regularization: after every SGD step the local
  /// model is pulled toward the received global model with strength
  /// lr * proximal_mu * (w - w_global). 0 disables (plain local SGD).
  double proximal_mu = 0.0;

  /// FedSA-style load adaptation (extension): device k trains
  /// max(1, E / slowdown_k) epochs instead of a fixed E, so slow devices
  /// upload earlier at the cost of less local progress.
  bool adaptive_epochs = false;

  /// Sub-model training (the paper's stated future work): devices slower
  /// than `submodel_slowdown_threshold` freeze the first
  /// `submodel_frozen_fraction` of their layers and only fine-tune the
  /// rest, which cuts their per-epoch compute (backward pass skipped for
  /// the frozen prefix) at the cost of a shallower update.
  bool submodel_training = false;
  double submodel_frozen_fraction = 0.5;
  double submodel_slowdown_threshold = 2.0;

  /// Availability model: probability that a training session's upload is
  /// lost (device went offline). The server notices at the expected arrival
  /// time and reassigns the slot to another client. 0 disables.
  double upload_loss_prob = 0.0;

  /// Communication compression: uniform symmetric quantization of uploaded
  /// weights to this many bits (2..16). 0 disables (full float32 uploads).
  /// Legacy fault knob: logical floats still cross the wire and only the
  /// byte accounting changes. Mutually exclusive with `compression`.
  std::size_t quantize_bits = 0;

  /// First-class upload compression (DESIGN.md §14): clients encode real
  /// byte payloads (stochastic quantization / top-k with error feedback),
  /// the server decodes ahead of screening/aggregation, and with a fleet
  /// uplink bandwidth model the smaller payload directly shortens upload
  /// time — i.e. compression reduces staleness. Identity codec = off.
  compress::CompressionConfig compression;

  /// Fault injection + recovery policies (all off by default).
  FaultConfig faults;

  // Stopping conditions (whichever hits first).
  std::uint64_t max_rounds = 300;
  double max_virtual_seconds = 1e9;

  double target_accuracy = 0.9;      ///< records time-to-target
  bool stop_at_target = true;        ///< halt once the target is reached
  std::uint64_t eval_every = 1;      ///< evaluate every this many rounds
  std::size_t eval_subset = 0;       ///< 0 = full test set

  SelectionPolicy selection = SelectionPolicy::kRandom;

  /// Eager session execution (DESIGN.md §12): train each dispatched session
  /// speculatively on the shared ThreadPool at assignment time instead of
  /// lazily at upload time. Pure placement of compute — RunResult (down to
  /// final_weights) is bitwise identical with the executor on or off, at any
  /// worker count.
  bool eager_training = false;

  /// Cap on concurrently speculated sessions when eager_training is on.
  /// 0 = unlimited (bounded by `concurrency` anyway). Sessions dispatched at
  /// the cap skip speculation and train at harvest time like the lazy path;
  /// only where compute happens changes, never the results. Requires
  /// eager_training.
  std::size_t sim_jobs = 0;

  /// Durable checkpoint/resume (DESIGN.md §15): snapshot the complete run
  /// state into `checkpoint_dir` every this many rounds. 0 disables.
  /// Observation-only: a run with checkpointing on is bitwise identical to
  /// the same run with it off, and a run resumed from any checkpoint is
  /// bitwise identical to the uninterrupted run.
  std::uint64_t checkpoint_every_rounds = 0;
  /// Where checkpoint files live; must be non-empty when checkpointing is
  /// enabled. Retention keeps the newest `checkpoint_keep` rounds.
  std::string checkpoint_dir;
  std::size_t checkpoint_keep = 3;

  /// Stop the run once `round >= halt_after_rounds`, checked *after* the
  /// round's checkpoint hook (unlike max_rounds, which short-circuits
  /// before it). 0 disables. This is the controlled-crash knob: split-run
  /// legs and kill-and-resume drills end a leg on a freshly written
  /// checkpoint and hand the rest of the horizon to a resumed process.
  std::uint64_t halt_after_rounds = 0;

  /// Populations at or below this keep the dense per-client participation
  /// vector (index = client id, the historical layout); above it the server
  /// switches to a sparse map holding only clients that actually
  /// participated, so per-client accounting is O(active) at million-client
  /// scale (DESIGN.md §16). Pure representation choice: counts, fairness,
  /// and checkpoints agree across the threshold.
  std::size_t sparse_population_threshold = 8192;

  std::uint64_t seed = 42;
};

/// Per-aggregation trace entry (observability into the server's schedule).
struct RoundStat {
  std::uint64_t round = 0;       ///< round index after the aggregation
  double time = 0.0;             ///< virtual time of the aggregation
  std::size_t updates = 0;       ///< buffer size consumed
  double mean_staleness = 0.0;   ///< mean S_k within this buffer
  std::size_t partial = 0;       ///< partially trained updates in the buffer
};

/// Aggregate outcome of one simulated FL run.
struct RunResult {
  std::vector<AccuracyPoint> curve;
  std::vector<RoundStat> round_log;  ///< one entry per aggregation
  ModelVector final_weights;         ///< the global model when the run ended
  /// Per-client count of updates that entered an aggregation (fairness
  /// analysis; index = client id). Dense form, used for populations at or
  /// below RunConfig::sparse_population_threshold; empty when the sparse
  /// form below is in use.
  std::vector<std::size_t> participation;
  /// Sparse form of the same counts (client -> updates aggregated), used
  /// above the population threshold; only participants appear. Exactly one
  /// of the two forms is populated for a given run.
  std::map<std::size_t, std::size_t> sparse_participation;
  /// Client population of the run (the dense vector's implicit length).
  std::size_t population = 0;
  double time_to_target = -1.0;      ///< virtual seconds; -1 if never reached
  double final_accuracy = 0.0;
  double final_time = 0.0;           ///< virtual time when the run stopped
  std::uint64_t rounds = 0;
  std::size_t total_updates = 0;     ///< client uploads consumed
  std::size_t partial_updates = 0;   ///< uploads with epochs < E (SEAFL^2)

  // Overhead accounting (§II motivates buffering by FedAsync's per-update
  // aggregation cost; these let benches quantify it).
  std::size_t model_downloads = 0;   ///< global-model broadcasts to clients
  std::size_t model_uploads = 0;     ///< client update transmissions
  std::size_t notifications = 0;     ///< SEAFL^2 early-upload pings
  std::size_t lost_uploads = 0;      ///< uploads dropped by the network
  std::size_t aggregations = 0;      ///< server aggregation invocations
  /// Scalar multiply-adds spent combining updates on the server
  /// (sum over aggregations of buffer_size * model_dim).
  double server_aggregation_work = 0.0;
  std::size_t dropped_updates = 0;   ///< uploads discarded as too stale
  std::size_t stale_waits = 0;       ///< aggregations delayed for stale clients
  double mean_staleness = 0.0;       ///< mean S_k over aggregated updates

  // Fault-tolerance accounting (DESIGN.md §10).
  std::size_t client_crashes = 0;        ///< sessions killed by device churn
  std::size_t deadline_expirations = 0;  ///< assignments the server expired
  std::size_t redispatches = 0;          ///< expired slots handed to a fresh client
  std::size_t abandoned_slots = 0;       ///< expirations with no replacement available
  std::size_t upload_retries = 0;        ///< client retransmissions of lost uploads
  std::size_t degraded_aggregations = 0; ///< rounds closed with < K updates
  std::size_t screened_updates = 0;      ///< updates quarantined pre-aggregation
  std::size_t clipped_updates = 0;       ///< updates norm-clipped pre-aggregation

  // Speculative-execution accounting (DESIGN.md §12). Both count *protocol*
  // events of the simulation — a partial-training cut of a dispatched
  // session, and a session abandoned after dispatch (deadline re-dispatch or
  // an out-of-retries lost upload) whose training the lazy path never runs —
  // so they are identical whether eager_training is on or off.
  std::size_t speculation_cut = 0;     ///< sessions truncated after dispatch
  std::size_t speculation_wasted = 0;  ///< dispatched sessions never harvested

  // Communication accounting (DESIGN.md §14): container bytes the delivered
  // uploads occupied on the (virtual or real) wire, and what plain float32
  // containers would have cost — raw/wire is the run's compression ratio.
  std::size_t upload_wire_bytes = 0;
  std::size_t upload_raw_bytes = 0;
};

}  // namespace seafl
