#include "fl/compression.h"

#include <cmath>

#include "common/error.h"

namespace seafl {

namespace {
double grid_step(const ModelVector& weights, std::size_t bits) {
  SEAFL_CHECK(bits >= 2 && bits <= 16,
              "quantization bits must be in [2, 16], got " << bits);
  float max_abs = 0.0f;
  for (const float w : weights) max_abs = std::max(max_abs, std::abs(w));
  if (max_abs == 0.0f) return 0.0;
  const double levels = std::pow(2.0, static_cast<double>(bits)) - 1.0;
  // Symmetric grid: (levels - 1) / 2 positive steps reach +max_abs.
  return 2.0 * max_abs / (levels - 1.0);
}
}  // namespace

double quantize_model(ModelVector& weights, std::size_t bits) {
  const double step = grid_step(weights, bits);
  if (step == 0.0) return 0.0;
  for (auto& w : weights) {
    w = static_cast<float>(std::round(static_cast<double>(w) / step) * step);
  }
  return step;
}

double quantization_error_bound(const ModelVector& weights,
                                std::size_t bits) {
  return grid_step(weights, bits) / 2.0;
}

std::size_t transfer_bytes(std::size_t dim, std::size_t bits) {
  if (bits == 0) return dim * sizeof(float);
  SEAFL_CHECK(bits >= 2 && bits <= 16, "quantization bits out of range");
  return (dim * bits + 7) / 8;
}

}  // namespace seafl
