// Server-side aggregation strategy interface. The simulation loop owns
// buffering, staleness accounting and scheduling; a strategy only decides how
// buffered updates combine into the next global model. SEAFL's adaptive
// weighting (src/core) and all baselines implement this interface.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "fl/types.h"

namespace seafl {

/// Per-update outcome of the pre-aggregation screening filter
/// (core/screening.h). A screening strategy fills one entry per buffered
/// update, in buffer order, through AggregationContext::screening so the
/// simulation can journal quarantines and count them in RunResult without
/// the fl layer depending on core.
struct ScreeningReport {
  struct Entry {
    std::size_t client = 0;
    double delta_norm = 0.0;  ///< L2 norm of w_k - w_g before clipping
    double cosine = 1.0;      ///< similarity to the buffer's mean delta
    bool clipped = false;     ///< delta was norm-clipped
    bool rejected = false;    ///< update quarantined (excluded from Eq. 7)
  };
  std::vector<Entry> entries;
};

/// Read-only view the server exposes to a strategy at aggregation time.
struct AggregationContext {
  std::uint64_t round = 0;           ///< current server round t
  const ModelVector* global = nullptr;  ///< w_t^g (never null)
  std::size_t total_samples = 0;     ///< sum of |D_k| over buffered updates
  /// Out-channel for screening strategies; may be null (no report wanted).
  ScreeningReport* screening = nullptr;
};

/// Combines a buffer of local updates into the next global model.
class AggregationStrategy {
 public:
  virtual ~AggregationStrategy() = default;

  /// Computes w_{t+1}^g from the buffer. `buffer` is ordered by arrival and
  /// non-empty; `global_out` holds w_t^g on entry and the new model on exit.
  virtual void aggregate(const AggregationContext& ctx,
                         std::span<const LocalUpdate> buffer,
                         ModelVector& global_out) = 0;

  /// Display name used in bench tables ("SEAFL", "FedBuff", ...).
  virtual std::string name() const = 0;

  /// Appends the strategy's cross-round accumulated state (server optimizer
  /// moments, SEAFL's last weight breakdown, ...) to `out` for
  /// checkpointing (DESIGN.md §15). The stateless default appends nothing.
  /// Decorators serialize their own state and then recurse into the wrapped
  /// strategy, so a whole decorator chain round-trips as one blob.
  virtual void save_state(std::string& out) const { (void)out; }

  /// Restores state written by save_state on an identically configured
  /// strategy. Returns false when the blob does not match this strategy
  /// (e.g. a checkpoint taken under a different algorithm); the stateless
  /// default accepts exactly the empty blob it saves.
  virtual bool restore_state(const unsigned char* data, std::size_t size) {
    (void)data;
    return size == 0;
  }
};

using StrategyPtr = std::unique_ptr<AggregationStrategy>;

/// Normalizes `weights` to sum to 1. Falls back to uniform when the total is
/// not positive (e.g. all-zero importance scores).
void normalize_weights(std::span<double> weights);

/// global = (1 - vartheta) * global + vartheta * aggregate — Eq. 8's server
/// mixing, shared by several strategies. Takes a span so callers can mix
/// from arena scratch as well as owned vectors.
void mix_into_global(std::span<const float> aggregate, double vartheta,
                     ModelVector& global);

}  // namespace seafl
