#include "fl/metrics.h"

#include <fstream>

#include "common/error.h"
#include "common/stats.h"

namespace seafl {

double time_to_accuracy(const RunResult& result, double accuracy) {
  for (const auto& p : result.curve)
    if (p.accuracy >= accuracy) return p.time;
  return -1.0;
}

double tail_accuracy(const RunResult& result, std::size_t k) {
  SEAFL_CHECK(k >= 1, "tail window must be >= 1");
  if (result.curve.empty()) return 0.0;
  const std::size_t n = std::min(k, result.curve.size());
  double acc = 0.0;
  for (std::size_t i = result.curve.size() - n; i < result.curve.size(); ++i)
    acc += result.curve[i].accuracy;
  return acc / static_cast<double>(n);
}

void write_curve_csv(const RunResult& result, const std::string& path) {
  std::ofstream out(path);
  SEAFL_CHECK(out.good(), "cannot open '" << path << "' for writing");
  out << "round,time,accuracy,loss\n";
  for (const auto& p : result.curve) {
    out << p.round << ',' << p.time << ',' << p.accuracy << ',' << p.loss
        << '\n';
  }
}

double participation_fairness(const RunResult& result, bool active_only) {
  std::vector<double> counts;
  if (result.participation.empty() && !result.sparse_participation.empty()) {
    // Sparse accounting (population above the threshold): the map holds the
    // nonzero counts and every absent client is an implicit zero, so Jain's
    // index is computed directly — the implicit zeros contribute to n but
    // not to the sums, and a population-sized vector never materializes.
    double sum = 0.0, sumsq = 0.0;
    for (const auto& [client, c] : result.sparse_participation) {
      const auto v = static_cast<double>(c);
      sum += v;
      sumsq += v * v;
    }
    const std::size_t n = active_only ? result.sparse_participation.size()
                                      : result.population;
    if (n == 0 || sum == 0.0) return 1.0;
    return sum * sum / (static_cast<double>(n) * sumsq);
  }
  counts.reserve(result.participation.size());
  for (const auto c : result.participation) {
    if (active_only && c == 0) continue;
    counts.push_back(static_cast<double>(c));
  }
  if (counts.empty()) return 1.0;
  return jains_index(counts);
}

void write_round_log_csv(const RunResult& result, const std::string& path) {
  std::ofstream out(path);
  SEAFL_CHECK(out.good(), "cannot open '" << path << "' for writing");
  out << "round,time,updates,mean_staleness,partial\n";
  for (const auto& s : result.round_log) {
    out << s.round << ',' << s.time << ',' << s.updates << ','
        << s.mean_staleness << ',' << s.partial << '\n';
  }
}

}  // namespace seafl
