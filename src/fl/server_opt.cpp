#include "fl/server_opt.h"

#include <cmath>

#include "common/bytes.h"
#include "common/error.h"

namespace seafl {

ServerOptStrategy::ServerOptStrategy(StrategyPtr inner,
                                     ServerOptConfig config)
    : inner_(std::move(inner)), config_(config) {
  SEAFL_CHECK(inner_ != nullptr, "ServerOptStrategy needs an inner strategy");
  SEAFL_CHECK(config.lr > 0.0, "server learning rate must be positive");
  SEAFL_CHECK(config.beta1 >= 0.0 && config.beta1 < 1.0,
              "beta1 must be in [0, 1)");
  SEAFL_CHECK(config.beta2 >= 0.0 && config.beta2 < 1.0,
              "beta2 must be in [0, 1)");
  SEAFL_CHECK(config.epsilon > 0.0, "epsilon must be positive");
}

void ServerOptStrategy::aggregate(const AggregationContext& ctx,
                                  std::span<const LocalUpdate> buffer,
                                  ModelVector& global_out) {
  // Let the inner strategy produce its proposal from a scratch copy.
  ModelVector proposal = global_out;
  inner_->aggregate(ctx, buffer, proposal);

  const std::size_t dim = global_out.size();
  ++step_;
  switch (config_.kind) {
    case ServerOpt::kSgd: {
      // w -= lr * (w - proposal)
      for (std::size_t i = 0; i < dim; ++i) {
        global_out[i] -= static_cast<float>(
            config_.lr * (static_cast<double>(global_out[i]) - proposal[i]));
      }
      break;
    }
    case ServerOpt::kMomentum: {
      if (momentum_.size() != dim) momentum_.assign(dim, 0.0);
      for (std::size_t i = 0; i < dim; ++i) {
        const double g =
            static_cast<double>(global_out[i]) - proposal[i];
        momentum_[i] = config_.beta1 * momentum_[i] + g;
        global_out[i] -= static_cast<float>(config_.lr * momentum_[i]);
      }
      break;
    }
    case ServerOpt::kAdam: {
      if (momentum_.size() != dim) momentum_.assign(dim, 0.0);
      if (variance_.size() != dim) variance_.assign(dim, 0.0);
      const double bc1 =
          1.0 - std::pow(config_.beta1, static_cast<double>(step_));
      const double bc2 =
          1.0 - std::pow(config_.beta2, static_cast<double>(step_));
      for (std::size_t i = 0; i < dim; ++i) {
        const double g =
            static_cast<double>(global_out[i]) - proposal[i];
        momentum_[i] = config_.beta1 * momentum_[i] + (1.0 - config_.beta1) * g;
        variance_[i] =
            config_.beta2 * variance_[i] + (1.0 - config_.beta2) * g * g;
        const double m_hat = momentum_[i] / bc1;
        const double v_hat = variance_[i] / bc2;
        global_out[i] -= static_cast<float>(
            config_.lr * m_hat / (std::sqrt(v_hat) + config_.epsilon));
      }
      break;
    }
  }
}

void ServerOptStrategy::save_state(std::string& out) const {
  bytes::put_u64(out, step_);
  bytes::put_u64(out, momentum_.size());
  for (const double m : momentum_) bytes::put_f64(out, m);
  bytes::put_u64(out, variance_.size());
  for (const double v : variance_) bytes::put_f64(out, v);
  inner_->save_state(out);
}

bool ServerOptStrategy::restore_state(const unsigned char* data,
                                      std::size_t size) {
  bytes::Reader in(data, size);
  const std::uint64_t step = in.u64();
  const std::uint64_t m_count = in.u64();
  if (!in.ok() || m_count > in.remaining() / 8) return false;
  std::vector<double> momentum(static_cast<std::size_t>(m_count));
  for (double& m : momentum) m = in.f64();
  const std::uint64_t v_count = in.u64();
  if (!in.ok() || v_count > in.remaining() / 8) return false;
  std::vector<double> variance(static_cast<std::size_t>(v_count));
  for (double& v : variance) v = in.f64();
  if (!in.ok()) return false;
  if (!inner_->restore_state(data + in.pos(), size - in.pos())) return false;
  step_ = step;
  momentum_ = std::move(momentum);
  variance_ = std::move(variance);
  return true;
}

std::string ServerOptStrategy::name() const {
  const char* opt = config_.kind == ServerOpt::kSgd        ? "SGD"
                    : config_.kind == ServerOpt::kMomentum ? "AvgM"
                                                           : "Adam";
  return inner_->name() + "+" + opt;
}

}  // namespace seafl
