#include "fl/client.h"

#include "obs/profile.h"

namespace seafl {

ClientTrainer::ClientTrainer(const FlTask& task, const ModelFactory& factory,
                             const RunConfig& config)
    : task_(&task), model_(factory()), config_(config) {
  SEAFL_CHECK(model_ != nullptr, "model factory returned null");
  num_params_ = model_->num_parameters();
  SEAFL_CHECK(num_params_ > 0, "model has no trainable parameters");
}

ClientTrainResult ClientTrainer::train(std::size_t client,
                                       const ModelVector& base,
                                       std::size_t epochs,
                                       std::uint64_t round,
                                       std::size_t frozen_layers) {
  SEAFL_PROF_SCOPE("fl.client_train");
  SEAFL_CHECK(client < task_->partition.size(),
              "client " << client << " out of range");
  SEAFL_CHECK(base.size() == num_params_,
              "base model has wrong dimension: " << base.size() << " vs "
                                                 << num_params_);
  SEAFL_CHECK(epochs >= 1, "need at least one local epoch");
  SEAFL_CHECK(frozen_layers < model_->num_layers(),
              "cannot freeze all " << model_->num_layers() << " layers");

  model_->set_parameters(base);
  Sgd optimizer(config_.sgd);
  DataLoader loader(task_->train, task_->partition[client],
                    config_.batch_size, /*as_images=*/false);

  const bool proximal = config_.proximal_mu > 0.0;
  const float prox_step = static_cast<float>(
      config_.sgd.learning_rate * config_.proximal_mu);
  std::vector<float> scratch;
  if (proximal) scratch.resize(num_params_);

  ClientTrainResult result;
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    // The shuffle stream is keyed by (seed, client, round, epoch): epoch e of
    // a partial session matches epoch e of the full session bit-for-bit.
    Rng rng(config_.seed, RngPurpose::kClientTrain, client, round, epoch);
    loader.begin_epoch(rng);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    while (loader.next(batch_features_, batch_labels_)) {
      const Tensor& logits = model_->forward(batch_features_, /*train=*/true);
      epoch_loss += loss_.forward(logits, batch_labels_);
      ++batches;
      model_->zero_grad();
      loss_.backward(logit_grad_);
      model_->backward(logit_grad_);
      optimizer.step(*model_, frozen_layers);
      if (proximal) {
        // FedProx: w -= lr * mu * (w - w_global), the gradient of the
        // proximal term mu/2 ||w - w_global||^2.
        model_->copy_parameters_to(scratch);
        for (std::size_t i = 0; i < scratch.size(); ++i)
          scratch[i] -= prox_step * (scratch[i] - base[i]);
        model_->set_parameters(scratch);
      }
    }
    result.mean_loss = epoch_loss / static_cast<double>(batches);
  }
  result.epochs = epochs;
  result.weights.resize(num_params_);
  model_->copy_parameters_to(result.weights);
  return result;
}

}  // namespace seafl
