#include "fl/client.h"

#include <algorithm>

#include "obs/profile.h"

namespace seafl {

ClientTrainer::ClientTrainer(const FlTask& task, const ModelFactory& factory,
                             const RunConfig& config)
    : task_(&task), model_(factory()), config_(config) {
  SEAFL_CHECK(model_ != nullptr, "model factory returned null");
  num_params_ = model_->num_parameters();
  SEAFL_CHECK(num_params_ > 0, "model has no trainable parameters");
}

const ClientTrainResult& ClientTrainer::train(std::size_t client,
                                              const ModelVector& base,
                                              std::size_t epochs,
                                              std::uint64_t round,
                                              std::size_t frozen_layers,
                                              TrainObserver* observer) {
  SEAFL_PROF_SCOPE("fl.client_train");
  SEAFL_CHECK(client < task_->num_clients(),
              "client " << client << " out of range");
  SEAFL_CHECK(base.size() == num_params_,
              "base model has wrong dimension: " << base.size() << " vs "
                                                 << num_params_);
  SEAFL_CHECK(epochs >= 1, "need at least one local epoch");
  SEAFL_CHECK(frozen_layers < model_->num_layers(),
              "cannot freeze all " << model_->num_layers() << " layers");

  model_->set_parameters(base);
  Sgd optimizer(config_.sgd);
  loader_.reset(task_->train,
                task_->partition->client_indices(client, index_scratch_),
                config_.batch_size,
                /*as_images=*/false);

  const bool proximal = config_.proximal_mu > 0.0;
  const float prox_step = static_cast<float>(
      config_.sgd.learning_rate * config_.proximal_mu);
  if (proximal) prox_scratch_.resize(num_params_);  // no-op after first call

  std::size_t budget = epochs;
  for (std::size_t epoch = 0; epoch < budget; ++epoch) {
    // The shuffle stream is keyed by (seed, client, round, epoch): epoch e of
    // a partial session matches epoch e of the full session bit-for-bit.
    Rng rng(config_.seed, RngPurpose::kClientTrain, client, round, epoch);
    loader_.begin_epoch(rng);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    while (loader_.next(batch_features_, batch_labels_)) {
      const Tensor& logits = model_->forward(batch_features_, /*train=*/true);
      epoch_loss += loss_.forward(logits, batch_labels_);
      ++batches;
      model_->zero_grad();
      loss_.backward(logit_grad_);
      model_->backward(logit_grad_);
      optimizer.step(*model_, frozen_layers);
      if (proximal) {
        // FedProx: w -= lr * mu * (w - w_global), the gradient of the
        // proximal term mu/2 ||w - w_global||^2.
        model_->copy_parameters_to(prox_scratch_);
        for (std::size_t i = 0; i < prox_scratch_.size(); ++i)
          prox_scratch_[i] -= prox_step * (prox_scratch_[i] - base[i]);
        model_->set_parameters(prox_scratch_);
      }
    }
    result_.mean_loss = epoch_loss / static_cast<double>(batches);
    if (observer != nullptr) {
      const std::size_t limit =
          observer->on_epoch_end(epoch + 1, result_.mean_loss, *model_);
      // The budget only shrinks, and never below the epochs already done.
      budget = std::min(budget, std::max(limit, epoch + 1));
    }
  }
  result_.epochs = budget;
  result_.weights.resize(num_params_);  // allocates on the first call only
  model_->copy_parameters_to(result_.weights);
  return result_;
}

}  // namespace seafl
