#include "fl/evaluator.h"

#include <algorithm>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "obs/profile.h"

namespace seafl {

Evaluator::Evaluator(const FlTask& task, const ModelFactory& factory,
                     std::size_t batch_size, std::size_t subset,
                     std::uint64_t seed)
    : task_(&task), factory_(factory), batch_size_(batch_size) {
  SEAFL_CHECK(batch_size_ >= 1, "batch size must be positive");
  const std::size_t n = task.test.size();
  SEAFL_CHECK(n > 0, "empty test set");
  indices_.resize(n);
  for (std::size_t i = 0; i < n; ++i) indices_[i] = i;
  if (subset > 0 && subset < n) {
    Rng rng(seed, RngPurpose::kTest, /*a=*/7);
    rng.shuffle(indices_);
    indices_.resize(subset);
  }
  // Build one context eagerly so a bad factory fails here, not mid-run on a
  // pool worker.
  auto slot = std::make_unique<Slot>();
  slot->model = factory_();
  SEAFL_CHECK(slot->model != nullptr, "model factory returned null");
  num_params_ = slot->model->num_parameters();
  free_slots_.push_back(slot.get());
  slots_.push_back(std::move(slot));
}

Evaluator::Slot* Evaluator::acquire_slot() {
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    if (!free_slots_.empty()) {
      Slot* slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
  }
  // Grown lazily per concurrent chunk, outside the lock (the factory may be
  // expensive); bounded by pool-workers + 1.
  auto slot = std::make_unique<Slot>();
  slot->model = factory_();
  SEAFL_CHECK(slot->model != nullptr, "model factory returned null");
  Slot* raw = slot.get();
  std::lock_guard<std::mutex> lock(slots_mutex_);
  slots_.push_back(std::move(slot));
  return raw;
}

void Evaluator::release_slot(Slot* slot) {
  std::lock_guard<std::mutex> lock(slots_mutex_);
  free_slots_.push_back(slot);
}

EvalResult Evaluator::evaluate(const ModelVector& weights) {
  SEAFL_PROF_SCOPE("fl.evaluate");
  // Validate here, on the caller: an exception thrown inside a pool chunk
  // would tear down the process instead of propagating.
  SEAFL_CHECK(weights.size() == num_params_,
              "evaluate: weight vector has " << weights.size()
                                             << " scalars, model needs "
                                             << num_params_);
  ++version_;
  const std::size_t num_batches =
      (indices_.size() + batch_size_ - 1) / batch_size_;
  batch_loss_.resize(num_batches);
  batch_correct_.resize(num_batches);

  parallel_for_chunked(
      0, num_batches,
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        Slot* slot = acquire_slot();
        // Weights load at most once per slot per pass; a slot reused for a
        // second chunk of the same pass skips it.
        if (slot->version != version_) {
          slot->model->set_parameters(weights);
          slot->version = version_;
        }
        // Chunks score whole batches and never share a slot, so intra-batch
        // kernel work stays serial on this thread (workers are serial
        // already; the scope covers the participating caller).
        SerialKernelScope serial;
        for (std::size_t b = chunk_begin; b < chunk_end; ++b) {
          const std::size_t start = b * batch_size_;
          const std::size_t take =
              std::min(batch_size_, indices_.size() - start);
          task_->test.gather({indices_.data() + start, take},
                             slot->batch_features, slot->batch_labels,
                             /*as_images=*/false);
          const Tensor& logits =
              slot->model->forward(slot->batch_features, /*train=*/false);
          batch_loss_[b] = slot->loss.forward(logits, slot->batch_labels) *
                           static_cast<double>(take);
          batch_correct_[b] = slot->loss.correct();
        }
        release_slot(slot);
      },
      /*grain=*/1);

  // Fixed-order reduction: identical accumulation order to the serial loop,
  // so the result is invariant to how chunks were assigned.
  double total_loss = 0.0;
  std::size_t correct = 0;
  for (std::size_t b = 0; b < num_batches; ++b) {
    total_loss += batch_loss_[b];
    correct += batch_correct_[b];
  }
  const auto seen = static_cast<double>(indices_.size());
  EvalResult out;
  out.accuracy = static_cast<double>(correct) / seen;
  out.loss = total_loss / seen;
  return out;
}

}  // namespace seafl
