#include "fl/evaluator.h"

#include "common/rng.h"
#include "obs/profile.h"

namespace seafl {

Evaluator::Evaluator(const FlTask& task, const ModelFactory& factory,
                     std::size_t batch_size, std::size_t subset,
                     std::uint64_t seed)
    : task_(&task), model_(factory()), batch_size_(batch_size) {
  SEAFL_CHECK(model_ != nullptr, "model factory returned null");
  SEAFL_CHECK(batch_size_ >= 1, "batch size must be positive");
  const std::size_t n = task.test.size();
  SEAFL_CHECK(n > 0, "empty test set");
  indices_.resize(n);
  for (std::size_t i = 0; i < n; ++i) indices_[i] = i;
  if (subset > 0 && subset < n) {
    Rng rng(seed, RngPurpose::kTest, /*a=*/7);
    rng.shuffle(indices_);
    indices_.resize(subset);
  }
}

EvalResult Evaluator::evaluate(const ModelVector& weights) {
  SEAFL_PROF_SCOPE("fl.evaluate");
  model_->set_parameters(weights);
  double total_loss = 0.0;
  std::size_t correct = 0;
  std::size_t seen = 0;
  for (std::size_t start = 0; start < indices_.size(); start += batch_size_) {
    const std::size_t take = std::min(batch_size_, indices_.size() - start);
    task_->test.gather({indices_.data() + start, take}, batch_features_,
                       batch_labels_, /*as_images=*/false);
    const Tensor& logits = model_->forward(batch_features_, /*train=*/false);
    total_loss +=
        loss_.forward(logits, batch_labels_) * static_cast<double>(take);
    correct += loss_.correct();
    seen += take;
  }
  EvalResult out;
  out.accuracy = static_cast<double>(correct) / static_cast<double>(seen);
  out.loss = total_loss / static_cast<double>(seen);
  return out;
}

}  // namespace seafl
