#include "fl/strategies.h"

#include <cmath>

#include "common/error.h"
#include "tensor/ops.h"

namespace seafl {

void normalize_weights(std::span<double> weights) {
  double total = 0.0;
  for (const double w : weights) {
    SEAFL_CHECK(w >= 0.0, "aggregation weights must be non-negative");
    total += w;
  }
  if (total <= 0.0) {
    const double uniform = 1.0 / static_cast<double>(weights.size());
    for (auto& w : weights) w = uniform;
    return;
  }
  for (auto& w : weights) w /= total;
}

void mix_into_global(std::span<const float> aggregate, double vartheta,
                     ModelVector& global) {
  SEAFL_CHECK(vartheta > 0.0 && vartheta <= 1.0,
              "vartheta must be in (0, 1], got " << vartheta);
  SEAFL_CHECK(aggregate.size() == global.size(),
              "aggregate/global size mismatch");
  axpby(global, static_cast<float>(vartheta), aggregate,
        static_cast<float>(1.0 - vartheta));
}

namespace {
/// global_out = sum_i weights[i] * buffer[i].weights, with `weights`
/// pre-normalized. Shared by every weighted-average strategy.
void weighted_average(std::span<const LocalUpdate> buffer,
                      std::span<const double> weights, ModelVector& out) {
  SEAFL_CHECK(buffer.size() == weights.size(), "weight/update count mismatch");
  SEAFL_CHECK(!buffer.empty(), "aggregate of empty buffer");
  const std::size_t dim = buffer.front().weights.size();
  out.assign(dim, 0.0f);
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    SEAFL_CHECK(buffer[i].weights.size() == dim,
                "update " << i << " has mismatched dimension");
    axpy(out, static_cast<float>(weights[i]), buffer[i].weights);
  }
}
}  // namespace

// ------------------------------------------------------------------ FedAvg

void FedAvgStrategy::aggregate(const AggregationContext& ctx,
                               std::span<const LocalUpdate> buffer,
                               ModelVector& global_out) {
  SEAFL_CHECK(ctx.total_samples > 0, "FedAvg: zero total samples");
  std::vector<double> weights(buffer.size());
  for (std::size_t i = 0; i < buffer.size(); ++i)
    weights[i] = static_cast<double>(buffer[i].num_samples);
  normalize_weights(weights);
  weighted_average(buffer, weights, global_out);
}

// ----------------------------------------------------------------- FedBuff

FedBuffStrategy::FedBuffStrategy(FedBuffConfig config) : config_(config) {
  SEAFL_CHECK(config.vartheta > 0.0 && config.vartheta <= 1.0,
              "FedBuff vartheta must be in (0, 1]");
}

void FedBuffStrategy::aggregate(const AggregationContext& /*ctx*/,
                                std::span<const LocalUpdate> buffer,
                                ModelVector& global_out) {
  std::vector<double> weights(buffer.size(),
                              1.0 / static_cast<double>(buffer.size()));
  ModelVector aggregate;
  weighted_average(buffer, weights, aggregate);
  mix_into_global(aggregate, config_.vartheta, global_out);
}

// ---------------------------------------------------------------- FedAsync

FedAsyncStrategy::FedAsyncStrategy(FedAsyncConfig config) : config_(config) {
  SEAFL_CHECK(config.alpha > 0.0 && config.alpha <= 1.0,
              "FedAsync alpha must be in (0, 1]");
  SEAFL_CHECK(config.poly_a >= 0.0, "FedAsync poly_a must be >= 0");
}

void FedAsyncStrategy::aggregate(const AggregationContext& ctx,
                                 std::span<const LocalUpdate> buffer,
                                 ModelVector& global_out) {
  // FedAsync consumes updates one at a time; applying them in arrival order
  // also handles the (non-standard) case of being run with K > 1.
  for (const auto& update : buffer) {
    SEAFL_CHECK(update.base_round <= ctx.round, "update from the future");
    const double staleness =
        static_cast<double>(ctx.round - update.base_round);
    double alpha_t =
        config_.alpha * std::pow(1.0 + staleness, -config_.poly_a);
    alpha_t = std::max(alpha_t, config_.min_alpha);
    axpby(global_out, static_cast<float>(alpha_t), update.weights,
          static_cast<float>(1.0 - alpha_t));
  }
}

}  // namespace seafl
