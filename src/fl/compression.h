// Byte-compatible shim over src/compress (DESIGN.md §14), kept so legacy
// call sites and the historical `quantize_bits` fault knob keep their exact
// signatures and arithmetic. The implementations moved verbatim; new code
// should include compress/codec.h directly.
//
// One deliberate behaviour change rides along: transfer_bytes now includes
// the container header (SEAFLMDL for float32, SEAFLCMP for packed bits), so
// the byte accounting matches what the wire actually ships.
#pragma once

#include <cstddef>

#include "compress/codec.h"
#include "fl/types.h"

namespace seafl {

/// Quantizes `weights` in place to `bits` bits per scalar (2..16).
/// Returns the quantization scale (grid step); 0 for an all-zero vector.
inline double quantize_model(ModelVector& weights, std::size_t bits) {
  return compress::quantize_model_inplace(weights, bits);
}

/// Worst-case absolute rounding error of quantize_model for this vector:
/// half the grid step.
inline double quantization_error_bound(const ModelVector& weights,
                                       std::size_t bits) {
  return compress::quantization_error_bound(weights, bits);
}

/// Bytes on the wire for one model transfer at the given precision
/// (bits = 0 means uncompressed float32). Includes the container header.
inline std::size_t transfer_bytes(std::size_t dim, std::size_t bits) {
  return compress::transfer_bytes(dim, bits);
}

}  // namespace seafl
