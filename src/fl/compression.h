// Upload compression: uniform symmetric quantization of model vectors, the
// simplest of the communication-efficiency techniques §II surveys. Values
// are snapped to a grid of 2^bits - 1 levels spanning [-max|w|, max|w|];
// the dequantized vector is returned in place (simulation exchanges logical
// floats; only the byte accounting changes).
#pragma once

#include <cstddef>

#include "fl/types.h"

namespace seafl {

/// Quantizes `weights` in place to `bits` bits per scalar (2..16).
/// Returns the quantization scale (grid step); 0 for an all-zero vector.
double quantize_model(ModelVector& weights, std::size_t bits);

/// Worst-case absolute rounding error of quantize_model for this vector:
/// half the grid step.
double quantization_error_bound(const ModelVector& weights, std::size_t bits);

/// Bytes on the wire for one model transfer at the given precision
/// (bits = 0 means uncompressed float32).
std::size_t transfer_bytes(std::size_t dim, std::size_t bits);

}  // namespace seafl
