#include "fl/simulation.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "obs/profile.h"

namespace seafl {

namespace {

/// Builds the common fields of a trace event (virtual timestamp comes from
/// the caller so events can be stamped with past epoch-end times).
obs::TraceEvent trace_event(obs::TraceEventKind kind, double time,
                            std::uint64_t round) {
  obs::TraceEvent e;
  e.kind = kind;
  e.time = time;
  e.round = round;
  return e;
}

}  // namespace

Simulation::Simulation(const FlTask& task, const ModelFactory& factory,
                       const Fleet& fleet, StrategyPtr strategy,
                       RunConfig config, double work_per_sample)
    : task_(&task),
      fleet_(&fleet),
      strategy_(std::move(strategy)),
      config_(config),
      work_per_sample_(work_per_sample),
      trainer_(task, factory, config),
      evaluator_(task, factory, /*batch_size=*/64, config.eval_subset,
                 config.seed) {
  SEAFL_CHECK(strategy_ != nullptr, "null aggregation strategy");
  SEAFL_CHECK(fleet.size() >= task.num_clients(),
              "fleet has " << fleet.size() << " devices but task has "
                           << task.num_clients() << " clients");
  SEAFL_CHECK(config_.concurrency >= 1 &&
                  config_.concurrency <= task.num_clients(),
              "concurrency " << config_.concurrency << " out of range");
  SEAFL_CHECK(config_.buffer_size >= 1, "buffer size must be >= 1");
  SEAFL_CHECK(config_.local_epochs >= 1, "need at least one local epoch");
  SEAFL_CHECK(!(config_.wait_for_stale && config_.drop_stale),
              "wait_for_stale and drop_stale are mutually exclusive");
  SEAFL_CHECK(work_per_sample_ > 0.0, "work_per_sample must be positive");
  if (config_.mode == FlMode::kSemiAsync) {
    SEAFL_CHECK(config_.buffer_size <= config_.concurrency,
                "buffer size " << config_.buffer_size
                               << " exceeds concurrency "
                               << config_.concurrency);
  }
  // Layer-wise initialization (He/Xavier) through a scratch instance, so the
  // initial global model is identical for every strategy sharing a seed.
  auto scratch = factory();
  Rng init_rng(config_.seed, RngPurpose::kInit);
  scratch->init(init_rng);
  initial_weights_.resize(scratch->num_parameters());
  scratch->copy_parameters_to(initial_weights_);
}

RunResult Simulation::run() {
  global_ = initial_weights_;
  result_.participation.assign(task_->num_clients(), 0);

  // Select the starting cohort.
  sync_cohort_ = config_.concurrency;
  for (const std::size_t client : select_cohort(config_.concurrency))
    start_training(client);

  // Baseline evaluation at t = 0.
  evaluate_and_record();

  while (!done_ && queue_.run_one()) {
  }

  result_.rounds = round_;
  result_.final_time = queue_.now();
  result_.final_weights = global_;
  if (result_.total_updates > 0)
    result_.mean_staleness =
        staleness_sum_ / static_cast<double>(result_.total_updates);
  return result_;
}

std::vector<std::size_t> Simulation::select_cohort(std::size_t count) const {
  const std::size_t n = task_->num_clients();
  SEAFL_CHECK(count <= n, "cohort " << count << " exceeds client count " << n);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  Rng rng(config_.seed, RngPurpose::kSelection, /*a=*/round_);

  switch (config_.selection) {
    case SelectionPolicy::kRandom:
      rng.shuffle(order);
      break;
    case SelectionPolicy::kFastestFirst:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return fleet_->slowdown(a) < fleet_->slowdown(b);
                       });
      break;
    case SelectionPolicy::kDataWeighted: {
      // Efraimidis–Spirakis weighted sampling without replacement: order by
      // key u_i^(1/w_i) descending; the first `count` entries form the
      // weighted sample.
      std::vector<double> keys(n);
      for (std::size_t i = 0; i < n; ++i) {
        const auto w =
            static_cast<double>(task_->partition[i].size());
        double u = rng.uniform();
        while (u <= 0.0) u = rng.uniform();
        keys[i] = std::pow(u, 1.0 / std::max(w, 1.0));
      }
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return keys[a] > keys[b];
                       });
      break;
    }
  }
  order.resize(count);
  return order;
}

void Simulation::start_training(std::size_t client) {
  SEAFL_CHECK(in_flight_.find(client) == in_flight_.end(),
              "client " << client << " already training");
  InFlight state;
  state.base_round = round_;
  state.base_weights = global_;
  state.planned_epochs = config_.local_epochs;
  if (config_.adaptive_epochs) {
    // FedSA-style load shedding: slow devices run proportionally fewer
    // epochs (at least one), so their uploads stay reasonably fresh.
    const double scaled = static_cast<double>(config_.local_epochs) /
                          fleet_->slowdown(client);
    state.planned_epochs = std::max<std::size_t>(
        1, static_cast<std::size_t>(scaled + 0.5));
  }

  // Sub-model training: slow devices freeze the lower part of the network.
  // Compute shrinks because the backward pass (about 2/3 of a training
  // step) stops at the trainable suffix.
  double work = work_per_sample_;
  if (config_.submodel_training &&
      fleet_->slowdown(client) > config_.submodel_slowdown_threshold) {
    const std::size_t layers = trainer_.num_layers();
    state.frozen_layers = std::min(
        layers - 1,
        static_cast<std::size_t>(config_.submodel_frozen_fraction *
                                 static_cast<double>(layers)));
    const double trainable_fraction =
        1.0 - static_cast<double>(state.frozen_layers) /
                  static_cast<double>(layers);
    work *= (1.0 + 2.0 * trainable_fraction) / 3.0;
  }

  const std::size_t n = trainer_.client_samples(client);
  double when = queue_.now() +
                fleet_->latency_seconds(client, round_, /*leg=*/0);
  state.epoch_ends.reserve(state.planned_epochs);
  for (std::size_t e = 0; e < state.planned_epochs; ++e) {
    when += fleet_->epoch_compute_seconds(client, n, work);
    when += fleet_->idle_seconds(client, state.base_round, e);
    state.epoch_ends.push_back(when);
  }
  const double arrival =
      when + fleet_->latency_seconds(client, round_, /*leg=*/1);
  const std::size_t epochs = state.planned_epochs;
  // Availability model: the upload may be lost in transit; the server
  // notices at the expected arrival time and reassigns the slot.
  if (config_.upload_loss_prob > 0.0) {
    // Keyed by a per-simulation draw counter, not (client, round): a retry
    // of the same client in the same round must get a fresh draw, or a
    // sync-mode retry loop would re-lose the upload forever.
    Rng drop_rng(config_.seed, RngPurpose::kDropout, client, round_,
                 dropout_draws_++);
    state.lost = drop_rng.bernoulli(config_.upload_loss_prob);
  }
  state.upload_event =
      state.lost
          ? queue_.schedule_at(arrival,
                               [this, client] { on_upload_lost(client); })
          : queue_.schedule_at(arrival, [this, client, epochs] {
              on_arrival(client, epochs);
            });
  if (trace_ != nullptr) {
    obs::TraceEvent e = trace_event(obs::TraceEventKind::kAssigned,
                                    queue_.now(), state.base_round);
    e.client = client;
    e.base_round = state.base_round;
    e.epochs = state.planned_epochs;
    trace_->record(e);
  }
  in_flight_.emplace(client, std::move(state));
  ++result_.model_downloads;
}

void Simulation::on_arrival(std::size_t client, std::size_t epochs) {
  if (done_) return;
  const auto it = in_flight_.find(client);
  SEAFL_CHECK(it != in_flight_.end(), "arrival from unknown client");
  InFlight state = std::move(it->second);
  in_flight_.erase(it);

  // Lazy training: compute the update now that its arrival time is due.
  ClientTrainResult trained =
      trainer_.train(client, state.base_weights, epochs, state.base_round,
                     state.frozen_layers);

  LocalUpdate update;
  update.client = client;
  update.base_round = state.base_round;
  update.weights = std::move(trained.weights);
  if (config_.quantize_bits > 0)
    quantize_model(update.weights, config_.quantize_bits);
  update.num_samples = trainer_.client_samples(client);
  update.epochs_completed = epochs;
  update.arrival_time = queue_.now();
  update.train_loss = trained.mean_loss;
  if (epochs < config_.local_epochs) ++result_.partial_updates;
  ++result_.model_uploads;
  if (trace_ != nullptr) {
    // Epoch completions were computed at assignment; journal them now with
    // their (past) virtual end times, then the upload itself.
    for (std::size_t e = 0; e < epochs && e < state.epoch_ends.size(); ++e) {
      obs::TraceEvent ev = trace_event(obs::TraceEventKind::kEpochDone,
                                       state.epoch_ends[e], state.base_round);
      ev.client = client;
      ev.base_round = state.base_round;
      ev.epochs = e + 1;
      trace_->record(ev);
    }
    obs::TraceEvent ev =
        trace_event(obs::TraceEventKind::kUpload, queue_.now(), round_);
    ev.client = client;
    ev.base_round = state.base_round;
    ev.epochs = epochs;
    ev.value = static_cast<double>(staleness_of(state.base_round));
    trace_->record(ev);
  }
  buffer_.push_back(std::move(update));

  maybe_aggregate();
}

void Simulation::on_upload_lost(std::size_t client) {
  if (done_) return;
  const auto it = in_flight_.find(client);
  SEAFL_CHECK(it != in_flight_.end(), "lost upload from unknown client");
  if (trace_ != nullptr) {
    obs::TraceEvent e =
        trace_event(obs::TraceEventKind::kUploadLost, queue_.now(), round_);
    e.client = client;
    e.base_round = it->second.base_round;
    trace_->record(e);
  }
  in_flight_.erase(it);
  ++result_.lost_uploads;
  if (config_.mode == FlMode::kSync) {
    // A synchronous round cannot complete without the cohort; retry the
    // same client (models a re-transmission).
    start_training(client);
    return;
  }
  // Semi-async: hand the slot to a client that is neither training nor
  // waiting in the buffer (buffered clients restart after aggregation);
  // fall back to the just-failed client when everyone else is busy.
  auto busy = [&](std::size_t candidate) {
    if (in_flight_.find(candidate) != in_flight_.end()) return true;
    for (const auto& u : buffer_)
      if (u.client == candidate) return true;
    return false;
  };
  Rng rng(config_.seed, RngPurpose::kDropout, /*a=*/777, round_, client);
  std::size_t replacement = client;
  for (int attempt = 0; attempt < 16; ++attempt) {
    const std::size_t candidate = rng.uniform_int(task_->num_clients());
    if (!busy(candidate)) {
      replacement = candidate;
      break;
    }
  }
  start_training(replacement);
}

void Simulation::on_notification(std::size_t client) {
  if (done_) return;
  const auto it = in_flight_.find(client);
  if (it == in_flight_.end()) return;  // already uploaded
  InFlight& state = it->second;
  if (state.lost) return;  // offline device: the notification goes unheard

  // The client stops after the epoch in progress at notification time.
  const double now = queue_.now();
  std::size_t stop_epoch = state.planned_epochs;
  for (std::size_t e = 0; e < state.epoch_ends.size(); ++e) {
    if (state.epoch_ends[e] > now) {
      stop_epoch = e + 1;  // finish the ongoing epoch
      break;
    }
  }
  if (stop_epoch >= state.planned_epochs) return;  // compute already done

  queue_.cancel(state.upload_event);
  state.planned_epochs = stop_epoch;
  const double arrival =
      state.epoch_ends[stop_epoch - 1] +
      fleet_->latency_seconds(client, state.base_round, /*leg=*/1);
  // The notification may arrive mid-epoch while the scheduled end is still
  // in the future; arrival must not precede the present.
  const double when = std::max(arrival, now);
  state.upload_event = queue_.schedule_at(
      when, [this, client, stop_epoch] { on_arrival(client, stop_epoch); });
}

void Simulation::check_stale_clients() {
  if (config_.staleness_limit == kNoStalenessLimit) return;
  if (!config_.partial_training) return;
  for (auto& [client, state] : in_flight_) {
    if (state.notified) continue;
    if (staleness_of(state.base_round) >= config_.staleness_limit) {
      state.notified = true;
      ++result_.notifications;
      if (trace_ != nullptr) {
        obs::TraceEvent e = trace_event(obs::TraceEventKind::kNotified,
                                        queue_.now(), round_);
        e.client = client;
        trace_->record(e);
      }
      const double latency =
          fleet_->latency_seconds(client, round_, /*leg=*/2);
      const std::size_t c = client;
      queue_.schedule_after(latency, [this, c] { on_notification(c); });
    }
  }
}

void Simulation::maybe_aggregate() {
  if (done_) return;

  if (config_.mode == FlMode::kSync) {
    if (buffer_.size() >= sync_cohort_) do_aggregate();
    return;
  }

  if (config_.drop_stale && config_.staleness_limit != kNoStalenessLimit) {
    const auto before = buffer_.size();
    std::erase_if(buffer_, [&](const LocalUpdate& u) {
      return staleness_of(u.base_round) > config_.staleness_limit;
    });
    result_.dropped_updates += before - buffer_.size();
  }

  if (buffer_.size() < config_.buffer_size) return;

  if (config_.wait_for_stale &&
      config_.staleness_limit != kNoStalenessLimit) {
    bool stale_in_flight = false;
    for (const auto& [client, state] : in_flight_) {
      if (staleness_of(state.base_round) >= config_.staleness_limit) {
        stale_in_flight = true;
        break;
      }
    }
    if (stale_in_flight) {
      ++result_.stale_waits;
      check_stale_clients();  // SEAFL^2: tell them to report early
      return;                 // SEAFL: hold aggregation until they arrive
    }
  }

  do_aggregate();
}

void Simulation::do_aggregate() {
  SEAFL_CHECK(!buffer_.empty(), "aggregate with empty buffer");

  AggregationContext ctx;
  ctx.round = round_;
  ctx.global = &global_;
  ctx.total_samples = 0;
  RoundStat stat;
  stat.updates = buffer_.size();
  stat.time = queue_.now();
  for (const auto& u : buffer_) {
    ctx.total_samples += u.num_samples;
    const auto s = static_cast<double>(staleness_of(u.base_round));
    staleness_sum_ += s;
    stat.mean_staleness += s;
    if (u.epochs_completed < config_.local_epochs) ++stat.partial;
    ++result_.participation[u.client];
  }
  stat.mean_staleness /= static_cast<double>(buffer_.size());
  result_.total_updates += buffer_.size();

  {
    SEAFL_PROF_SCOPE("fl.aggregate");
    strategy_->aggregate(ctx, buffer_, global_);
  }
  ++result_.aggregations;
  result_.server_aggregation_work +=
      static_cast<double>(buffer_.size()) *
      static_cast<double>(global_.size());

  // Remember the reporters before clearing: they receive the new model.
  std::vector<std::size_t> reporters;
  reporters.reserve(buffer_.size());
  for (const auto& u : buffer_) reporters.push_back(u.client);
  buffer_.clear();

  ++round_;
  stat.round = round_;
  result_.round_log.push_back(stat);
  if (trace_ != nullptr) {
    obs::TraceEvent e =
        trace_event(obs::TraceEventKind::kAggregate, queue_.now(), round_);
    e.updates = stat.updates;
    e.value = stat.mean_staleness;
    trace_->record(e);
  }
  evaluate_and_record();
  if (done_) return;

  if (round_ >= config_.max_rounds ||
      queue_.now() >= config_.max_virtual_seconds) {
    done_ = true;
    return;
  }

  if (config_.mode == FlMode::kSync) {
    // Fresh cohort every synchronous round.
    for (const std::size_t client : select_cohort(sync_cohort_))
      start_training(client);
  } else {
    // Reporters resume training on the fresh model (Algorithm 1: the server
    // sends w_{t+1} to the K newly updated clients). Duplicate-client guard:
    // a client cannot report twice in one buffer because it only restarts
    // after reporting.
    for (const auto client : reporters) start_training(client);
    // Staleness of the remaining in-flight clients just grew; in SEAFL^2
    // this is where over-limit devices get notified.
    check_stale_clients();
  }
}

void Simulation::evaluate_and_record() {
  if (round_ % config_.eval_every != 0 && !done_) {
    // Skip: sampling cadence. (Round 0 and stop-time evals always run.)
    return;
  }
  const EvalResult eval = evaluator_.evaluate(global_);
  AccuracyPoint point;
  point.time = queue_.now();
  point.round = round_;
  point.accuracy = eval.accuracy;
  point.loss = eval.loss;
  result_.curve.push_back(point);
  result_.final_accuracy = eval.accuracy;
  if (trace_ != nullptr) {
    obs::TraceEvent e =
        trace_event(obs::TraceEventKind::kEval, queue_.now(), round_);
    e.value = eval.accuracy;
    trace_->record(e);
  }

  if (result_.time_to_target < 0.0 &&
      eval.accuracy >= config_.target_accuracy) {
    result_.time_to_target = queue_.now();
    if (config_.stop_at_target) done_ = true;
  }
}

}  // namespace seafl
