#include "fl/simulation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "ckpt/store.h"
#include "common/log.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace seafl {

namespace {

/// "No client" sentinel returned by pick_replacement.
constexpr std::size_t kNoClient = static_cast<std::size_t>(-1);

/// Builds the common fields of a trace event (virtual timestamp comes from
/// the caller so events can be stamped with past epoch-end times).
obs::TraceEvent trace_event(obs::TraceEventKind kind, double time,
                            std::uint64_t round) {
  obs::TraceEvent e;
  e.kind = kind;
  e.time = time;
  e.round = round;
  return e;
}

}  // namespace

Simulation::Simulation(const FlTask& task, const ModelFactory& factory,
                       const Fleet& fleet, StrategyPtr strategy,
                       RunConfig config, double work_per_sample)
    : task_(&task),
      fleet_(&fleet),
      strategy_(std::move(strategy)),
      config_(config),
      work_per_sample_(work_per_sample),
      trainer_(task, factory, config),
      evaluator_(task, factory, /*batch_size=*/64, config.eval_subset,
                 config.seed),
      churn_(ChurnConfig{config.faults.mean_uptime,
                         config.faults.mean_downtime, config.seed},
             ScheduleConfig{config.faults.diurnal_period,
                            config.faults.diurnal_online_fraction,
                            config.seed},
             task.num_clients()),
      core_(strategy_.get(), config_) {
  SEAFL_CHECK(fleet.size() >= task.num_clients(),
              "fleet has " << fleet.size() << " devices but task has "
                           << task.num_clients() << " clients");
  SEAFL_CHECK(work_per_sample_ > 0.0, "work_per_sample must be positive");
  validate_run_config(config_, task.num_clients());
  if (config_.eager_training)
    executor_ = std::make_unique<TrainingExecutor>(task, factory, config_);
  initial_weights_ = initial_global_weights(factory, config_.seed);
  if (config_.compression.enabled())
    client_codec_ = compress::make_codec(config_.compression);
  // Priced at dispatch time by the fleet's bandwidth model; every codec's
  // encoded size is a pure function of the dimension, so this is exact.
  upload_payload_bytes_ = compress::upload_wire_bytes(
      config_.compression, config_.quantize_bits, initial_weights_.size());
}

void Simulation::refresh_global_snapshot() {
  global_snapshot_ = std::make_shared<ModelVector>(core_.global());
}

void Simulation::abandon_speculation(std::size_t client) {
  // Counted in BOTH execution modes: the counter reflects a protocol event
  // (a dispatched session whose training the server will never use), not
  // executor bookkeeping, so RunResult stays identical lazy-vs-eager.
  ++result().speculation_wasted;
  if (executor_ == nullptr) return;
  executor_->abandon(client);
  if (trace_ != nullptr) {
    obs::TraceEvent e = trace_event(obs::TraceEventKind::kSpeculationAbandoned,
                                    queue().now(), round());
    e.client = client;
    trace_->record(e);
  }
}

RunResult Simulation::run() {
  core_.begin(initial_weights_, task_->num_clients());
  refresh_global_snapshot();

  // Select the starting cohort.
  for (const std::size_t client : select_cohort(config_.concurrency))
    start_training(client);

  // Baseline evaluation at t = 0.
  evaluate_and_record();
  arm_round_deadline();
  return drive();
}

RunResult Simulation::drive() {
  while (!done_ && transport_.run_one()) {
  }
  // Sessions still in flight at the stop condition never upload; their
  // speculated jobs are cut loose (observation counters may tick, RunResult
  // does not — the lazy path never trains them either).
  if (executor_ != nullptr) executor_->drain();

  RunResult& res = result();
  res.rounds = round();
  res.final_time = queue().now();
  res.final_weights = core_.global();
  if (res.total_updates > 0)
    res.mean_staleness =
        core_.staleness_sum() / static_cast<double>(res.total_updates);
  return res;
}

std::vector<std::size_t> Simulation::select_cohort(std::size_t count) const {
  const std::size_t n = task_->num_clients();
  SEAFL_CHECK(count <= n, "cohort " << count << " exceeds client count " << n);
  Rng rng(config_.seed, RngPurpose::kSelection, /*a=*/core_.round());

  // Population-scale fast path (DESIGN.md §16): uniform selection draws
  // `count` distinct clients by rejection in O(count) instead of shuffling
  // an O(n) permutation. Only above the sparse threshold — below it the
  // historical shuffle runs so existing runs stay bitwise identical. The
  // ordered policies below are inherently O(n) (they rank the population);
  // scale runs use kRandom.
  if (config_.selection == SelectionPolicy::kRandom &&
      n > config_.sparse_population_threshold) {
    std::vector<std::size_t> picked;
    picked.reserve(count);
    std::unordered_set<std::size_t> seen;
    seen.reserve(count * 2);
    while (picked.size() < count) {
      const std::size_t candidate = rng.uniform_int(n);
      if (seen.insert(candidate).second) picked.push_back(candidate);
    }
    return picked;
  }

  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;

  switch (config_.selection) {
    case SelectionPolicy::kRandom:
      rng.shuffle(order);
      break;
    case SelectionPolicy::kFastestFirst:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return fleet_->slowdown(a) < fleet_->slowdown(b);
                       });
      break;
    case SelectionPolicy::kDataWeighted: {
      // Efraimidis–Spirakis weighted sampling without replacement: order by
      // key u_i^(1/w_i) descending; the first `count` entries form the
      // weighted sample.
      std::vector<double> keys(n);
      for (std::size_t i = 0; i < n; ++i) {
        const auto w =
            static_cast<double>(task_->client_samples(i));
        double u = rng.uniform();
        while (u <= 0.0) u = rng.uniform();
        keys[i] = std::pow(u, 1.0 / std::max(w, 1.0));
      }
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return keys[a] > keys[b];
                       });
      break;
    }
  }
  order.resize(count);
  return order;
}

std::uint64_t Simulation::schedule_transmission(std::size_t client,
                                                InFlight& state,
                                                double arrival,
                                                std::size_t epochs) {
  // Each branch also records a checkpoint descriptor on the session
  // (tx_time/tx_kind/tx_epochs): closures cannot be serialized, so restore
  // replays the event from these fields instead.
  state.tx_epochs = epochs;
  // Device churn preempts the network: a client that goes offline before its
  // upload completes never delivers it. The crash event is simulator
  // bookkeeping — the *server* only learns of it through a missed deadline.
  if (state.crash_time < arrival) {
    const double when = std::max(queue().now(), state.crash_time);
    state.tx_time = when;
    state.tx_kind = ckpt::TxKind::kCrash;
    return queue().schedule_at(when, [this, client] { on_crash(client); });
  }
  if (state.lost) {
    state.tx_time = arrival;
    state.tx_kind = ckpt::TxKind::kLost;
    return queue().schedule_at(arrival,
                               [this, client] { on_upload_lost(client); });
  }
  state.tx_time = arrival;
  state.tx_kind = ckpt::TxKind::kArrival;
  return queue().schedule_at(
      arrival, [this, client, epochs] { on_arrival(client, epochs); });
}

void Simulation::start_training(std::size_t client) {
  SEAFL_CHECK(in_flight_.find(client) == in_flight_.end(),
              "client " << client << " already training");
  InFlight state;
  state.base_round = round();
  state.base_weights = global_snapshot_;
  state.planned_epochs = config_.local_epochs;
  if (config_.adaptive_epochs) {
    // FedSA-style load shedding: slow devices run proportionally fewer
    // epochs (at least one), so their uploads stay reasonably fresh.
    const double scaled = static_cast<double>(config_.local_epochs) /
                          fleet_->slowdown(client);
    state.planned_epochs = std::max<std::size_t>(
        1, static_cast<std::size_t>(scaled + 0.5));
  }

  // Sub-model training: slow devices freeze the lower part of the network.
  // Compute shrinks because the backward pass (about 2/3 of a training
  // step) stops at the trainable suffix.
  double work = work_per_sample_;
  if (config_.submodel_training &&
      fleet_->slowdown(client) > config_.submodel_slowdown_threshold) {
    const std::size_t layers = trainer_.num_layers();
    state.frozen_layers = std::min(
        layers - 1,
        static_cast<std::size_t>(config_.submodel_frozen_fraction *
                                 static_cast<double>(layers)));
    const double trainable_fraction =
        1.0 - static_cast<double>(state.frozen_layers) /
                  static_cast<double>(layers);
    work *= (1.0 + 2.0 * trainable_fraction) / 3.0;
  }

  const std::size_t n = trainer_.client_samples(client);
  const double dispatch = queue().now();
  double when = dispatch +
                fleet_->latency_seconds(client, round(), /*leg=*/0);
  state.epoch_ends.reserve(state.planned_epochs);
  for (std::size_t e = 0; e < state.planned_epochs; ++e) {
    when += fleet_->epoch_compute_seconds(client, n, work);
    when += fleet_->idle_seconds(client, state.base_round, e);
    state.epoch_ends.push_back(when);
  }
  const double arrival =
      when + fleet_->upload_seconds(client, round(), upload_payload_bytes_);
  // The device's next offline time is a fixed property of its churn
  // timeline; a session dispatched to an offline device is dead on arrival
  // (crash_time == dispatch).
  state.crash_time = churn_.enabled()
                         ? churn_.next_offline(client, dispatch)
                         : std::numeric_limits<double>::infinity();
  // Availability model: the upload may be lost in transit.
  if (config_.upload_loss_prob > 0.0) {
    // Keyed by a per-simulation draw counter, not (client, round): a retry
    // of the same client in the same round must get a fresh draw, or a
    // sync-mode retry loop would re-lose the upload forever.
    Rng drop_rng(config_.seed, RngPurpose::kDropout, client, round(),
                 dropout_draws_++);
    state.lost = drop_rng.bernoulli(config_.upload_loss_prob);
  }
  state.upload_event =
      schedule_transmission(client, state, arrival, state.planned_epochs);
  // Assignment deadline: the server expires the slot a fixed multiple of
  // the expected session duration after dispatch. Scheduled *after* the
  // transmission, so a healthy on-time upload (deadline_factor == 1) wins
  // the (time, seq) tie and cancels the timer first.
  if (config_.faults.deadline_factor > 0.0) {
    const double deadline =
        dispatch + config_.faults.deadline_factor * (arrival - dispatch);
    state.deadline_time = deadline;
    state.deadline_event = queue().schedule_at(
        deadline, [this, client] { on_deadline(client); });
  }
  if (trace_ != nullptr) {
    obs::TraceEvent e = trace_event(obs::TraceEventKind::kAssigned,
                                    queue().now(), state.base_round);
    e.client = client;
    e.base_round = state.base_round;
    e.epochs = state.planned_epochs;
    trace_->record(e);
  }
  if (executor_ != nullptr) {
    // Speculate now, while the session's virtual transmission is in flight;
    // the upload event harvests the result. Doomed sessions (loss, churn)
    // are speculated too — the server cannot know, and neither may the
    // executor.
    executor_->speculate(client, state.base_weights, state.planned_epochs,
                         state.base_round, state.frozen_layers);
    if (trace_ != nullptr) {
      obs::TraceEvent e = trace_event(obs::TraceEventKind::kSpeculate,
                                      queue().now(), state.base_round);
      e.client = client;
      e.epochs = state.planned_epochs;
      trace_->record(e);
    }
  }
  in_flight_.emplace(client, std::move(state));
  ++result().model_downloads;
}

void Simulation::on_arrival(std::size_t client, std::size_t epochs) {
  if (done_) return;
  const auto it = in_flight_.find(client);
  SEAFL_CHECK(it != in_flight_.end(), "arrival from unknown client");
  InFlight state = std::move(it->second);
  in_flight_.erase(it);
  // The upload beat its deadline; disarm the timer. A deadline event never
  // has id 0 (its session's transmission is always scheduled first).
  if (state.deadline_event != 0) queue().cancel(state.deadline_event);

  // The update is computed now that its arrival is due: harvested from the
  // speculative executor when eager, trained inline when lazy. Identical
  // bytes either way (DESIGN.md §12).
  ClientTrainResult trained;
  if (executor_ != nullptr) {
    trained = executor_->harvest(client, *state.base_weights, epochs,
                                 state.base_round, state.frozen_layers);
    if (trace_ != nullptr) {
      obs::TraceEvent e = trace_event(obs::TraceEventKind::kHarvest,
                                      queue().now(), round());
      e.client = client;
      e.base_round = state.base_round;
      e.epochs = epochs;
      trace_->record(e);
    }
  } else {
    trained = trainer_.train(client, *state.base_weights, epochs,
                             state.base_round, state.frozen_layers);
  }

  LocalUpdate update;
  update.client = client;
  update.base_round = state.base_round;
  update.num_samples = trainer_.client_samples(client);
  update.epochs_completed = epochs;
  update.arrival_time = queue().now();
  update.train_loss = trained.mean_loss;
  if (epochs < config_.local_epochs) ++result().partial_updates;
  ++result().model_uploads;
  if (trace_ != nullptr) {
    // Epoch completions were computed at assignment; journal them now with
    // their (past) virtual end times, then the upload itself.
    for (std::size_t e = 0; e < epochs && e < state.epoch_ends.size(); ++e) {
      obs::TraceEvent ev = trace_event(obs::TraceEventKind::kEpochDone,
                                       state.epoch_ends[e], state.base_round);
      ev.client = client;
      ev.base_round = state.base_round;
      ev.epochs = e + 1;
      trace_->record(ev);
    }
    obs::TraceEvent ev =
        trace_event(obs::TraceEventKind::kUpload, queue().now(), round());
    ev.client = client;
    ev.base_round = state.base_round;
    ev.epochs = epochs;
    ev.value = static_cast<double>(staleness_of(state.base_round));
    trace_->record(ev);
  }
  if (client_codec_ != nullptr) {
    // Encode at the single delivery event: retransmissions of a lost upload
    // are the *same* bytes re-sent (they never reach this handler), so the
    // error-feedback residual advances exactly once per delivered update.
    ModelVector* residual = nullptr;
    if (config_.compression.error_feedback)
      residual = &residuals_.for_client(client, trained.weights.size());
    const compress::CompressedUpdate encoded = client_codec_->encode(
        trained.weights, *state.base_weights, residual, client,
        state.base_round, config_.seed);
    core_.add_encoded_update(std::move(update), encoded, *state.base_weights,
                             trace_);
  } else {
    update.weights = std::move(trained.weights);
    if (config_.quantize_bits > 0)
      quantize_model(update.weights, config_.quantize_bits);
    core_.count_upload_bytes(
        transfer_bytes(update.weights.size(), config_.quantize_bits),
        transfer_bytes(update.weights.size(), 0));
    core_.add_update(std::move(update));
  }

  maybe_aggregate();
}

void Simulation::on_upload_lost(std::size_t client) {
  if (done_) return;
  const auto it = in_flight_.find(client);
  SEAFL_CHECK(it != in_flight_.end(), "lost upload from unknown client");
  InFlight& state = it->second;
  if (trace_ != nullptr) {
    obs::TraceEvent e =
        trace_event(obs::TraceEventKind::kUploadLost, queue().now(), round());
    e.client = client;
    e.base_round = state.base_round;
    trace_->record(e);
  }
  ++result().lost_uploads;

  // Client-side retransmission with capped exponential backoff. The client
  // keeps its trained update and re-sends it; training is NOT redone.
  const FaultConfig& f = config_.faults;
  if (f.max_upload_retries > 0 && state.attempts - 1 < f.max_upload_retries) {
    const double backoff =
        std::min(f.retry_backoff_cap,
                 f.retry_backoff *
                     std::pow(2.0, static_cast<double>(state.attempts - 1)));
    const double arrival =
        queue().now() + backoff +
        fleet_->upload_seconds(client, state.base_round,
                               upload_payload_bytes_);
    ++state.attempts;
    ++result().upload_retries;
    // Fresh loss draw per transmission (see start_training's counter note).
    Rng drop_rng(config_.seed, RngPurpose::kDropout, client, round(),
                 dropout_draws_++);
    state.lost = drop_rng.bernoulli(config_.upload_loss_prob);
    if (trace_ != nullptr) {
      obs::TraceEvent e =
          trace_event(obs::TraceEventKind::kRetry, queue().now(), round());
      e.client = client;
      e.base_round = state.base_round;
      e.epochs = state.attempts - 1;  // retry number, 1-based
      trace_->record(e);
    }
    state.upload_event =
        schedule_transmission(client, state, arrival, state.planned_epochs);
    return;
  }

  // Out of retries (or retries disabled): the slot is wasted unless the
  // server reassigns it *now* — waiting for the next aggregation would
  // strand the slot indefinitely under heavy loss.
  if (state.deadline_event != 0) queue().cancel(state.deadline_event);
  abandon_speculation(client);
  in_flight_.erase(it);
  if (config_.mode == FlMode::kSync) {
    // A synchronous round cannot complete without the cohort; retry the
    // same client (models a re-transmission).
    start_training(client);
    return;
  }
  const std::size_t replacement = pick_replacement(client, /*salt=*/777);
  if (replacement != kNoClient) {
    start_training(replacement);
  } else {
    ++result().abandoned_slots;
  }
}

std::size_t Simulation::pick_replacement(std::size_t exclude,
                                         std::uint64_t salt) const {
  // A usable replacement is neither training nor waiting in the buffer
  // (buffered clients restart after aggregation), and is currently online —
  // the server draws re-dispatch targets from the checked-in device pool.
  auto busy = [&](std::size_t candidate) {
    if (in_flight_.find(candidate) != in_flight_.end()) return true;
    for (const auto& u : core_.buffer())
      if (u.client == candidate) return true;
    return false;
  };
  const double now = transport_.queue().now();
  const std::size_t n = task_->num_clients();
  obs::Counter& retries =
      obs::Registry::global().counter("fl.select.retries");
  Rng rng(config_.seed, RngPurpose::kDropout, salt, core_.round(), exclude);
  for (int attempt = 0; attempt < 16; ++attempt) {
    const std::size_t candidate = rng.uniform_int(n);
    if (!busy(candidate) && churn_.online_at(candidate, now)) {
      retries.add(static_cast<std::uint64_t>(attempt));
      return candidate;
    }
  }
  retries.add(16);
  // Fall back to the excluded client itself when it is available (the
  // pre-fault-layer behavior); otherwise run a bounded deterministic scan.
  if (!busy(exclude) && churn_.online_at(exclude, now)) return exclude;

  // Fallback scan (DESIGN.md §16): sweep client ids circularly from a
  // salted start, in blocks sharded onto the thread pool. Workers only fill
  // per-candidate eligibility flags — busy() reads immutable-in-scope maps
  // and probe_online_at touches no shared churn state — and the winner is
  // picked by a serial first-set-flag reduction in scan order, so the
  // answer is independent of thread count. The sweep is capped so a
  // heavy-offline population costs a bounded, observable amount of work
  // instead of spinning per-candidate at the RNG's mercy.
  const std::size_t scan_cap = std::min<std::size_t>(n, 65536);
  const std::size_t start = rng.uniform_int(n);
  constexpr std::size_t kScanBlock = 2048;
  std::vector<std::uint8_t> eligible;
  for (std::size_t done = 0; done < scan_cap; done += kScanBlock) {
    const std::size_t len = std::min(kScanBlock, scan_cap - done);
    eligible.assign(len, 0);
    parallel_for(
        0, len,
        [&](std::size_t i) {
          const std::size_t candidate = (start + done + i) % n;
          if (candidate != exclude && !busy(candidate) &&
              churn_.probe_online_at(candidate, now))
            eligible[i] = 1;
        },
        /*grain=*/256);
    for (std::size_t i = 0; i < len; ++i)
      if (eligible[i]) return (start + done + i) % n;
  }
  return kNoClient;
}

void Simulation::on_crash(std::size_t client) {
  if (done_) return;
  const auto it = in_flight_.find(client);
  if (it == in_flight_.end()) return;
  InFlight& state = it->second;
  if (state.crashed) return;
  state.crashed = true;
  ++result().client_crashes;
  if (trace_ != nullptr) {
    obs::TraceEvent e =
        trace_event(obs::TraceEventKind::kCrash, queue().now(), round());
    e.client = client;
    e.base_round = state.base_round;
    trace_->record(e);
    // Journal the (already determined) recovery time so timelines can be
    // reconstructed; the event is stamped in the future of the emission
    // point, which the journal permits.
    obs::TraceEvent r = trace_event(obs::TraceEventKind::kRecover,
                                    churn_.next_online(client, queue().now()),
                                    round());
    r.client = client;
    trace_->record(r);
  }
  // Nothing else happens here: the server cannot observe a device crash.
  // With deadlines enabled, on_deadline reclaims the slot; a passive server
  // waits for this client forever (and the run ends when the queue drains).
}

void Simulation::on_deadline(std::size_t client) {
  if (done_) return;
  const auto it = in_flight_.find(client);
  if (it == in_flight_.end()) return;  // upload arrived; stale timer
  ++result().deadline_expirations;
  if (trace_ != nullptr) {
    obs::TraceEvent e = trace_event(obs::TraceEventKind::kDeadlineExpired,
                                    queue().now(), round());
    e.client = client;
    e.base_round = it->second.base_round;
    trace_->record(e);
  }
  reassign_slot(client, /*salt=*/778);
}

void Simulation::reassign_slot(std::size_t client, std::uint64_t salt) {
  const auto it = in_flight_.find(client);
  SEAFL_CHECK(it != in_flight_.end(), "reassigning an idle client");
  InFlight& state = it->second;
  // A crashed session's transmission event already fired (it *was* the
  // crash); otherwise a retry/arrival may still be pending — kill it so the
  // abandoned client cannot deliver into the buffer later.
  if (!state.crashed) queue().cancel(state.upload_event);
  abandon_speculation(client);
  in_flight_.erase(it);

  const std::size_t replacement = pick_replacement(client, salt);
  if (replacement == kNoClient) {
    ++result().abandoned_slots;
    return;
  }
  ++result().redispatches;
  if (trace_ != nullptr) {
    obs::TraceEvent e =
        trace_event(obs::TraceEventKind::kRedispatch, queue().now(), round());
    e.client = replacement;
    trace_->record(e);
  }
  start_training(replacement);
}

void Simulation::on_notification(std::size_t client) {
  if (done_) return;
  const auto it = in_flight_.find(client);
  if (it == in_flight_.end()) return;  // already uploaded
  InFlight& state = it->second;
  // Unreachable devices cannot hear the notification: the session is either
  // already dead (crashed) or its next transmission is doomed (lost).
  if (state.crashed || state.lost) return;

  // The client stops after the epoch in progress at notification time.
  const double now = queue().now();
  std::size_t stop_epoch = state.planned_epochs;
  for (std::size_t e = 0; e < state.epoch_ends.size(); ++e) {
    if (state.epoch_ends[e] > now) {
      stop_epoch = e + 1;  // finish the ongoing epoch
      break;
    }
  }
  if (stop_epoch >= state.planned_epochs) return;  // compute already done

  // A dispatched session got truncated. Counted in both execution modes
  // (see abandon_speculation); the executor additionally lowers the
  // speculated job's epoch budget — or, if the job already trained past
  // stop_epoch, the harvest serves its checkpointed prefix.
  ++result().speculation_cut;
  if (executor_ != nullptr) executor_->cut(client, stop_epoch);

  const double arrival =
      state.epoch_ends[stop_epoch - 1] +
      fleet_->upload_seconds(client, state.base_round, upload_payload_bytes_);
  // The notification may arrive mid-epoch while the scheduled end is still
  // in the future; arrival must not precede the present.
  const double when = std::max(arrival, now);
  queue().cancel(state.upload_event);
  state.planned_epochs = stop_epoch;
  // Note the early upload can *rescue* a doomed session: if the device
  // crashes after the truncated arrival but before the original one,
  // schedule_transmission now sees crash_time >= arrival and delivers.
  state.upload_event = schedule_transmission(client, state, when, stop_epoch);
}

void Simulation::check_stale_clients() {
  if (config_.staleness_limit == kNoStalenessLimit) return;
  if (!config_.partial_training) return;
  for (auto& [client, state] : in_flight_) {
    if (state.notified) continue;
    if (staleness_of(state.base_round) >= config_.staleness_limit) {
      state.notified = true;
      ++result().notifications;
      if (trace_ != nullptr) {
        obs::TraceEvent e = trace_event(obs::TraceEventKind::kNotified,
                                        queue().now(), round());
        e.client = client;
        trace_->record(e);
      }
      const double latency =
          fleet_->latency_seconds(client, round(), /*leg=*/2);
      const std::size_t c = client;
      const double when = queue().now() + latency;
      const std::uint64_t id =
          queue().schedule_at(when, [this, c] { on_notification(c); });
      pending_notifies_.emplace(id, PendingNotifyInfo{c, when});
    }
  }
}

void Simulation::arm_round_deadline() {
  if (config_.faults.round_deadline <= 0.0 || done_) return;
  const std::uint64_t armed = round();
  const double when = queue().now() + config_.faults.round_deadline;
  const std::uint64_t id =
      queue().schedule_at(when, [this, armed] { on_round_deadline(armed); });
  pending_round_deadlines_.emplace(id,
                                   PendingRoundDeadlineInfo{armed, when});
}

void Simulation::on_round_deadline(std::uint64_t armed_round) {
  if (done_ || round() != armed_round) return;  // round closed in time
  // Graceful degradation: from now until this round aggregates, the buffer
  // target drops to min_updates. No re-arming — if even min_updates never
  // arrive, the queue drains and the run ends instead of spinning.
  core_.note_round_deadline();
  maybe_aggregate();
}

void Simulation::maybe_aggregate() {
  if (done_) return;

  // The stale-hold check wants the base rounds of the live sessions; their
  // order is irrelevant (it is an any-of predicate).
  std::vector<std::uint64_t> in_flight_rounds;
  in_flight_rounds.reserve(in_flight_.size());
  for (const auto& [client, state] : in_flight_)
    in_flight_rounds.push_back(state.base_round);

  const AggregateOutcome outcome =
      core_.try_aggregate(queue().now(), in_flight_rounds, trace_);
  if (outcome.stale_hold) {
    check_stale_clients();  // SEAFL^2: tell them to report early
    return;                 // SEAFL: hold aggregation until they arrive
  }
  if (!outcome.aggregated) return;

  // The new model becomes the base snapshot of every assignment until the
  // next aggregation. Sessions (and speculated jobs) holding the previous
  // snapshot keep it alive through their shared_ptr.
  refresh_global_snapshot();
  // The virtual clock is monotone past this aggregation, so churn state
  // behind it can be pruned; answers are unchanged (hazard.h).
  churn_.advance_horizon(queue().now());
  evaluate_and_record();
  if (done_) return;

  if (round() >= config_.max_rounds ||
      queue().now() >= config_.max_virtual_seconds) {
    done_ = true;
    return;
  }
  arm_round_deadline();

  if (config_.mode == FlMode::kSync) {
    // Fresh cohort every synchronous round.
    for (const std::size_t client : select_cohort(config_.concurrency))
      start_training(client);
  } else {
    // Reporters resume training on the fresh model (Algorithm 1: the server
    // sends w_{t+1} to the K newly updated clients). Duplicate-client guard:
    // a client cannot report twice in one buffer because it only restarts
    // after reporting.
    for (const auto client : outcome.reporters) start_training(client);
    // Staleness of the remaining in-flight clients just grew; in SEAFL^2
    // this is where over-limit devices get notified.
    check_stale_clients();
  }

  // Checkpoint AFTER dispatch: the snapshot must hold the exact state an
  // uninterrupted run carries into the next round (fresh sessions included).
  maybe_write_checkpoint();
  // Drill hook: simulate a crash N rounds in (split-run tests, bench legs).
  // Checked after the checkpoint hook — a halt at a checkpoint round leaves
  // the file behind for the resuming leg, unlike the max_rounds stop which
  // short-circuits before dispatch.
  if (config_.halt_after_rounds > 0 && round() >= config_.halt_after_rounds)
    done_ = true;
}

void Simulation::prune_pending_events() {
  std::erase_if(pending_notifies_,
                [this](const auto& kv) { return !queue().is_pending(kv.first); });
  std::erase_if(pending_round_deadlines_,
                [this](const auto& kv) { return !queue().is_pending(kv.first); });
}

void Simulation::respeculate_in_flight() {
  if (executor_ == nullptr) return;
  // Client order (in_flight_ is ordered by id), so a drained-and-relaunched
  // run and a restored run queue identical job sequences. Sessions whose
  // budget was already cut re-speculate at the cut budget — the update is a
  // pure function of the inputs, so the harvested bytes are unchanged.
  for (const auto& [client, state] : in_flight_) {
    if (state.crashed) continue;  // nothing will ever harvest it
    executor_->speculate(client, state.base_weights, state.planned_epochs,
                         state.base_round, state.frozen_layers);
  }
}

void Simulation::maybe_write_checkpoint() {
  const std::uint64_t every = config_.checkpoint_every_rounds;
  if (every == 0 || done_ || round() == 0 || round() % every != 0) return;
  // Speculation drains before the snapshot: a checkpoint must not depend on
  // in-progress executor jobs (a restored process starts with an empty
  // executor regardless). The drain and relaunch tick only observation
  // counters, so the run's RunResult is bitwise identical with
  // checkpointing on or off.
  if (executor_ != nullptr) executor_->drain();
  const ckpt::RunCheckpoint snapshot = capture_checkpoint();
  ckpt::write_retained(config_.checkpoint_dir, snapshot,
                       config_.checkpoint_keep);
  respeculate_in_flight();
}

ckpt::RunCheckpoint Simulation::capture_checkpoint() {
  prune_pending_events();
  ckpt::RunCheckpoint c;
  c.seed = config_.seed;
  c.model_dim = initial_weights_.size();
  c.num_clients = task_->num_clients();
  c.origin = 0;
  c.now = queue().now();
  c.round = round();
  c.staleness_sum = core_.staleness_sum();
  c.round_deadline_passed = core_.round_deadline_passed();
  c.dropout_draws = dropout_draws_;
  c.global = core_.global();
  c.result = result();
  c.buffer = core_.buffer();
  strategy_->save_state(c.strategy_state);
  for (const auto& [client, state] : in_flight_) {
    ckpt::SessionRecord s;
    s.client = client;
    s.base_round = state.base_round;
    s.epoch_ends = state.epoch_ends;
    s.planned_epochs = state.planned_epochs;
    s.frozen_layers = state.frozen_layers;
    s.attempts = state.attempts;
    s.crash_time = state.crash_time;
    s.notified = state.notified;
    s.lost = state.lost;
    s.crashed = state.crashed;
    // A crashed session's transmission event already fired (it *was* the
    // crash); every other live session has one pending.
    s.has_tx = queue().is_pending(state.upload_event);
    s.tx_seq = state.upload_event;
    s.tx_time = state.tx_time;
    s.tx_kind = state.tx_kind;
    s.tx_epochs = state.tx_epochs;
    s.has_deadline = state.deadline_event != 0 &&
                     queue().is_pending(state.deadline_event);
    s.deadline_seq = state.deadline_event;
    s.deadline_time = state.deadline_time;
    c.sessions.push_back(std::move(s));
    // Older base snapshots are deduplicated by round; the current round's
    // base IS the global model, which the checkpoint already carries.
    if (state.base_round < c.round)
      c.bases.emplace(state.base_round, *state.base_weights);
  }
  for (const auto& [id, info] : pending_notifies_) {
    ckpt::PendingNotify p;
    p.seq = id;
    p.client = info.client;
    p.time = info.time;
    c.pending_notifies.push_back(p);
  }
  for (const auto& [id, info] : pending_round_deadlines_) {
    ckpt::PendingRoundDeadline p;
    p.seq = id;
    p.armed_round = info.armed_round;
    p.time = info.time;
    c.pending_round_deadlines.push_back(p);
  }
  for (const auto& [client, residual] : residuals_.all())
    c.residuals.emplace(client, residual);
  return c;
}

void Simulation::restore_state(const ckpt::RunCheckpoint& c) {
  SEAFL_CHECK(c.origin == 0,
              "checkpoint was taken by a deployment server, not a simulation");
  SEAFL_CHECK(c.seed == config_.seed,
              "checkpoint seed " << c.seed << " != run seed " << config_.seed);
  SEAFL_CHECK(c.model_dim == initial_weights_.size(),
              "checkpoint model dim " << c.model_dim << " != "
                                      << initial_weights_.size());
  SEAFL_CHECK(c.num_clients == task_->num_clients(),
              "checkpoint has " << c.num_clients << " clients, task has "
                                << task_->num_clients());
  SEAFL_CHECK(in_flight_.empty() && queue().empty() && queue().now() == 0.0,
              "resume requires a freshly constructed simulation");

  core_.restore(c.global, c.round, c.buffer, c.result, c.staleness_sum,
                c.round_deadline_passed);
  SEAFL_CHECK(
      strategy_->restore_state(
          reinterpret_cast<const unsigned char*>(c.strategy_state.data()),
          c.strategy_state.size()),
      "checkpoint strategy state does not fit strategy "
          << strategy_->name());
  queue().advance_to(c.now);
  dropout_draws_ = c.dropout_draws;
  refresh_global_snapshot();
  for (const auto& [client, residual] : c.residuals)
    residuals_.restore(static_cast<std::size_t>(client), residual);

  // Base-weight snapshots, shared across same-round sessions exactly as in
  // the original run. The current round's base is the restored global.
  std::map<std::uint64_t, std::shared_ptr<const ModelVector>> bases;
  bases.emplace(c.round, global_snapshot_);
  for (const auto& [base_round, weights] : c.bases)
    bases.emplace(base_round, std::make_shared<const ModelVector>(weights));

  for (const auto& s : c.sessions) {
    const auto base = bases.find(s.base_round);
    SEAFL_CHECK(base != bases.end(), "checkpoint session for client "
                                         << s.client
                                         << " references missing base round "
                                         << s.base_round);
    InFlight state;
    state.base_round = s.base_round;
    state.base_weights = base->second;
    state.epoch_ends = s.epoch_ends;
    state.planned_epochs = s.planned_epochs;
    state.frozen_layers = s.frozen_layers;
    state.attempts = s.attempts;
    state.crash_time = s.crash_time;
    state.notified = s.notified;
    state.lost = s.lost;
    state.crashed = s.crashed;
    state.tx_time = s.tx_time;
    state.tx_kind = s.tx_kind;
    state.tx_epochs = s.tx_epochs;
    state.deadline_time = s.deadline_time;
    in_flight_.emplace(s.client, std::move(state));
  }

  // Replay every pending event in ascending *original* sequence order: the
  // queue breaks same-time ties by insertion sequence, so re-inserting in
  // the original relative order makes ties fire exactly as they would have
  // in the uninterrupted run. (New events scheduled after the resume always
  // get higher sequence numbers than the replayed ones — in both runs.)
  struct Replay {
    std::uint64_t orig_seq = 0;
    enum class Kind { kTx, kDeadline, kNotify, kRoundDeadline } kind;
    std::size_t client = 0;
    double time = 0.0;
    std::size_t epochs = 0;
    ckpt::TxKind tx_kind = ckpt::TxKind::kArrival;
    std::uint64_t armed_round = 0;
  };
  std::vector<Replay> events;
  for (const auto& s : c.sessions) {
    if (s.has_tx) {
      Replay r;
      r.orig_seq = s.tx_seq;
      r.kind = Replay::Kind::kTx;
      r.client = s.client;
      r.time = s.tx_time;
      r.epochs = s.tx_epochs;
      r.tx_kind = s.tx_kind;
      events.push_back(r);
    }
    if (s.has_deadline) {
      Replay r;
      r.orig_seq = s.deadline_seq;
      r.kind = Replay::Kind::kDeadline;
      r.client = s.client;
      r.time = s.deadline_time;
      events.push_back(r);
    }
  }
  for (const auto& p : c.pending_notifies) {
    Replay r;
    r.orig_seq = p.seq;
    r.kind = Replay::Kind::kNotify;
    r.client = static_cast<std::size_t>(p.client);
    r.time = p.time;
    events.push_back(r);
  }
  for (const auto& p : c.pending_round_deadlines) {
    Replay r;
    r.orig_seq = p.seq;
    r.kind = Replay::Kind::kRoundDeadline;
    r.armed_round = p.armed_round;
    r.time = p.time;
    events.push_back(r);
  }
  std::sort(events.begin(), events.end(),
            [](const Replay& a, const Replay& b) {
              return a.orig_seq < b.orig_seq;
            });
  for (const Replay& ev : events) {
    switch (ev.kind) {
      case Replay::Kind::kTx: {
        std::uint64_t id = 0;
        const std::size_t cl = ev.client;
        switch (ev.tx_kind) {
          case ckpt::TxKind::kCrash:
            id = queue().schedule_at(ev.time, [this, cl] { on_crash(cl); });
            break;
          case ckpt::TxKind::kLost:
            id = queue().schedule_at(ev.time,
                                     [this, cl] { on_upload_lost(cl); });
            break;
          case ckpt::TxKind::kArrival: {
            const std::size_t epochs = ev.epochs;
            id = queue().schedule_at(
                ev.time, [this, cl, epochs] { on_arrival(cl, epochs); });
            break;
          }
        }
        in_flight_.at(cl).upload_event = id;
        break;
      }
      case Replay::Kind::kDeadline: {
        const std::size_t cl = ev.client;
        in_flight_.at(cl).deadline_event =
            queue().schedule_at(ev.time, [this, cl] { on_deadline(cl); });
        break;
      }
      case Replay::Kind::kNotify: {
        const std::size_t cl = ev.client;
        const std::uint64_t id =
            queue().schedule_at(ev.time, [this, cl] { on_notification(cl); });
        pending_notifies_.emplace(id, PendingNotifyInfo{cl, ev.time});
        break;
      }
      case Replay::Kind::kRoundDeadline: {
        const std::uint64_t armed = ev.armed_round;
        const std::uint64_t id = queue().schedule_at(
            ev.time, [this, armed] { on_round_deadline(armed); });
        pending_round_deadlines_.emplace(
            id, PendingRoundDeadlineInfo{armed, ev.time});
        break;
      }
    }
  }

  respeculate_in_flight();
  done_ = false;
}

RunResult Simulation::resume(const ckpt::RunCheckpoint& checkpoint) {
  restore_state(checkpoint);
  return drive();
}

RunResult Simulation::resume_from_dir(const std::string& dir) {
  const std::optional<std::string> path = ckpt::latest_checkpoint(dir);
  SEAFL_CHECK(path.has_value(), "no checkpoint found under " << dir);
  ckpt::RunCheckpoint c;
  const ckpt::DecodeStatus status = ckpt::load_checkpoint_file(*path, c);
  SEAFL_CHECK(status == ckpt::DecodeStatus::kOk,
              "cannot load " << *path << ": " << ckpt::status_name(status));
  return resume(c);
}

void Simulation::evaluate_and_record() {
  if (round() % config_.eval_every != 0 && !done_) {
    // Skip: sampling cadence. (Round 0 and stop-time evals always run.)
    return;
  }
  const EvalResult eval = evaluator_.evaluate(core_.global());
  AccuracyPoint point;
  point.time = queue().now();
  point.round = round();
  point.accuracy = eval.accuracy;
  point.loss = eval.loss;
  result().curve.push_back(point);
  result().final_accuracy = eval.accuracy;
  if (trace_ != nullptr) {
    obs::TraceEvent e =
        trace_event(obs::TraceEventKind::kEval, queue().now(), round());
    e.value = eval.accuracy;
    trace_->record(e);
  }

  if (result().time_to_target < 0.0 &&
      eval.accuracy >= config_.target_accuracy) {
    result().time_to_target = queue().now();
    if (config_.stop_at_target) done_ = true;
  }
}

}  // namespace seafl
