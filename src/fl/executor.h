// Speculative client-training executor (DESIGN.md §12): overlaps the real
// CPU work of client training sessions with the virtual-clock event loop.
//
// Every client update is a pure function of its dispatch-time inputs
// (base_weights, client, round, epochs, frozen_layers, seed), so the
// simulation may compute it any time between dispatch and harvest. The
// executor enqueues the session onto the shared ThreadPool the moment the
// server assigns it (Simulation::start_training) and hands the finished
// result back when the upload event fires (Simulation::on_arrival) —
// bitwise identical to the lazy serial path, because pool workers run with
// serial kernels and the kernels themselves are thread-count invariant
// (DESIGN.md §11).
//
// Lifecycle of a speculated job:
//   speculate() ── queued ──> running ──> done ──> harvest()
//        │            │                    │
//        │            └── harvest() steals a still-queued job and runs it
//        │                inline on the caller (never blocks on the queue,
//        │                so simulations running *on* pool workers — the
//        │                exp::Runner's --jobs mode — cannot deadlock)
//        ├── cut(stop_epoch): SEAFL^2 notification truncated the session;
//        │   the running job observes the lowered epoch budget at its next
//        │   epoch boundary, or the harvest serves the checkpointed prefix
//        │   (per-epoch RNG keying makes epoch e of the partial session
//        │   equal epoch e of the full one bit-for-bit)
//        └── abandon(): deadline re-dispatch / lost-upload give-up; the job
//            is detached (a running one stops at its next epoch boundary)
//            and its work discarded — never waited on.
//
// Trainer leasing: jobs borrow a ClientTrainer (model clone + workspaces)
// from a free list sized by observed execution concurrency, so at most
// pool-workers + 1 trainer instances ever exist regardless of how many
// sessions are in flight.
#pragma once

#include <cstdint>
#include <memory>

#include "fl/client.h"

namespace seafl {

/// Runs client training sessions eagerly on the shared thread pool.
/// Thread-compatible: all public methods are called from the simulation's
/// event-loop thread; the internal state they share with pool workers is
/// synchronized inside.
class TrainingExecutor {
 public:
  /// @param task / @param factory / @param config exactly what the
  ///        simulation's own ClientTrainer was built from, so leased
  ///        trainers compute identical sessions. `task` must outlive the
  ///        executor.
  TrainingExecutor(const FlTask& task, const ModelFactory& factory,
                   const RunConfig& config);

  /// Abandons whatever is still in flight and joins running jobs.
  ~TrainingExecutor();

  TrainingExecutor(const TrainingExecutor&) = delete;
  TrainingExecutor& operator=(const TrainingExecutor&) = delete;

  /// Enqueues the session dispatched to `client`. `base` is the global-model
  /// snapshot the session starts from (shared, immutable). No-op when the
  /// live-job cap (RunConfig::sim_jobs) is reached — the session then trains
  /// at harvest time instead. A client can hold at most one job.
  void speculate(std::size_t client, std::shared_ptr<const ModelVector> base,
                 std::size_t epochs, std::uint64_t round,
                 std::size_t frozen_layers);

  /// SEAFL^2 partial training: lowers the session's epoch budget to
  /// `stop_epoch`. Safe when the client has no job (cap skip, already done).
  void cut(std::size_t client, std::size_t stop_epoch);

  /// Detaches `client`'s job without waiting for it; its result is
  /// discarded. Safe when the client has no job.
  void abandon(std::size_t client);

  /// Returns the finished session for `client`, blocking only if the job is
  /// genuinely mid-training on a worker. A still-queued job is stolen and
  /// run inline; a missing job (cap skip) trains inline from the arguments,
  /// which must match what speculate() was — or would have been — given.
  ClientTrainResult harvest(std::size_t client, const ModelVector& base,
                            std::size_t epochs, std::uint64_t round,
                            std::size_t frozen_layers);

  /// Abandons every remaining job and blocks until no task is running.
  void drain();

  // Implementation types, public so the .cpp's file-scope helpers (the pool
  // closure, the epoch observer) can name them; not part of the API.
  struct Job;
  struct Shared;

 private:
  std::shared_ptr<Shared> shared_;
};

}  // namespace seafl
