// Transport-independent server state machine (DESIGN.md §13): the buffer,
// the global model, the round counter and the aggregation decision of
// Algorithms 1–2, factored out of the virtual-time Simulation so the real
// socket deployment (fl/deploy.h) runs the *same* code, not a re-creation
// of it. Everything here is a pure function of (config, fed updates,
// supplied timestamps) — no clock, no scheduling, no I/O — which is what
// keeps the virtual path bitwise identical after the extraction.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "compress/codec.h"
#include "fl/strategy.h"
#include "nn/sequential.h"
#include "obs/trace.h"

namespace seafl {

/// Validates the orchestration parameters shared by both deployment modes.
/// Throws seafl::Error on the first violation.
void validate_run_config(const RunConfig& config, std::size_t num_clients);

/// Layer-wise He/Xavier initialization through a scratch model instance, so
/// the initial global model is identical for every strategy (and every
/// deployment mode) sharing a seed.
ModelVector initial_global_weights(const ModelFactory& factory,
                                   std::uint64_t seed);

/// What ServerCore::try_aggregate decided.
struct AggregateOutcome {
  bool aggregated = false;
  /// Semi-async only: the buffer is full but an in-flight session is at the
  /// staleness limit and the policy holds aggregation (SEAFL §IV.B). The
  /// driver should nudge over-limit clients (SEAFL^2 notifications).
  bool stale_hold = false;
  /// Clients whose updates formed the new model, in buffer (arrival) order;
  /// the driver re-dispatches the fresh model to them. Empty unless
  /// `aggregated`. Views the core's reusable scratch: valid until the next
  /// try_aggregate on the same core (both drivers consume it immediately).
  std::span<const std::size_t> reporters;
};

/// The server's aggregation brain, shared by fl::Simulation (virtual time)
/// and fl::DeployServer (wall time). Owns the global model, the update
/// buffer, the round counter and the RunResult; drivers own dispatch,
/// deadlines, evaluation and everything that touches a clock or a wire.
class ServerCore {
 public:
  /// `strategy` and `config` are borrowed and must outlive the core.
  ServerCore(AggregationStrategy* strategy, const RunConfig& config);

  /// Resets run state: installs the initial global model and sizes the
  /// participation histogram.
  void begin(ModelVector initial, std::size_t num_clients);

  /// Reinstalls a checkpointed mid-run state (DESIGN.md §15): the global
  /// model, round counter, pending buffer, accumulated RunResult and
  /// staleness sum exactly as they were when the checkpoint was taken.
  /// Replaces begin() on the resume path.
  void restore(ModelVector global, std::uint64_t round,
               std::vector<LocalUpdate> buffer, RunResult result,
               double staleness_sum, bool round_deadline_passed);

  /// Buffers one arrived update (the driver has already stamped
  /// arrival_time and counted upload metrics).
  void add_update(LocalUpdate update);

  /// Buffers one arrived *compressed* update: decodes it against `base`
  /// (the global snapshot dispatched to the client) ahead of screening and
  /// aggregation, and counts the exact container bytes-on-wire plus a
  /// kCompressed journal event. `update.weights` is ignored and replaced by
  /// the decode. Requires config.compression to be enabled; decoding a
  /// malformed payload throws seafl::Error *before* any state changes, so a
  /// deployment server can catch and drop the peer.
  void add_encoded_update(LocalUpdate update,
                          const compress::CompressedUpdate& encoded,
                          const ModelVector& base, obs::TraceSink* trace);

  /// Adds one delivered upload to the run's communication accounting
  /// (RunResult::upload_wire_bytes / upload_raw_bytes + obs counters).
  /// Drivers call this on the plain-float path; add_encoded_update does it
  /// internally.
  void count_upload_bytes(std::size_t wire_bytes, std::size_t raw_bytes);

  /// Runs the aggregation decision of maybe_aggregate() at time `now`:
  /// drop-stale filtering, the (possibly degraded) buffer target, the
  /// wait-for-stale hold, and — when the decision is "go" — the full
  /// aggregation (strategy call, screening bookkeeping, round advance,
  /// round log, kDegradedAggregate/kScreened/kAggregate trace events).
  /// `in_flight_base_rounds` are the base rounds of the driver's live
  /// sessions (order irrelevant), consulted only by the stale-hold check.
  AggregateOutcome try_aggregate(
      double now, const std::vector<std::uint64_t>& in_flight_base_rounds,
      obs::TraceSink* trace);

  /// The round deadline passed: until the next aggregation the buffer
  /// target degrades to FaultConfig::min_updates.
  void note_round_deadline() { round_deadline_passed_ = true; }

  std::uint64_t round() const { return round_; }
  std::uint64_t staleness_of(std::uint64_t base_round) const {
    return round_ - base_round;
  }
  ModelVector& global() { return global_; }
  const ModelVector& global() const { return global_; }
  const std::vector<LocalUpdate>& buffer() const { return buffer_; }
  /// Mutable: drivers own the protocol counters (uploads, retries, ...).
  RunResult& result() { return result_; }
  const RunResult& result() const { return result_; }
  /// Sum of per-update staleness over all aggregated updates (for the
  /// run-end mean).
  double staleness_sum() const { return staleness_sum_; }
  /// Whether the current round is past its deadline (degraded target).
  bool round_deadline_passed() const { return round_deadline_passed_; }

  /// The decode side of the run's codec; null when compression is off.
  const compress::Codec* codec() const { return codec_.get(); }

 private:
  void do_aggregate(double now, obs::TraceSink* trace,
                    AggregateOutcome& outcome);

  AggregationStrategy* strategy_;
  const RunConfig* config_;
  std::unique_ptr<compress::Codec> codec_;  ///< null = compression off
  ModelVector global_;
  std::uint64_t round_ = 0;
  std::vector<LocalUpdate> buffer_;
  bool round_deadline_passed_ = false;
  RunResult result_;
  double staleness_sum_ = 0.0;
  /// Round-scoped scratch, members so capacity survives across rounds: at a
  /// constant buffer target the steady-state aggregate round allocates
  /// nothing (pinned by bench/micro_aggregation's allocs-per-round gate).
  ScreeningReport screening_scratch_;
  std::vector<std::size_t> reporters_scratch_;
};

}  // namespace seafl
