// Server-side optimizers (Reddi et al., "Adaptive Federated Optimization"):
// treat the aggregated round result as a *pseudo-gradient*
//     g_t = w_t - w_agg
// and apply a first-order optimizer on the server instead of plain
// replacement/mixing. Wraps any inner AggregationStrategy, so FedAvgM and
// FedAdam compose with FedAvg, FedBuff or SEAFL aggregation.
#pragma once

#include "fl/strategy.h"

namespace seafl {

/// Server optimizer selector.
enum class ServerOpt {
  kSgd,    ///< w -= lr * g (lr = 1 reproduces the inner strategy exactly)
  kMomentum,  ///< FedAvgM: v = beta1 v + g; w -= lr v
  kAdam,   ///< FedAdam with bias correction
};

/// Configuration for ServerOptStrategy.
struct ServerOptConfig {
  ServerOpt kind = ServerOpt::kMomentum;
  double lr = 1.0;        ///< server learning rate
  double beta1 = 0.9;     ///< momentum / Adam first moment
  double beta2 = 0.99;    ///< Adam second moment
  double epsilon = 1e-8;  ///< Adam denominator floor
};

/// Decorator: runs the inner strategy to obtain the proposed next global
/// model, interprets the difference from the current model as a
/// pseudo-gradient, and applies the configured server optimizer.
class ServerOptStrategy : public AggregationStrategy {
 public:
  /// @param inner the aggregation rule producing the proposal (owned)
  ServerOptStrategy(StrategyPtr inner, ServerOptConfig config);

  void aggregate(const AggregationContext& ctx,
                 std::span<const LocalUpdate> buffer,
                 ModelVector& global_out) override;
  std::string name() const override;

  /// Optimizer moments + step count, then the inner strategy's state.
  void save_state(std::string& out) const override;
  bool restore_state(const unsigned char* data, std::size_t size) override;

 private:
  StrategyPtr inner_;
  ServerOptConfig config_;
  std::vector<double> momentum_;  // first moment
  std::vector<double> variance_;  // second moment (Adam)
  std::uint64_t step_ = 0;
};

}  // namespace seafl
