#include "fl/executor.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace seafl {

namespace {

enum class JobState { kQueued, kRunning, kDone, kAbandoned };

}  // namespace

/// One speculated session. `state` carries the ownership protocol: exactly
/// one party wins the kQueued -> kRunning transition (a pool worker, or a
/// stealing harvester; always under the executor mutex) and becomes the sole
/// writer of `result` / the checkpoints until it publishes kDone.
struct TrainingExecutor::Job {
  std::size_t client = 0;
  std::uint64_t round = 0;
  std::size_t epochs = 0;
  std::size_t frozen_layers = 0;
  std::shared_ptr<const ModelVector> base;

  std::atomic<JobState> state{JobState::kQueued};
  /// Monotonically non-increasing epoch budget (cut() lowers it); the
  /// training loop reads it at every epoch boundary.
  std::atomic<std::size_t> epoch_limit{0};
  /// Set by abandon(); a running job stops at its next epoch boundary.
  std::atomic<bool> abandoned{false};

  // Written by the job's runner, read by the harvester after it observes
  // kDone (both under the executor mutex, so publication is by-lock).
  ClientTrainResult result;
  /// Per-epoch weight/loss checkpoints, recorded only when the run uses
  /// partial training: a cut() that lands after the job passed stop_epoch is
  /// served from checkpoint[stop_epoch - 1], which the per-epoch RNG keying
  /// makes bit-identical to a fresh stop_epoch-epoch session.
  std::vector<ModelVector> epoch_weights;
  std::vector<double> epoch_losses;
};

/// State shared with pool closures through a shared_ptr, so a closure that
/// runs after the executor (or the whole simulation) is gone still has a
/// live object to cancel itself against. Only *running* jobs touch anything
/// beyond this struct (the task, leased trainers); drain() therefore waits
/// for running jobs only, never for closures still queued behind unrelated
/// pool work — which is what keeps teardown deadlock-free when simulations
/// themselves execute on pool workers (exp::Runner --jobs).
struct TrainingExecutor::Shared {
  const FlTask* task = nullptr;
  ModelFactory factory;
  RunConfig config;
  bool checkpoint = false;  ///< record per-epoch prefixes (partial training)
  std::size_t max_jobs = 0; ///< live-speculation cap; 0 = unlimited

  std::mutex mutex;
  std::condition_variable cv;
  std::unordered_map<std::size_t, std::shared_ptr<Job>> jobs;
  std::vector<std::unique_ptr<ClientTrainer>> free_trainers;
  std::size_t live_jobs = 0;     ///< queued + running, for the cap/gauge
  std::size_t running_tasks = 0; ///< pool closures mid-training

  // Cached metric handles (interned by name in the global registry).
  obs::Counter* speculated;
  obs::Counter* skipped;
  obs::Counter* hits;
  obs::Counter* steals;
  obs::Counter* inline_trains;
  obs::Counter* cuts;
  obs::Counter* cancelled;
  obs::Counter* wasted;
  obs::Gauge* queue_depth;

  std::unique_ptr<ClientTrainer> acquire_trainer();
  void release_trainer(std::unique_ptr<ClientTrainer> trainer);
};

namespace {

/// Epoch-boundary hook of a speculated job: checkpoints the prefix when the
/// run can cut sessions, then reports the (possibly lowered) budget. An
/// abandoned job stops immediately — nothing will read its result.
class JobObserver final : public TrainObserver {
 public:
  JobObserver(TrainingExecutor::Job& job, bool checkpoint)
      : job_(&job), checkpoint_(checkpoint) {}

  std::size_t on_epoch_end(std::size_t epochs_done, double epoch_mean_loss,
                           const Sequential& model) override {
    if (checkpoint_) {
      job_->epoch_weights.emplace_back(model.num_parameters());
      model.copy_parameters_to(job_->epoch_weights.back());
      job_->epoch_losses.push_back(epoch_mean_loss);
    }
    if (job_->abandoned.load(std::memory_order_relaxed)) return epochs_done;
    return job_->epoch_limit.load(std::memory_order_relaxed);
  }

 private:
  TrainingExecutor::Job* job_;
  bool checkpoint_;
};

}  // namespace

std::unique_ptr<ClientTrainer> TrainingExecutor::Shared::acquire_trainer() {
  {
    std::lock_guard<std::mutex> lock(mutex);
    if (!free_trainers.empty()) {
      auto trainer = std::move(free_trainers.back());
      free_trainers.pop_back();
      return trainer;
    }
  }
  // Lazily grown outside the lock: leases happen at *execution* time, so the
  // population is bounded by execution concurrency (pool workers + the
  // event-loop thread), not by sessions in flight.
  return std::make_unique<ClientTrainer>(*task, factory, config);
}

void TrainingExecutor::Shared::release_trainer(
    std::unique_ptr<ClientTrainer> trainer) {
  std::lock_guard<std::mutex> lock(mutex);
  free_trainers.push_back(std::move(trainer));
}

namespace {

/// Trains the job with a leased trainer. Sole writer of job.result by the
/// state protocol; publishing kDone is the caller's duty.
void run_job(TrainingExecutor::Shared& shared, TrainingExecutor::Job& job) {
  auto trainer = shared.acquire_trainer();
  {
    JobObserver observer(job, shared.checkpoint);
    job.result = trainer->train(job.client, *job.base, job.epochs, job.round,
                                job.frozen_layers, &observer);
  }
  shared.release_trainer(std::move(trainer));
}

}  // namespace

TrainingExecutor::TrainingExecutor(const FlTask& task,
                                   const ModelFactory& factory,
                                   const RunConfig& config)
    : shared_(std::make_shared<Shared>()) {
  shared_->task = &task;
  shared_->factory = factory;
  shared_->config = config;
  shared_->checkpoint = config.partial_training;
  shared_->max_jobs = config.sim_jobs;
  obs::Registry& reg = obs::Registry::global();
  shared_->speculated = &reg.counter("fl.executor.speculated");
  shared_->skipped = &reg.counter("fl.executor.skipped");
  shared_->hits = &reg.counter("fl.executor.hits");
  shared_->steals = &reg.counter("fl.executor.steals");
  shared_->inline_trains = &reg.counter("fl.executor.inline_trains");
  shared_->cuts = &reg.counter("fl.executor.cuts");
  shared_->cancelled = &reg.counter("fl.executor.cancelled");
  shared_->wasted = &reg.counter("fl.executor.wasted");
  shared_->queue_depth = &reg.gauge("fl.executor.queue_depth");
}

TrainingExecutor::~TrainingExecutor() { drain(); }

void TrainingExecutor::speculate(std::size_t client,
                                 std::shared_ptr<const ModelVector> base,
                                 std::size_t epochs, std::uint64_t round,
                                 std::size_t frozen_layers) {
  SEAFL_CHECK(base != nullptr, "speculate without a base snapshot");
  auto shared = shared_;
  auto job = std::make_shared<Job>();
  job->client = client;
  job->round = round;
  job->epochs = epochs;
  job->frozen_layers = frozen_layers;
  job->base = std::move(base);
  job->epoch_limit.store(epochs, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(shared->mutex);
    SEAFL_CHECK(shared->jobs.find(client) == shared->jobs.end(),
                "client " << client << " already speculated");
    if (shared->max_jobs > 0 && shared->live_jobs >= shared->max_jobs) {
      shared->skipped->add();
      return;  // over the cap: this session trains at harvest time
    }
    shared->jobs.emplace(client, job);
    ++shared->live_jobs;
    shared->queue_depth->set(static_cast<double>(shared->live_jobs));
  }
  shared->speculated->add();
  global_pool().submit([shared, job] {
    {
      std::lock_guard<std::mutex> lock(shared->mutex);
      JobState expected = JobState::kQueued;
      if (!job->state.compare_exchange_strong(expected, JobState::kRunning))
        return;  // stolen by a harvester or abandoned before we ran
      ++shared->running_tasks;
    }
    // Pool workers already run with serial kernels (thread_pool.cpp); the
    // scope is belt-and-braces for the determinism contract.
    SerialKernelScope serial;
    run_job(*shared, *job);
    std::lock_guard<std::mutex> lock(shared->mutex);
    job->state.store(JobState::kDone, std::memory_order_relaxed);
    --shared->running_tasks;
    --shared->live_jobs;
    shared->queue_depth->set(static_cast<double>(shared->live_jobs));
    shared->cv.notify_all();
  });
}

void TrainingExecutor::cut(std::size_t client, std::size_t stop_epoch) {
  auto shared = shared_;
  std::lock_guard<std::mutex> lock(shared->mutex);
  const auto it = shared->jobs.find(client);
  if (it == shared->jobs.end()) return;  // cap skip: nothing speculated
  Job& job = *it->second;
  std::size_t current = job.epoch_limit.load(std::memory_order_relaxed);
  while (stop_epoch < current &&
         !job.epoch_limit.compare_exchange_weak(current, stop_epoch,
                                                std::memory_order_relaxed)) {
  }
  shared->cuts->add();
}

void TrainingExecutor::abandon(std::size_t client) {
  auto shared = shared_;
  std::lock_guard<std::mutex> lock(shared->mutex);
  const auto it = shared->jobs.find(client);
  if (it == shared->jobs.end()) return;  // cap skip: nothing speculated
  std::shared_ptr<Job> job = std::move(it->second);
  shared->jobs.erase(it);
  JobState expected = JobState::kQueued;
  if (job->state.compare_exchange_strong(expected, JobState::kAbandoned)) {
    // Never started: no compute lost. Its pool closure will see the state
    // and return without touching anything beyond Shared.
    shared->cancelled->add();
    --shared->live_jobs;
    shared->queue_depth->set(static_cast<double>(shared->live_jobs));
    return;
  }
  // Running (stops at its next epoch boundary) or already done: either way
  // the trained epochs are discarded. live_jobs accounting stays with the
  // worker's completion path.
  job->abandoned.store(true, std::memory_order_relaxed);
  shared->wasted->add();
}

ClientTrainResult TrainingExecutor::harvest(std::size_t client,
                                            const ModelVector& base,
                                            std::size_t epochs,
                                            std::uint64_t round,
                                            std::size_t frozen_layers) {
  auto shared = shared_;
  std::shared_ptr<Job> job;
  bool stolen = false;
  {
    std::lock_guard<std::mutex> lock(shared->mutex);
    const auto it = shared->jobs.find(client);
    if (it != shared->jobs.end()) {
      job = std::move(it->second);
      shared->jobs.erase(it);
      JobState expected = JobState::kQueued;
      stolen = job->state.compare_exchange_strong(expected, JobState::kRunning);
    }
  }

  if (job == nullptr) {
    // Speculation was skipped at the cap: train now, exactly like the lazy
    // path would have.
    shared->inline_trains->add();
    auto trainer = shared->acquire_trainer();
    ClientTrainResult result =
        trainer->train(client, base, epochs, round, frozen_layers);
    shared->release_trainer(std::move(trainer));
    return result;
  }

  if (stolen) {
    // The pool has not picked the job up yet; running it inline (with
    // whatever kernel parallelism this thread normally has) keeps the
    // harvester from ever blocking on queue capacity — the property that
    // makes nesting simulations inside pool workers deadlock-free.
    shared->steals->add();
    run_job(*shared, *job);
    std::lock_guard<std::mutex> lock(shared->mutex);
    job->state.store(JobState::kDone, std::memory_order_relaxed);
    --shared->live_jobs;
    shared->queue_depth->set(static_cast<double>(shared->live_jobs));
  } else {
    // Running on a worker (wait for it) or already done (no wait).
    SEAFL_PROF_SCOPE("fl.executor_harvest_wait");
    std::unique_lock<std::mutex> lock(shared->mutex);
    shared->cv.wait(lock, [&] {
      return job->state.load(std::memory_order_relaxed) == JobState::kDone;
    });
    shared->hits->add();
  }

  SEAFL_CHECK(epochs <= job->epochs,
              "harvest asks for " << epochs << " epochs of a " << job->epochs
                                  << "-epoch speculation");
  if (job->result.epochs == epochs) return std::move(job->result);
  // The job overshot a late cut(); serve the checkpointed epoch prefix.
  if (epochs >= 1 && epochs <= job->epoch_weights.size()) {
    ClientTrainResult result;
    result.weights = std::move(job->epoch_weights[epochs - 1]);
    result.mean_loss = job->epoch_losses[epochs - 1];
    result.epochs = epochs;
    return result;
  }
  // Defensive fallback (a cut without checkpointing enabled — cannot happen
  // through the Simulation, which only cuts under partial_training): retrain
  // the exact prefix inline.
  shared->inline_trains->add();
  auto trainer = shared->acquire_trainer();
  ClientTrainResult result =
      trainer->train(client, base, epochs, round, frozen_layers);
  shared->release_trainer(std::move(trainer));
  return result;
}

void TrainingExecutor::drain() {
  auto shared = shared_;
  std::unique_lock<std::mutex> lock(shared->mutex);
  for (auto& [client, job] : shared->jobs) {
    JobState expected = JobState::kQueued;
    if (job->state.compare_exchange_strong(expected, JobState::kAbandoned)) {
      shared->cancelled->add();
      --shared->live_jobs;
    } else {
      job->abandoned.store(true, std::memory_order_relaxed);
      shared->wasted->add();
    }
  }
  shared->jobs.clear();
  // Only running closures touch the task / leased trainers; closures still
  // queued cancel themselves against Shared (kept alive by their own
  // shared_ptr) whenever they eventually run.
  shared->cv.wait(lock, [&] { return shared->running_tasks == 0; });
  shared->queue_depth->set(static_cast<double>(shared->live_jobs));
}

}  // namespace seafl
