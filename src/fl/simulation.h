// The federated-learning simulation loop: server, clients, buffer, staleness
// protocol and virtual-time scheduling, per Algorithms 1 and 2 of the paper.
//
// Timeline semantics (semi-async mode):
//  1. At t = 0 the server selects `concurrency` clients and broadcasts w_0.
//  2. Each client trains E local epochs; the duration comes from the Fleet
//     (compute + per-epoch Zipf idle + network latency).
//  3. Uploads are buffered. When the buffer holds >= K updates the server
//     aggregates — unless an in-flight client has reached the staleness
//     limit beta:
//       * wait_for_stale (SEAFL):   delay aggregation until it reports, so
//         staleness never exceeds beta (§IV.B);
//       * partial_training (SEAFL^2): additionally notify it to upload right
//         after its current epoch, shortening the wait (§IV.C, Fig. 3);
//       * drop_stale (SAFA-style):  discard over-limit updates instead.
//  4. After aggregating, the round advances, the new model goes to the
//     reporters (they immediately start the next local round), and the
//     global model is evaluated against the virtual clock.
//  In sync mode (FedAvg) the server instead waits for the whole cohort and
//  re-samples a fresh cohort each round.
//
// Client updates are pure functions of (assigned weights, client id, round),
// so the simulation is deterministic and partial re-training (fewer epochs
// of the same session) reproduces the exact epoch prefix. By default they
// are computed lazily at upload time on the event-loop thread; with
// RunConfig::eager_training a TrainingExecutor instead speculates them onto
// the shared thread pool at dispatch time and the upload event harvests the
// finished result — same results bit-for-bit, overlapped wall-clock
// (DESIGN.md §12).
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "ckpt/checkpoint.h"
#include "compress/residual.h"
#include "fl/client.h"
#include "fl/compression.h"
#include "fl/evaluator.h"
#include "fl/executor.h"
#include "fl/server_core.h"
#include "fl/strategy.h"
#include "net/transport.h"
#include "obs/trace.h"
#include "sim/event_queue.h"
#include "sim/fleet.h"
#include "sim/hazard.h"

namespace seafl {

/// Runs one federated training session under virtual time.
class Simulation {
 public:
  /// @param task dataset + partition (must outlive the simulation)
  /// @param factory model architecture
  /// @param fleet device timing model; fleet.size() must cover the task's
  ///        clients
  /// @param strategy server aggregation rule (owned)
  /// @param config orchestration parameters
  /// @param work_per_sample relative compute cost of one training sample
  ///        (see estimate_flops_per_sample; scaled by the caller)
  Simulation(const FlTask& task, const ModelFactory& factory,
             const Fleet& fleet, StrategyPtr strategy, RunConfig config,
             double work_per_sample = 1.0);

  /// Executes the session to a stop condition and returns its metrics.
  RunResult run();

  /// Resumes a checkpointed run (DESIGN.md §15) on a freshly constructed
  /// Simulation with the *same* (task, factory, fleet, strategy, config,
  /// work_per_sample) the checkpoint was taken under: reinstalls the
  /// durable state, re-schedules the serialized pending events in their
  /// original sequence order, and drives to a stop condition. The combined
  /// run (leg before the checkpoint + this leg) is bitwise identical to the
  /// uninterrupted run. Throws seafl::Error on an incompatible checkpoint.
  RunResult resume(const ckpt::RunCheckpoint& checkpoint);

  /// Loads the newest checkpoint under `dir` and resumes from it.
  RunResult resume_from_dir(const std::string& dir);

  /// Serializes the complete durable run state at the current instant.
  /// Meaningful at round boundaries (where maybe_write_checkpoint calls
  /// it); exposed for tests.
  ckpt::RunCheckpoint capture_checkpoint();

  /// Attaches an observer for client-lifecycle events (assigned, epoch_done,
  /// notified, upload, upload_lost, aggregate, eval) on the virtual clock.
  /// Not owned; null (the default) disables tracing. Observation only — the
  /// run's RunResult is bitwise identical with or without a sink.
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }

  /// The strategy's display name (for tables).
  std::string strategy_name() const { return strategy_->name(); }

 private:
  struct InFlight {
    std::uint64_t base_round = 0;       ///< t_k
    /// Immutable global snapshot at assignment, shared by every session of
    /// the same round (and by that round's speculated executor jobs, which
    /// may outlive the session server-side).
    std::shared_ptr<const ModelVector> base_weights;
    std::vector<double> epoch_ends;     ///< virtual completion time per epoch
    std::uint64_t upload_event = 0;     ///< cancellable arrival event id
    std::uint64_t deadline_event = 0;   ///< assignment-deadline timer (0=none)
    std::size_t planned_epochs = 0;     ///< epochs currently scheduled
    std::size_t frozen_layers = 0;      ///< sub-model training prefix
    std::size_t attempts = 1;           ///< upload transmissions so far
    double crash_time = 0.0;            ///< device goes offline at this time
    bool notified = false;              ///< SEAFL^2 notification sent
    bool lost = false;                  ///< next transmission lost in transit
    bool crashed = false;               ///< session dead (device offline)
    // Checkpoint descriptors for the pending events above: closures cannot
    // be serialized, so schedule_transmission / start_training also record
    // what they scheduled (fire time, event kind, payload) for replay.
    double tx_time = 0.0;               ///< upload_event fire time
    ckpt::TxKind tx_kind = ckpt::TxKind::kArrival;
    std::size_t tx_epochs = 0;          ///< epochs an arrival would carry
    double deadline_time = 0.0;         ///< deadline_event fire time
  };

  /// Tracking records for fire-and-forget events (SEAFL^2 notifications and
  /// round deadlines) so a checkpoint can replay them. Keyed by the event
  /// queue id; entries whose event already fired are pruned lazily.
  struct PendingNotifyInfo {
    std::size_t client = 0;
    double time = 0.0;
  };
  struct PendingRoundDeadlineInfo {
    std::uint64_t armed_round = 0;
    double time = 0.0;
  };

  // --- event handlers -------------------------------------------------------
  /// Picks `count` distinct clients per RunConfig::selection. Deterministic
  /// in (seed, round).
  std::vector<std::size_t> select_cohort(std::size_t count) const;
  void start_training(std::size_t client);
  void on_arrival(std::size_t client, std::size_t epochs);
  void on_upload_lost(std::size_t client);
  void on_notification(std::size_t client);
  void on_crash(std::size_t client);
  void on_deadline(std::size_t client);
  void on_round_deadline(std::uint64_t armed_round);
  void arm_round_deadline();
  /// Abandons the client's session (cancelling pending events) and hands the
  /// slot to a fresh online client. `salt` separates the RNG streams of the
  /// loss-replacement and deadline-redispatch paths.
  void reassign_slot(std::size_t client, std::uint64_t salt);
  /// Draws an un-busy, currently-online replacement; npos when none found.
  std::size_t pick_replacement(std::size_t exclude, std::uint64_t salt) const;
  /// Schedules the (possibly crash-truncated) end of a transmission that is
  /// expected to arrive at `arrival` carrying `epochs` epochs of training.
  /// Returns the scheduled event id.
  std::uint64_t schedule_transmission(std::size_t client, InFlight& state,
                                      double arrival, std::size_t epochs);
  void maybe_aggregate();
  void evaluate_and_record();
  void check_stale_clients();
  // --- checkpoint/resume (DESIGN.md §15) ------------------------------------
  /// Runs the event loop to a stop condition and finalizes the RunResult.
  /// Shared tail of run() and resume().
  RunResult drive();
  /// End-of-aggregation hook: every RunConfig::checkpoint_every_rounds
  /// rounds, drains speculation, captures the run state and durably writes
  /// it under RunConfig::checkpoint_dir. Observation-only: the run's
  /// RunResult is bitwise identical with checkpointing on or off.
  void maybe_write_checkpoint();
  /// Installs a checkpoint's state on this freshly constructed simulation
  /// (core, clock, sessions, pending events, residuals, strategy state).
  void restore_state(const ckpt::RunCheckpoint& checkpoint);
  /// Re-launches speculation for every live in-flight session (eager mode
  /// only); used after a drain and on restore.
  void respeculate_in_flight();
  /// Drops tracking entries for notification / round-deadline events that
  /// already fired, keeping the bookkeeping proportional to live events.
  void prune_pending_events();
  /// Re-snapshots the global model for new assignments (once per
  /// aggregation).
  void refresh_global_snapshot();
  /// Counts an after-dispatch abandonment (both execution modes) and, when
  /// eager, detaches the client's speculated job.
  void abandon_speculation(std::size_t client);
  std::uint64_t staleness_of(std::uint64_t base_round) const {
    return core_.staleness_of(base_round);
  }
  std::uint64_t round() const { return core_.round(); }
  /// The event queue under the virtual transport. The simulation addresses
  /// it directly (run_until, tie-order guarantees) — that affordance is
  /// exactly what distinguishes it from the deployment server, which only
  /// sees the Transport surface.
  EventQueue& queue() { return transport_.queue(); }
  RunResult& result() { return core_.result(); }

  // --- wiring ---------------------------------------------------------------
  const FlTask* task_;
  const Fleet* fleet_;
  StrategyPtr strategy_;
  RunConfig config_;
  double work_per_sample_;

  ClientTrainer trainer_;
  Evaluator evaluator_;
  /// Non-null iff config_.eager_training (DESIGN.md §12).
  std::unique_ptr<TrainingExecutor> executor_;
  /// Virtual time + event delivery (net/transport.h). The simulation's
  /// "network" is this transport's timer queue.
  net::VirtualTransport transport_;
  ChurnModel churn_;  ///< per-run device availability oracle (sim/hazard.h)
  obs::TraceSink* trace_ = nullptr;

  // --- run state ------------------------------------------------------------
  /// Buffer, global model, round counter, aggregation decision — the
  /// transport-independent half, shared verbatim with fl::DeployServer.
  ServerCore core_;
  ModelVector initial_weights_;
  /// Copy of the global model frozen at the last aggregation; what InFlight
  /// and speculated jobs reference as their base.
  std::shared_ptr<const ModelVector> global_snapshot_;
  /// Ordered by client id so every in_flight_ walk (stale scans, checkpoint
  /// capture, re-speculation) is independent of insertion history — a
  /// restored run must iterate sessions exactly like the original.
  std::map<std::size_t, InFlight> in_flight_;
  /// Live fire-and-forget events, keyed by event id (see the Info structs).
  std::map<std::uint64_t, PendingNotifyInfo> pending_notifies_;
  std::map<std::uint64_t, PendingRoundDeadlineInfo> pending_round_deadlines_;
  bool done_ = false;
  std::uint64_t dropout_draws_ = 0;  ///< see start_training's loss draw

  // --- upload compression (DESIGN.md §14) -----------------------------------
  /// Client-side encoder; non-null iff config_.compression is enabled (the
  /// matching decoder lives in ServerCore).
  std::unique_ptr<compress::Codec> client_codec_;
  /// Per-client error-feedback residuals. Advanced only at a *delivered*
  /// upload's arrival event — lost-forever, crashed and re-dispatched
  /// sessions never encode, so their residuals carry untouched (and the
  /// lazy-training optimization of never training doomed sessions stands).
  compress::ResidualStore residuals_;
  /// Bytes of one upload on the virtual wire (data-independent per codec,
  /// so it is known at dispatch time and prices the transmission).
  std::size_t upload_payload_bytes_ = 0;
};

}  // namespace seafl
