#include "fl/server_core.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "tensor/workspace.h"

namespace seafl {

namespace {

obs::TraceEvent trace_event(obs::TraceEventKind kind, double time,
                            std::uint64_t round) {
  obs::TraceEvent e;
  e.kind = kind;
  e.time = time;
  e.round = round;
  return e;
}

}  // namespace

void validate_run_config(const RunConfig& c, std::size_t num_clients) {
  SEAFL_CHECK(c.concurrency >= 1 && c.concurrency <= num_clients,
              "concurrency " << c.concurrency << " out of range [1, "
                             << num_clients << "]");
  SEAFL_CHECK(c.buffer_size >= 1, "buffer size must be >= 1");
  SEAFL_CHECK(c.local_epochs >= 1, "need at least one local epoch");
  SEAFL_CHECK(!(c.wait_for_stale && c.drop_stale),
              "wait_for_stale and drop_stale are mutually exclusive");
  if (c.mode == FlMode::kSemiAsync) {
    SEAFL_CHECK(c.buffer_size <= c.concurrency,
                "buffer size " << c.buffer_size << " exceeds concurrency "
                               << c.concurrency);
  }
  SEAFL_CHECK(c.quantize_bits == 0 ||
                  (c.quantize_bits >= 2 && c.quantize_bits <= 16),
              "quantize_bits must be 0 (off) or in [2, 16], got "
                  << c.quantize_bits);
  // The codec knobs validate as a unit (bit widths, topk_fraction range,
  // conflicting combinations like coarse top-k without error feedback).
  compress::validate_compression(c.compression);
  SEAFL_CHECK(c.quantize_bits == 0 || !c.compression.enabled(),
              "quantize_bits (legacy lossy-float knob) and compression.codec "
              "are mutually exclusive: pick the codec's quantization, not "
              "both");
  SEAFL_CHECK(c.upload_loss_prob >= 0.0 && c.upload_loss_prob < 1.0,
              "upload_loss_prob must lie in [0, 1), got "
                  << c.upload_loss_prob);
  SEAFL_CHECK(c.eval_every >= 1, "eval_every must be >= 1");
  SEAFL_CHECK(c.sim_jobs == 0 || c.eager_training,
              "sim_jobs requires eager_training");
  if (c.checkpoint_every_rounds > 0) {
    SEAFL_CHECK(!c.checkpoint_dir.empty(),
                "checkpoint_dir must be set when checkpoint_every_rounds > 0");
  }
  SEAFL_CHECK(c.checkpoint_keep >= 1,
              "checkpoint_keep must retain at least one checkpoint");

  const FaultConfig& f = c.faults;
  SEAFL_CHECK(f.mean_uptime >= 0.0, "mean_uptime must be non-negative");
  if (f.churn_enabled()) {
    SEAFL_CHECK(f.mean_downtime > 0.0,
                "mean_downtime must be positive when churn is enabled");
  }
  SEAFL_CHECK(f.diurnal_period >= 0.0,
              "diurnal_period must be non-negative");
  if (f.diurnal_enabled()) {
    SEAFL_CHECK(
        f.diurnal_online_fraction > 0.0 && f.diurnal_online_fraction <= 1.0,
        "diurnal_online_fraction must be in (0, 1], got "
            << f.diurnal_online_fraction);
  }
  SEAFL_CHECK(f.deadline_factor == 0.0 || f.deadline_factor >= 1.0,
              "deadline_factor must be 0 (off) or >= 1 (a healthy client "
              "must beat its own deadline), got "
                  << f.deadline_factor);
  if (f.max_upload_retries > 0) {
    SEAFL_CHECK(f.retry_backoff > 0.0,
                "retry_backoff must be positive when retries are enabled");
    SEAFL_CHECK(f.retry_backoff_cap >= f.retry_backoff,
                "retry_backoff_cap " << f.retry_backoff_cap
                                     << " below retry_backoff "
                                     << f.retry_backoff);
  }
  SEAFL_CHECK(f.round_deadline >= 0.0,
              "round_deadline must be non-negative");
  if (f.round_deadline > 0.0) {
    SEAFL_CHECK(f.min_updates >= 1, "min_updates must be >= 1");
    const std::size_t cap = c.mode == FlMode::kSemiAsync ? c.buffer_size
                                                         : c.concurrency;
    SEAFL_CHECK(f.min_updates <= cap,
                "min_updates " << f.min_updates
                               << " exceeds the aggregation target " << cap);
  }
}

ModelVector initial_global_weights(const ModelFactory& factory,
                                   std::uint64_t seed) {
  auto scratch = factory();
  Rng init_rng(seed, RngPurpose::kInit);
  scratch->init(init_rng);
  ModelVector weights(scratch->num_parameters());
  scratch->copy_parameters_to(weights);
  return weights;
}

ServerCore::ServerCore(AggregationStrategy* strategy, const RunConfig& config)
    : strategy_(strategy), config_(&config) {
  SEAFL_CHECK(strategy_ != nullptr, "null aggregation strategy");
  if (config.compression.enabled())
    codec_ = compress::make_codec(config.compression);
}

void ServerCore::begin(ModelVector initial, std::size_t num_clients) {
  global_ = std::move(initial);
  round_ = 0;
  buffer_.clear();
  round_deadline_passed_ = false;
  staleness_sum_ = 0.0;
  result_ = RunResult{};
  result_.population = num_clients;
  // Dense per-client counters below the threshold (the historical layout);
  // sparse above it so memory tracks participants, not the population.
  if (num_clients <= config_->sparse_population_threshold)
    result_.participation.assign(num_clients, 0);
}

void ServerCore::restore(ModelVector global, std::uint64_t round,
                         std::vector<LocalUpdate> buffer, RunResult result,
                         double staleness_sum, bool round_deadline_passed) {
  global_ = std::move(global);
  round_ = round;
  buffer_ = std::move(buffer);
  result_ = std::move(result);
  staleness_sum_ = staleness_sum;
  round_deadline_passed_ = round_deadline_passed;
}

void ServerCore::add_update(LocalUpdate update) {
  buffer_.push_back(std::move(update));
}

void ServerCore::add_encoded_update(LocalUpdate update,
                                    const compress::CompressedUpdate& encoded,
                                    const ModelVector& base,
                                    obs::TraceSink* trace) {
  SEAFL_CHECK(codec_ != nullptr,
              "add_encoded_update without compression enabled");
  // Decode first: a malformed payload must throw before any accounting or
  // buffering mutates the run (deployment catches and drops the peer; the
  // by-value `update` is simply destroyed). The decode buffer is recycled
  // through the workspace free list — do_aggregate released last round's
  // update storage there, so steady-state rounds allocate nothing.
  Workspace::tls().ensure_floats(update.weights, base.size());
  codec_->decode_into(encoded, base, update.weights);

  const std::size_t wire = encoded.encoded_bytes();
  const std::size_t raw = compress::transfer_bytes(update.weights.size(), 0);
  count_upload_bytes(wire, raw);
  if (trace != nullptr) {
    obs::TraceEvent e = trace_event(obs::TraceEventKind::kCompressed,
                                    update.arrival_time, round_);
    e.client = update.client;
    e.base_round = update.base_round;
    e.updates = wire;
    e.value = static_cast<double>(raw) / static_cast<double>(wire);
    trace->record(e);
  }
  buffer_.push_back(std::move(update));
}

void ServerCore::count_upload_bytes(std::size_t wire_bytes,
                                    std::size_t raw_bytes) {
  result_.upload_wire_bytes += wire_bytes;
  result_.upload_raw_bytes += raw_bytes;
  // Registry::counter takes a std::string (one heap alloc per call for these
  // long names); the handles are stable, so look them up once per process.
  static obs::Counter& wire_counter =
      obs::Registry::global().counter("fl.compress.wire_bytes");
  static obs::Counter& raw_counter =
      obs::Registry::global().counter("fl.compress.raw_bytes");
  wire_counter.add(wire_bytes);
  raw_counter.add(raw_bytes);
}

AggregateOutcome ServerCore::try_aggregate(
    double now, const std::vector<std::uint64_t>& in_flight_base_rounds,
    obs::TraceSink* trace) {
  AggregateOutcome outcome;
  const RunConfig& config = *config_;
  const FaultConfig& f = config.faults;
  const bool degraded = round_deadline_passed_ && f.round_deadline > 0.0;

  if (config.mode == FlMode::kSync) {
    const std::size_t cohort = config.concurrency;
    const std::size_t required =
        degraded ? std::min(f.min_updates, cohort) : cohort;
    if (buffer_.size() < std::max<std::size_t>(required, 1)) return outcome;
    if (buffer_.size() < cohort) {
      ++result_.degraded_aggregations;
      if (trace != nullptr) {
        obs::TraceEvent e = trace_event(
            obs::TraceEventKind::kDegradedAggregate, now, round_);
        e.updates = buffer_.size();
        trace->record(e);
      }
    }
    do_aggregate(now, trace, outcome);
    return outcome;
  }

  if (config.drop_stale && config.staleness_limit != kNoStalenessLimit) {
    const auto before = buffer_.size();
    std::erase_if(buffer_, [&](const LocalUpdate& u) {
      return staleness_of(u.base_round) > config.staleness_limit;
    });
    result_.dropped_updates += before - buffer_.size();
  }

  const std::size_t required =
      degraded ? std::min(f.min_updates, config.buffer_size)
               : config.buffer_size;
  if (buffer_.size() < std::max<std::size_t>(required, 1)) return outcome;

  // Past the round deadline the server stops holding for stale clients —
  // degrading the staleness bound beats stalling on a dead device.
  bool stale_hold = false;
  if (config.wait_for_stale &&
      config.staleness_limit != kNoStalenessLimit) {
    for (const std::uint64_t base_round : in_flight_base_rounds) {
      if (staleness_of(base_round) >= config.staleness_limit) {
        stale_hold = true;
        break;
      }
    }
  }
  if (stale_hold && !degraded) {
    ++result_.stale_waits;
    outcome.stale_hold = true;  // SEAFL: hold; SEAFL^2: driver notifies
    return outcome;
  }

  // A degraded aggregation is one the deadline *forced*: the buffer target
  // was relaxed, or a staleness hold was overridden with a full buffer.
  if (buffer_.size() < config.buffer_size || (degraded && stale_hold)) {
    ++result_.degraded_aggregations;
    if (trace != nullptr) {
      obs::TraceEvent e = trace_event(obs::TraceEventKind::kDegradedAggregate,
                                      now, round_);
      e.updates = buffer_.size();
      trace->record(e);
    }
  }
  do_aggregate(now, trace, outcome);
  return outcome;
}

void ServerCore::do_aggregate(double now, obs::TraceSink* trace,
                              AggregateOutcome& outcome) {
  SEAFL_CHECK(!buffer_.empty(), "aggregate with empty buffer");
  const RunConfig& config = *config_;

  // Member scratch (capacity reused round over round). A non-screening
  // strategy never touches it, so last round's entries must be dropped here.
  ScreeningReport& screening = screening_scratch_;
  screening.entries.clear();
  AggregationContext ctx;
  ctx.round = round_;
  ctx.global = &global_;
  ctx.total_samples = 0;
  ctx.screening = &screening;
  RoundStat stat;
  stat.updates = buffer_.size();
  stat.time = now;
  for (const auto& u : buffer_) {
    ctx.total_samples += u.num_samples;
    const auto s = static_cast<double>(staleness_of(u.base_round));
    staleness_sum_ += s;
    stat.mean_staleness += s;
    if (u.epochs_completed < config.local_epochs) ++stat.partial;
    if (result_.participation.empty())
      ++result_.sparse_participation[u.client];
    else
      ++result_.participation[u.client];
  }
  stat.mean_staleness /= static_cast<double>(buffer_.size());
  result_.total_updates += buffer_.size();

  {
    SEAFL_PROF_SCOPE("fl.aggregate");
    strategy_->aggregate(ctx, buffer_, global_);
  }
  ++result_.aggregations;
  result_.server_aggregation_work +=
      static_cast<double>(buffer_.size()) *
      static_cast<double>(global_.size());
  // A screening strategy (core/screening.h) reports what it quarantined;
  // surface it in the journal and the run counters.
  for (const ScreeningReport::Entry& entry : screening.entries) {
    if (entry.clipped) ++result_.clipped_updates;
    if (!entry.rejected) continue;
    ++result_.screened_updates;
    if (trace != nullptr) {
      obs::TraceEvent e =
          trace_event(obs::TraceEventKind::kScreened, now, round_);
      e.client = entry.client;
      e.value = entry.cosine;
      trace->record(e);
    }
  }

  // Remember the reporters before clearing: they receive the new model.
  // Quarantined clients restart too — their *updates* were rejected, but
  // idling the device would silently shrink concurrency.
  reporters_scratch_.clear();
  for (const auto& u : buffer_) reporters_scratch_.push_back(u.client);
  outcome.reporters = reporters_scratch_;
  // Donate the consumed updates' weight storage to the free list before the
  // clear destroys them; add_encoded_update's decode draws from it next
  // round. buffer_ itself keeps its element capacity across clear().
  Workspace& ws = Workspace::tls();
  for (auto& u : buffer_) ws.release_floats(std::move(u.weights));
  buffer_.clear();

  ++round_;
  round_deadline_passed_ = false;
  stat.round = round_;
  result_.round_log.push_back(stat);
  if (trace != nullptr) {
    obs::TraceEvent e =
        trace_event(obs::TraceEventKind::kAggregate, now, round_);
    e.updates = stat.updates;
    e.value = stat.mean_staleness;
    trace->record(e);
  }
  outcome.aggregated = true;
}

}  // namespace seafl
