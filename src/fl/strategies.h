// Baseline aggregation strategies from the paper's evaluation (§VI.A):
//   FedAvg   — synchronous sample-count-weighted averaging (McMahan et al.)
//   FedBuff  — buffered semi-asynchronous averaging with uniform weights and
//              server mixing (Nguyen et al., AISTATS'22)
//   FedAsync — fully asynchronous polynomial-staleness mixing (Xie et al.)
#pragma once

#include "fl/strategy.h"

namespace seafl {

/// FedAvg: w_{t+1} = sum_k (n_k / n) w_k over the round's cohort.
/// Run with FlMode::kSync to reproduce the paper's synchronous baseline.
class FedAvgStrategy : public AggregationStrategy {
 public:
  void aggregate(const AggregationContext& ctx,
                 std::span<const LocalUpdate> buffer,
                 ModelVector& global_out) override;
  std::string name() const override { return "FedAvg"; }
};

/// FedBuff configuration.
struct FedBuffConfig {
  double vartheta = 0.8;  ///< server mixing rate (paper's ϑ)
};

/// FedBuff: uniform mean of the K buffered models, mixed into the global
/// model. The paper characterizes FedBuff as SEAFL with p = 1/K and no
/// staleness limit; this implementation matches that degenerate form, which
/// the FedBuff-degeneration property test relies on.
class FedBuffStrategy : public AggregationStrategy {
 public:
  explicit FedBuffStrategy(FedBuffConfig config = {});
  void aggregate(const AggregationContext& ctx,
                 std::span<const LocalUpdate> buffer,
                 ModelVector& global_out) override;
  std::string name() const override { return "FedBuff"; }

 private:
  FedBuffConfig config_;
};

/// FedAsync configuration.
struct FedAsyncConfig {
  double alpha = 0.6;       ///< base mixing weight for the arriving model
  double poly_a = 0.5;      ///< staleness exponent: s(tau) = (1+tau)^-a
  double min_alpha = 0.0;   ///< floor on the effective mixing weight
};

/// FedAsync: on each single-update "round",
///   alpha_t = alpha * (1 + staleness)^-poly_a
///   w_{t+1} = (1 - alpha_t) w_t + alpha_t w_k.
/// Use with buffer_size = 1 for the fully asynchronous mode.
class FedAsyncStrategy : public AggregationStrategy {
 public:
  explicit FedAsyncStrategy(FedAsyncConfig config = {});
  void aggregate(const AggregationContext& ctx,
                 std::span<const LocalUpdate> buffer,
                 ModelVector& global_out) override;
  std::string name() const override { return "FedAsync"; }

 private:
  FedAsyncConfig config_;
};

}  // namespace seafl
