// Real-transport deployment mode (DESIGN.md §13): the SEAFL server protocol
// running over TCP sockets on the wall clock, against client *processes*.
//
// DeployServer drives the same transport-independent ServerCore as the
// virtual-time Simulation — buffering, staleness policy, (degraded)
// aggregation, the round log — while this layer owns what a real deployment
// adds: registration, per-session dispatch over the wire, deadline timers
// fed by an observed round-trip estimate, crash detection via disconnects,
// and slot re-dispatch. DeployClient is the matching device loop: register,
// train what arrives, honor SEAFL^2 notify (upload after the current epoch)
// and cancel (discard the session) mid-training, upload with retries.
//
// Determinism: local training is still a pure function of (weights, client,
// round), so every individual update is reproducible. What wall time does
// NOT preserve is arrival *order* — buffer composition, staleness and
// therefore the aggregate sequence may differ run to run (DESIGN.md §13
// spells out the contract). The virtual path through ServerCore stays
// bitwise identical.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "ckpt/checkpoint.h"
#include "compress/codec.h"
#include "fl/client.h"
#include "fl/evaluator.h"
#include "fl/server_core.h"
#include "net/socket_transport.h"
#include "obs/trace.h"

namespace seafl {

struct DeployServerOptions {
  std::uint16_t port = 0;          ///< 0 = ephemeral; read back via port()
  std::size_t expected_clients = 0;  ///< registrations before round 1 starts
  /// Hard wall-clock cap on run(); the run finishes (gracefully, with
  /// whatever model it has) when it expires. 0 disables.
  double max_wall_seconds = 0.0;
  /// Seed for the session round-trip estimate that deadline timers multiply
  /// (FaultConfig::deadline_factor). 0 = no deadlines until the first
  /// completed session provides a measurement.
  double deadline_init_seconds = 0.0;
  std::string trace_jsonl_path;   ///< journal export on finish ("" = off)
  std::string trace_chrome_path;  ///< chrome trace export on finish ("" = off)
  /// Restart path (DESIGN.md §15): a checkpoint file — or a directory, in
  /// which case the newest checkpoint in it — written by a previous server
  /// process of the *same* run configuration. When the expected clients have
  /// re-registered, the run resumes from the stored round instead of round 0
  /// (orphaned sessions died with the old process; the restored round is
  /// dispatched to whoever is checked in). "" starts fresh. Periodic
  /// checkpoint *writes* are governed by RunConfig::checkpoint_every_rounds
  /// / checkpoint_dir / checkpoint_keep, shared with the simulation.
  std::string resume_from;
};

/// The server side of a deployment run. Single-threaded: construct (binds
/// the listen socket immediately), then run() until the stop condition.
class DeployServer final : public net::MessageHandler {
 public:
  DeployServer(const FlTask& task, const ModelFactory& factory,
               StrategyPtr strategy, RunConfig config,
               DeployServerOptions options);

  /// The bound listen port (valid right after construction).
  std::uint16_t port() const { return transport_->port(); }

  /// Serves the run to completion and returns its metrics (wall-clock
  /// timestamps in RunResult's time fields).
  RunResult run();

  /// The run's trace journal (dispatch→upload lifecycles on the wall clock).
  const obs::TraceJournal& journal() const { return journal_; }
  const net::SocketStats& socket_stats() const { return transport_->stats(); }

  // --- net::MessageHandler ---------------------------------------------------
  void on_message(net::PeerId peer, const net::Message& message) override;
  void on_peer_disconnected(net::PeerId peer) override;

 private:
  struct Session {
    std::size_t client = 0;
    std::uint64_t base_round = 0;
    double dispatch_time = 0.0;
    std::uint64_t deadline_timer = 0;  ///< transport timer id (0 = none)
    std::size_t planned_epochs = 0;
    /// Immutable global snapshot at dispatch; the delta base a compressed
    /// upload of this session decodes against (null when compression is off).
    std::shared_ptr<const ModelVector> base_weights;
    bool notified = false;
  };

  double now() const { return transport_->clock().now(); }
  void handle_hello(net::PeerId peer, const net::HelloMsg& msg);
  void handle_upload(net::PeerId peer, const net::UploadMsg& msg);
  void handle_compressed_upload(net::PeerId peer,
                                const net::CompressedUploadMsg& msg);
  void start_run();
  void dispatch_to(std::size_t client);
  /// Aggregation decision + everything that follows one (eval broadcast,
  /// stop conditions, re-dispatch, stale notifications).
  void after_buffer_change();
  void notify_stale_sessions();
  void arm_round_deadline();
  void on_session_deadline(std::uint64_t session_id);
  /// End-of-aggregation hook: durably writes the server's restartable state
  /// (core + strategy + rtt estimate + session-id counter; live sessions
  /// are deliberately excluded — they die with the process and the deadline
  /// machinery re-dispatches their rounds) every
  /// RunConfig::checkpoint_every_rounds rounds.
  void maybe_write_checkpoint();
  /// Tears down `session_id` and hands the slot to the first idle
  /// registered client (deterministic order), counting redispatch/abandon.
  void reassign(std::uint64_t session_id, bool send_cancel);
  void evaluate_and_record();
  void finish();
  void record(obs::TraceEventKind kind, std::size_t client,
              std::uint64_t base_round, std::size_t epochs, std::size_t updates,
              double value);

  const FlTask* task_;
  StrategyPtr strategy_;
  RunConfig config_;
  DeployServerOptions options_;
  Evaluator evaluator_;
  ServerCore core_;
  ModelVector initial_weights_;
  /// Copy of the global model frozen at the last aggregation; dispatched
  /// sessions share it as their compression base. Maintained only when a
  /// codec is configured (the plain path never needs it).
  std::shared_ptr<const ModelVector> global_snapshot_;
  std::unique_ptr<net::SocketTransport> transport_;
  obs::TraceJournal journal_;

  std::map<std::size_t, net::PeerId> client_peer_;  ///< registered clients
  std::map<net::PeerId, std::size_t> peer_client_;
  std::map<std::uint64_t, Session> sessions_;       ///< live, by session id
  std::map<std::size_t, std::uint64_t> client_session_;
  std::uint64_t next_session_ = 0;
  /// EWMA of observed dispatch→upload round trips (seconds); what
  /// deadline_factor multiplies. Seeded by options_.deadline_init_seconds.
  double rtt_estimate_ = 0.0;
  /// Loaded in the constructor from options_.resume_from; consumed by
  /// start_run (restore instead of begin) once the clients are back.
  std::optional<ckpt::RunCheckpoint> resume_ckpt_;
  bool started_ = false;
  bool done_ = false;
};

struct DeployClientOptions {
  std::size_t client_id = 0;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  double connect_timeout = 10.0;
  /// Fault-injection hook for tests: after receiving this many dispatches,
  /// the client abruptly closes its connection (mid-session, never
  /// uploading) and run() returns. 0 disables.
  std::size_t crash_after_dispatches = 0;
};

/// What a client process saw during its run (for logs and test assertions).
struct DeployClientStats {
  std::size_t dispatches = 0;
  std::size_t uploads = 0;
  std::size_t partial_uploads = 0;  ///< uploads cut short by a Notify
  std::size_t cancels = 0;          ///< sessions discarded on a Cancel
  std::size_t upload_retries = 0;   ///< reconnect-and-resend attempts used
  std::uint64_t last_eval_round = 0;
  double last_eval_accuracy = 0.0;
  bool shutdown_received = false;
  bool crashed = false;  ///< the crash_after_dispatches hook fired
};

/// The device side: connects, registers, trains dispatched sessions and
/// uploads, reacting to Notify/Cancel between epochs. Single-threaded;
/// run() blocks until the server's Shutdown (or a terminal failure).
class DeployClient final : public net::MessageHandler {
 public:
  DeployClient(const FlTask& task, const ModelFactory& factory,
               RunConfig config, DeployClientOptions options);

  DeployClientStats run();

  // --- net::MessageHandler ---------------------------------------------------
  void on_message(net::PeerId peer, const net::Message& message) override;
  void on_peer_disconnected(net::PeerId peer) override;

 private:
  friend class SessionObserver;

  bool connect_and_register();
  /// Replaces the dead connection: backoff + fresh connect_and_register,
  /// up to faults.max_upload_retries attempts. Only callable from run()'s
  /// top level — it destroys the current transport.
  bool reconnect_with_backoff();
  void train_session(const net::DispatchMsg& dispatch);
  /// Sends the upload; on a dead connection, reconnects with backoff and
  /// re-sends (attempt increments per try) up to faults.max_upload_retries.
  /// Works for UploadMsg and CompressedUploadMsg alike — a retry re-sends
  /// the *same* already-encoded bytes, so error feedback never
  /// double-accumulates across attempts.
  template <typename UploadLike>
  void upload_with_retries(UploadLike upload);

  const FlTask* task_;
  RunConfig config_;
  DeployClientOptions options_;
  ClientTrainer trainer_;
  std::unique_ptr<net::SocketTransport> transport_;
  net::PeerId server_ = 0;

  /// Upload encoder; non-null iff config_.compression is enabled. The
  /// error-feedback residual advances exactly once per trained session
  /// (before the first transmission attempt), mirroring the simulation's
  /// advance-on-delivery rule (DESIGN.md §14).
  std::unique_ptr<compress::Codec> codec_;
  ModelVector residual_;

  std::deque<net::DispatchMsg> pending_;  ///< dispatches awaiting training
  /// Session the trainer is currently inside (0 = none); Notify/Cancel for
  /// it flip the flags below, which the epoch-boundary observer reads.
  std::uint64_t active_session_ = 0;
  bool active_notified_ = false;
  bool active_canceled_ = false;
  bool done_ = false;
  /// The server's connection died outside an upload. Set by the disconnect
  /// callback (which must not touch transport_); run() reconnects or quits.
  bool server_lost_ = false;
  DeployClientStats stats_;
};

}  // namespace seafl
