#include "fl/deploy.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <thread>

#include "ckpt/store.h"
#include "common/error.h"
#include "common/log.h"

namespace seafl {

namespace {

obs::TraceEvent make_event(obs::TraceEventKind kind, double time,
                           std::uint64_t round) {
  obs::TraceEvent e;
  e.kind = kind;
  e.time = time;
  e.round = round;
  return e;
}

}  // namespace

// --- DeployServer -----------------------------------------------------------

DeployServer::DeployServer(const FlTask& task, const ModelFactory& factory,
                           StrategyPtr strategy, RunConfig config,
                           DeployServerOptions options)
    : task_(&task),
      strategy_(std::move(strategy)),
      config_(config),
      options_(std::move(options)),
      evaluator_(task, factory, /*batch_size=*/64, config.eval_subset,
                 config.seed),
      core_(strategy_.get(), config_) {
  validate_run_config(config_, task.num_clients());
  SEAFL_CHECK(options_.expected_clients >= 1 &&
                  options_.expected_clients <= task.num_clients(),
              "expected_clients " << options_.expected_clients
                                  << " out of range [1, "
                                  << task.num_clients() << "]");
  initial_weights_ = initial_global_weights(factory, config_.seed);
  if (!options_.resume_from.empty()) {
    std::string path = options_.resume_from;
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      const std::optional<std::string> latest = ckpt::latest_checkpoint(path);
      SEAFL_CHECK(latest.has_value(), "no checkpoint found under " << path);
      path = *latest;
    }
    ckpt::RunCheckpoint c;
    const ckpt::DecodeStatus status = ckpt::load_checkpoint_file(path, c);
    SEAFL_CHECK(status == ckpt::DecodeStatus::kOk,
                "cannot load checkpoint " << path << ": "
                                          << ckpt::status_name(status));
    SEAFL_CHECK(c.origin == 1,
                "checkpoint " << path
                              << " was taken by a simulation, not a server");
    SEAFL_CHECK(c.seed == config_.seed &&
                    c.model_dim == initial_weights_.size() &&
                    c.num_clients == task.num_clients(),
                "checkpoint " << path
                              << " does not match this run's configuration");
    resume_ckpt_ = std::move(c);
  }
  transport_ = net::SocketTransport::listen(options_.port);
  transport_->set_handler(this);
}

void DeployServer::record(obs::TraceEventKind kind, std::size_t client,
                          std::uint64_t base_round, std::size_t epochs,
                          std::size_t updates, double value) {
  obs::TraceEvent e = make_event(kind, now(), core_.round());
  e.client = client;
  e.base_round = base_round;
  e.epochs = epochs;
  e.updates = updates;
  e.value = value;
  journal_.record(e);
}

RunResult DeployServer::run() {
  if (options_.max_wall_seconds > 0.0) {
    transport_->schedule_after(options_.max_wall_seconds, [this] {
      if (done_) return;
      SEAFL_INFO("deploy server: wall-clock limit reached, finishing");
      finish();
    });
  }
  while (transport_->run_one()) {
  }

  RunResult& res = core_.result();
  res.rounds = core_.round();
  res.final_time = now();
  res.final_weights = core_.global();
  if (res.total_updates > 0)
    res.mean_staleness =
        core_.staleness_sum() / static_cast<double>(res.total_updates);
  if (!options_.trace_jsonl_path.empty())
    journal_.write_jsonl(options_.trace_jsonl_path);
  if (!options_.trace_chrome_path.empty())
    journal_.write_chrome_trace(options_.trace_chrome_path, "seafl deploy");
  return res;
}

void DeployServer::on_message(net::PeerId peer, const net::Message& message) {
  if (done_) return;
  if (message.is<net::HelloMsg>()) {
    handle_hello(peer, message.as<net::HelloMsg>());
  } else if (message.is<net::UploadMsg>()) {
    handle_upload(peer, message.as<net::UploadMsg>());
  } else if (message.is<net::CompressedUploadMsg>()) {
    handle_compressed_upload(peer, message.as<net::CompressedUploadMsg>());
  }
  // Anything else from a client is protocol noise; tolerated silently.
}

void DeployServer::handle_hello(net::PeerId peer, const net::HelloMsg& msg) {
  if (msg.client >= task_->num_clients() ||
      msg.model_params != initial_weights_.size() ||
      msg.seed != config_.seed) {
    SEAFL_INFO("deploy server: rejecting hello (client " << msg.client
              << ", params " << msg.model_params << ", seed " << msg.seed
              << ")");
    transport_->close_peer(peer);
    return;
  }
  const auto existing = client_peer_.find(msg.client);
  if (existing != client_peer_.end()) {
    if (transport_->connected(existing->second)) {
      // Same id from a second live connection: an impostor or a bug.
      transport_->close_peer(peer);
      return;
    }
    peer_client_.erase(existing->second);  // stale mapping: re-registration
  }
  client_peer_[msg.client] = peer;
  peer_client_[peer] = msg.client;

  net::WelcomeMsg welcome;
  welcome.client = msg.client;
  welcome.round = core_.round();
  welcome.clients_expected = options_.expected_clients;
  transport_->send(peer, net::Message{welcome});

  if (!started_ && client_peer_.size() >= options_.expected_clients)
    start_run();
}

void DeployServer::start_run() {
  started_ = true;
  if (resume_ckpt_.has_value()) {
    // Crash recovery: reinstall the checkpointed round instead of round 0.
    // The old process's live sessions are orphans — their clients already
    // saw the EOF and re-registered — so the restored round is simply
    // dispatched afresh. next_session_ continues from the checkpoint, so a
    // straggler upload for a pre-crash session id can never alias a new one.
    const ckpt::RunCheckpoint& c = *resume_ckpt_;
    core_.restore(c.global, c.round, c.buffer, c.result, c.staleness_sum,
                  c.round_deadline_passed);
    SEAFL_CHECK(
        strategy_->restore_state(
            reinterpret_cast<const unsigned char*>(c.strategy_state.data()),
            c.strategy_state.size()),
        "checkpoint strategy state does not fit strategy "
            << strategy_->name());
    rtt_estimate_ = c.rtt_estimate;
    next_session_ = c.next_session;
    resume_ckpt_.reset();
    SEAFL_INFO("deploy server: resumed from checkpoint at round "
               << core_.round());
  } else {
    core_.begin(initial_weights_, task_->num_clients());
  }
  if (core_.codec() != nullptr)
    global_snapshot_ = std::make_shared<const ModelVector>(core_.global());
  if (core_.round() == 0) {
    evaluate_and_record();  // baseline at t ~ 0 (fresh starts only)
    if (done_) return;      // a trivially-met target stops before round 1
  }
  arm_round_deadline();
  const std::size_t cohort =
      std::min(config_.concurrency, client_peer_.size());
  std::size_t dispatched = 0;
  for (const auto& [client, peer] : client_peer_) {
    if (dispatched == cohort) break;
    dispatch_to(client);
    ++dispatched;
  }
}

void DeployServer::dispatch_to(std::size_t client) {
  const auto peer_it = client_peer_.find(client);
  if (peer_it == client_peer_.end() ||
      !transport_->connected(peer_it->second))
    return;
  if (client_session_.find(client) != client_session_.end()) return;

  Session session;
  session.client = client;
  session.base_round = core_.round();
  session.dispatch_time = now();
  session.planned_epochs = config_.local_epochs;
  session.base_weights = global_snapshot_;  // null when compression is off
  const std::uint64_t id = ++next_session_;

  net::DispatchMsg msg;
  msg.session = id;
  msg.base_round = session.base_round;
  msg.epochs = static_cast<std::uint32_t>(session.planned_epochs);
  msg.frozen_layers = 0;
  msg.weights = core_.global();
  transport_->send(peer_it->second, net::Message{std::move(msg)});

  // Assignment deadline: a multiple of the *observed* session round trip
  // (the virtual mode multiplies the fleet's expected duration; a real
  // server has to measure instead).
  if (config_.faults.deadline_factor > 0.0) {
    const double estimate = rtt_estimate_ > 0.0
                                ? rtt_estimate_
                                : options_.deadline_init_seconds;
    if (estimate > 0.0) {
      session.deadline_timer = transport_->schedule_after(
          config_.faults.deadline_factor * estimate,
          [this, id] { on_session_deadline(id); });
    }
  }
  record(obs::TraceEventKind::kAssigned, client, session.base_round,
         session.planned_epochs, 0, 0.0);
  sessions_[id] = session;
  client_session_[client] = id;
  ++core_.result().model_downloads;
}

void DeployServer::handle_upload(net::PeerId peer, const net::UploadMsg& msg) {
  const auto client_it = peer_client_.find(peer);
  if (client_it == peer_client_.end()) {
    transport_->close_peer(peer);  // uploads require registration
    return;
  }
  const auto session_it = sessions_.find(msg.session);
  if (session_it == sessions_.end()) return;  // expired/canceled; too late
  const Session session = session_it->second;
  if (session.client != client_it->second) return;  // not your session
  if (msg.weights.size() != initial_weights_.size()) {
    transport_->close_peer(peer);
    return;
  }
  if (session.deadline_timer != 0) transport_->cancel(session.deadline_timer);
  sessions_.erase(session_it);
  client_session_.erase(session.client);

  const double round_trip = now() - session.dispatch_time;
  rtt_estimate_ = rtt_estimate_ > 0.0
                      ? 0.7 * rtt_estimate_ + 0.3 * round_trip
                      : round_trip;
  if (msg.attempt > 1) {
    core_.result().upload_retries += msg.attempt - 1;
    record(obs::TraceEventKind::kRetry, session.client, session.base_round,
           msg.attempt - 1, 0, 0.0);
  }

  LocalUpdate update;
  update.client = session.client;
  update.base_round = session.base_round;
  update.weights = msg.weights;
  update.num_samples = task_->client_samples(session.client);
  update.epochs_completed = msg.epochs_completed;
  update.arrival_time = now();
  update.train_loss = msg.train_loss;
  if (update.epochs_completed < config_.local_epochs)
    ++core_.result().partial_updates;
  ++core_.result().model_uploads;
  record(obs::TraceEventKind::kUpload, session.client, session.base_round,
         update.epochs_completed, 0,
         static_cast<double>(core_.staleness_of(session.base_round)));
  core_.count_upload_bytes(
      compress::transfer_bytes(update.weights.size(), 0),
      compress::transfer_bytes(update.weights.size(), 0));
  core_.add_update(std::move(update));

  after_buffer_change();
}

void DeployServer::handle_compressed_upload(
    net::PeerId peer, const net::CompressedUploadMsg& msg) {
  const auto client_it = peer_client_.find(peer);
  if (client_it == peer_client_.end()) {
    transport_->close_peer(peer);  // uploads require registration
    return;
  }
  const auto session_it = sessions_.find(msg.session);
  if (session_it == sessions_.end()) return;  // expired/canceled; too late
  const Session session = session_it->second;
  if (session.client != client_it->second) return;  // not your session
  if (core_.codec() == nullptr || session.base_weights == nullptr ||
      msg.update.dim != initial_weights_.size()) {
    // Compressed bytes against a run that did not configure a codec (or a
    // wrong-sized model): a config mismatch, handled like a bad hello.
    transport_->close_peer(peer);
    return;
  }

  LocalUpdate update;
  update.client = session.client;
  update.base_round = session.base_round;
  update.num_samples = task_->client_samples(session.client);
  update.epochs_completed = msg.epochs_completed;
  update.arrival_time = now();
  update.train_loss = msg.train_loss;
  try {
    core_.add_encoded_update(std::move(update), msg.update,
                             *session.base_weights, &journal_);
  } catch (const Error&) {
    // The container parsed on the wire but its contents are hostile (e.g.
    // a top-k index out of range). Drop the peer; the session stays live,
    // so the disconnect path reclaims the slot exactly like a crash.
    transport_->close_peer(peer);
    return;
  }

  if (session.deadline_timer != 0) transport_->cancel(session.deadline_timer);
  sessions_.erase(msg.session);
  client_session_.erase(session.client);

  const double round_trip = now() - session.dispatch_time;
  rtt_estimate_ = rtt_estimate_ > 0.0
                      ? 0.7 * rtt_estimate_ + 0.3 * round_trip
                      : round_trip;
  if (msg.attempt > 1) {
    core_.result().upload_retries += msg.attempt - 1;
    record(obs::TraceEventKind::kRetry, session.client, session.base_round,
           msg.attempt - 1, 0, 0.0);
  }
  if (msg.epochs_completed < config_.local_epochs)
    ++core_.result().partial_updates;
  ++core_.result().model_uploads;
  record(obs::TraceEventKind::kUpload, session.client, session.base_round,
         msg.epochs_completed, 0,
         static_cast<double>(core_.staleness_of(session.base_round)));

  after_buffer_change();
}

void DeployServer::after_buffer_change() {
  if (done_) return;
  std::vector<std::uint64_t> in_flight_rounds;
  in_flight_rounds.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_)
    in_flight_rounds.push_back(session.base_round);

  const AggregateOutcome outcome =
      core_.try_aggregate(now(), in_flight_rounds, &journal_);
  if (outcome.stale_hold) {
    notify_stale_sessions();
    return;
  }
  if (!outcome.aggregated) return;

  if (core_.codec() != nullptr)
    global_snapshot_ = std::make_shared<const ModelVector>(core_.global());
  evaluate_and_record();
  if (done_) {
    finish();
    return;
  }
  if (core_.round() >= config_.max_rounds) {
    finish();
    return;
  }
  arm_round_deadline();
  for (const std::size_t reporter : outcome.reporters) {
    const auto peer_it = client_peer_.find(reporter);
    if (peer_it == client_peer_.end() ||
        !transport_->connected(peer_it->second)) {
      ++core_.result().abandoned_slots;  // reporter left between rounds
      continue;
    }
    dispatch_to(reporter);
  }
  notify_stale_sessions();

  // Checkpoint AFTER dispatch, mirroring the simulation's hook placement.
  maybe_write_checkpoint();
  // Crash drill (chaos tests / kill-and-resume smoke): die N rounds in
  // WITHOUT the shutdown handshake — clients see a bare EOF and enter their
  // reconnect loop, exactly as after a real SIGKILL.
  if (config_.halt_after_rounds > 0 &&
      core_.round() >= config_.halt_after_rounds) {
    SEAFL_INFO("deploy server: halt_after_rounds reached, dying abruptly");
    done_ = true;
    transport_->stop();
  }
}

void DeployServer::maybe_write_checkpoint() {
  const std::uint64_t every = config_.checkpoint_every_rounds;
  if (every == 0 || done_ || core_.round() == 0 ||
      core_.round() % every != 0)
    return;
  ckpt::RunCheckpoint c;
  c.seed = config_.seed;
  c.model_dim = initial_weights_.size();
  c.num_clients = task_->num_clients();
  c.origin = 1;
  c.now = now();
  c.round = core_.round();
  c.staleness_sum = core_.staleness_sum();
  c.round_deadline_passed = core_.round_deadline_passed();
  c.global = core_.global();
  c.result = core_.result();
  c.buffer = core_.buffer();
  strategy_->save_state(c.strategy_state);
  c.rtt_estimate = rtt_estimate_;
  c.next_session = next_session_;
  ckpt::write_retained(config_.checkpoint_dir, c, config_.checkpoint_keep);
}

void DeployServer::notify_stale_sessions() {
  if (config_.staleness_limit == kNoStalenessLimit) return;
  if (!config_.partial_training) return;
  for (auto& [id, session] : sessions_) {
    if (session.notified) continue;
    if (core_.staleness_of(session.base_round) < config_.staleness_limit)
      continue;
    session.notified = true;
    ++core_.result().notifications;
    record(obs::TraceEventKind::kNotified, session.client,
           session.base_round, 0, 0, 0.0);
    const auto peer_it = client_peer_.find(session.client);
    if (peer_it != client_peer_.end()) {
      net::NotifyMsg msg;
      msg.session = id;
      transport_->send(peer_it->second, net::Message{msg});
    }
  }
}

void DeployServer::arm_round_deadline() {
  if (config_.faults.round_deadline <= 0.0 || done_) return;
  const std::uint64_t armed = core_.round();
  transport_->schedule_after(config_.faults.round_deadline, [this, armed] {
    if (done_ || core_.round() != armed) return;  // round closed in time
    core_.note_round_deadline();
    after_buffer_change();
  });
}

void DeployServer::on_session_deadline(std::uint64_t session_id) {
  if (done_) return;
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;  // upload won the race
  ++core_.result().deadline_expirations;
  record(obs::TraceEventKind::kDeadlineExpired, it->second.client,
         it->second.base_round, 0, 0, 0.0);
  reassign(session_id, /*send_cancel=*/true);
}

void DeployServer::reassign(std::uint64_t session_id, bool send_cancel) {
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  const Session session = it->second;
  if (session.deadline_timer != 0) transport_->cancel(session.deadline_timer);
  if (send_cancel) {
    const auto peer_it = client_peer_.find(session.client);
    if (peer_it != client_peer_.end() &&
        transport_->connected(peer_it->second)) {
      net::CancelMsg msg;
      msg.session = session_id;
      transport_->send(peer_it->second, net::Message{msg});
    }
  }
  sessions_.erase(it);
  client_session_.erase(session.client);

  // Deterministic replacement policy: the first registered, connected,
  // currently idle client. (The virtual mode draws from an RNG to model a
  // population; a deployment picks from who is actually checked in.)
  for (const auto& [client, peer] : client_peer_) {
    if (!transport_->connected(peer)) continue;
    if (client_session_.find(client) != client_session_.end()) continue;
    ++core_.result().redispatches;
    record(obs::TraceEventKind::kRedispatch, client, 0, 0, 0, 0.0);
    dispatch_to(client);
    return;
  }
  ++core_.result().abandoned_slots;
}

void DeployServer::on_peer_disconnected(net::PeerId peer) {
  const auto client_it = peer_client_.find(peer);
  if (client_it == peer_client_.end()) return;  // never registered
  const std::size_t client = client_it->second;
  peer_client_.erase(client_it);
  client_peer_.erase(client);
  if (done_) return;

  const auto session_it = client_session_.find(client);
  if (session_it != client_session_.end()) {
    // A live session's device vanished: that is a crash as far as the
    // protocol is concerned. Reclaim the slot immediately — the transport
    // told us, no need to wait for the deadline timer.
    ++core_.result().client_crashes;
    record(obs::TraceEventKind::kCrash, client,
           sessions_.at(session_it->second).base_round, 0, 0, 0.0);
    reassign(session_it->second, /*send_cancel=*/false);
  }
  if (started_ && client_peer_.empty()) {
    SEAFL_INFO("deploy server: all clients disconnected, finishing");
    finish();
  }
}

void DeployServer::evaluate_and_record() {
  if (core_.round() % config_.eval_every != 0 && !done_) return;
  const EvalResult eval = evaluator_.evaluate(core_.global());
  AccuracyPoint point;
  point.time = now();
  point.round = core_.round();
  point.accuracy = eval.accuracy;
  point.loss = eval.loss;
  RunResult& res = core_.result();
  res.curve.push_back(point);
  res.final_accuracy = eval.accuracy;
  record(obs::TraceEventKind::kEval, obs::kServerTrack, 0, 0, 0,
         eval.accuracy);

  net::EvalMsg broadcast;
  broadcast.round = core_.round();
  broadcast.accuracy = eval.accuracy;
  broadcast.loss = eval.loss;
  for (const auto& [client, peer] : client_peer_)
    transport_->send(peer, net::Message{broadcast});

  if (res.time_to_target < 0.0 && eval.accuracy >= config_.target_accuracy) {
    res.time_to_target = now();
    if (config_.stop_at_target) done_ = true;
  }
}

void DeployServer::finish() {
  done_ = true;
  net::ShutdownMsg msg;
  msg.rounds = core_.round();
  msg.final_accuracy = core_.result().final_accuracy;
  for (const auto& [client, peer] : client_peer_)
    transport_->send(peer, net::Message{msg});
  transport_->flush(/*timeout_seconds=*/2.0);
  transport_->stop();
}

// --- DeployClient -----------------------------------------------------------

/// Epoch-boundary hook of a deployed training session: pumps the socket so
/// Notify/Cancel frames sent mid-session are seen, then shrinks the epoch
/// budget accordingly (TrainObserver's contract — returning `epochs_done`
/// ends the session after the epoch that just finished, which is exactly
/// SEAFL^2's "upload after your current epoch").
class SessionObserver final : public TrainObserver {
 public:
  SessionObserver(DeployClient* client, std::size_t planned)
      : client_(client), planned_(planned) {}

  std::size_t on_epoch_end(std::size_t epochs_done, double /*mean_loss*/,
                           const Sequential& /*model*/) override {
    client_->transport_->poll_io(/*timeout_seconds=*/0.0);
    if (client_->done_) return epochs_done;
    if (client_->active_canceled_) return epochs_done;
    if (client_->active_notified_) return epochs_done;
    return planned_;
  }

 private:
  DeployClient* client_;
  std::size_t planned_;
};

DeployClient::DeployClient(const FlTask& task, const ModelFactory& factory,
                           RunConfig config, DeployClientOptions options)
    : task_(&task),
      config_(config),
      options_(std::move(options)),
      trainer_(task, factory, config) {
  SEAFL_CHECK(options_.client_id < task.num_clients(),
              "client id " << options_.client_id << " out of range [0, "
                           << task.num_clients() << ")");
  SEAFL_CHECK(options_.port != 0, "client needs a server port");
  compress::validate_compression(config_.compression);
  if (config_.compression.enabled())
    codec_ = compress::make_codec(config_.compression);
}

bool DeployClient::connect_and_register() {
  transport_ = net::SocketTransport::connect(options_.host, options_.port,
                                             options_.connect_timeout);
  transport_->set_handler(this);
  server_ = transport_->peers().front();
  net::HelloMsg hello;
  hello.client = options_.client_id;
  hello.model_params = trainer_.num_params();
  hello.seed = config_.seed;
  return transport_->send(server_, net::Message{hello});
}

DeployClientStats DeployClient::run() {
  connect_and_register();
  for (;;) {
    while (!done_ && transport_->run_one()) {
      while (!done_ && !pending_.empty()) {
        net::DispatchMsg dispatch = std::move(pending_.front());
        pending_.pop_front();
        train_session(dispatch);
      }
    }
    if (done_ || !server_lost_) break;
    server_lost_ = false;
    if (!reconnect_with_backoff()) break;  // server gone for good
  }
  return stats_;
}

void DeployClient::on_peer_disconnected(net::PeerId peer) {
  if (peer != server_ || done_) return;
  // Dispatches from the dead connection are void: the server counts their
  // sessions as crashed the moment it sees our EOF. Training them would
  // produce uploads it must reject.
  pending_.clear();
  server_lost_ = true;
  transport_->stop();  // unwind to run(), which owns reconnection
}

bool DeployClient::reconnect_with_backoff() {
  const FaultConfig& f = config_.faults;
  for (std::size_t attempt = 1; attempt <= f.max_upload_retries; ++attempt) {
    const double backoff =
        std::min(f.retry_backoff_cap,
                 f.retry_backoff *
                     std::pow(2.0, static_cast<double>(attempt - 1)));
    std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    try {
      if (connect_and_register()) return true;
    } catch (const Error&) {
      // Unreachable this attempt; back off further.
    }
  }
  return false;
}

void DeployClient::on_message(net::PeerId /*peer*/,
                              const net::Message& message) {
  if (message.is<net::DispatchMsg>()) {
    ++stats_.dispatches;
    if (options_.crash_after_dispatches > 0 &&
        stats_.dispatches >= options_.crash_after_dispatches) {
      // Fault-injection hook: the device dies mid-session. An abrupt local
      // close — the server finds out through EOF, exactly like a real crash.
      stats_.crashed = true;
      done_ = true;
      pending_.clear();
      transport_->close_peer(server_);
      transport_->stop();
      return;
    }
    pending_.push_back(message.as<net::DispatchMsg>());
  } else if (message.is<net::NotifyMsg>()) {
    const std::uint64_t session = message.as<net::NotifyMsg>().session;
    // For the active session the flag is read between epochs; for a queued
    // one it applies the moment training starts (first epoch, then upload).
    if (session == active_session_) active_notified_ = true;
    for (auto& pending : pending_)
      if (pending.session == session) active_notified_ = true;
  } else if (message.is<net::CancelMsg>()) {
    const std::uint64_t session = message.as<net::CancelMsg>().session;
    if (session == active_session_) active_canceled_ = true;
    const auto before = pending_.size();
    std::erase_if(pending_, [session](const net::DispatchMsg& d) {
      return d.session == session;
    });
    stats_.cancels += before - pending_.size();
  } else if (message.is<net::EvalMsg>()) {
    const auto& eval = message.as<net::EvalMsg>();
    stats_.last_eval_round = eval.round;
    stats_.last_eval_accuracy = eval.accuracy;
  } else if (message.is<net::ShutdownMsg>()) {
    stats_.shutdown_received = true;
    done_ = true;
    transport_->stop();
  }
}

void DeployClient::train_session(const net::DispatchMsg& dispatch) {
  active_session_ = dispatch.session;
  active_notified_ = false;
  active_canceled_ = false;
  // Messages may have raced ahead of training; a Notify/Cancel that arrived
  // while this dispatch sat in the queue was folded into the flags above.
  SessionObserver observer(this, dispatch.epochs);
  const ClientTrainResult& trained = trainer_.train(
      options_.client_id, dispatch.weights, dispatch.epochs,
      dispatch.base_round, dispatch.frozen_layers, &observer);
  active_session_ = 0;
  if (done_) return;  // shutdown/crash mid-session: the upload has no taker
  if (active_canceled_) {
    ++stats_.cancels;  // trained for nothing; the server moved on
    return;
  }

  if (trained.epochs < dispatch.epochs) ++stats_.partial_uploads;

  if (codec_ != nullptr) {
    net::CompressedUploadMsg upload;
    upload.session = dispatch.session;
    upload.client = options_.client_id;
    upload.base_round = dispatch.base_round;
    upload.num_samples = trainer_.client_samples(options_.client_id);
    upload.epochs_completed = static_cast<std::uint32_t>(trained.epochs);
    upload.train_loss = trained.mean_loss;
    // Encode exactly once per trained session — every retry re-sends these
    // same bytes, so the residual advances once whatever the network does.
    ModelVector* residual =
        config_.compression.error_feedback ? &residual_ : nullptr;
    upload.update =
        codec_->encode(trained.weights, dispatch.weights, residual,
                       options_.client_id, dispatch.base_round, config_.seed);
    upload_with_retries(std::move(upload));
    return;
  }

  net::UploadMsg upload;
  upload.session = dispatch.session;
  upload.client = options_.client_id;
  upload.base_round = dispatch.base_round;
  upload.num_samples = trainer_.client_samples(options_.client_id);
  upload.epochs_completed = static_cast<std::uint32_t>(trained.epochs);
  upload.train_loss = trained.mean_loss;
  upload.weights = trained.weights;  // copy: the trainer's buffer is reused
  upload_with_retries(std::move(upload));
}

template <typename UploadLike>
void DeployClient::upload_with_retries(UploadLike upload) {
  const FaultConfig& f = config_.faults;
  const std::size_t max_attempts = 1 + f.max_upload_retries;
  for (std::size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    upload.attempt = static_cast<std::uint32_t>(attempt);
    if (transport_->connected(server_) &&
        transport_->send(server_, net::Message{upload}) &&
        transport_->flush(/*timeout_seconds=*/10.0)) {
      ++stats_.uploads;
      return;
    }
    if (attempt == max_attempts) return;  // out of retries: update is lost
    ++stats_.upload_retries;
    const double backoff =
        std::min(f.retry_backoff_cap,
                 f.retry_backoff *
                     std::pow(2.0, static_cast<double>(attempt - 1)));
    std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    try {
      connect_and_register();  // fresh connection, fresh hello
    } catch (const Error&) {
      // Server unreachable; the loop either retries or gives up.
    }
  }
}

}  // namespace seafl
