// Client-side local training: E epochs of mini-batch SGD from a given global
// model, exactly as ClientUpdate in Algorithms 1 and 2 of the paper.
#pragma once

#include "data/loader.h"
#include "data/registry.h"
#include "fl/types.h"
#include "nn/loss.h"

namespace seafl {

/// Result of one local training session.
struct ClientTrainResult {
  ModelVector weights;        ///< trained local model
  double mean_loss = 0.0;     ///< mean training loss of the final epoch
  std::size_t epochs = 0;     ///< epochs actually executed
};

/// Observer of epoch boundaries within one training session (the eager
/// executor's checkpoint/cut hook, DESIGN.md §12). Called after every
/// completed epoch with the live model; the return value is the session's
/// new total epoch budget. The budget can only shrink — values above the
/// remaining plan are clamped — and returning `epochs_done` stops the
/// session right there with the epochs it has.
class TrainObserver {
 public:
  virtual ~TrainObserver() = default;
  virtual std::size_t on_epoch_end(std::size_t epochs_done,
                                   double epoch_mean_loss,
                                   const Sequential& model) = 0;
};

/// Executes local training for any client of a task. One instance owns a
/// single reusable model plus result/scratch buffers, so repeated calls do
/// not allocate at all once every buffer has reached its steady-state size.
///
/// Determinism: the mini-batch schedule of (client, round) depends only on
/// the run seed, the client id and the round — never on call order — so a
/// partial (fewer-epoch) re-run of the same session produces exactly the
/// prefix of the full session. SEAFL^2's early upload relies on this.
class ClientTrainer {
 public:
  /// @param task the federated task (must outlive the trainer)
  /// @param factory architecture factory; @param config run parameters
  ClientTrainer(const FlTask& task, const ModelFactory& factory,
                const RunConfig& config);

  /// Number of trainable scalars of the architecture.
  std::size_t num_params() const { return num_params_; }

  /// Trains `epochs` local epochs for `client` starting from `base` weights.
  /// The returned reference points into the trainer's reusable result buffer
  /// and is invalidated by the next train() call — copy (or move fields out)
  /// before training again.
  /// @param frozen_layers sub-model training: the first N layers keep their
  ///        base weights (forward still runs through them). 0 = full model.
  /// @param observer optional per-epoch hook; may lower the epoch budget
  ///        mid-session (see TrainObserver).
  const ClientTrainResult& train(std::size_t client, const ModelVector& base,
                                 std::size_t epochs, std::uint64_t round,
                                 std::size_t frozen_layers = 0,
                                 TrainObserver* observer = nullptr);

  /// Number of layers in the architecture (for sub-model planning).
  std::size_t num_layers() const { return model_->num_layers(); }

  /// Train-sample count of a client (|D_k|).
  std::size_t client_samples(std::size_t client) const {
    return task_->client_samples(client);
  }

 private:
  const FlTask* task_;
  std::unique_ptr<Sequential> model_;
  std::size_t num_params_;
  RunConfig config_;
  SoftmaxCrossEntropy loss_;
  Tensor batch_features_;
  std::vector<std::int32_t> batch_labels_;
  Tensor logit_grad_;
  DataLoader loader_;               ///< rebound per session, capacity reused
  std::vector<std::size_t> index_scratch_;  ///< lazy-partition fill buffer
  ClientTrainResult result_;        ///< reused across sessions
  std::vector<float> prox_scratch_; ///< FedProx pull buffer, reused
};

}  // namespace seafl
