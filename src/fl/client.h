// Client-side local training: E epochs of mini-batch SGD from a given global
// model, exactly as ClientUpdate in Algorithms 1 and 2 of the paper.
#pragma once

#include "data/loader.h"
#include "data/registry.h"
#include "fl/types.h"
#include "nn/loss.h"

namespace seafl {

/// Result of one local training session.
struct ClientTrainResult {
  ModelVector weights;        ///< trained local model
  double mean_loss = 0.0;     ///< mean training loss of the final epoch
  std::size_t epochs = 0;     ///< epochs actually executed
};

/// Executes local training for any client of a task. One instance owns a
/// single reusable model, so repeated calls do not reallocate layers.
///
/// Determinism: the mini-batch schedule of (client, round) depends only on
/// the run seed, the client id and the round — never on call order — so a
/// partial (fewer-epoch) re-run of the same session produces exactly the
/// prefix of the full session. SEAFL^2's early upload relies on this.
class ClientTrainer {
 public:
  /// @param task the federated task (must outlive the trainer)
  /// @param factory architecture factory; @param config run parameters
  ClientTrainer(const FlTask& task, const ModelFactory& factory,
                const RunConfig& config);

  /// Number of trainable scalars of the architecture.
  std::size_t num_params() const { return num_params_; }

  /// Trains `epochs` local epochs for `client` starting from `base` weights.
  /// @param frozen_layers sub-model training: the first N layers keep their
  ///        base weights (forward still runs through them). 0 = full model.
  ClientTrainResult train(std::size_t client, const ModelVector& base,
                          std::size_t epochs, std::uint64_t round,
                          std::size_t frozen_layers = 0);

  /// Number of layers in the architecture (for sub-model planning).
  std::size_t num_layers() const { return model_->num_layers(); }

  /// Train-sample count of a client (|D_k|).
  std::size_t client_samples(std::size_t client) const {
    return task_->partition.at(client).size();
  }

 private:
  const FlTask* task_;
  std::unique_ptr<Sequential> model_;
  std::size_t num_params_;
  RunConfig config_;
  SoftmaxCrossEntropy loss_;
  Tensor batch_features_;
  std::vector<std::int32_t> batch_labels_;
  Tensor logit_grad_;
};

}  // namespace seafl
