// Result post-processing shared by benches, examples and tests: milestone
// lookups on accuracy curves and CSV export of run traces.
#pragma once

#include <string>

#include "fl/types.h"

namespace seafl {

/// First virtual time at which the curve reaches `accuracy`; -1 if never.
double time_to_accuracy(const RunResult& result, double accuracy);

/// Final accuracy averaged over the last `k` evaluation points (smooths the
/// round-to-round noise of asynchronous aggregation).
double tail_accuracy(const RunResult& result, std::size_t k = 3);

/// Writes the accuracy-vs-time curve as CSV (round,time,accuracy,loss).
void write_curve_csv(const RunResult& result, const std::string& path);

/// Writes the per-aggregation trace as CSV
/// (round,time,updates,mean_staleness,partial).
void write_round_log_csv(const RunResult& result, const std::string& path);

/// Jain's fairness index over per-client participation counts, restricted
/// to clients that participated at least once when `active_only` (otherwise
/// never-selected clients count as zeros). 1 = perfectly even.
double participation_fairness(const RunResult& result,
                              bool active_only = true);

}  // namespace seafl
