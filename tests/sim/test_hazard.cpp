#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "sim/hazard.h"

namespace seafl {
namespace {

ChurnConfig churn_config(double uptime = 100.0, double downtime = 25.0,
                         std::uint64_t seed = 42) {
  ChurnConfig c;
  c.mean_uptime = uptime;
  c.mean_downtime = downtime;
  c.seed = seed;
  return c;
}

TEST(ChurnModelTest, DisabledModelIsAlwaysOnline) {
  const ChurnModel def;  // default-constructed
  const ChurnModel off(churn_config(/*uptime=*/0.0), 10);
  for (const ChurnModel* m : {&def, &off}) {
    EXPECT_FALSE(m->enabled());
    EXPECT_TRUE(m->online_at(0, 0.0));
    EXPECT_TRUE(m->online_at(0, 1e12));
    EXPECT_EQ(m->next_offline(0, 5.0),
              std::numeric_limits<double>::infinity());
    EXPECT_EQ(m->next_online(0, 5.0), 5.0);
  }
}

TEST(ChurnModelTest, EveryClientStartsOnline) {
  const ChurnModel m(churn_config(), 20);
  for (std::size_t c = 0; c < 20; ++c) EXPECT_TRUE(m.online_at(c, 0.0));
}

TEST(ChurnModelTest, TimelineAlternatesConsistently) {
  const ChurnModel m(churn_config(/*uptime=*/10.0, /*downtime=*/5.0), 4);
  for (std::size_t c = 0; c < 4; ++c) {
    double t = 0.0;
    // Walk a few cycles: online until next_offline, offline until
    // next_online, and the point queries must agree with the walk.
    for (int cycle = 0; cycle < 5; ++cycle) {
      ASSERT_TRUE(m.online_at(c, t));
      const double down = m.next_offline(c, t);
      ASSERT_GT(down, t);
      // Just before the crash edge the client is still online; at it,
      // offline (intervals are half-open [edge_{i-1}, edge_i)).
      EXPECT_TRUE(m.online_at(c, std::nextafter(down, t)));
      EXPECT_FALSE(m.online_at(c, down));
      EXPECT_EQ(m.next_offline(c, down), down);  // already offline
      const double up = m.next_online(c, down);
      ASSERT_GT(up, down);
      EXPECT_TRUE(m.online_at(c, up));
      EXPECT_EQ(m.next_online(c, up), up);  // already online
      t = up;
    }
  }
}

TEST(ChurnModelTest, QueryOrderDoesNotChangeTheTimeline) {
  // Forward walk vs far-future-first: the lazily generated edges must agree.
  const ChurnModel forward(churn_config(), 8);
  const ChurnModel backward(churn_config(), 8);

  std::vector<double> probes{0.0, 3.0, 47.0, 260.0, 1900.0};
  // Force the far horizon first on one model.
  for (std::size_t c = 0; c < 8; ++c) backward.online_at(c, 5000.0);

  for (std::size_t c = 0; c < 8; ++c) {
    for (const double t : probes) {
      EXPECT_EQ(forward.online_at(c, t), backward.online_at(c, t));
      EXPECT_DOUBLE_EQ(forward.next_offline(c, t),
                       backward.next_offline(c, t));
      EXPECT_DOUBLE_EQ(forward.next_online(c, t), backward.next_online(c, t));
    }
  }
}

TEST(ChurnModelTest, SeedAndClientChangeTheTimeline) {
  const ChurnModel a(churn_config(), 4);
  const ChurnModel b(churn_config(100.0, 25.0, /*seed=*/43), 4);
  // Different seeds: first crash times differ (almost surely).
  EXPECT_NE(a.next_offline(0, 0.0), b.next_offline(0, 0.0));
  // Different clients of one model have independent streams.
  EXPECT_NE(a.next_offline(0, 0.0), a.next_offline(1, 0.0));
  // Same (seed, client) reproduces exactly.
  const ChurnModel c(churn_config(), 4);
  EXPECT_DOUBLE_EQ(a.next_offline(2, 0.0), c.next_offline(2, 0.0));
}

TEST(ChurnModelTest, MeanUptimeMatchesTheExponentialRoughly) {
  // 400 clients' first crash times average near mean_uptime.
  const double mean = 50.0;
  const ChurnModel m(churn_config(mean, 10.0), 400);
  double sum = 0.0;
  for (std::size_t c = 0; c < 400; ++c) sum += m.next_offline(c, 0.0);
  const double avg = sum / 400.0;
  EXPECT_GT(avg, 0.75 * mean);
  EXPECT_LT(avg, 1.25 * mean);
}

}  // namespace
}  // namespace seafl
