// Randomized differential test of EventQueue against a trivial reference
// scheduler (sorted vector), covering interleaved schedule/cancel patterns.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "sim/event_queue.h"

namespace seafl {
namespace {

/// Reference: events executed by (time, insertion order), honoring cancels.
struct RefEvent {
  double time;
  std::uint64_t seq;
  int payload;
  bool cancelled = false;
};

class EventQueueFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueFuzz, MatchesReferenceScheduler) {
  Rng rng(GetParam());
  EventQueue queue;
  std::vector<RefEvent> reference;
  std::vector<int> actual_order;
  std::vector<std::uint64_t> live_ids;  // ids eligible for cancellation

  // Random schedule/cancel phase (all times in the future).
  for (int op = 0; op < 300; ++op) {
    if (!live_ids.empty() && rng.bernoulli(0.25)) {
      // Cancel a random pending event.
      const std::size_t pick = rng.uniform_int(live_ids.size());
      const std::uint64_t id = live_ids[pick];
      const bool ok = queue.cancel(id);
      EXPECT_TRUE(ok);
      for (auto& e : reference)
        if (e.seq == id) e.cancelled = true;
      live_ids.erase(live_ids.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      const double t = rng.uniform(0.0, 100.0);
      const int payload = op;
      const auto id = queue.schedule_at(
          t, [&actual_order, payload] { actual_order.push_back(payload); });
      reference.push_back(RefEvent{t, id, payload});
      live_ids.push_back(id);
    }
  }

  queue.run_all();

  std::vector<RefEvent> expected;
  for (const auto& e : reference)
    if (!e.cancelled) expected.push_back(e);
  std::sort(expected.begin(), expected.end(),
            [](const RefEvent& a, const RefEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.seq < b.seq;
            });

  ASSERT_EQ(actual_order.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    ASSERT_EQ(actual_order[i], expected[i].payload) << "position " << i;
  EXPECT_TRUE(queue.empty());
}

TEST_P(EventQueueFuzz, SelfSchedulingChainsStayOrdered) {
  Rng rng(GetParam() + 999);
  EventQueue queue;
  std::vector<double> fire_times;
  // Each event schedules 0-2 children at later times.
  std::function<void(int)> node = [&](int depth) {
    fire_times.push_back(queue.now());
    if (depth >= 4) return;
    const int children = static_cast<int>(rng.uniform_int(3));
    for (int c = 0; c < children; ++c) {
      queue.schedule_after(rng.uniform(0.1, 5.0),
                           [&node, depth] { node(depth + 1); });
    }
  };
  for (int i = 0; i < 5; ++i)
    queue.schedule_at(rng.uniform(0.0, 2.0), [&node] { node(0); });
  queue.run_all();

  for (std::size_t i = 1; i < fire_times.size(); ++i)
    ASSERT_GE(fire_times[i], fire_times[i - 1]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

}  // namespace
}  // namespace seafl
