#include <gtest/gtest.h>

#include <algorithm>

#include "sim/fleet.h"

namespace seafl {
namespace {

FleetConfig small_config() {
  FleetConfig c;
  c.num_devices = 50;
  c.seed = 42;
  return c;
}

TEST(FleetTest, SlowdownsAreBoundedAndHeavyTailed) {
  Fleet fleet(small_config());
  double max_slow = 0.0;
  int above_two = 0;
  for (std::size_t k = 0; k < fleet.size(); ++k) {
    const double s = fleet.slowdown(k);
    EXPECT_GE(s, 1.0);
    EXPECT_LE(s, small_config().speed_cap);
    max_slow = std::max(max_slow, s);
    if (s > 2.0) ++above_two;
  }
  // Pareto(shape=1.5) over 50 devices: some but not all devices are slow.
  EXPECT_GT(max_slow, 2.0);
  EXPECT_LT(above_two, 30);
  EXPECT_GT(above_two, 0);
}

TEST(FleetTest, ConstructionIsSeedDeterministic) {
  Fleet a(small_config()), b(small_config());
  for (std::size_t k = 0; k < a.size(); ++k)
    EXPECT_DOUBLE_EQ(a.slowdown(k), b.slowdown(k));
  FleetConfig other = small_config();
  other.seed = 43;
  Fleet c(other);
  bool any_diff = false;
  for (std::size_t k = 0; k < a.size(); ++k)
    any_diff |= a.slowdown(k) != c.slowdown(k);
  EXPECT_TRUE(any_diff);
}

TEST(FleetTest, EpochComputeScalesLinearly) {
  Fleet fleet(small_config());
  const double one = fleet.epoch_compute_seconds(0, 100, 1.0);
  EXPECT_DOUBLE_EQ(fleet.epoch_compute_seconds(0, 200, 1.0), 2.0 * one);
  EXPECT_DOUBLE_EQ(fleet.epoch_compute_seconds(0, 100, 3.0), 3.0 * one);
  EXPECT_GT(one, 0.0);
}

TEST(FleetTest, SlowerDeviceTakesLonger) {
  Fleet fleet(small_config());
  // Find the slowest and fastest devices.
  std::size_t fast = 0, slow = 0;
  for (std::size_t k = 1; k < fleet.size(); ++k) {
    if (fleet.slowdown(k) < fleet.slowdown(fast)) fast = k;
    if (fleet.slowdown(k) > fleet.slowdown(slow)) slow = k;
  }
  EXPECT_GT(fleet.epoch_compute_seconds(slow, 100, 1.0),
            fleet.epoch_compute_seconds(fast, 100, 1.0));
}

TEST(FleetTest, IdleSecondsWithinZipfRange) {
  FleetConfig c = small_config();
  c.max_idle_seconds = 60;
  Fleet fleet(c);
  for (std::uint64_t round = 0; round < 5; ++round) {
    for (std::uint64_t epoch = 0; epoch < 3; ++epoch) {
      const double idle = fleet.idle_seconds(3, round, epoch);
      EXPECT_GE(idle, 1.0);
      EXPECT_LE(idle, 60.0);
    }
  }
}

TEST(FleetTest, IdleDeterministicPerCoordinates) {
  Fleet fleet(small_config());
  EXPECT_DOUBLE_EQ(fleet.idle_seconds(1, 2, 3), fleet.idle_seconds(1, 2, 3));
  // Different coordinates give (almost surely) different draws somewhere.
  bool any_diff = false;
  for (std::uint64_t e = 0; e < 20; ++e)
    any_diff |= fleet.idle_seconds(1, 2, e) != fleet.idle_seconds(1, 3, e);
  EXPECT_TRUE(any_diff);
}

TEST(FleetTest, IdleScaleZeroDisablesIdling) {
  FleetConfig c = small_config();
  c.idle_scale = 0.0;
  Fleet fleet(c);
  EXPECT_DOUBLE_EQ(fleet.idle_seconds(0, 0, 0), 0.0);
}

TEST(FleetTest, IdleFollowsZipfShape) {
  // Rank 1 (1 second) must dominate with s = 1.7.
  Fleet fleet(small_config());
  int ones = 0;
  constexpr int kN = 2000;
  for (int i = 0; i < kN; ++i) {
    if (fleet.idle_seconds(7, static_cast<std::uint64_t>(i), 0) <= 1.0)
      ++ones;
  }
  EXPECT_NEAR(ones / static_cast<double>(kN), 0.55, 0.06);
}

TEST(FleetTest, LatencyJitteredAroundMean) {
  FleetConfig c = small_config();
  c.mean_latency = 0.5;
  Fleet fleet(c);
  for (std::uint64_t r = 0; r < 50; ++r) {
    const double l = fleet.latency_seconds(2, r, 0);
    EXPECT_GE(l, 0.4);
    EXPECT_LE(l, 0.6);
  }
  c.mean_latency = 0.0;
  Fleet no_net(c);
  EXPECT_DOUBLE_EQ(no_net.latency_seconds(0, 0, 0), 0.0);
}

TEST(FleetTest, LatencyLegsAreIndependentDraws) {
  Fleet fleet(small_config());
  EXPECT_NE(fleet.latency_seconds(0, 0, 0), fleet.latency_seconds(0, 0, 1));
}

TEST(FleetTest, TrainingSecondsSumsEpochsAndIdle) {
  Fleet fleet(small_config());
  const std::size_t device = 5;
  const double total = fleet.training_seconds(device, 3, 50, 2.0, 4);
  double manual = 0.0;
  for (std::size_t e = 0; e < 4; ++e) {
    manual += fleet.epoch_compute_seconds(device, 50, 2.0);
    manual += fleet.idle_seconds(device, 3, e);
  }
  EXPECT_DOUBLE_EQ(total, manual);
}

TEST(FleetTest, RejectsInvalidConfigAndArgs) {
  FleetConfig c = small_config();
  c.num_devices = 0;
  EXPECT_THROW(Fleet{c}, Error);
  c = small_config();
  c.seconds_per_unit_work = 0.0;
  EXPECT_THROW(Fleet{c}, Error);
  c = small_config();
  c.speed_cap = 0.5;
  EXPECT_THROW(Fleet{c}, Error);

  Fleet fleet(small_config());
  EXPECT_THROW(fleet.slowdown(999), Error);
  EXPECT_THROW(fleet.epoch_compute_seconds(0, 10, 0.0), Error);
}

}  // namespace
}  // namespace seafl
