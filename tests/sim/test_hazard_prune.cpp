// ChurnModel horizon pruning (DESIGN.md §16): advance_horizon must bound the
// cached timeline state without changing a single answer — pruned interval
// indices stay exact through the dropped-edge count, and evicted timelines
// regenerate bit-for-bit from their (seed, client) stream.
#include <gtest/gtest.h>

#include <vector>

#include "sim/hazard.h"

namespace seafl {
namespace {

ChurnConfig churn_config(double uptime = 10.0, double downtime = 5.0,
                         std::uint64_t seed = 42) {
  ChurnConfig c;
  c.mean_uptime = uptime;
  c.mean_downtime = downtime;
  c.seed = seed;
  return c;
}

void expect_matches_oracle(const ChurnModel& pruned, const ChurnModel& oracle,
                           std::size_t clients, double t) {
  for (std::size_t c = 0; c < clients; ++c) {
    EXPECT_EQ(pruned.online_at(c, t), oracle.online_at(c, t));
    EXPECT_DOUBLE_EQ(pruned.next_offline(c, t), oracle.next_offline(c, t));
    EXPECT_DOUBLE_EQ(pruned.next_online(c, t), oracle.next_online(c, t));
  }
}

TEST(ChurnPruneTest, PrunedModelMatchesFreshOracle) {
  constexpr std::size_t kClients = 16;
  ChurnModel pruned(churn_config(), kClients);
  const ChurnModel oracle(churn_config(), kClients);
  // Monotone clock: queries at each horizon, then prune behind it. Every
  // post-prune answer must equal the never-pruned oracle's.
  for (const double t : {0.0, 3.0, 12.0, 40.0, 90.0, 250.0, 1000.0}) {
    pruned.advance_horizon(t);
    expect_matches_oracle(pruned, oracle, kClients, t);
    expect_matches_oracle(pruned, oracle, kClients, t + 1.7);
    expect_matches_oracle(pruned, oracle, kClients, t + 23.0);
  }
}

TEST(ChurnPruneTest, ProbeAgreesWithOnlineAt) {
  constexpr std::size_t kClients = 12;
  ChurnModel model(churn_config(), kClients);
  const ChurnModel oracle(churn_config(), kClients);
  for (const double t : {0.0, 7.0, 31.0, 128.0}) {
    model.advance_horizon(t);
    for (std::size_t c = 0; c < kClients; ++c) {
      // The stateless probe must agree with the cached query both on the
      // pruned model and on the untouched oracle.
      EXPECT_EQ(model.probe_online_at(c, t), oracle.online_at(c, t));
      EXPECT_EQ(model.probe_online_at(c, t + 11.0), model.online_at(c, t + 11.0));
    }
  }
}

TEST(ChurnPruneTest, EvictionRegeneratesBitwise) {
  constexpr std::size_t kClients = 8;
  ChurnModel model(churn_config(), kClients);
  const ChurnModel oracle(churn_config(), kClients);
  for (std::size_t c = 0; c < kClients; ++c) model.online_at(c, 50.0);
  EXPECT_EQ(model.cached_timelines(), kClients);
  // Two advances with no intervening queries: every timeline is evicted.
  model.advance_horizon(60.0);
  model.advance_horizon(70.0);
  EXPECT_EQ(model.cached_timelines(), 0u);
  // Regenerated timelines answer exactly as if never evicted.
  expect_matches_oracle(model, oracle, kClients, 70.0);
  expect_matches_oracle(model, oracle, kClients, 200.0);
}

TEST(ChurnPruneTest, CachedStateStaysBounded) {
  constexpr std::size_t kClients = 64;
  constexpr std::size_t kWindow = 8;
  ChurnModel model(churn_config(), kClients);
  double t = 0.0;
  for (std::size_t round = 0; round < 40; ++round) {
    // Only a sliding window of clients is active each round — like a
    // population-scale run where concurrency << population.
    for (std::size_t i = 0; i < kWindow; ++i) {
      model.online_at((round * kWindow + i) % kClients, t);
    }
    t += 15.0;
    model.advance_horizon(t);
    // Two-generation eviction window: at most the last two rounds' actives.
    EXPECT_LE(model.cached_timelines(), 2 * kWindow);
  }
}

TEST(ChurnPruneTest, DisabledModelAdvanceIsHarmless) {
  ChurnModel disabled;
  disabled.advance_horizon(100.0);
  EXPECT_TRUE(disabled.online_at(0, 1e9));
  EXPECT_TRUE(disabled.probe_online_at(0, 1e9));
  EXPECT_EQ(disabled.cached_timelines(), 0u);
}

TEST(ChurnPruneTest, DiurnalOverlaySurvivesPruning) {
  ScheduleConfig schedule;
  schedule.period = 40.0;
  schedule.online_fraction = 0.5;
  schedule.seed = 42;
  ChurnModel pruned(churn_config(), schedule, 8);
  const ChurnModel oracle(churn_config(), schedule, 8);
  for (const double t : {0.0, 25.0, 80.0, 300.0}) {
    pruned.advance_horizon(t);
    expect_matches_oracle(pruned, oracle, 8, t);
    for (std::size_t c = 0; c < 8; ++c) {
      EXPECT_EQ(pruned.probe_online_at(c, t + 5.0), oracle.online_at(c, t + 5.0));
    }
  }
}

}  // namespace
}  // namespace seafl
